#include "super/supervisor.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <thread>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "triage/result_json.hh"

namespace edge::super {

using Clock = std::chrono::steady_clock;

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;
bool g_handlers_installed = false;

void
stopHandler(int sig)
{
    g_stop_signal = sig;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Parent-side pipe end: nonblocking, not inherited by later forks. */
void
prepParentFd(int fd)
{
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

} // namespace

void
installStopHandlers()
{
    if (g_handlers_installed)
        return;
    struct sigaction sa = {};
    sa.sa_handler = stopHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: interrupt poll() immediately
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    g_handlers_installed = true;
}

int
stopSignal()
{
    return static_cast<int>(g_stop_signal);
}

void
clearStopSignal()
{
    g_stop_signal = 0;
}

struct Supervisor::Child
{
    pid_t pid = -1;
    std::size_t index = 0;    ///< cell index in the runAll batch
    unsigned attempt = 1;
    std::uint64_t backoffAccum = 0;
    int inFd = -1;            ///< writes the spec to the child
    int outFd = -1;           ///< reads the result document
    std::string inBuf;
    std::size_t inOff = 0;
    std::string outBuf;
    bool hasDeadline = false;
    Clock::time_point deadline;
    bool timedOut = false;
};

Supervisor::Supervisor(SupervisorOptions opts) : _opts(std::move(opts))
{
    // A child that dies before reading its spec turns the parent's
    // pending write into EPIPE, which must be an errno, not a fatal
    // signal to the whole campaign.
    std::signal(SIGPIPE, SIG_IGN);
    if (_opts.jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        _opts.jobs = hw ? hw : 1;
    }
}

bool
Supervisor::stopRequested() const
{
    return _stop.load(std::memory_order_relaxed) || stopSignal() != 0;
}

std::string
Supervisor::resumeHint() const
{
    if (!_journal.isOpen())
        return "";
    return strfmt("add --resume %s to the same command line to "
                  "continue this campaign",
                  _journal.path().c_str());
}

bool
Supervisor::spawn(Child &c, const CellSpec &cell)
{
    int inPipe[2] = {-1, -1};
    int outPipe[2] = {-1, -1};
    if (::pipe(inPipe) != 0)
        return false;
    if (::pipe(outPipe) != 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        return false;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        return false;
    }

    if (pid == 0) {
        // Child. Wire stdin/stdout to the protocol pipes (stderr is
        // inherited: worker diagnostics land in the campaign log),
        // fence the sandbox, and become the worker.
        ::dup2(inPipe[0], STDIN_FILENO);
        ::dup2(outPipe[1], STDOUT_FILENO);
        ::close(inPipe[0]);
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        if (_opts.rlimitAsMb != 0) {
            struct rlimit rl;
            rl.rlim_cur = rl.rlim_max =
                _opts.rlimitAsMb * 1024ULL * 1024ULL;
            ::setrlimit(RLIMIT_AS, &rl);
        }
        if (_opts.rlimitCpuSec != 0) {
            struct rlimit rl;
            rl.rlim_cur = rl.rlim_max = _opts.rlimitCpuSec;
            ::setrlimit(RLIMIT_CPU, &rl);
        }
        const char *path = _opts.workerPath.empty()
                               ? "/proc/self/exe"
                               : _opts.workerPath.c_str();
        ::execl(path, path, "--worker-cell",
                static_cast<char *>(nullptr));
        ::_exit(127);
    }

    ::close(inPipe[0]);
    ::close(outPipe[1]);
    prepParentFd(inPipe[1]);
    prepParentFd(outPipe[0]);

    c.pid = pid;
    c.inFd = inPipe[1];
    c.outFd = outPipe[0];
    c.inBuf = cellToJson(cell).dumpCompact();
    c.inOff = 0;
    c.outBuf.clear();
    c.timedOut = false;
    c.hasDeadline = _opts.cellTimeoutMs != 0;
    if (c.hasDeadline)
        c.deadline = Clock::now() +
                     std::chrono::milliseconds(_opts.cellTimeoutMs);
    return true;
}

namespace {

/** Synthesize the structured result for a cell whose worker died (or
 *  broke protocol) instead of answering. */
sim::RunResult
deathResult(const CellSpec &cell, chaos::SimError::Reason reason,
            std::string message)
{
    sim::RunResult r;
    r.error.reason = reason;
    r.error.message = std::move(message);
    r.rngSeed = cell.config.rngSeed;
    r.chaosSeed = cell.config.chaos.seed;
    return r;
}

/** Classify a reaped child's wait status (worker-protocol table:
 *  docs/PROTOCOL.md, "Supervised campaigns"). */
sim::RunResult
classifyExit(const CellSpec &cell, int status, bool timed_out,
             std::uint64_t timeout_ms, const std::string &out_buf,
             bool *parsed_ok)
{
    using Reason = chaos::SimError::Reason;
    *parsed_ok = false;

    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        if (timed_out)
            return deathResult(
                cell, Reason::WorkerTimeout,
                strfmt("worker SIGKILLed by supervisor after the "
                       "%llu ms cell deadline",
                       static_cast<unsigned long long>(timeout_ms)));
        if (sig == SIGXCPU)
            return deathResult(cell, Reason::WorkerTimeout,
                               "worker exceeded RLIMIT_CPU");
        if (sig == SIGKILL)
            return deathResult(
                cell, Reason::WorkerKilled,
                "worker SIGKILLed (kernel OOM killer or external "
                "kill)");
        return deathResult(
            cell, Reason::WorkerCrash,
            strfmt("worker died on signal %d (%s)", sig,
                   strsignal(sig)));
    }

    int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code != 0)
        return deathResult(
            cell, Reason::WorkerProtocol,
            strfmt("worker exited with status %d without a result",
                   code));

    triage::JsonValue doc;
    std::string err;
    sim::RunResult r;
    if (!triage::JsonValue::parse(out_buf, &doc, &err) ||
        !triage::resultFromJson(doc, &r, &err))
        return deathResult(
            cell, Reason::WorkerProtocol,
            "worker exited 0 but returned no valid result document "
            "(" + err + ")");
    *parsed_ok = true;
    return r;
}

} // namespace

void
Supervisor::finalize(std::size_t index, const CellSpec &cell,
                     sim::RunResult result,
                     std::vector<CellOutcome> &out)
{
    CellOutcome &o = out[index];
    o.ran = true;
    o.fromJournal = false;

    const chaos::SimError::Reason reason = result.error.reason;
    const bool worker_death = chaos::isWorkerFailure(reason);
    if (worker_death && !_opts.reproDir.empty()) {
        triage::ReproSpec spec = triage::captureFromResult(
            cell.program, cell.config, cell.maxCycles, result);
        o.reproPath = triage::captureToFile(spec, _opts.reproDir);
    }
    o.result = std::move(result);

    ++_completed;
    if (!(o.result.error.ok() && o.result.halted && o.result.archMatch))
        ++_failures;

    if (_journalReady) {
        JournalRecord rec;
        rec.cell = cellHash(cell);
        // Worker deaths and transient host failures describe how the
        // attempt ended, not what the cell computes — non-final, so
        // --resume selectively re-executes exactly these cells.
        rec.final = !worker_death && !chaos::isTransient(reason);
        rec.result = o.result;
        rec.reproPath = o.reproPath;
        std::string err;
        if (!_journal.append(rec, &err))
            warn("supervisor: journal append failed: %s", err.c_str());
    }
}

std::vector<CellOutcome>
Supervisor::runAll(const std::vector<CellSpec> &cells)
{
    if (!_journalReady && !_opts.journalPath.empty()) {
        JournalSetup setup;
        setup.log = _opts.logOptions;
        setup.resumeThreads = _opts.resumeThreads;
        setup.announceResume = _opts.resume;
        std::string err;
        if (_journal.open(_opts.journalPath, setup, &err))
            _journalReady = true;
        else
            warn("supervisor: %s — continuing without a journal",
                 err.c_str());
    }

    // Resume index: last journal record per cell hash wins, and only
    // final records short-circuit execution.
    std::map<std::uint64_t, const JournalRecord *> replayable;
    if (_opts.resume && _journalReady)
        replayable = Journal::resumeIndex(_journal.loaded());

    std::vector<CellOutcome> out(cells.size());

    struct Pending
    {
        std::size_t index;
        unsigned attempt = 1;
        std::uint64_t backoffAccum = 0;
        Clock::time_point notBefore;
    };
    std::deque<Pending> pending;

    const Clock::time_point now0 = Clock::now();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!replayable.empty()) {
            auto it = replayable.find(cellHash(cells[i]));
            if (it != replayable.end()) {
                out[i].ran = true;
                out[i].fromJournal = true;
                out[i].result = it->second->result;
                out[i].reproPath = it->second->reproPath;
                ++_skipped;
                if (!(out[i].result.error.ok() &&
                      out[i].result.halted && out[i].result.archMatch))
                    ++_failures;
                continue;
            }
        }
        pending.push_back({i, 1, 0, now0});
    }

    std::vector<Child> active;
    active.reserve(_opts.jobs);

    while (!pending.empty() || !active.empty()) {
        if (stopRequested()) {
            // Kill and reap everything in flight. Their cells have no
            // journal record, so a resume re-runs them — an
            // interrupted campaign loses at most in-flight work,
            // never completed work.
            for (Child &c : active) {
                ::kill(c.pid, SIGKILL);
                int st = 0;
                ::waitpid(c.pid, &st, 0);
                closeFd(c.inFd);
                closeFd(c.outFd);
            }
            active.clear();
            break;
        }

        const Clock::time_point now = Clock::now();

        // Launch every ready pending cell while there is capacity.
        for (auto it = pending.begin();
             active.size() < _opts.jobs && it != pending.end();) {
            if (it->notBefore > now) {
                ++it;
                continue;
            }
            Child c;
            c.index = it->index;
            c.attempt = it->attempt;
            c.backoffAccum = it->backoffAccum;
            if (!spawn(c, cells[it->index])) {
                finalize(it->index, cells[it->index],
                         deathResult(cells[it->index],
                                     chaos::SimError::Reason::
                                         WorkerProtocol,
                                     strfmt("fork/pipe failed: %s",
                                            std::strerror(errno))),
                         out);
            } else {
                active.push_back(std::move(c));
            }
            it = pending.erase(it);
        }

        // Poll every live pipe; wake early for the nearest deadline
        // or backoff expiry, and at least every 100 ms for the stop
        // flag.
        std::vector<pollfd> fds;
        std::vector<std::pair<std::size_t, bool>> fdOwner; // (child, isIn)
        for (std::size_t ci = 0; ci < active.size(); ++ci) {
            Child &c = active[ci];
            if (c.inFd >= 0 && c.inOff < c.inBuf.size()) {
                fds.push_back({c.inFd, POLLOUT, 0});
                fdOwner.emplace_back(ci, true);
            }
            if (c.outFd >= 0) {
                fds.push_back({c.outFd, POLLIN, 0});
                fdOwner.emplace_back(ci, false);
            }
        }
        int timeout_ms = 100;
        for (const Child &c : active)
            if (c.hasDeadline && !c.timedOut) {
                auto left =
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        c.deadline - now)
                        .count();
                timeout_ms = std::min<int>(
                    timeout_ms,
                    static_cast<int>(std::max<long long>(0, left)));
            }
        for (const Pending &p : pending) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    p.notBefore - now)
                    .count();
            if (left > 0)
                timeout_ms = std::min<int>(
                    timeout_ms, static_cast<int>(left));
        }
        int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                        static_cast<nfds_t>(fds.size()), timeout_ms);
        if (rc < 0 && errno != EINTR)
            warn("supervisor: poll: %s", std::strerror(errno));

        for (std::size_t fi = 0; fi < fds.size(); ++fi) {
            if (fds[fi].revents == 0)
                continue;
            Child &c = active[fdOwner[fi].first];
            if (fdOwner[fi].second) {
                // Feed the spec; a child that died early gives EPIPE,
                // which the reap below will explain better than we
                // can here.
                ssize_t n = ::write(c.inFd, c.inBuf.data() + c.inOff,
                                    c.inBuf.size() - c.inOff);
                if (n > 0)
                    c.inOff += static_cast<std::size_t>(n);
                else if (n < 0 && errno != EAGAIN && errno != EINTR)
                    closeFd(c.inFd);
                if (c.inOff >= c.inBuf.size())
                    closeFd(c.inFd); // EOF tells the worker "go"
            } else {
                char buf[65536];
                ssize_t n = ::read(c.outFd, buf, sizeof(buf));
                if (n > 0)
                    c.outBuf.append(buf, static_cast<std::size_t>(n));
                else if (n == 0 ||
                         (n < 0 && errno != EAGAIN && errno != EINTR))
                    closeFd(c.outFd);
            }
        }

        // Deadline enforcement: SIGKILL, then let the reap classify.
        const Clock::time_point after = Clock::now();
        for (Child &c : active)
            if (c.hasDeadline && !c.timedOut && after >= c.deadline) {
                c.timedOut = true;
                ::kill(c.pid, SIGKILL);
            }

        // Reap.
        for (auto it = active.begin(); it != active.end();) {
            int st = 0;
            pid_t got = ::waitpid(it->pid, &st, WNOHANG);
            if (got != it->pid) {
                ++it;
                continue;
            }
            // Drain whatever the child managed to write before dying;
            // all writers are gone, so reads terminate at EOF.
            if (it->outFd >= 0) {
                char buf[65536];
                ssize_t n;
                while ((n = ::read(it->outFd, buf, sizeof(buf))) > 0)
                    it->outBuf.append(buf,
                                      static_cast<std::size_t>(n));
            }
            closeFd(it->inFd);
            closeFd(it->outFd);

            const CellSpec &cell = cells[it->index];
            bool parsed = false;
            sim::RunResult r =
                classifyExit(cell, st, it->timedOut,
                             _opts.cellTimeoutMs, it->outBuf, &parsed);

            if (_opts.retry.shouldRetry(r, it->attempt) &&
                !stopRequested()) {
                // Same doubling-with-budget backoff as the in-process
                // pool, but scheduled on the poll loop instead of
                // slept: other cells keep running underneath.
                std::uint64_t backoff = std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(_opts.retry.backoffMs)
                        << (it->attempt - 1),
                    _opts.retry.maxTotalBackoffMs -
                        std::min(_opts.retry.maxTotalBackoffMs,
                                 it->backoffAccum));
                Pending p;
                p.index = it->index;
                p.attempt = it->attempt + 1;
                p.backoffAccum = it->backoffAccum + backoff;
                p.notBefore =
                    Clock::now() +
                    std::chrono::milliseconds(backoff);
                pending.push_back(p);
            } else {
                r.retries = it->attempt - 1;
                r.backoffMs = it->backoffAccum;
                finalize(it->index, cell, std::move(r), out);
            }
            it = active.erase(it);
        }
    }

    // Group-commit ack: nothing is reported (or resumed past) until
    // the log's durable watermark covers every record appended above.
    // A crash before this point loses at most the last commit window;
    // --resume re-executes exactly those cells.
    if (_journalReady) {
        std::string err;
        if (!_journal.flush(&err))
            warn("supervisor: journal flush failed: %s — unflushed "
                 "results will re-run on --resume",
                 err.c_str());
    }
    return out;
}

} // namespace edge::super
