#include "super/campaign.hh"

namespace edge::super {

sim::ChaosSweepReport
chaosSweepIsolated(const sim::ChaosSweepParams &params,
                   const triage::ProgramRef &program,
                   CellRunner &runner, bool *interrupted)
{
    std::vector<sim::SweepCell> grid = sim::sweepCells(params);

    const std::uint64_t phash =
        triage::programHash(triage::buildProgram(program));
    std::vector<CellSpec> cells;
    cells.reserve(grid.size());
    for (const sim::SweepCell &gc : grid) {
        CellSpec cell;
        cell.program = program;
        cell.programHash = phash;
        cell.config = gc.machine;
        cell.maxCycles = params.maxCycles;
        cells.push_back(std::move(cell));
    }

    std::vector<CellOutcome> outs = runner.runAll(cells);

    // Assemble through the same tally code as the in-process sweep.
    // On interruption the un-run cells are simply absent — they have
    // no journal record either, so --resume re-runs exactly them.
    std::vector<sim::ChaosSweepOutcome> runs;
    runs.reserve(outs.size());
    bool partial = false;
    for (std::size_t i = 0; i < outs.size(); ++i) {
        if (!outs[i].ran) {
            partial = true;
            continue;
        }
        sim::ChaosSweepOutcome o;
        o.seed = grid[i].seed;
        o.config = grid[i].config;
        o.machine = grid[i].machine;
        o.result = std::move(outs[i].result);
        o.reproPath = std::move(outs[i].reproPath);
        runs.push_back(std::move(o));
    }
    if (interrupted)
        *interrupted = partial;
    return sim::assembleSweepReport(std::move(runs));
}

std::function<std::vector<std::optional<sim::RunResult>>(
    const std::vector<sim::RunJob> &)>
fuzzBatchRunner(CellRunner &runner)
{
    return [&runner](const std::vector<sim::RunJob> &jobs) {
        std::vector<CellSpec> cells;
        cells.reserve(jobs.size());
        for (const sim::RunJob &job : jobs) {
            CellSpec cell;
            // The generator seed is the per-case rngSeed (see
            // fuzz::configFor), so the embedded ref labels the cell
            // the same way the corpus does.
            cell.program = triage::embeddedRef("fuzz", *job.program,
                                               job.config.rngSeed);
            cell.programHash = triage::programHash(*job.program);
            cell.config = job.config;
            cell.maxCycles = job.maxCycles;
            cells.push_back(std::move(cell));
        }
        std::vector<CellOutcome> outs = runner.runAll(cells);
        std::vector<std::optional<sim::RunResult>> results;
        results.reserve(outs.size());
        for (CellOutcome &o : outs) {
            if (o.ran)
                results.emplace_back(std::move(o.result));
            else
                results.emplace_back(std::nullopt);
        }
        return results;
    };
}

} // namespace edge::super
