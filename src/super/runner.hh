/**
 * @file
 * The abstract cell runner: the one interface both executors of
 * supervised campaign cells implement — the single-host fork/exec
 * Supervisor (src/super/supervisor.hh) and the multi-host campaign
 * Fabric coordinator (src/serve/fabric.hh). Campaign entry points
 * (super::chaosSweepIsolated, super::fuzzBatchRunner, the bench
 * grids) are written against this interface, so WHERE cells run —
 * local sandboxed children or remote agents with leases and
 * heartbeats — is invisible to report assembly, and the merged
 * report stays byte-identical by construction.
 */

#ifndef EDGE_SUPER_RUNNER_HH
#define EDGE_SUPER_RUNNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "super/cell.hh"

namespace edge::super {

/** What one supervised cell produced. */
struct CellOutcome
{
    sim::RunResult result;
    /** False only when the campaign stopped before this cell ran —
     *  such cells have no journal record and no meaningful result. */
    bool ran = false;
    /** True when `result` was replayed from the resume journal. */
    bool fromJournal = false;
    /** Automatic crash capture, when one was written. */
    std::string reproPath;
};

/** An executor of campaign cells; see the file comment. */
class CellRunner
{
  public:
    virtual ~CellRunner() = default;

    /**
     * Run every cell (subject to any resume journal). Outcomes come
     * back indexed like `cells` regardless of completion order or
     * placement, so campaign reports preserve the in-process
     * ordering guarantee. May be called repeatedly (the fuzz driver
     * feeds batches); journals stay open across calls.
     */
    virtual std::vector<CellOutcome>
    runAll(const std::vector<CellSpec> &cells) = 0;

    /** Cooperative stop: return from runAll with the un-run cells
     *  marked !ran as soon as the implementation safely can. */
    virtual void requestStop() = 0;
    virtual bool stopRequested() const = 0;

    // --- campaign tallies (across all runAll calls) -----------------
    virtual std::size_t completed() const = 0;
    virtual std::size_t skipped() const = 0; ///< replayed via resume
    virtual std::size_t failures() const = 0;

    /** One-line `--resume` hint for interrupted-campaign banners
     *  ("" when the runner has no journal). */
    virtual std::string resumeHint() const = 0;
};

} // namespace edge::super

#endif // EDGE_SUPER_RUNNER_HH
