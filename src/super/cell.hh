/**
 * @file
 * The unit of supervised execution: one (program, config, budget)
 * cell, serializable as the worker-protocol request. A supervisor
 * sends a CellSpec as one JSON document on the child's stdin; the
 * child runs it and answers with a triage::resultToJson document on
 * stdout. The cell's identity — a stable 64-bit hash of program
 * content, fully-resolved config (seed included), and cycle budget —
 * keys the campaign journal, so `--resume` can recognise a completed
 * cell across process lifetimes and host reboots.
 */

#ifndef EDGE_SUPER_CELL_HH
#define EDGE_SUPER_CELL_HH

#include <cstdint>
#include <string>

#include "triage/repro.hh"

namespace edge::super {

/** One supervised run: a program under one resolved config. */
struct CellSpec
{
    /** Program identity — a workload kernel by name, or an embedded
     *  fuzz program (see triage::ProgramRef). */
    triage::ProgramRef program;
    /**
     * Content hash of the built program. Campaign wrappers that run
     * many cells over one program compute it once; 0 means "compute
     * from `program` on demand".
     */
    std::uint64_t programHash = 0;
    /** Fully-resolved config; the run seed lives in config.rngSeed. */
    core::MachineConfig config;
    Cycle maxCycles = 500'000'000;
    /**
     * Test-only crash hook. When nonempty the worker misbehaves on
     * purpose instead of running the cell: "segv" dereferences null,
     * "abort" raises SIGABRT, "kill" raises SIGKILL, "hang" sleeps
     * forever, "exit3" exits with status 3, "garbage" prints a
     * non-JSON line and exits 0. This is how the signal-classification
     * tests produce real dead children without shipping a genuinely
     * crashy workload.
     */
    std::string testCrash;
};

/**
 * Stable identity of a cell: FNV-1a over the program content hash,
 * the canonical JSON of the resolved config, and the cycle budget.
 * Builds the program to hash it when `programHash` is 0.
 */
std::uint64_t cellHash(const CellSpec &cell);

/** Serialize a cell as the worker-protocol request document. */
triage::JsonValue cellToJson(const CellSpec &cell);

/** Parse a request; false (with *err set) on malformed input. */
bool cellFromJson(const triage::JsonValue &root, CellSpec *cell,
                  std::string *err);

} // namespace edge::super

#endif // EDGE_SUPER_CELL_HH
