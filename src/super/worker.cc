#include "super/worker.hh"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <thread>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "super/cell.hh"
#include "triage/result_json.hh"

namespace edge::super {

namespace {

/** Deliberate misbehaviour for the supervisor's classification
 *  tests; see CellSpec::testCrash. Never returns when it acts. */
void
maybeTestCrash(const std::string &mode, std::ostream &out)
{
    if (mode.empty())
        return;
    if (mode == "segv") {
        volatile int *p = nullptr;
        *p = 1;
    } else if (mode == "abort") {
        std::abort();
    } else if (mode == "kill") {
        std::raise(SIGKILL);
    } else if (mode == "hang") {
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    } else if (mode == "exit3") {
        std::exit(3);
    } else if (mode == "garbage") {
        out << "this is not a result document\n";
        out.flush();
        std::exit(0);
    }
    fprintf(stderr, "edgesim: unknown test_crash mode '%s'\n",
            mode.c_str());
    std::exit(2);
}

} // namespace

int
workerCellMain(std::istream &in, std::ostream &out)
{
    // Bounded read: a supervisor that never stops writing (or a
    // corrupt stream with no terminator) must produce a structured
    // WorkerProtocol failure, not an unbounded buffer. The spec is
    // everything up to EOF, capped at kMaxCellSpecBytes.
    std::string spec;
    spec.reserve(64 * 1024);
    char chunk[65536];
    while (in.read(chunk, sizeof(chunk)), in.gcount() > 0) {
        spec.append(chunk, static_cast<std::size_t>(in.gcount()));
        if (spec.size() > kMaxCellSpecBytes) {
            fprintf(stderr,
                    "edgesim: worker-cell: WorkerProtocol: spec "
                    "exceeds the %zu-byte bound — refusing to "
                    "buffer further\n",
                    kMaxCellSpecBytes);
            return 2;
        }
    }

    triage::JsonValue root;
    std::string err;
    if (!triage::JsonValue::parse(spec, &root, &err)) {
        fprintf(stderr,
                "edgesim: worker-cell: WorkerProtocol: malformed or "
                "partial spec: %s\n",
                err.c_str());
        return 2;
    }
    CellSpec cell;
    if (!cellFromJson(root, &cell, &err)) {
        fprintf(stderr,
                "edgesim: worker-cell: WorkerProtocol: bad spec: %s\n",
                err.c_str());
        return 2;
    }

    maybeTestCrash(cell.testCrash, out);

    isa::Program prog = triage::buildProgram(cell.program);
    if (cell.program.hasEmbedded) {
        std::vector<isa::ValidationIssue> issues = prog.validateAll();
        if (!issues.empty()) {
            fprintf(stderr,
                    "edgesim: worker-cell: embedded program is "
                    "invalid: %s\n",
                    issues.front().str().c_str());
            return 2;
        }
    }

    // The run itself. Failures are structured data in the result;
    // only the protocol can make this path return nonzero.
    sim::Simulator sim(std::move(prog), cell.config);
    sim::RunResult r = sim.run(cell.config, cell.maxCycles);

    out << triage::resultToJson(r).dumpCompact() << "\n";
    out.flush();
    return out ? 0 : 2;
}

} // namespace edge::super
