/**
 * @file
 * The campaign journal: the durable record of every completed cell of
 * a supervised campaign, now a thin adapter over the group-commit
 * result log (log::ResultLog). Records keep their lossless compact
 * JSON encoding — cell hash, `final` flag, the complete RunResult,
 * repro path and lease provenance, plus a record-level FNV-1a `crc` —
 * but instead of a per-record whole-file durable rewrite they are
 * framed into LSN-addressed, block-checksummed segments and fsynced
 * in batches by the log's flusher thread. `append()` therefore
 * returns before the record is durable; callers that acknowledge
 * completion gate on `durableLsn()` / `waitDurable()` / `flush()`.
 *
 * Legacy JSONL journals (the PR-5 format: header line + one JSON
 * record per line) still load, and `open()` migrates them in place:
 * the old file is kept as `<path>.v1` and its records are re-appended
 * into a fresh segment log at `<path>`, preserving the recorded build
 * provenance. The migration is idempotent — a crash between the
 * rename and the re-append is repaired on the next open from the
 * `.v1` backup.
 *
 * The `final` flag carries the resume semantics. Clean passes and
 * deterministic simulation failures are final: re-running them would
 * reproduce the same bits, so `--resume` replays them from the
 * journal. Worker-death records (SIGSEGV, OOM kill, timeout) are
 * NOT final: the result describes how the child died, not what the
 * cell computes, so `--resume` selectively re-executes exactly those
 * cells — the DSRE discipline applied to campaign recovery.
 */

#ifndef EDGE_SUPER_JOURNAL_HH
#define EDGE_SUPER_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "log/result_log.hh"
#include "sim/simulator.hh"

namespace edge::super {

/** One completed cell, as journaled. */
struct JournalRecord
{
    std::uint64_t cell = 0; ///< cellHash identity
    /** Replayable from the journal on resume? (False for worker
     *  deaths: those re-execute.) */
    bool final = true;
    sim::RunResult result;
    /** Captured .repro.json for a failing cell, if any. */
    std::string reproPath;

    // --- lease provenance (campaign fabric; empty for local runs) --
    /** Executor that produced the result ("" = local worker). */
    std::string agent;
    /** Fabric lease under which the cell ran (0 = none). */
    std::uint64_t lease = 0;
    /** Scheduling attempt that produced the result (1 = first). */
    unsigned attempt = 1;
    /** Result-integrity audit verdict ("" = not audited; "match",
     *  "diverged:<agent>", "inconclusive", "unresolved"). */
    std::string audit;
};

/** Knobs threaded from the CLI down into the result log. */
struct JournalSetup
{
    log::LogOptions log;
    /** Redo workers for the recovery scan + record decode (0 = one
     *  per hardware thread). */
    unsigned resumeThreads = 0;
    /** Print recovery progress to stderr and stamp the recovery
     *  stats into the log as a resume meta block. */
    bool announceResume = false;
};

class Journal
{
  public:
    /**
     * Open `path` for appending. An existing log directory is
     * recovered first (that is the resume path) and a legacy JSONL
     * journal file is migrated; a fresh log gets its segment header
     * stamped with this build's provenance. Returns false (with
     * *err) on I/O or format errors.
     */
    bool open(const std::string &path, std::string *err);
    bool open(const std::string &path, const JournalSetup &setup,
              std::string *err);

    /**
     * Append one record to the group-commit log. Returns once the
     * record is SEQUENCED (it has an LSN), not once it is durable —
     * gate acknowledgement on durableLsn()/waitDurable()/flush().
     */
    bool append(const JournalRecord &rec, std::string *err);

    /** Ack LSN of the most recent append (0 = nothing appended). */
    std::uint64_t lastLsn() const { return _lastLsn; }

    /** Everything at or below this LSN is fsynced. */
    std::uint64_t durableLsn() const { return _log.durableLsn(); }

    /** Block until `lsn` is durable; false if the log failed. */
    bool waitDurable(std::uint64_t lsn) { return _log.waitDurable(lsn); }

    /** Block until every appended record is durable. */
    bool flush(std::string *err);

    /** Has the log hit a sticky I/O failure? (durableLsn() will
     *  never advance past the failure point.) */
    bool logFailed() const { return _log.failed(); }

    /** Records loaded at open() time (earlier records first). */
    const std::vector<JournalRecord> &loaded() const
    {
        return _loaded;
    }

    /** Build-provenance line of the journal header ("" if new). */
    const std::string &buildLine() const { return _buildLine; }

    /** What recovery saw at open() (zeroed for a fresh journal). */
    const log::ReplayStats &recoveryStats() const { return _recovery; }

    const std::string &path() const { return _path; }
    bool isOpen() const { return !_path.empty(); }

    /**
     * Parse a journal — a segment-log directory (scanned with
     * `threads` redo workers partitioned by cell hash; the result is
     * independent of the worker count) or a legacy JSONL file. A
     * torn tail left by a crash mid-append is dropped with a
     * warning; corruption anywhere else (a bit-flipped block or
     * record) is rejected with a structured error naming the segment
     * and LSN (or line). Records are returned in append order; with
     * duplicate cell hashes the LAST record wins — a resumed
     * campaign appends the re-execution after the worker-death
     * record it supersedes.
     */
    static bool load(const std::string &path,
                     std::vector<JournalRecord> *out,
                     std::string *build_line, std::string *err);
    static bool load(const std::string &path, unsigned threads,
                     std::vector<JournalRecord> *out,
                     std::string *build_line, log::ReplayStats *stats,
                     std::string *err);

    /**
     * The resume index over loaded records: last record per cell
     * hash wins, and only cells whose LAST record is final replay —
     * a non-final record (worker death, lost lease) erases any
     * earlier final one, so `--resume` re-executes exactly those
     * cells. Shared by the Supervisor and the serve Fabric so both
     * runners resume with identical semantics.
     */
    static std::map<std::uint64_t, const JournalRecord *>
    resumeIndex(const std::vector<JournalRecord> &records);

    /**
     * Cheap provenance probe for `--strict-provenance`: true when
     * `path` exists, carries a build line, and that line differs
     * from the running binary's (with *desc naming the difference).
     */
    static bool provenanceMismatch(const std::string &path,
                                   std::string *desc);

  private:
    bool migrateLegacy(const std::string &file, const JournalSetup &setup,
                       std::string *err);

    std::string _path;
    std::string _buildLine;
    std::vector<JournalRecord> _loaded;
    log::ResultLog _log;
    std::uint64_t _lastLsn = 0;
    log::ReplayStats _recovery;
};

} // namespace edge::super

#endif // EDGE_SUPER_JOURNAL_HH
