/**
 * @file
 * The campaign journal: an append-only JSONL file recording every
 * completed cell of a supervised campaign. Line 1 is a header with
 * format, version, and the build provenance line; every further line
 * is one record — the cell's stable hash, a `final` flag, the
 * complete (losslessly serialized) RunResult, and the captured repro
 * path if any. Each append rewrites the file durably (temp file +
 * fsync + atomic rename, see triage::writeFileDurable), so after a
 * crash, SIGKILL, or power loss the journal on disk is always a
 * complete prefix of the campaign — never a torn record.
 *
 * Every record also carries a `crc` field — FNV-1a over the
 * serialized record content — so bit-level corruption anywhere in a
 * record (not just a torn tail) is detected on load and rejected
 * with a structured error naming the line. Checksumless journals
 * written by older builds still load.
 *
 * The `final` flag carries the resume semantics. Clean passes and
 * deterministic simulation failures are final: re-running them would
 * reproduce the same bits, so `--resume` replays them from the
 * journal. Worker-death records (SIGSEGV, OOM kill, timeout) are
 * NOT final: the result describes how the child died, not what the
 * cell computes, so `--resume` selectively re-executes exactly those
 * cells — the DSRE discipline applied to campaign recovery.
 */

#ifndef EDGE_SUPER_JOURNAL_HH
#define EDGE_SUPER_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace edge::super {

/** One completed cell, as journaled. */
struct JournalRecord
{
    std::uint64_t cell = 0; ///< cellHash identity
    /** Replayable from the journal on resume? (False for worker
     *  deaths: those re-execute.) */
    bool final = true;
    sim::RunResult result;
    /** Captured .repro.json for a failing cell, if any. */
    std::string reproPath;

    // --- lease provenance (campaign fabric; empty for local runs) --
    /** Executor that produced the result ("" = local worker). */
    std::string agent;
    /** Fabric lease under which the cell ran (0 = none). */
    std::uint64_t lease = 0;
    /** Scheduling attempt that produced the result (1 = first). */
    unsigned attempt = 1;
};

class Journal
{
  public:
    /**
     * Open `path` for appending. An existing journal is loaded first
     * (that is the resume path); a fresh one gets a header stamped
     * with this build's provenance. Returns false (with *err) on I/O
     * or format errors.
     */
    bool open(const std::string &path, std::string *err);

    /** Durably append one record. */
    bool append(const JournalRecord &rec, std::string *err);

    /** Records loaded at open() time (earlier lines first). */
    const std::vector<JournalRecord> &loaded() const
    {
        return _loaded;
    }

    /** Build-provenance line of the journal header ("" if new). */
    const std::string &buildLine() const { return _buildLine; }

    const std::string &path() const { return _path; }
    bool isOpen() const { return !_path.empty(); }

    /**
     * Parse a journal file. Tolerates a truncated final line (the
     * artifact of an append cut down mid-write by a filesystem that
     * ignores the durability protocol) but rejects torn records
     * anywhere else. Records are returned in file order; with
     * duplicate cell hashes the LAST record wins — a resumed
     * campaign appends the re-execution after the worker-death
     * record it supersedes.
     */
    static bool load(const std::string &path,
                     std::vector<JournalRecord> *out,
                     std::string *build_line, std::string *err);

    /**
     * The resume index over loaded records: last record per cell
     * hash wins, and only cells whose LAST record is final replay —
     * a non-final record (worker death, lost lease) erases any
     * earlier final one, so `--resume` re-executes exactly those
     * cells. Shared by the Supervisor and the serve Fabric so both
     * runners resume with identical semantics.
     */
    static std::map<std::uint64_t, const JournalRecord *>
    resumeIndex(const std::vector<JournalRecord> &records);

  private:
    std::string _path;
    std::string _content; ///< complete serialized journal
    std::string _buildLine;
    std::vector<JournalRecord> _loaded;
};

} // namespace edge::super

#endif // EDGE_SUPER_JOURNAL_HH
