/**
 * @file
 * Supervised-campaign entry points: the process-isolated twins of
 * sim::chaosSweep and the fuzz driver's batch executor. Both reuse
 * the in-process drivers' own grid construction and report assembly
 * (sim::sweepCells / sim::assembleSweepReport, and the whole of
 * fuzz::runCampaign via FuzzOptions::batchRunner), so an `--isolate`
 * campaign differs from the default only in WHERE each cell runs —
 * the uninterrupted report is byte-identical by construction.
 */

#ifndef EDGE_SUPER_CAMPAIGN_HH
#define EDGE_SUPER_CAMPAIGN_HH

#include "fuzz/diff.hh"
#include "sim/sweep.hh"
#include "super/supervisor.hh"

namespace edge::super {

/**
 * The process-isolated chaosSweep: same grid, same report, each cell
 * in a sandboxed worker. `program` names/carries the program for the
 * workers (a kernel ref for workload sweeps). When the campaign is
 * interrupted, the report covers only the cells that completed (the
 * journal has them all) and *interrupted is set.
 */
sim::ChaosSweepReport
chaosSweepIsolated(const sim::ChaosSweepParams &params,
                   const triage::ProgramRef &program,
                   CellRunner &runner, bool *interrupted = nullptr);

/**
 * Batch executor for fuzz::FuzzOptions::batchRunner: every RunJob
 * becomes a CellSpec with the fuzz program embedded, run under
 * `runner` — a local fork/exec Supervisor or the multi-host serve
 * Fabric; `runner` must outlive the campaign.
 */
std::function<std::vector<std::optional<sim::RunResult>>(
    const std::vector<sim::RunJob> &)>
fuzzBatchRunner(CellRunner &runner);

} // namespace edge::super

#endif // EDGE_SUPER_CAMPAIGN_HH
