/**
 * @file
 * The campaign supervisor: runs each cell of a grid in a sandboxed
 * child process so that a segfault, OOM kill, or runaway loop in one
 * cell becomes a structured, journaled, replayable failure row
 * instead of taking the whole campaign down. The child is a fork/exec
 * of `edgesim --worker-cell` (by default the running binary itself,
 * via /proc/self/exe) with RLIMIT_AS / RLIMIT_CPU applied and a
 * supervisor-side wall-clock deadline enforced by SIGKILL; the spec
 * goes down the child's stdin and the complete RunResult comes back
 * up its stdout as one JSON document (losslessly — a supervised grid
 * report is byte-identical to the in-process one).
 *
 * Child deaths are classified from the wait status into the
 * SimError::Reason::Worker* kinds; every completed cell is appended
 * to the durable group-commit result log; `resume` replays final
 * records and selectively re-executes the rest. SIGINT/SIGTERM (see
 * installStopHandlers) stop the loop at the next poll tick: children
 * are reaped, the journal is flushed (runAll waits on the log's
 * durable watermark before returning), and the caller prints the
 * partial tally plus a one-line resume hint.
 */

#ifndef EDGE_SUPER_SUPERVISOR_HH
#define EDGE_SUPER_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/run_pool.hh"
#include "super/cell.hh"
#include "super/journal.hh"
#include "super/runner.hh"

namespace edge::super {

struct SupervisorOptions
{
    /** Concurrent worker processes (0 = all hardware threads). */
    unsigned jobs = 0;
    /** Per-cell wall-clock deadline; the child is SIGKILLed past it
     *  and the cell reports WorkerTimeout. 0 = no deadline. */
    std::uint64_t cellTimeoutMs = 0;
    /** RLIMIT_AS for each child, in MiB (0 = unlimited). */
    std::uint64_t rlimitAsMb = 0;
    /** RLIMIT_CPU for each child, in seconds (0 = unlimited). */
    std::uint64_t rlimitCpuSec = 0;
    /** Worker image to exec; "" = /proc/self/exe (the running
     *  binary re-entered with --worker-cell). */
    std::string workerPath;
    /** Journal file; "" disables journaling (and resume). */
    std::string journalPath;
    /** Replay final records already in the journal instead of
     *  re-running their cells. */
    bool resume = false;
    /** Directory for automatic .repro.json capture of worker-death
     *  cells; "" disables capture. */
    std::string reproDir;
    /** Retry policy for transient (timeout) failures. Deterministic
     *  worker deaths are never retried in-session. */
    sim::RetryPolicy retry;
    /** Group-commit result-log tuning + crash-fault injection. */
    log::LogOptions logOptions;
    /** Redo workers for `--resume` journal recovery (0 = auto). */
    unsigned resumeThreads = 0;
};

class Supervisor : public CellRunner
{
  public:
    explicit Supervisor(SupervisorOptions opts);

    /**
     * Run every cell (subject to the resume journal), in child
     * processes, at most `jobs` concurrently. Outcomes come back
     * indexed like `cells` regardless of completion order, so
     * supervised grids preserve the in-process report ordering
     * guarantee. May be called repeatedly (the fuzz driver feeds
     * batches); the journal stays open across calls.
     */
    std::vector<CellOutcome>
    runAll(const std::vector<CellSpec> &cells) override;

    /** Cooperative stop (what the signal handlers trigger): kill and
     *  reap children, return with the un-run cells marked !ran. */
    void
    requestStop() override
    {
        _stop.store(true, std::memory_order_relaxed);
    }
    bool stopRequested() const override;

    /** Cancellation flag for in-process retry backoff sharing. */
    const std::atomic<bool> *stopFlag() const { return &_stop; }

    // --- campaign tallies (across all runAll calls) ---------------------
    std::size_t completed() const override { return _completed; }
    std::size_t skipped() const override { return _skipped; }
    std::size_t failures() const override { return _failures; }

    const SupervisorOptions &options() const { return _opts; }
    const Journal &journal() const { return _journal; }

    /** One-line `--resume` hint for interrupted-campaign banners. */
    std::string resumeHint() const override;

  private:
    struct Child;

    bool spawn(Child &child, const CellSpec &cell);
    void finalize(std::size_t index, const CellSpec &cell,
                  sim::RunResult result, std::vector<CellOutcome> &out);

    SupervisorOptions _opts;
    Journal _journal;
    bool _journalReady = false;
    std::atomic<bool> _stop{false};
    std::size_t _completed = 0;
    std::size_t _skipped = 0;
    std::size_t _failures = 0;
};

/**
 * Install SIGINT/SIGTERM handlers that flip a process-global stop
 * flag every Supervisor polls (async-signal-safe: the handler only
 * stores to a sig_atomic_t). Returns immediately if already
 * installed.
 */
void installStopHandlers();

/** The signal that triggered the global stop, or 0. */
int stopSignal();

/** Test hook: clear the global stop flag. */
void clearStopSignal();

} // namespace edge::super

#endif // EDGE_SUPER_SUPERVISOR_HH
