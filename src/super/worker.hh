/**
 * @file
 * The worker side of the supervised-campaign protocol. A child
 * process exec'd as `edgesim --worker-cell` reads one CellSpec JSON
 * document from stdin, runs the cell to completion, and writes the
 * complete RunResult as one compact JSON line to stdout. All run
 * failures (watchdog, invariant violation, divergence, ...) are DATA
 * in that result — the worker still exits 0. A nonzero exit means the
 * protocol itself broke (unparsable spec, invalid program), and a
 * death by signal is what the whole subsystem exists to contain: the
 * supervisor classifies it from the wait status, the campaign keeps
 * running.
 */

#ifndef EDGE_SUPER_WORKER_HH
#define EDGE_SUPER_WORKER_HH

#include <cstddef>
#include <iosfwd>

namespace edge::super {

/**
 * Upper bound on a CellSpec request document. The largest legitimate
 * specs are fuzz cells with the whole program embedded — well under
 * a megabyte — so anything past this is a broken or hostile sender,
 * and the worker answers with a structured WorkerProtocol error
 * instead of buffering stdin without bound.
 */
constexpr std::size_t kMaxCellSpecBytes = 16u * 1024 * 1024;

/**
 * Run one cell: parse a CellSpec from `in`, simulate, print the
 * result document to `out`. Returns the process exit status (0 on a
 * completed run — even a failing one). Exposed on streams so the test
 * binary can dispatch `--worker-cell` through its own main() and the
 * fork/exec tests can use `/proc/self/exe` as the worker image.
 */
int workerCellMain(std::istream &in, std::ostream &out);

} // namespace edge::super

#endif // EDGE_SUPER_WORKER_HH
