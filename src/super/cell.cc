#include "super/cell.hh"

#include "common/hash.hh"
#include "triage/program_json.hh"
#include "triage/result_json.hh"

namespace edge::super {

using triage::JsonValue;

std::uint64_t
cellHash(const CellSpec &cell)
{
    std::uint64_t phash = cell.programHash;
    if (phash == 0)
        phash = triage::programHash(triage::buildProgram(cell.program));

    // FNV-1a over (program hash, canonical config JSON, budget). The
    // config is hashed through its serialized form so every field —
    // including the run seed and the chaos schedule parameters —
    // participates without a hand-maintained field list.
    Fnv1a f;
    f.mix64(phash);
    f.mix(triage::configToJson(cell.config).dumpCompact());
    f.mix64(cell.maxCycles);
    return f.state;
}

JsonValue
cellToJson(const CellSpec &cell)
{
    JsonValue root = JsonValue::object();
    root.set("format", JsonValue::str("edgesim-cell"));
    root.set("version", JsonValue::u64(1));

    JsonValue prog = JsonValue::object();
    prog.set("kernel", JsonValue::str(cell.program.kernel));
    prog.set("iterations",
             JsonValue::u64(cell.program.params.iterations));
    prog.set("seed", JsonValue::u64(cell.program.params.seed));
    if (cell.program.hasEmbedded)
        prog.set("embedded", triage::programToJson(cell.program.embedded));
    root.set("program", std::move(prog));

    root.set("config", triage::configToJson(cell.config));
    root.set("max_cycles", JsonValue::u64(cell.maxCycles));
    if (!cell.testCrash.empty())
        root.set("test_crash", JsonValue::str(cell.testCrash));
    return root;
}

bool
cellFromJson(const JsonValue &root, CellSpec *cell, std::string *err)
{
    if (!root.isObject() ||
        root.getString("format") != "edgesim-cell") {
        if (err)
            *err = "not an edgesim-cell document";
        return false;
    }
    const JsonValue *prog = root.get("program");
    if (!prog || !prog->isObject()) {
        if (err)
            *err = "missing program";
        return false;
    }
    cell->program.kernel = prog->getString("kernel");
    cell->program.params.iterations =
        prog->getU64("iterations", cell->program.params.iterations);
    cell->program.params.seed =
        prog->getU64("seed", cell->program.params.seed);
    cell->program.hasEmbedded = false;
    if (const JsonValue *embedded = prog->get("embedded")) {
        if (!triage::programFromJson(*embedded,
                                     &cell->program.embedded, err))
            return false;
        cell->program.hasEmbedded = true;
    }
    if (!cell->program.hasEmbedded && cell->program.kernel.empty()) {
        if (err)
            *err = "program has neither kernel nor embedded body";
        return false;
    }

    if (const JsonValue *cfg = root.get("config"))
        triage::configFromJson(*cfg, &cell->config);
    cell->maxCycles = root.getU64("max_cycles", cell->maxCycles);
    cell->testCrash = root.getString("test_crash");
    return true;
}

} // namespace edge::super
