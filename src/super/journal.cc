#include "super/journal.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/build_info.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "triage/result_json.hh"

namespace edge::super {

using triage::JsonValue;

namespace {

JsonValue
recordToJson(const JournalRecord &rec)
{
    JsonValue o = JsonValue::object();
    o.set("cell", JsonValue::u64(rec.cell));
    o.set("final", JsonValue::boolean(rec.final));
    if (!rec.reproPath.empty())
        o.set("repro", JsonValue::str(rec.reproPath));
    if (!rec.agent.empty())
        o.set("agent", JsonValue::str(rec.agent));
    if (rec.lease != 0)
        o.set("lease", JsonValue::u64(rec.lease));
    if (rec.attempt > 1)
        o.set("attempt", JsonValue::u64(rec.attempt));
    o.set("result", triage::resultToJson(rec.result));
    // The checksum covers the serialized record exactly as written
    // above — computed last, verified by stripping it again on load.
    o.set("crc", JsonValue::u64(fnv1a64(o.dumpCompact())));
    return o;
}

/**
 * Verify a record's `crc` against the rest of the record. Records
 * without one (older builds) pass vacuously.
 */
bool
checksumOk(const JsonValue &o)
{
    const JsonValue *crc = o.get("crc");
    if (!crc)
        return true;
    JsonValue body = o;
    body.remove("crc");
    return crc->asU64() == fnv1a64(body.dumpCompact());
}

bool
recordFromJson(const JsonValue &o, JournalRecord *rec,
               std::string *err)
{
    if (!o.isObject() || !o.get("cell") || !o.get("result")) {
        if (err)
            *err = "journal record missing cell/result";
        return false;
    }
    rec->cell = o.getU64("cell");
    rec->final = o.getBool("final", true);
    rec->reproPath = o.getString("repro");
    rec->agent = o.getString("agent");
    rec->lease = o.getU64("lease");
    rec->attempt = static_cast<unsigned>(o.getU64("attempt", 1));
    return triage::resultFromJson(*o.get("result"), &rec->result, err);
}

} // namespace

bool
Journal::load(const std::string &path, std::vector<JournalRecord> *out,
              std::string *build_line, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "journal '" + path + "': cannot open";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    out->clear();
    if (build_line)
        build_line->clear();

    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        const bool lastAndUnterminated = nl == std::string::npos;
        std::string line = text.substr(
            pos, lastAndUnterminated ? std::string::npos : nl - pos);
        pos = lastAndUnterminated ? text.size() : nl + 1;
        ++lineno;
        if (line.empty())
            continue;

        JsonValue v;
        std::string perr;
        if (!JsonValue::parse(line, &v, &perr)) {
            // A torn FINAL line is the one legal corruption: an
            // append that died mid-write on a filesystem without the
            // durability guarantees. Everything before it is intact —
            // keep it and move on.
            if (pos >= text.size()) {
                warn("journal '%s': dropping truncated final line "
                     "%zu (%s)",
                     path.c_str(), lineno, perr.c_str());
                break;
            }
            if (err)
                *err = "journal '" + path + "': torn record at line " +
                       std::to_string(lineno) + ": " + perr;
            return false;
        }

        if (lineno == 1) {
            if (v.getString("format") != "edgesim-journal") {
                if (err)
                    *err = "journal '" + path +
                           "': not an edgesim-journal file";
                return false;
            }
            if (build_line)
                *build_line = v.getString("build");
            continue;
        }

        // A parseable record with a bad checksum is bit-level
        // corruption, not a torn append — reject it wherever it
        // sits, final line included.
        if (!checksumOk(v)) {
            if (err)
                *err = "journal '" + path +
                       "': record checksum mismatch at line " +
                       std::to_string(lineno) +
                       " (corrupt record)";
            return false;
        }

        JournalRecord rec;
        std::string rerr;
        if (!recordFromJson(v, &rec, &rerr)) {
            if (pos >= text.size()) {
                warn("journal '%s': dropping malformed final line "
                     "%zu (%s)",
                     path.c_str(), lineno, rerr.c_str());
                break;
            }
            if (err)
                *err = "journal '" + path + "': line " +
                       std::to_string(lineno) + ": " + rerr;
            return false;
        }
        out->push_back(std::move(rec));
    }
    if (lineno == 0) {
        if (err)
            *err = "journal '" + path + "': file is empty";
        return false;
    }
    return true;
}

bool
Journal::open(const std::string &path, std::string *err)
{
    _path = path;
    _loaded.clear();
    _buildLine.clear();
    _content.clear();

    if (std::filesystem::exists(path)) {
        if (!load(path, &_loaded, &_buildLine, err))
            return false;
        if (!_buildLine.empty()) {
            std::string mismatch = buildMismatch(_buildLine);
            if (!mismatch.empty())
                warn("journal '%s': written by a different build "
                     "(%s) — replayed results may not match this "
                     "binary",
                     path.c_str(), mismatch.c_str());
        }
        // Rebuild the canonical content from what survived loading,
        // so the next append also repairs any dropped torn tail.
        JsonValue header = JsonValue::object();
        header.set("format", JsonValue::str("edgesim-journal"));
        header.set("version", JsonValue::u64(1));
        header.set("build", JsonValue::str(_buildLine.empty()
                                               ? buildInfoLine()
                                               : _buildLine));
        _content = header.dumpCompact() + "\n";
        for (const JournalRecord &rec : _loaded)
            _content += recordToJson(rec).dumpCompact() + "\n";
        return true;
    }

    std::error_code ec;
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    JsonValue header = JsonValue::object();
    header.set("format", JsonValue::str("edgesim-journal"));
    header.set("version", JsonValue::u64(1));
    header.set("build", JsonValue::str(buildInfoLine()));
    _buildLine = buildInfoLine();
    _content = header.dumpCompact() + "\n";
    return triage::writeFileDurable(_path, _content, err);
}

std::map<std::uint64_t, const JournalRecord *>
Journal::resumeIndex(const std::vector<JournalRecord> &records)
{
    std::map<std::uint64_t, const JournalRecord *> index;
    for (const JournalRecord &rec : records) {
        if (rec.final)
            index[rec.cell] = &rec;
        else
            index.erase(rec.cell);
    }
    return index;
}

bool
Journal::append(const JournalRecord &rec, std::string *err)
{
    if (_path.empty()) {
        if (err)
            *err = "journal not open";
        return false;
    }
    _content += recordToJson(rec).dumpCompact() + "\n";
    // Whole-file durable rewrite per record: a reader (or a resumed
    // supervisor) sees either the journal without this record or
    // with it complete — never a torn line. Journals are
    // campaign-sized (hundreds of lines), so the O(n) rewrite is
    // noise next to the cells themselves.
    return triage::writeFileDurable(_path, _content, err);
}

} // namespace edge::super
