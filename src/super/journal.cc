#include "super/journal.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/build_info.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/thread_pool.hh"
#include "triage/result_json.hh"

namespace edge::super {

namespace fs = std::filesystem;
using triage::JsonValue;

namespace {

JsonValue
recordToJson(const JournalRecord &rec)
{
    JsonValue o = JsonValue::object();
    o.set("cell", JsonValue::u64(rec.cell));
    o.set("final", JsonValue::boolean(rec.final));
    if (!rec.reproPath.empty())
        o.set("repro", JsonValue::str(rec.reproPath));
    if (!rec.agent.empty())
        o.set("agent", JsonValue::str(rec.agent));
    if (rec.lease != 0)
        o.set("lease", JsonValue::u64(rec.lease));
    if (rec.attempt > 1)
        o.set("attempt", JsonValue::u64(rec.attempt));
    if (!rec.audit.empty())
        o.set("audit", JsonValue::str(rec.audit));
    o.set("result", triage::resultToJson(rec.result));
    // The checksum covers the serialized record exactly as written
    // above — computed last, verified by stripping it again on load.
    o.set("crc", JsonValue::u64(fnv1a64(o.dumpCompact())));
    return o;
}

/**
 * Verify a record's `crc` against the rest of the record. Records
 * without one (older builds) pass vacuously.
 */
bool
checksumOk(const JsonValue &o)
{
    const JsonValue *crc = o.get("crc");
    if (!crc)
        return true;
    JsonValue body = o;
    body.remove("crc");
    return crc->asU64() == fnv1a64(body.dumpCompact());
}

bool
recordFromJson(const JsonValue &o, JournalRecord *rec,
               std::string *err)
{
    if (!o.isObject() || !o.get("cell") || !o.get("result")) {
        if (err)
            *err = "journal record missing cell/result";
        return false;
    }
    rec->cell = o.getU64("cell");
    rec->final = o.getBool("final", true);
    rec->reproPath = o.getString("repro");
    rec->agent = o.getString("agent");
    rec->lease = o.getU64("lease");
    rec->attempt = static_cast<unsigned>(o.getU64("attempt", 1));
    rec->audit = o.getString("audit");
    return triage::resultFromJson(*o.get("result"), &rec->result, err);
}

/** The PR-5 JSONL journal parser, kept verbatim for migration and
 *  for loading journals written by older builds. */
bool
loadLegacy(const std::string &path, std::vector<JournalRecord> *out,
           std::string *build_line, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "journal '" + path + "': cannot open";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    out->clear();
    if (build_line)
        build_line->clear();

    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        const bool lastAndUnterminated = nl == std::string::npos;
        std::string line = text.substr(
            pos, lastAndUnterminated ? std::string::npos : nl - pos);
        pos = lastAndUnterminated ? text.size() : nl + 1;
        ++lineno;
        if (line.empty())
            continue;

        JsonValue v;
        std::string perr;
        if (!JsonValue::parse(line, &v, &perr)) {
            // A torn FINAL line is the one legal corruption: an
            // append that died mid-write on a filesystem without the
            // durability guarantees. Everything before it is intact —
            // keep it and move on.
            if (pos >= text.size()) {
                warn("journal '%s': dropping truncated final line "
                     "%zu (%s)",
                     path.c_str(), lineno, perr.c_str());
                break;
            }
            if (err)
                *err = "journal '" + path + "': torn record at line " +
                       std::to_string(lineno) + ": " + perr;
            return false;
        }

        if (lineno == 1) {
            if (v.getString("format") != "edgesim-journal") {
                if (err)
                    *err = "journal '" + path +
                           "': not an edgesim-journal file";
                return false;
            }
            if (build_line)
                *build_line = v.getString("build");
            continue;
        }

        // A parseable record with a bad checksum is bit-level
        // corruption, not a torn append — reject it wherever it
        // sits, final line included.
        if (!checksumOk(v)) {
            if (err)
                *err = "journal '" + path +
                       "': record checksum mismatch at line " +
                       std::to_string(lineno) +
                       " (corrupt record)";
            return false;
        }

        JournalRecord rec;
        std::string rerr;
        if (!recordFromJson(v, &rec, &rerr)) {
            if (pos >= text.size()) {
                warn("journal '%s': dropping malformed final line "
                     "%zu (%s)",
                     path.c_str(), lineno, rerr.c_str());
                break;
            }
            if (err)
                *err = "journal '" + path + "': line " +
                       std::to_string(lineno) + ": " + rerr;
            return false;
        }
        out->push_back(std::move(rec));
    }
    if (lineno == 0) {
        if (err)
            *err = "journal '" + path + "': file is empty";
        return false;
    }
    return true;
}

/**
 * Decode raw log records into JournalRecords with redo workers
 * partitioned by cell-identity hash: worker w decodes exactly the
 * records with cell % workers == w, each into its original slot, so
 * the merged order — and therefore last-record-wins resolution — is
 * byte-identical at any worker count.
 */
bool
decodeRaw(const std::string &path, const std::vector<log::RawRecord> &raw,
          unsigned threads, std::vector<JournalRecord> *out,
          std::string *err)
{
    out->assign(raw.size(), JournalRecord{});
    unsigned workers = threads == 0 ? ThreadPool::defaultThreads()
                                    : threads;
    workers = std::max<unsigned>(
        1, std::min<unsigned>(workers,
                              raw.empty() ? 1
                                          : static_cast<unsigned>(
                                                raw.size())));

    // Deterministic error reporting: each worker remembers the
    // lowest-LSN failure it saw; the overall lowest wins.
    std::vector<std::pair<std::uint64_t, std::string>> errs(
        workers, {~0ull, ""});
    auto decodePartition = [&](std::size_t w) -> int {
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i].cell % workers != w)
                continue;
            const std::uint64_t lsn = raw[i].lsn;
            if (lsn >= errs[w].first)
                continue;
            JsonValue v;
            std::string perr;
            if (!JsonValue::parse(raw[i].payload, &v, &perr)) {
                errs[w] = {lsn, strfmt("journal '%s': record at lsn "
                                       "%llu is not valid JSON: %s",
                                       path.c_str(),
                                       (unsigned long long)lsn,
                                       perr.c_str())};
                continue;
            }
            if (!checksumOk(v)) {
                errs[w] = {lsn, strfmt("journal '%s': record checksum "
                                       "mismatch at lsn %llu (corrupt "
                                       "record)",
                                       path.c_str(),
                                       (unsigned long long)lsn)};
                continue;
            }
            JournalRecord rec;
            std::string rerr;
            if (!recordFromJson(v, &rec, &rerr)) {
                errs[w] = {lsn, strfmt("journal '%s': record at lsn "
                                       "%llu: %s",
                                       path.c_str(),
                                       (unsigned long long)lsn,
                                       rerr.c_str())};
                continue;
            }
            (*out)[i] = std::move(rec);
        }
        return 0;
    };

    if (workers <= 1) {
        decodePartition(0);
    } else {
        ThreadPool pool(workers);
        parallelIndex(pool, workers, decodePartition);
    }

    std::pair<std::uint64_t, std::string> first{~0ull, ""};
    for (const auto &e : errs)
        if (e.first < first.first)
            first = e;
    if (!first.second.empty()) {
        if (err)
            *err = first.second;
        return false;
    }
    return true;
}

/** Read a legacy journal's header build line without a full parse. */
std::string
legacyBuildLine(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line))
        return "";
    JsonValue v;
    std::string perr;
    if (!JsonValue::parse(line, &v, &perr))
        return "";
    if (v.getString("format") != "edgesim-journal")
        return "";
    return v.getString("build");
}

bool
hasSegments(const std::string &dir)
{
    return fs::exists(fs::path(dir) / log::segmentFileName(1));
}

void
announceRecovery(const std::string &path, const log::ReplayStats &st,
                 const std::vector<JournalRecord> &records)
{
    std::set<std::uint64_t> cells;
    for (const JournalRecord &rec : records)
        cells.insert(rec.cell);
    const std::size_t final = Journal::resumeIndex(records).size();
    std::fprintf(stderr,
                 "resume: scanned %llu record(s) in %llu block(s) "
                 "across %zu segment(s) (%.1f KiB) in %.0f ms with %u "
                 "worker(s)\n",
                 (unsigned long long)st.records,
                 (unsigned long long)st.blocks, st.segments,
                 st.bytes / 1024.0, st.scanMillis, st.workers);
    std::fprintf(stderr,
                 "resume: %zu cell(s) recovered final, %zu will "
                 "re-execute, %llu torn record(s) rejected\n",
                 final, cells.size() - final,
                 (unsigned long long)st.tornRecords);
    std::fflush(stderr);
}

JsonValue
recoveryMeta(const log::ReplayStats &st,
             const std::vector<JournalRecord> &records)
{
    std::set<std::uint64_t> cells;
    for (const JournalRecord &rec : records)
        cells.insert(rec.cell);
    const std::size_t final = Journal::resumeIndex(records).size();
    JsonValue o = JsonValue::object();
    o.set("meta", JsonValue::str("resume"));
    o.set("build", JsonValue::str(buildInfoLine()));
    o.set("records", JsonValue::u64(st.records));
    o.set("blocks", JsonValue::u64(st.blocks));
    o.set("segments", JsonValue::u64(st.segments));
    o.set("torn_records", JsonValue::u64(st.tornRecords));
    o.set("torn_bytes", JsonValue::u64(st.tornBytes));
    o.set("workers", JsonValue::u64(st.workers));
    o.set("cells_final", JsonValue::u64(final));
    o.set("cells_reexecute", JsonValue::u64(cells.size() - final));
    return o;
}

} // namespace

bool
Journal::load(const std::string &path, std::vector<JournalRecord> *out,
              std::string *build_line, std::string *err)
{
    return load(path, 1, out, build_line, nullptr, err);
}

bool
Journal::load(const std::string &path, unsigned threads,
              std::vector<JournalRecord> *out, std::string *build_line,
              log::ReplayStats *stats, std::string *err)
{
    if (fs::is_directory(path)) {
        std::vector<log::RawRecord> raw;
        if (!log::ResultLog::scan(path, threads, &raw, build_line,
                                  stats, err))
            return false;
        if (stats && stats->tornBytes > 0)
            warn("journal '%s': dropping torn tail (%llu byte(s), "
                 "%llu record(s))",
                 path.c_str(), (unsigned long long)stats->tornBytes,
                 (unsigned long long)stats->tornRecords);
        return decodeRaw(path, raw, threads, out, err);
    }
    if (!loadLegacy(path, out, build_line, err))
        return false;
    if (stats) {
        *stats = log::ReplayStats{};
        stats->segments = 1;
        stats->records = out->size();
        stats->workers = 1;
    }
    return true;
}

bool
Journal::open(const std::string &path, std::string *err)
{
    return open(path, JournalSetup{}, err);
}

bool
Journal::migrateLegacy(const std::string &file, const JournalSetup &setup,
                       std::string *err)
{
    std::vector<JournalRecord> records;
    std::string legacyLine;
    if (!loadLegacy(file, &records, &legacyLine, err))
        return false;

    // Keep the original as a backup. The rename also makes the
    // migration idempotent: a crash before the re-append finishes
    // leaves an empty/absent directory next to the .v1 file, and the
    // next open retries from the backup.
    const std::string backup = _path + ".v1";
    if (file != backup) {
        std::error_code ec;
        fs::rename(file, backup, ec);
        if (ec) {
            if (err)
                *err = "journal '" + _path +
                       "': cannot move legacy journal aside (" +
                       ec.message() + ")";
            return false;
        }
    }

    const std::string build =
        legacyLine.empty() ? buildInfoLine() : legacyLine;
    std::error_code ec;
    fs::remove_all(_path, ec); // a half-migrated directory, if any
    if (!_log.open(_path, build, setup.log, setup.resumeThreads, err))
        return false;
    for (const JournalRecord &rec : records)
        _log.append(rec.cell, recordToJson(rec).dumpCompact());
    if (!_log.flush()) {
        if (err)
            *err = "journal '" + _path + "': migration flush failed: " +
                   _log.error();
        return false;
    }
    warn("journal '%s': migrated legacy JSONL journal (%zu record(s); "
         "original kept at %s)",
         _path.c_str(), records.size(), backup.c_str());
    _loaded = std::move(records);
    _buildLine = build;
    return true;
}

bool
Journal::open(const std::string &path, const JournalSetup &setup,
              std::string *err)
{
    _path = path;
    _loaded.clear();
    _buildLine.clear();
    _lastLsn = 0;
    _recovery = log::ReplayStats{};

    if (fs::is_regular_file(path)) {
        if (!migrateLegacy(path, setup, err))
            return false;
    } else if ((!fs::exists(path) ||
                (fs::is_directory(path) && !hasSegments(path))) &&
               fs::is_regular_file(path + ".v1")) {
        // An interrupted migration: redo it from the backup.
        if (!migrateLegacy(path + ".v1", setup, err))
            return false;
    } else {
        if (!_log.open(path, buildInfoLine(), setup.log,
                       setup.resumeThreads, err))
            return false;
        _recovery = _log.recoveryStats();
        _buildLine = _log.buildLine().empty() ? buildInfoLine()
                                              : _log.buildLine();
        if (_recovery.tornBytes > 0)
            warn("journal '%s': dropped torn tail (%llu byte(s), "
                 "%llu record(s)) left by the crash",
                 path.c_str(), (unsigned long long)_recovery.tornBytes,
                 (unsigned long long)_recovery.tornRecords);
        if (!decodeRaw(path, _log.loaded(), setup.resumeThreads,
                       &_loaded, err))
            return false;
    }

    if (!_buildLine.empty()) {
        std::string mismatch = buildMismatch(_buildLine);
        if (!mismatch.empty())
            warn("journal '%s': written by a different build "
                 "(%s) — replayed results may not match this "
                 "binary",
                 path.c_str(), mismatch.c_str());
    }

    if (setup.announceResume) {
        announceRecovery(path, _recovery, _loaded);
        // Stamp the recovery stats into the resumed log's header
        // stream so the session's provenance records what was
        // recovered and how.
        _log.appendMeta(recoveryMeta(_recovery, _loaded).dumpCompact());
    }
    return true;
}

std::map<std::uint64_t, const JournalRecord *>
Journal::resumeIndex(const std::vector<JournalRecord> &records)
{
    std::map<std::uint64_t, const JournalRecord *> index;
    for (const JournalRecord &rec : records) {
        if (rec.final)
            index[rec.cell] = &rec;
        else
            index.erase(rec.cell);
    }
    return index;
}

bool
Journal::append(const JournalRecord &rec, std::string *err)
{
    if (_path.empty()) {
        if (err)
            *err = "journal not open";
        return false;
    }
    std::uint64_t lsn = _log.append(rec.cell,
                                    recordToJson(rec).dumpCompact());
    if (lsn == 0) {
        if (err) {
            std::string lerr = _log.error();
            *err = lerr.empty() ? "journal log not accepting appends"
                                : lerr;
        }
        return false;
    }
    _lastLsn = lsn;
    return true;
}

bool
Journal::flush(std::string *err)
{
    if (_path.empty() || !_log.isOpen())
        return true;
    if (!_log.flush()) {
        if (err) {
            std::string lerr = _log.error();
            *err = lerr.empty() ? "journal flush failed" : lerr;
        }
        return false;
    }
    return true;
}

bool
Journal::provenanceMismatch(const std::string &path, std::string *desc)
{
    std::string line;
    if (fs::is_directory(path)) {
        std::string err;
        if (!log::ResultLog::readBuildLine(path, &line, &err))
            return false;
    } else if (fs::is_regular_file(path)) {
        line = legacyBuildLine(path);
    } else {
        return false;
    }
    if (line.empty())
        return false;
    std::string m = buildMismatch(line);
    if (m.empty())
        return false;
    if (desc)
        *desc = m;
    return true;
}

} // namespace edge::super
