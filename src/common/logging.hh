/**
 * @file
 * gem5-style status and error reporting. panic() is for simulator
 * bugs (aborts, so invariant violations are loud in tests); fatal()
 * is for user/configuration errors; warn()/inform() never stop the
 * simulation.
 */

#ifndef EDGE_COMMON_LOGGING_HH
#define EDGE_COMMON_LOGGING_HH

#include <string>

namespace edge {

/** Verbosity levels for inform()/debugLog(). */
enum class LogLevel { Silent, Normal, Verbose, Debug };

/** Process-wide verbosity; defaults to Normal. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail
} // namespace edge

/** Unrecoverable simulator bug: print and abort(). */
#define panic(...) \
    ::edge::detail::panicImpl(__FILE__, __LINE__, ::edge::strfmt(__VA_ARGS__))

/** Unrecoverable user error (bad config): print and exit(1). */
#define fatal(...) \
    ::edge::detail::fatalImpl(__FILE__, __LINE__, ::edge::strfmt(__VA_ARGS__))

/** panic() unless the given invariant holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond) {                                                          \
            panic(__VA_ARGS__);                                              \
        }                                                                    \
    } while (0)

/** fatal() if the given user-facing precondition is violated. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond) {                                                          \
            fatal(__VA_ARGS__);                                              \
        }                                                                    \
    } while (0)

#define warn(...) ::edge::detail::warnImpl(::edge::strfmt(__VA_ARGS__))
#define inform(...) ::edge::detail::informImpl(::edge::strfmt(__VA_ARGS__))
#define debug_log(...) ::edge::detail::debugImpl(::edge::strfmt(__VA_ARGS__))

#include "common/strutil.hh"

#endif // EDGE_COMMON_LOGGING_HH
