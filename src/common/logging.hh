/**
 * @file
 * gem5-style status and error reporting. panic() is for simulator
 * bugs: it prints the message and throws a SimFailure, which the
 * timing run loop (Processor::run) catches and converts into a
 * structured, diagnosable failure report; outside a run loop the
 * exception escapes to std::terminate, so misuse is still loud in
 * tests. fatal() is for user/configuration errors; warn()/inform()
 * never stop the simulation.
 */

#ifndef EDGE_COMMON_LOGGING_HH
#define EDGE_COMMON_LOGGING_HH

#include <stdexcept>
#include <string>

namespace edge {

/**
 * The exception panic() throws (after printing to stderr) instead of
 * calling std::abort(). Thrown through the timing run loop and caught
 * at the Processor::run() boundary, where it becomes a
 * chaos::SimError. No code path outside fatal() terminates the
 * process directly.
 */
class SimFailure : public std::runtime_error
{
  public:
    SimFailure(const std::string &msg, const char *file, int line)
        : std::runtime_error(msg), _file(file), _line(line)
    {
    }

    const char *file() const { return _file; }
    int line() const { return _line; }

  private:
    const char *_file;
    int _line;
};

/** Verbosity levels for inform()/debugLog(). */
enum class LogLevel { Silent, Normal, Verbose, Debug };

/** Process-wide verbosity; defaults to Normal. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail
} // namespace edge

/** Simulator bug: print and throw SimFailure (see file header). */
#define panic(...) \
    ::edge::detail::panicImpl(__FILE__, __LINE__, ::edge::strfmt(__VA_ARGS__))

/** Unrecoverable user error (bad config): print and exit(1). */
#define fatal(...) \
    ::edge::detail::fatalImpl(__FILE__, __LINE__, ::edge::strfmt(__VA_ARGS__))

/** panic() unless the given invariant holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond) {                                                          \
            panic(__VA_ARGS__);                                              \
        }                                                                    \
    } while (0)

/** fatal() if the given user-facing precondition is violated. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond) {                                                          \
            fatal(__VA_ARGS__);                                              \
        }                                                                    \
    } while (0)

#define warn(...) ::edge::detail::warnImpl(::edge::strfmt(__VA_ARGS__))
#define inform(...) ::edge::detail::informImpl(::edge::strfmt(__VA_ARGS__))
#define debug_log(...) ::edge::detail::debugImpl(::edge::strfmt(__VA_ARGS__))

#include "common/strutil.hh"

#endif // EDGE_COMMON_LOGGING_HH
