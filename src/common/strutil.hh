/**
 * @file
 * Small string helpers: printf-style formatting into std::string and
 * a few parsing/joining utilities used by stats dumping and the
 * bench harnesses.
 */

#ifndef EDGE_COMMON_STRUTIL_HH
#define EDGE_COMMON_STRUTIL_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace edge {

/** printf into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list ap);

/** Join the given pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &sep);

/** Split on a single-character separator (no empty-tail trimming). */
std::vector<std::string> split(const std::string &s, char sep);

/** Left-pad (right-align) a string to the given width with spaces. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad (left-align) a string to the given width with spaces. */
std::string padRight(const std::string &s, std::size_t width);

} // namespace edge

#endif // EDGE_COMMON_STRUTIL_HH
