/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats. A
 * StatSet owns named scalars, ratios and histograms; every simulator
 * component registers its counters into the set it is given, and the
 * driver dumps the whole set at end of run.
 */

#ifndef EDGE_COMMON_STATS_HH
#define EDGE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace edge {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }
    void reset() { _value = 0; }

    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Power-of-two bucketed histogram. Bucket i counts samples in
 * [2^(i-1), 2^i) with bucket 0 holding exactly-zero samples and
 * bucket 1 holding sample value 1.
 */
class Histogram
{
  public:
    void sample(std::uint64_t v, std::uint64_t count = 1);
    void reset();

    /**
     * Overwrite this histogram with a previously captured snapshot
     * (buckets + aggregate moments). Exists for the supervised-
     * campaign path, where a worker process serializes its
     * RunResult::histograms over a pipe and the supervisor must
     * reconstruct them bit-identically — resampling representative
     * values would reproduce the buckets but not sum() / maxValue().
     */
    void restore(std::vector<std::uint64_t> buckets,
                 std::uint64_t samples, std::uint64_t sum,
                 std::uint64_t max);

    std::uint64_t samples() const { return _samples; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t maxValue() const { return _max; }
    double mean() const;

    /** Buckets, from bucket 0 up to the highest non-empty one. */
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    /** Smallest v such that at least frac of samples are <= v. */
    std::uint64_t approxPercentile(double frac) const;

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _max = 0;
};

/**
 * A named collection of statistics. Components hold references to
 * Counter/Histogram objects they registered; the set owns storage so
 * addresses stay stable for the component's lifetime.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name = "stats");

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Register and return a named counter. Names must be unique. */
    Counter &counter(const std::string &name, const std::string &desc);

    /** Register and return a named histogram. */
    Histogram &histogram(const std::string &name, const std::string &desc);

    /** Zero every registered statistic. */
    void resetAll();

    /** Value of a registered counter (panics if absent). */
    std::uint64_t counterValue(const std::string &name) const;

    /** True if the named counter exists. */
    bool hasCounter(const std::string &name) const;

    /** The histogram with the given name (panics if absent). */
    const Histogram &histogramRef(const std::string &name) const;

    /** Names of all counters, sorted. */
    std::vector<std::string> counterNames() const;

    /** Names of all histograms, sorted. */
    std::vector<std::string> histogramNames() const;

    /** Multi-line human-readable dump of every statistic. */
    std::string dump() const;

    const std::string &name() const { return _name; }

  private:
    struct NamedCounter
    {
        std::string desc;
        Counter counter;
    };
    struct NamedHistogram
    {
        std::string desc;
        Histogram histogram;
    };

    std::string _name;
    std::map<std::string, NamedCounter> _counters;
    std::map<std::string, NamedHistogram> _histograms;
};

} // namespace edge

#endif // EDGE_COMMON_STATS_HH
