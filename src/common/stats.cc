#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edge {

namespace {

/** Bucket index for the power-of-two histogram. */
std::size_t
bucketOf(std::uint64_t v)
{
    if (v == 0)
        return 0;
    std::size_t b = 1;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

/** Upper bound (inclusive) of bucket i. */
std::uint64_t
bucketHigh(std::size_t i)
{
    if (i == 0)
        return 0;
    return (std::uint64_t{1} << (i - 1));
}

} // namespace

void
Histogram::sample(std::uint64_t v, std::uint64_t count)
{
    std::size_t b = bucketOf(v);
    if (b >= _buckets.size())
        _buckets.resize(b + 1, 0);
    _buckets[b] += count;
    _samples += count;
    _sum += v * count;
    _max = std::max(_max, v);
}

void
Histogram::reset()
{
    _buckets.clear();
    _samples = 0;
    _sum = 0;
    _max = 0;
}

void
Histogram::restore(std::vector<std::uint64_t> buckets,
                   std::uint64_t samples, std::uint64_t sum,
                   std::uint64_t max)
{
    _buckets = std::move(buckets);
    _samples = samples;
    _sum = sum;
    _max = max;
}

double
Histogram::mean() const
{
    if (_samples == 0)
        return 0.0;
    return static_cast<double>(_sum) / static_cast<double>(_samples);
}

std::uint64_t
Histogram::approxPercentile(double frac) const
{
    if (_samples == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(frac * static_cast<double>(_samples));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        seen += _buckets[i];
        if (seen >= target)
            return bucketHigh(i);
    }
    return _max;
}

StatSet::StatSet(std::string name) : _name(std::move(name))
{
}

Counter &
StatSet::counter(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = _counters.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.counter;
}

Histogram &
StatSet::histogram(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = _histograms.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return it->second.histogram;
}

void
StatSet::resetAll()
{
    for (auto &kv : _counters)
        kv.second.counter.reset();
    for (auto &kv : _histograms)
        kv.second.histogram.reset();
}

std::uint64_t
StatSet::counterValue(const std::string &name) const
{
    auto it = _counters.find(name);
    panic_if(it == _counters.end(), "no counter named '%s' in stat set %s",
             name.c_str(), _name.c_str());
    return it->second.counter.value();
}

bool
StatSet::hasCounter(const std::string &name) const
{
    return _counters.count(name) != 0;
}

const Histogram &
StatSet::histogramRef(const std::string &name) const
{
    auto it = _histograms.find(name);
    panic_if(it == _histograms.end(),
             "no histogram named '%s' in stat set %s", name.c_str(),
             _name.c_str());
    return it->second.histogram;
}

std::vector<std::string>
StatSet::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(_counters.size());
    for (const auto &kv : _counters)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatSet::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(_histograms.size());
    for (const auto &kv : _histograms)
        names.push_back(kv.first);
    return names;
}

std::string
StatSet::dump() const
{
    std::string out;
    out += strfmt("---------- %s ----------\n", _name.c_str());
    for (const auto &kv : _counters) {
        out += strfmt("%-44s %14llu  # %s\n", kv.first.c_str(),
                      static_cast<unsigned long long>(
                          kv.second.counter.value()),
                      kv.second.desc.c_str());
    }
    for (const auto &kv : _histograms) {
        const Histogram &h = kv.second.histogram;
        out += strfmt("%-44s n=%llu mean=%.2f max=%llu  # %s\n",
                      kv.first.c_str(),
                      static_cast<unsigned long long>(h.samples()), h.mean(),
                      static_cast<unsigned long long>(h.maxValue()),
                      kv.second.desc.c_str());
    }
    return out;
}

} // namespace edge
