/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64). Every
 * stochastic decision in the simulator and the workload generators
 * draws from an explicitly seeded Rng so runs are reproducible
 * bit-for-bit.
 */

#ifndef EDGE_COMMON_RNG_HH
#define EDGE_COMMON_RNG_HH

#include <cstdint>

namespace edge {

/**
 * SplitMix64: tiny, fast, well-distributed, and seedable. There is
 * deliberately no default seed: every user must thread an explicit
 * run-level seed (MachineConfig::rngSeed, wl::KernelParams::seed,
 * chaos::ChaosParams::seed) so any run is replayable from the seeds
 * reported in sim::RunResult.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

} // namespace edge

#endif // EDGE_COMMON_RNG_HH
