/**
 * @file
 * FNV-1a 64-bit, the one content hash the project uses everywhere a
 * stable identity is needed: program content hashes, campaign cell
 * identity, and journal record checksums. Header-only so the leaf
 * libraries (triage, super, serve) share one definition instead of
 * three hand-copied constants.
 */

#ifndef EDGE_COMMON_HASH_HH
#define EDGE_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace edge {

/** Incremental FNV-1a 64-bit hasher (classic offset basis / prime). */
struct Fnv1a
{
    std::uint64_t state = 0xcbf29ce484222325ULL;

    void
    mix(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 0x100000001b3ULL;
        }
    }

    void mix(const std::string &s) { mix(s.data(), s.size()); }

    void
    mix64(std::uint64_t v)
    {
        mix(&v, sizeof(v));
    }
};

/** One-shot FNV-1a of a byte string. */
inline std::uint64_t
fnv1a64(const std::string &s)
{
    Fnv1a f;
    f.mix(s);
    return f.state;
}

} // namespace edge

#endif // EDGE_COMMON_HASH_HH
