/**
 * @file
 * A chunked bump arena for per-Processor block bookkeeping. The
 * cycle-loop hot path used to heap-allocate a slot-index vector per
 * fetched block (thousands per run); the arena replaces that churn
 * with pointer bumps into chunks that live as long as the Processor.
 *
 * Lifetime rules (see DESIGN.md "Event-driven cycle engine"):
 *  - allocations are never freed individually; reset() rewinds the
 *    whole arena and retains its chunks for reuse;
 *  - frame-keyed state (BlockCtx::localIdx) must NOT be carved per
 *    block, because frames free out of order (a flush releases the
 *    youngest frames while commit releases the oldest). Allocate a
 *    fixed region per frame once and reuse it as the frame recycles.
 */

#ifndef EDGE_COMMON_ARENA_HH
#define EDGE_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace edge {

class Arena
{
  public:
    explicit Arena(std::size_t chunk_bytes = 64 * 1024)
        : _chunkBytes(chunk_bytes == 0 ? 64 * 1024 : chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate `bytes` with the given alignment. */
    void *
    alloc(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        panic_if(align == 0 || (align & (align - 1)) != 0,
                 "arena alignment %zu is not a power of two", align);
        if (bytes == 0)
            bytes = 1;
        while (true) {
            if (_chunkIdx < _chunks.size()) {
                Chunk &c = _chunks[_chunkIdx];
                // Align the absolute address, not the chunk-relative
                // offset: chunk storage is only max_align_t-aligned.
                auto base =
                    reinterpret_cast<std::uintptr_t>(c.data.get());
                std::size_t at =
                    ((base + _offset + align - 1) & ~(align - 1)) -
                    base;
                if (at + bytes <= c.size) {
                    _offset = at + bytes;
                    _used += bytes;
                    return c.data.get() + at;
                }
                // This chunk is full: fall through to the next one.
                ++_chunkIdx;
                _offset = 0;
                continue;
            }
            std::size_t sz = std::max(_chunkBytes, bytes + align);
            _chunks.push_back(
                Chunk{std::make_unique<std::byte[]>(sz), sz});
            _reserved += sz;
        }
    }

    /** Typed array allocation (elements are NOT constructed). */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        return static_cast<T *>(alloc(n * sizeof(T), alignof(T)));
    }

    /** Rewind every allocation; chunks are retained for reuse. */
    void
    reset()
    {
        _chunkIdx = 0;
        _offset = 0;
        _used = 0;
    }

    std::size_t bytesUsed() const { return _used; }
    std::size_t bytesReserved() const { return _reserved; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size;
    };

    std::vector<Chunk> _chunks;
    std::size_t _chunkIdx = 0;
    std::size_t _offset = 0;   ///< next free byte within _chunkIdx
    std::size_t _chunkBytes;
    std::size_t _used = 0;
    std::size_t _reserved = 0;
};

} // namespace edge

#endif // EDGE_COMMON_ARENA_HH
