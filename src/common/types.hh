/**
 * @file
 * Fundamental scalar types shared by every module of the EDGE
 * simulator. Keeping these in one header makes intent explicit at use
 * sites (a Cycle is not an Addr) without paying for full strong types.
 */

#ifndef EDGE_COMMON_TYPES_HH
#define EDGE_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace edge {

/** Simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated (flat, 64-bit) address space. */
using Addr = std::uint64_t;

/** The architectural word: every dataflow operand is 64 bits wide. */
using Word = std::uint64_t;

/** Signed view of a Word, for arithmetic that must sign-extend. */
using SWord = std::int64_t;

/** Identifies a static block (an index into the Program). */
using BlockId = std::uint32_t;

/**
 * Identifies a dynamic block instance. Strictly increasing over a run;
 * never reused, even across flushes, so messages from flushed blocks
 * can always be recognised as stale.
 */
using DynBlockSeq = std::uint64_t;

/** Load/store sequence id within one block (program order of mem ops). */
using Lsid = std::uint16_t;

/** An instruction slot index within a block (0..kMaxBlockInsts-1). */
using SlotId = std::uint16_t;

/** Invalid-value sentinels. */
inline constexpr BlockId kInvalidBlock = ~BlockId{0};
inline constexpr DynBlockSeq kInvalidSeq = ~DynBlockSeq{0};
inline constexpr SlotId kInvalidSlot = ~SlotId{0};

/** Number of bytes in an architectural word. */
inline constexpr unsigned kWordBytes = 8;

/**
 * Speculation state of a value travelling the dataflow graph under
 * the DSRE protocol. Spec values may still change (a speculative
 * wave); Final values are part of the commit wave and are sticky: a
 * producer never downgrades a consumer from Final back to Spec.
 */
enum class ValState : std::uint8_t { Spec, Final };

/** Combine operand states: a result is Final only if all inputs are. */
inline ValState
andState(ValState a, ValState b)
{
    return (a == ValState::Final && b == ValState::Final)
               ? ValState::Final
               : ValState::Spec;
}

/** Reinterpret a Word as an IEEE double (for FP opcodes). */
double wordToDouble(Word w);

/** Reinterpret an IEEE double as a Word. */
Word doubleToWord(double d);

} // namespace edge

#include <cstring>

namespace edge {

inline double
wordToDouble(Word w)
{
    double d;
    std::memcpy(&d, &w, sizeof(d));
    return d;
}

inline Word
doubleToWord(double d)
{
    Word w;
    std::memcpy(&w, &d, sizeof(w));
    return w;
}

} // namespace edge

#endif // EDGE_COMMON_TYPES_HH
