/**
 * @file
 * Build provenance, stamped at configure time. Journals, repro files
 * and `edgesim --version` all carry this record so a capture replayed
 * on a *different* build (other git revision, build type, or
 * sanitizer mix) is detected and warned about instead of silently
 * producing a non-reproducing replay.
 */

#ifndef EDGE_COMMON_BUILD_INFO_HH
#define EDGE_COMMON_BUILD_INFO_HH

#include <string>

namespace edge {

struct BuildInfo
{
    /** `git rev-parse HEAD` at configure time ("unknown" outside a
     *  checkout); a `-dirty` suffix marks uncommitted changes. */
    std::string gitHash;
    std::string buildType;  ///< CMAKE_BUILD_TYPE
    std::string sanitizer;  ///< EDGE_SANITIZE value (e.g. "OFF")
    bool mutations = false; ///< EDGE_MUTATIONS hooks compiled in
};

/** The provenance of the running binary. */
const BuildInfo &buildInfo();

/** One-line form: "git=<hash> build=<type> sanitize=<s> mutations=<b>". */
std::string buildInfoLine();

/**
 * Compare a recorded provenance line against the running binary's;
 * returns "" when they match, else a human-readable description of
 * the mismatch for the replay-time warning.
 */
std::string buildMismatch(const std::string &recorded_line);

} // namespace edge

#endif // EDGE_COMMON_BUILD_INFO_HH
