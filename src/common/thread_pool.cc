#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace edge {

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : _numThreads(threads == 0 ? defaultThreads() : threads),
      _capacity(queue_capacity == 0 ? 1 : queue_capacity)
{
    _workers.reserve(_numThreads);
    for (unsigned i = 0; i < _numThreads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _stop = true;
    }
    _notEmpty.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    panic_if(!job, "ThreadPool::submit: empty job");
    {
        std::unique_lock<std::mutex> lock(_mutex);
        panic_if(_stop, "ThreadPool::submit after shutdown");
        _notFull.wait(lock,
                      [this] { return _queue.size() < _capacity; });
        _queue.push_back(std::move(job));
    }
    _notEmpty.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock,
               [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _notEmpty.wait(
                lock, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // _stop and nothing left to run
            job = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        _notFull.notify_one();
        try {
            job();
        } catch (...) {
            // Jobs that must report failures capture their own
            // exceptions (parallelIndex does); a stray throw here
            // must not take the process down.
        }
        {
            std::unique_lock<std::mutex> lock(_mutex);
            --_active;
            if (_queue.empty() && _active == 0)
                _idle.notify_all();
        }
    }
}

} // namespace edge
