#include "common/hostinfo.hh"

#include <cstdio>
#include <cstring>
#include <thread>

#include "common/build_info.hh"

namespace edge {

namespace {

std::string
cpuModelName()
{
    std::FILE *f = std::fopen("/proc/cpuinfo", "r");
    if (!f)
        return "unknown";
    char line[512];
    std::string model = "unknown";
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "model name", 10) != 0)
            continue;
        const char *colon = std::strchr(line, ':');
        if (!colon)
            continue;
        ++colon;
        while (*colon == ' ' || *colon == '\t')
            ++colon;
        model = colon;
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == '\r'))
            model.pop_back();
        break;
    }
    std::fclose(f);
    return model;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

const HostInfo &
hostInfo()
{
    static const HostInfo info = [] {
        HostInfo h;
        h.cpuModel = cpuModelName();
        h.cores = std::thread::hardware_concurrency();
        h.buildType = buildInfo().buildType;
        h.sanitizer = buildInfo().sanitizer;
        return h;
    }();
    return info;
}

std::string
hostInfoJson()
{
    const HostInfo &h = hostInfo();
    std::string out = "{\"cpu_model\": \"" + jsonEscape(h.cpuModel) +
                      "\", \"cores\": " + std::to_string(h.cores) +
                      ", \"build_type\": \"" + jsonEscape(h.buildType) +
                      "\", \"sanitizer\": \"" + jsonEscape(h.sanitizer) +
                      "\"}";
    return out;
}

} // namespace edge
