/**
 * @file
 * Fixed-size worker thread pool with a bounded job queue. The
 * simulator's unit of parallelism is one whole deterministic run
 * (sim::RunPool), so the pool is deliberately simple: submit
 * type-erased jobs, block when the queue is full (backpressure
 * instead of unbounded memory), drain to a barrier. The
 * parallelIndex() helper layers ordered results and exception
 * capture on top: job i's result (or exception) lands in slot i, so
 * output order never depends on the thread schedule.
 */

#ifndef EDGE_COMMON_THREAD_POOL_HH
#define EDGE_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edge {

class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means defaultThreads()
     * @param queue_capacity max queued (not yet running) jobs;
     *        submit() blocks while the queue is at capacity
     */
    explicit ThreadPool(unsigned threads = 0,
                        std::size_t queue_capacity = 1024);

    /** Joins the workers (drains the queue first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** hardware_concurrency, never less than 1. */
    static unsigned defaultThreads();

    unsigned numThreads() const { return _numThreads; }

    /**
     * Enqueue a job; blocks while the queue is full. Exceptions the
     * job throws are swallowed at the worker — use parallelIndex()
     * (or catch inside the job) when failures must reach the caller.
     */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished running. */
    void drain();

  private:
    void workerLoop();

    unsigned _numThreads;
    std::size_t _capacity;

    std::mutex _mutex;
    std::condition_variable _notEmpty; ///< queue gained a job / stop
    std::condition_variable _notFull;  ///< queue has room again
    std::condition_variable _idle;     ///< queue empty and none running
    std::deque<std::function<void()>> _queue;
    std::size_t _active = 0; ///< jobs currently executing
    bool _stop = false;

    std::vector<std::thread> _workers;
};

/**
 * Run fn(i) for every i in [0, n) on the pool and return the results
 * in index order — the caller cannot observe the thread schedule.
 * Exceptions are captured per job; after all jobs finish, the
 * lowest-index one is rethrown (deterministically, regardless of
 * which job failed first in wall-clock time).
 */
template <typename Fn>
auto
parallelIndex(ThreadPool &pool, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using Result = decltype(fn(std::size_t{0}));
    std::vector<Result> results(n);
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
            try {
                results[i] = fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.drain();
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
    return results;
}

} // namespace edge

#endif // EDGE_COMMON_THREAD_POOL_HH
