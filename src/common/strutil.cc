#include "common/strutil.hh"

#include <cstdio>

namespace edge {

std::string
vstrfmt(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n <= 0)
        return std::string();
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

std::string
join(const std::vector<std::string> &pieces, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace edge
