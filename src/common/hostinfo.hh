/**
 * @file
 * Host provenance for benchmark artifacts. BENCH_*.json points are
 * wall-clock measurements, so trajectory files collected on
 * different machines are not directly comparable; stamping the CPU
 * model, core count and build type into every JSON emission lets the
 * diff tooling (bench_throughput --baseline) warn when it is about
 * to compare apples to oranges.
 */

#ifndef EDGE_COMMON_HOSTINFO_HH
#define EDGE_COMMON_HOSTINFO_HH

#include <string>

namespace edge {

struct HostInfo
{
    std::string cpuModel; ///< "model name" from /proc/cpuinfo
    unsigned cores = 0;   ///< hardware_concurrency
    std::string buildType;  ///< CMAKE_BUILD_TYPE of this binary
    std::string sanitizer;  ///< EDGE_SANITIZE of this binary
};

/** The running host's provenance (cached after the first call). */
const HostInfo &hostInfo();

/** JSON object literal: {"cpu_model": ..., "cores": N, ...}. */
std::string hostInfoJson();

} // namespace edge

#endif // EDGE_COMMON_HOSTINFO_HH
