#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace edge {

namespace {
LogLevel gLevel = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Print before throwing: if nothing catches the SimFailure the
    // process dies via std::terminate with the diagnosis already on
    // stderr (this is what the death tests match against).
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw SimFailure(msg, file, line);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (gLevel >= LogLevel::Normal)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gLevel >= LogLevel::Normal)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (gLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail
} // namespace edge
