/**
 * @file
 * Set-associative writeback cache with LRU replacement, a finite
 * MSHR file with miss merging, and banked tag ports, in the
 * timestamp style described in mem_level.hh.
 */

#ifndef EDGE_MEM_CACHE_HH
#define EDGE_MEM_CACHE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_level.hh"

namespace edge::mem {

struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    unsigned hitLatency = 2;   ///< cycles from request to data on a hit
    unsigned numMshrs = 16;    ///< outstanding distinct line misses
    unsigned numBanks = 1;     ///< tag/data banks (1 access per cycle each)
};

class Cache : public MemLevel
{
  public:
    /**
     * @param params geometry and latency
     * @param below next level (not owned); must outlive this cache
     * @param stats stat set to register counters into
     */
    Cache(const CacheParams &params, MemLevel *below, StatSet &stats);

    Cycle access(Cycle now, Addr addr, bool write) override;

    /** Drop all tags and in-flight state (used on machine reset). */
    void invalidateAll();

    /** True if the line holding addr is currently present and filled. */
    bool probe(Addr addr) const;

    const CacheParams &params() const { return _p; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        Cycle lastUse = 0;   ///< LRU timestamp
        Cycle fillReady = 0; ///< data arrives at this cycle
    };

    struct Mshr
    {
        Addr lineAddr = 0;
        Cycle ready = 0;
    };

    Addr lineAddr(Addr addr) const { return addr & ~Addr(_p.lineBytes - 1); }
    std::size_t setIndex(Addr line_addr) const;
    Cycle bankReady(Cycle now, Addr line_addr);

    CacheParams _p;
    MemLevel *_below;
    std::size_t _numSets;
    std::vector<Line> _lines;          ///< numSets * assoc
    std::vector<Mshr> _mshrs;          ///< in-flight line misses
    std::vector<Cycle> _bankNextFree;  ///< per-bank port availability

    Counter &_hits;
    Counter &_misses;
    Counter &_mshrMerges;
    Counter &_mshrStalls;
    Counter &_writebacks;
};

} // namespace edge::mem

#endif // EDGE_MEM_CACHE_HH
