/**
 * @file
 * Abstract interface of one level of the timing memory hierarchy.
 *
 * The hierarchy uses a timestamp model: a level is asked "a request
 * for line X arrives at cycle T; when is the data available?" and
 * answers with a completion cycle, updating its internal tag, MSHR
 * and bandwidth state. This keeps the model deterministic and cheap
 * while still capturing hit/miss latency, MSHR merging, limited
 * MSHRs, port contention and writeback traffic.
 */

#ifndef EDGE_MEM_MEM_LEVEL_HH
#define EDGE_MEM_MEM_LEVEL_HH

#include "common/types.hh"

namespace edge::mem {

class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Access `addr` at cycle `now`.
     * @param now cycle at which the request reaches this level
     * @param addr byte address (the level works on whole lines)
     * @param write true for a write/dirty fill, false for a read
     * @return the cycle at which the requested data is available
     */
    virtual Cycle access(Cycle now, Addr addr, bool write) = 0;
};

} // namespace edge::mem

#endif // EDGE_MEM_MEM_LEVEL_HH
