#include "mem/hierarchy.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::mem {

Hierarchy::Hierarchy(const HierarchyParams &params, StatSet &stats,
                     chaos::ChaosEngine *chaos)
    : _p(params), _chaos(chaos)
{
    fatal_if(_p.numDBanks == 0, "need at least one L1D bank");

    _dram = std::make_unique<Dram>(
        DramParams{"dram", _p.dramLatency, _p.dramCyclesPerLine}, stats);

    CacheParams l2p;
    l2p.name = "l2";
    l2p.sizeBytes = _p.l2SizeBytes;
    l2p.assoc = _p.l2Assoc;
    l2p.lineBytes = _p.lineBytes;
    l2p.hitLatency = _p.l2HitLatency;
    l2p.numMshrs = _p.l2Mshrs;
    l2p.numBanks = _p.l2Banks;
    _l2 = std::make_unique<Cache>(l2p, _dram.get(), stats);

    CacheParams l1ip;
    l1ip.name = "l1i";
    l1ip.sizeBytes = _p.l1iSizeBytes;
    l1ip.assoc = _p.l1iAssoc;
    l1ip.lineBytes = _p.lineBytes;
    l1ip.hitLatency = _p.l1iHitLatency;
    l1ip.numMshrs = 4;
    l1ip.numBanks = 1;
    _l1i = std::make_unique<Cache>(l1ip, _l2.get(), stats);

    for (unsigned b = 0; b < _p.numDBanks; ++b) {
        CacheParams dp;
        dp.name = strfmt("l1d%u", b);
        dp.sizeBytes = _p.l1dSizeBytes;
        dp.assoc = _p.l1dAssoc;
        dp.lineBytes = _p.lineBytes;
        dp.hitLatency = _p.l1dHitLatency;
        dp.numMshrs = _p.l1dMshrs;
        dp.numBanks = 1;
        _l1d.push_back(std::make_unique<Cache>(dp, _l2.get(), stats));
    }
}

unsigned
Hierarchy::bankOf(Addr addr) const
{
    // Interleave on cache lines so that unit-stride streams hit all
    // banks and a line lives in exactly one bank.
    return (addr / _p.lineBytes) % _p.numDBanks;
}

Cycle
Hierarchy::dataRead(Cycle now, Addr addr)
{
    Cycle done = _l1d[bankOf(addr)]->access(now, addr, false);
    // Chaos: jitter the fill latency of misses only (done past the
    // pure-hit time); hits stay deterministic.
    if (_chaos && done > now + _p.l1dHitLatency)
        done += _chaos->memJitter();
    return done;
}

Cycle
Hierarchy::dataWrite(Cycle now, Addr addr)
{
    return _l1d[bankOf(addr)]->access(now, addr, true);
}

Cycle
Hierarchy::instFetch(Cycle now, Addr addr)
{
    Cycle done = _l1i->access(now, addr, false);
    if (_chaos && done > now + _p.l1iHitLatency)
        done += _chaos->memJitter();
    return done;
}

bool
Hierarchy::dataProbe(Addr addr) const
{
    return _l1d[bankOf(addr)]->probe(addr);
}

void
Hierarchy::reset()
{
    _dram->reset();
    _l2->invalidateAll();
    _l1i->invalidateAll();
    for (auto &c : _l1d)
        c->invalidateAll();
}

} // namespace edge::mem
