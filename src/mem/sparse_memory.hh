/**
 * @file
 * Byte-accurate sparse functional memory. Backs both the reference
 * executor and the timing simulator's architectural memory state;
 * the timing caches (cache.hh) model latency only, never data, so a
 * single source of truth exists for values.
 */

#ifndef EDGE_MEM_SPARSE_MEMORY_HH
#define EDGE_MEM_SPARSE_MEMORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace edge::mem {

/** Flat 64-bit byte-addressable memory, allocated in 4 KiB pages. */
class SparseMemory
{
  public:
    /** Read `bytes` (1..8) starting at addr, little-endian, 0-fill. */
    Word read(Addr addr, unsigned bytes) const;

    /** Write the low `bytes` (1..8) of value at addr, little-endian. */
    void write(Addr addr, unsigned bytes, Word value);

    /** Bulk initialisation helper. */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t n);

    /** Number of touched pages (for tests / memory accounting). */
    std::size_t pagesTouched() const { return _pages.size(); }

    /**
     * Compare contents with another memory. Because pages are
     * allocated lazily, untouched bytes compare equal to zero.
     * @return true iff every byte matches
     */
    bool equals(const SparseMemory &other) const;

  private:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::size_t kPageBytes = std::size_t{1} << kPageShift;

    using Page = std::vector<std::uint8_t>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, Page> _pages;
};

} // namespace edge::mem

#endif // EDGE_MEM_SPARSE_MEMORY_HH
