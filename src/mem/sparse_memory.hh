/**
 * @file
 * Byte-accurate sparse functional memory. Backs both the reference
 * executor and the timing simulator's architectural memory state;
 * the timing caches (cache.hh) model latency only, never data, so a
 * single source of truth exists for values.
 */

#ifndef EDGE_MEM_SPARSE_MEMORY_HH
#define EDGE_MEM_SPARSE_MEMORY_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace edge::mem {

/**
 * Flat 64-bit byte-addressable memory, allocated in 4 KiB pages.
 *
 * Hot-path design: accesses overwhelmingly hit the page touched by
 * the previous access, so a one-entry last-page cache short-circuits
 * the hash lookup, and aligned 8-byte accesses (the dominant size)
 * take a memcpy fast path. The cache makes even read() logically-
 * const-but-mutating; a SparseMemory therefore belongs to exactly
 * one run (Processor or RefExecutor) and must not be accessed
 * concurrently — cross-thread use is limited to equals(), which
 * touches neither the cache nor the pages' contents.
 */
class SparseMemory
{
  public:
    SparseMemory() = default;

    // The last-page cache points into _pages, so it must never be
    // carried over to a copy (it would alias the source) and must be
    // dropped from a moved-from object.
    SparseMemory(const SparseMemory &o) : _pages(o._pages) {}
    SparseMemory &
    operator=(const SparseMemory &o)
    {
        _pages = o._pages;
        _lastTag = kNoTag;
        _lastPage = nullptr;
        return *this;
    }
    SparseMemory(SparseMemory &&o) noexcept
        : _pages(std::move(o._pages)),
          _lastTag(o._lastTag),
          _lastPage(o._lastPage)
    {
        o._lastTag = kNoTag;
        o._lastPage = nullptr;
    }
    SparseMemory &
    operator=(SparseMemory &&o) noexcept
    {
        _pages = std::move(o._pages);
        _lastTag = o._lastTag;
        _lastPage = o._lastPage;
        o._lastTag = kNoTag;
        o._lastPage = nullptr;
        return *this;
    }

    /** Read `bytes` (1..8) starting at addr, little-endian, 0-fill. */
    Word
    read(Addr addr, unsigned bytes) const
    {
        const Addr off = addr & (kPageBytes - 1);
        if ((addr >> kPageShift) == _lastTag && bytes - 1 < 8 &&
            off + bytes <= kPageBytes) {
            const std::uint8_t *p = _lastPage->data() + off;
            if constexpr (std::endian::native == std::endian::little) {
                if (bytes == 8 && (off & 7) == 0) {
                    Word v;
                    std::memcpy(&v, p, 8);
                    return v;
                }
            }
            Word v = 0;
            for (unsigned i = 0; i < bytes; ++i)
                v |= static_cast<Word>(p[i]) << (8 * i);
            return v;
        }
        return readSlow(addr, bytes);
    }

    /** Write the low `bytes` (1..8) of value at addr, little-endian. */
    void
    write(Addr addr, unsigned bytes, Word value)
    {
        const Addr off = addr & (kPageBytes - 1);
        if ((addr >> kPageShift) == _lastTag && bytes - 1 < 8 &&
            off + bytes <= kPageBytes) {
            std::uint8_t *p = _lastPage->data() + off;
            if constexpr (std::endian::native == std::endian::little) {
                if (bytes == 8 && (off & 7) == 0) {
                    std::memcpy(p, &value, 8);
                    return;
                }
            }
            for (unsigned i = 0; i < bytes; ++i)
                p[i] = static_cast<std::uint8_t>(value >> (8 * i));
            return;
        }
        writeSlow(addr, bytes, value);
    }

    /** Bulk initialisation helper. */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t n);

    /** Number of touched pages (for tests / memory accounting). */
    std::size_t pagesTouched() const { return _pages.size(); }

    /**
     * Compare contents with another memory. Because pages are
     * allocated lazily, untouched bytes compare equal to zero.
     * @return true iff every byte matches
     */
    bool equals(const SparseMemory &other) const;

  private:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::size_t kPageBytes = std::size_t{1} << kPageShift;

    using Page = std::vector<std::uint8_t>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    Word readSlow(Addr addr, unsigned bytes) const;
    void writeSlow(Addr addr, unsigned bytes, Word value);

    std::unordered_map<Addr, Page> _pages;

    // One-entry last-page cache (page tag -> page). Only existing
    // pages are cached, so creating a page elsewhere never leaves a
    // stale negative entry; unordered_map references are stable, so
    // the pointer survives rehashing. See the class comment for the
    // resulting thread-safety contract.
    static constexpr Addr kNoTag = ~Addr{0};
    mutable Addr _lastTag = kNoTag;
    mutable Page *_lastPage = nullptr;
};

} // namespace edge::mem

#endif // EDGE_MEM_SPARSE_MEMORY_HH
