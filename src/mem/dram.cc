#include "mem/dram.hh"

#include <algorithm>

namespace edge::mem {

Dram::Dram(const DramParams &params, StatSet &stats)
    : _p(params),
      _reads(stats.counter(_p.name + ".reads", "line reads")),
      _writes(stats.counter(_p.name + ".writes", "line writes"))
{
}

Cycle
Dram::access(Cycle now, Addr addr, bool write)
{
    Cycle start = std::max(now, _channelFree);
    _channelFree = start + _p.cyclesPerLine;
    if (write) {
        ++_writes;
        return start + _p.cyclesPerLine; // posted write
    }
    ++_reads;
    return start + _p.latency;
}

} // namespace edge::mem
