#include "mem/sparse_memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edge::mem {

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = _pages.find(addr >> kPageShift);
    return it == _pages.end() ? nullptr : &it->second;
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    Addr tag = addr >> kPageShift;
    Page &p = _pages[tag];
    if (p.empty())
        p.assign(kPageBytes, 0);
    _lastTag = tag;
    _lastPage = &p;
    return p;
}

Word
SparseMemory::readSlow(Addr addr, unsigned bytes) const
{
    panic_if(bytes == 0 || bytes > 8, "bad access size %u", bytes);
    // Warm the one-entry cache when the leading page exists, so the
    // next access to it (the common case) takes the inline fast path.
    Addr tag = addr >> kPageShift;
    auto it = _pages.find(tag);
    if (it != _pages.end()) {
        _lastTag = tag;
        _lastPage = const_cast<Page *>(&it->second);
    }
    Word value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        Addr a = addr + i;
        const Page *p = findPage(a);
        std::uint8_t byte = p ? (*p)[a & (kPageBytes - 1)] : 0;
        value |= static_cast<Word>(byte) << (8 * i);
    }
    return value;
}

void
SparseMemory::writeSlow(Addr addr, unsigned bytes, Word value)
{
    panic_if(bytes == 0 || bytes > 8, "bad access size %u", bytes);
    for (unsigned i = 0; i < bytes; ++i) {
        Addr a = addr + i;
        touchPage(a)[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
SparseMemory::writeBytes(Addr addr, const std::uint8_t *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        touchPage(addr + i)[(addr + i) & (kPageBytes - 1)] = data[i];
}

bool
SparseMemory::equals(const SparseMemory &other) const
{
    static const Page kZeroPage(kPageBytes, 0);
    auto page_equal = [](const Page *a, const Page *b) {
        const Page &pa = a ? *a : kZeroPage;
        const Page &pb = b ? *b : kZeroPage;
        return pa == pb;
    };
    for (const auto &kv : _pages) {
        auto it = other._pages.find(kv.first);
        if (!page_equal(&kv.second,
                        it == other._pages.end() ? nullptr : &it->second))
            return false;
    }
    for (const auto &kv : other._pages) {
        if (_pages.count(kv.first))
            continue; // already compared above
        if (!page_equal(nullptr, &kv.second))
            return false;
    }
    return true;
}

} // namespace edge::mem
