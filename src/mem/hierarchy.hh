/**
 * @file
 * The assembled timing memory hierarchy of the simulated EDGE
 * processor: address-interleaved L1 data cache banks (one per grid
 * row, co-located with the LSQ banks), an instruction cache for
 * block fetch, a shared L2, and DRAM. Timing only; values live in
 * the architectural SparseMemory owned by the simulator.
 */

#ifndef EDGE_MEM_HIERARCHY_HH
#define EDGE_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "chaos/chaos.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace edge::mem {

struct HierarchyParams
{
    unsigned numDBanks = 4;         ///< L1D banks (== LSQ banks)
    std::size_t l1dSizeBytes = 8 * 1024;  ///< per bank
    unsigned l1dAssoc = 2;
    unsigned l1dHitLatency = 2;
    unsigned l1dMshrs = 16;
    std::size_t l1iSizeBytes = 32 * 1024;
    unsigned l1iAssoc = 2;
    unsigned l1iHitLatency = 1;
    std::size_t l2SizeBytes = 1024 * 1024;
    unsigned l2Assoc = 8;
    unsigned l2HitLatency = 12;
    unsigned l2Mshrs = 32;
    unsigned l2Banks = 4;
    unsigned lineBytes = 64;
    unsigned dramLatency = 100;
    unsigned dramCyclesPerLine = 4;
};

class Hierarchy
{
  public:
    /**
     * @param chaos optional fault injector (not owned): jitters the
     *        completion time of accesses that miss (models refill
     *        contention / variable DRAM scheduling); pure hits stay
     *        deterministic.
     */
    Hierarchy(const HierarchyParams &params, StatSet &stats,
              chaos::ChaosEngine *chaos = nullptr);

    /** The L1D bank (== LSQ bank) an address maps to. */
    unsigned bankOf(Addr addr) const;

    /** Timing of a data-cache load reaching bank `bankOf(addr)`. */
    Cycle dataRead(Cycle now, Addr addr);

    /** Timing of a committed store draining into its L1D bank. */
    Cycle dataWrite(Cycle now, Addr addr);

    /** Timing of an instruction-cache access for block fetch. */
    Cycle instFetch(Cycle now, Addr addr);

    /** True if addr currently hits in its L1D bank (for stats). */
    bool dataProbe(Addr addr) const;

    /** Drop all cached state. */
    void reset();

    const HierarchyParams &params() const { return _p; }

  private:
    HierarchyParams _p;
    chaos::ChaosEngine *_chaos;
    std::unique_ptr<Dram> _dram;
    std::unique_ptr<Cache> _l2;
    std::unique_ptr<Cache> _l1i;
    std::vector<std::unique_ptr<Cache>> _l1d;
};

} // namespace edge::mem

#endif // EDGE_MEM_HIERARCHY_HH
