#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edge::mem {

namespace {

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params, MemLevel *below, StatSet &stats)
    : _p(params),
      _below(below),
      _hits(stats.counter(_p.name + ".hits", "demand hits")),
      _misses(stats.counter(_p.name + ".misses", "demand misses")),
      _mshrMerges(stats.counter(_p.name + ".mshr_merges",
                                "misses merged into an in-flight MSHR")),
      _mshrStalls(stats.counter(_p.name + ".mshr_stalls",
                                "requests delayed by a full MSHR file")),
      _writebacks(stats.counter(_p.name + ".writebacks",
                                "dirty lines written back"))
{
    fatal_if(_p.lineBytes == 0 || !isPow2(_p.lineBytes),
             "%s: line size must be a power of two", _p.name.c_str());
    fatal_if(_p.assoc == 0 || _p.numBanks == 0 || _p.numMshrs == 0,
             "%s: assoc, banks and MSHRs must be nonzero", _p.name.c_str());
    _numSets = _p.sizeBytes / (_p.lineBytes * _p.assoc);
    fatal_if(_numSets == 0 || !isPow2(_numSets),
             "%s: set count (%zu) must be a nonzero power of two",
             _p.name.c_str(), _numSets);
    _lines.assign(_numSets * _p.assoc, Line{});
    _bankNextFree.assign(_p.numBanks, 0);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / _p.lineBytes) & (_numSets - 1);
}

Cycle
Cache::bankReady(Cycle now, Addr line_addr)
{
    std::size_t bank = (line_addr / _p.lineBytes) % _p.numBanks;
    Cycle start = std::max(now, _bankNextFree[bank]);
    _bankNextFree[bank] = start + 1;
    return start;
}

void
Cache::invalidateAll()
{
    std::fill(_lines.begin(), _lines.end(), Line{});
    _mshrs.clear();
    std::fill(_bankNextFree.begin(), _bankNextFree.end(), 0);
}

bool
Cache::probe(Addr addr) const
{
    Addr la = lineAddr(addr);
    std::size_t set = setIndex(la);
    for (unsigned w = 0; w < _p.assoc; ++w) {
        const Line &l = _lines[set * _p.assoc + w];
        if (l.valid && l.tag == la)
            return true;
    }
    return false;
}

Cycle
Cache::access(Cycle now, Addr addr, bool write)
{
    Addr la = lineAddr(addr);
    Cycle start = bankReady(now, la);
    std::size_t set = setIndex(la);

    // Tag lookup.
    Line *hit_line = nullptr;
    for (unsigned w = 0; w < _p.assoc; ++w) {
        Line &l = _lines[set * _p.assoc + w];
        if (l.valid && l.tag == la) {
            hit_line = &l;
            break;
        }
    }
    if (hit_line) {
        // A hit on a still-filling line waits for the fill.
        Cycle done = std::max(start + _p.hitLatency, hit_line->fillReady);
        hit_line->lastUse = done;
        hit_line->dirty = hit_line->dirty || write;
        ++_hits;
        return done;
    }
    ++_misses;

    // Retire completed MSHRs, then merge or allocate.
    std::erase_if(_mshrs, [&](const Mshr &m) { return m.ready <= start; });
    for (const Mshr &m : _mshrs) {
        if (m.lineAddr == la) {
            ++_mshrMerges;
            return std::max(m.ready, start + _p.hitLatency);
        }
    }
    Cycle issue = start;
    if (_mshrs.size() >= _p.numMshrs) {
        // Wait for the earliest outstanding miss to retire.
        auto it = std::min_element(
            _mshrs.begin(), _mshrs.end(),
            [](const Mshr &a, const Mshr &b) { return a.ready < b.ready; });
        issue = std::max(issue, it->ready);
        _mshrs.erase(it);
        ++_mshrStalls;
    }

    // Choose a victim: invalid way first, else LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < _p.assoc; ++w) {
        Line &l = _lines[set * _p.assoc + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (victim->valid && victim->dirty) {
        ++_writebacks;
        if (_below)
            (void)_below->access(issue, victim->tag, true);
    }

    Cycle fill = _below ? _below->access(issue, la, false)
                        : issue + _p.hitLatency;
    Cycle done = std::max(fill, start + _p.hitLatency);

    victim->valid = true;
    victim->dirty = write;
    victim->tag = la;
    victim->lastUse = done;
    victim->fillReady = fill;

    _mshrs.push_back({la, fill});
    return done;
}

} // namespace edge::mem
