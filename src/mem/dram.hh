/**
 * @file
 * Simple main-memory model: fixed access latency plus a bandwidth
 * limit modelled as a single channel that transfers one line every
 * `cyclesPerLine` cycles.
 */

#ifndef EDGE_MEM_DRAM_HH
#define EDGE_MEM_DRAM_HH

#include <string>

#include "common/stats.hh"
#include "mem/mem_level.hh"

namespace edge::mem {

struct DramParams
{
    std::string name = "dram";
    unsigned latency = 100;       ///< fixed access latency (cycles)
    unsigned cyclesPerLine = 4;   ///< channel occupancy per transfer
};

class Dram : public MemLevel
{
  public:
    Dram(const DramParams &params, StatSet &stats);

    Cycle access(Cycle now, Addr addr, bool write) override;

    /** Reset channel state (used on machine reset). */
    void reset() { _channelFree = 0; }

  private:
    DramParams _p;
    Cycle _channelFree = 0;
    Counter &_reads;
    Counter &_writes;
};

} // namespace edge::mem

#endif // EDGE_MEM_DRAM_HH
