/**
 * @file
 * The fabric's time source, made injectable. Every serve-side
 * component that reads a clock — heartbeat timers, lease deadlines,
 * hedge thresholds, reassignment backoffs, client retry waits — goes
 * through this interface instead of calling steady_clock directly,
 * so the deterministic fabric simulation (src/serve/simnet/) can run
 * the REAL coordinator state machine on virtual time: thousands of
 * campaigns per wall-second, every timer race reproducible from a
 * seed.
 *
 * Two implementations:
 *
 *  - Clock::real(): a process-wide steady_clock passthrough; sleeps
 *    actually sleep. This is what every production entry point uses.
 *
 *  - VirtualClock: a manually advanced clock. now() never moves on
 *    its own; advanceTo/advanceMs are driven by the simulation's
 *    event queue, and sleepFor is a pure time jump (no wall-clock
 *    wait) — the "no-wait fast-forward" that makes simulated
 *    campaigns run as fast as the host can fire events.
 */

#ifndef EDGE_SERVE_CLOCK_HH
#define EDGE_SERVE_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace edge::serve {

class Clock
{
  public:
    /** Shared with steady_clock so existing duration math (lease
     *  expiries, heartbeat deadlines) works unchanged. */
    using time_point = std::chrono::steady_clock::time_point;

    virtual ~Clock() = default;

    virtual time_point now() = 0;

    /** Block (or, on a virtual clock, jump) for `ms` milliseconds. */
    virtual void sleepFor(std::uint64_t ms) = 0;

    /** Milliseconds until `deadline`, clamped at zero — the poll
     *  timeout for an absolute deadline. */
    std::int64_t
    msUntil(time_point deadline)
    {
        auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now())
                .count();
        return left > 0 ? left : 0;
    }

    /** The process-wide wall-clock implementation. */
    static Clock &real();
};

/**
 * A clock that only moves when told to. Starts at the epoch of its
 * time_point (t=0); never goes backwards.
 */
class VirtualClock final : public Clock
{
  public:
    time_point
    now() override
    {
        return _now;
    }

    /** A virtual sleep is a jump: no wall time passes. */
    void
    sleepFor(std::uint64_t ms) override
    {
        advanceMs(ms);
    }

    void
    advanceMs(std::uint64_t ms)
    {
        _now += std::chrono::milliseconds(ms);
    }

    /** Advance to `t`; a target in the past is a no-op (monotonic by
     *  construction, like the steady clock it stands in for). */
    void
    advanceTo(time_point t)
    {
        if (t > _now)
            _now = t;
    }

    /** Milliseconds since the virtual epoch. */
    std::uint64_t
    nowMs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                _now.time_since_epoch())
                .count());
    }

  private:
    time_point _now{}; ///< epoch: virtual t=0
};

} // namespace edge::serve

#endif // EDGE_SERVE_CLOCK_HH
