#include "serve/proto.hh"

#include "triage/result_json.hh"

namespace edge::serve::proto {

using triage::JsonValue;

namespace {

JsonValue
envelope(const char *type)
{
    JsonValue o = JsonValue::object();
    o.set("type", JsonValue::str(type));
    return o;
}

} // namespace

std::string
hello(const std::string &name, unsigned slots)
{
    JsonValue o = envelope("hello");
    o.set("name", JsonValue::str(name));
    o.set("slots", JsonValue::u64(slots));
    return o.dumpCompact();
}

std::string
welcome(std::uint64_t agentId, std::uint64_t heartbeatMs,
        FabricProfile affliction, std::uint64_t chaosSeed)
{
    JsonValue o = envelope("welcome");
    o.set("agent", JsonValue::u64(agentId));
    o.set("heartbeat_ms", JsonValue::u64(heartbeatMs));
    if (affliction != FabricProfile::None) {
        o.set("chaos", JsonValue::str(fabricProfileName(affliction)));
        o.set("chaos_seed", JsonValue::u64(chaosSeed));
    }
    return o.dumpCompact();
}

std::string
heartbeat(std::uint64_t inflight, std::uint64_t queued)
{
    JsonValue o = envelope("heartbeat");
    if (inflight)
        o.set("inflight", JsonValue::u64(inflight));
    if (queued)
        o.set("queued", JsonValue::u64(queued));
    return o.dumpCompact();
}

std::string
assign(std::uint64_t lease, const super::CellSpec &cell,
       std::uint64_t cellTimeoutMs, std::uint64_t rlimitAsMb,
       std::uint64_t rlimitCpuSec)
{
    JsonValue o = envelope("assign");
    o.set("lease", JsonValue::u64(lease));
    o.set("cell", super::cellToJson(cell));
    o.set("timeout_ms", JsonValue::u64(cellTimeoutMs));
    if (rlimitAsMb)
        o.set("rlimit_as_mb", JsonValue::u64(rlimitAsMb));
    if (rlimitCpuSec)
        o.set("rlimit_cpu_sec", JsonValue::u64(rlimitCpuSec));
    return o.dumpCompact();
}

std::string
result(std::uint64_t lease, std::uint64_t cellHash,
       const sim::RunResult &r)
{
    JsonValue o = envelope("result");
    o.set("lease", JsonValue::u64(lease));
    o.set("cell", JsonValue::u64(cellHash));
    o.set("result", triage::resultToJson(r));
    return o.dumpCompact();
}

std::string
shutdown()
{
    return envelope("shutdown").dumpCompact();
}

std::string
submit(const JsonValue &campaign)
{
    JsonValue o = envelope("submit");
    o.set("campaign", campaign);
    return o.dumpCompact();
}

std::string
report(JsonValue body)
{
    JsonValue o = envelope("report");
    o.set("report", std::move(body));
    return o.dumpCompact();
}

std::string
error(const std::string &message)
{
    JsonValue o = envelope("error");
    o.set("message", JsonValue::str(message));
    return o.dumpCompact();
}

std::string
retryAfter(const std::string &message, std::uint64_t retryAfterMs)
{
    JsonValue o = envelope("error");
    o.set("message", JsonValue::str(message));
    o.set("retry_after_ms", JsonValue::u64(retryAfterMs));
    return o.dumpCompact();
}

bool
parse(const std::string &line, JsonValue *doc, std::string *type,
      std::string *err)
{
    if (!JsonValue::parse(line, doc, err))
        return false;
    if (!doc->isObject()) {
        if (err)
            *err = "message is not a JSON object";
        return false;
    }
    *type = doc->getString("type");
    if (type->empty()) {
        if (err)
            *err = "message has no type";
        return false;
    }
    return true;
}

} // namespace edge::serve::proto
