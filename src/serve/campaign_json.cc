#include "serve/campaign_json.hh"

#include "chaos/chaos.hh"
#include "triage/program_json.hh"
#include "triage/result_json.hh"

namespace edge::serve {

using triage::JsonValue;

namespace {

JsonValue
programRefToJson(const triage::ProgramRef &ref)
{
    JsonValue o = JsonValue::object();
    o.set("kernel", JsonValue::str(ref.kernel));
    o.set("iterations", JsonValue::u64(ref.params.iterations));
    o.set("seed", JsonValue::u64(ref.params.seed));
    if (ref.hasEmbedded)
        o.set("embedded", triage::programToJson(ref.embedded));
    return o;
}

bool
programRefFromJson(const JsonValue &o, triage::ProgramRef *ref,
                   std::string *err)
{
    if (!o.isObject()) {
        if (err)
            *err = "program is not an object";
        return false;
    }
    ref->kernel = o.getString("kernel");
    ref->params.iterations =
        o.getU64("iterations", ref->params.iterations);
    ref->params.seed = o.getU64("seed", ref->params.seed);
    ref->hasEmbedded = false;
    if (const JsonValue *e = o.get("embedded")) {
        if (!triage::programFromJson(*e, &ref->embedded, err))
            return false;
        ref->hasEmbedded = true;
    }
    if (!ref->hasEmbedded && ref->kernel.empty()) {
        if (err)
            *err = "program has neither kernel nor embedded body";
        return false;
    }
    return true;
}

JsonValue
retryToJson(const sim::RetryPolicy &retry)
{
    JsonValue o = JsonValue::object();
    o.set("max_attempts", JsonValue::u64(retry.maxAttempts));
    o.set("backoff_ms", JsonValue::u64(retry.backoffMs));
    o.set("max_total_backoff_ms",
          JsonValue::u64(retry.maxTotalBackoffMs));
    return o;
}

void
retryFromJson(const JsonValue *o, sim::RetryPolicy *retry)
{
    if (!o || !o->isObject())
        return;
    retry->maxAttempts = static_cast<unsigned>(
        o->getU64("max_attempts", retry->maxAttempts));
    retry->backoffMs = static_cast<unsigned>(
        o->getU64("backoff_ms", retry->backoffMs));
    retry->maxTotalBackoffMs =
        o->getU64("max_total_backoff_ms", retry->maxTotalBackoffMs);
}

bool
outcomeByName(const std::string &name, fuzz::Outcome *out)
{
    for (fuzz::Outcome o :
         {fuzz::Outcome::Pass, fuzz::Outcome::Divergence,
          fuzz::Outcome::Crash, fuzz::Outcome::Hang,
          fuzz::Outcome::RefHang}) {
        if (name == fuzz::outcomeName(o)) {
            *out = o;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
campaignKind(const JsonValue &doc)
{
    return doc.getString("kind");
}

JsonValue
sweepSubmission(const sim::ChaosSweepParams &params,
                const triage::ProgramRef &program)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue::str("sweep"));

    JsonValue p = JsonValue::object();
    JsonValue seeds = JsonValue::array();
    for (std::uint64_t s : params.seeds)
        seeds.push(JsonValue::u64(s));
    p.set("seeds", std::move(seeds));
    JsonValue configs = JsonValue::array();
    for (const std::string &c : params.configs)
        configs.push(JsonValue::str(c));
    p.set("configs", std::move(configs));
    p.set("profile",
          JsonValue::str(chaos::profileName(params.profile)));
    p.set("check_invariants",
          JsonValue::boolean(params.checkInvariants));
    p.set("max_cycles", JsonValue::u64(params.maxCycles));
    p.set("mutation",
          JsonValue::str(chaos::mutationName(params.mutation)));
    p.set("mutation_node", JsonValue::u64(params.mutationNode));
    p.set("retry", retryToJson(params.retry));
    o.set("params", std::move(p));

    o.set("program", programRefToJson(program));
    return o;
}

bool
sweepSubmissionFromJson(const JsonValue &doc,
                        sim::ChaosSweepParams *params,
                        triage::ProgramRef *program, std::string *err)
{
    const JsonValue *p = doc.get("params");
    if (!p || !p->isObject()) {
        if (err)
            *err = "sweep submission has no params";
        return false;
    }
    params->seeds.clear();
    if (const JsonValue *seeds = p->get("seeds"))
        for (const JsonValue &s : seeds->items())
            params->seeds.push_back(s.asU64());
    params->configs.clear();
    if (const JsonValue *configs = p->get("configs"))
        for (const JsonValue &c : configs->items())
            params->configs.push_back(c.asString());
    if (params->seeds.empty() || params->configs.empty()) {
        if (err)
            *err = "sweep submission needs seeds and configs";
        return false;
    }
    params->profile = chaos::ChaosParams::profileByName(
        p->getString("profile", chaos::profileName(params->profile)));
    params->checkInvariants =
        p->getBool("check_invariants", params->checkInvariants);
    params->maxCycles = p->getU64("max_cycles", params->maxCycles);
    params->mutation = chaos::mutationByName(p->getString(
        "mutation", chaos::mutationName(params->mutation)));
    params->mutationNode = static_cast<unsigned>(
        p->getU64("mutation_node", params->mutationNode));
    retryFromJson(p->get("retry"), &params->retry);

    const JsonValue *prog = doc.get("program");
    if (!prog) {
        if (err)
            *err = "sweep submission has no program";
        return false;
    }
    return programRefFromJson(*prog, program, err);
}

JsonValue
sweepReportToJson(const sim::ChaosSweepReport &report,
                  bool interrupted)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue::str("sweep"));
    o.set("interrupted", JsonValue::boolean(interrupted));
    JsonValue runs = JsonValue::array();
    for (const sim::ChaosSweepOutcome &r : report.runs) {
        JsonValue row = JsonValue::object();
        row.set("seed", JsonValue::u64(r.seed));
        row.set("config", JsonValue::str(r.config));
        row.set("machine", triage::configToJson(r.machine));
        row.set("result", triage::resultToJson(r.result));
        if (!r.reproPath.empty())
            row.set("repro", JsonValue::str(r.reproPath));
        runs.push(std::move(row));
    }
    o.set("runs", std::move(runs));
    return o;
}

bool
sweepReportFromJson(const JsonValue &doc,
                    sim::ChaosSweepReport *report, bool *interrupted,
                    std::string *err)
{
    const JsonValue *runs = doc.get("runs");
    if (!runs || !runs->isArray()) {
        if (err)
            *err = "sweep report has no runs";
        return false;
    }
    if (interrupted)
        *interrupted = doc.getBool("interrupted");
    std::vector<sim::ChaosSweepOutcome> rows;
    rows.reserve(runs->items().size());
    for (const JsonValue &row : runs->items()) {
        sim::ChaosSweepOutcome o;
        o.seed = row.getU64("seed");
        o.config = row.getString("config");
        if (const JsonValue *m = row.get("machine"))
            triage::configFromJson(*m, &o.machine);
        const JsonValue *res = row.get("result");
        if (!res || !triage::resultFromJson(*res, &o.result, err))
            return false;
        o.reproPath = row.getString("repro");
        rows.push_back(std::move(o));
    }
    *report = sim::assembleSweepReport(std::move(rows));
    return true;
}

JsonValue
fuzzSubmission(const fuzz::FuzzOptions &opts)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue::str("fuzz"));
    o.set("count", JsonValue::u64(opts.count));
    o.set("seed", JsonValue::u64(opts.seed));
    JsonValue configs = JsonValue::array();
    for (const std::string &c : opts.configs)
        configs.push(JsonValue::str(c));
    o.set("configs", std::move(configs));
    o.set("chaos_profile",
          JsonValue::str(chaos::profileName(opts.chaosProfile)));
    o.set("mutation",
          JsonValue::str(chaos::mutationName(opts.mutation)));
    o.set("mutation_node", JsonValue::u64(opts.mutationNode));
    o.set("check_invariants",
          JsonValue::boolean(opts.checkInvariants));
    o.set("max_cycles", JsonValue::u64(opts.maxCycles));
    o.set("batch", JsonValue::u64(opts.batch));

    JsonValue gen = JsonValue::object();
    gen.set("min_blocks", JsonValue::u64(opts.gen.minBlocks));
    gen.set("max_blocks", JsonValue::u64(opts.gen.maxBlocks));
    gen.set("min_ops", JsonValue::u64(opts.gen.minOps));
    gen.set("max_ops", JsonValue::u64(opts.gen.maxOps));
    gen.set("max_mem_ops", JsonValue::u64(opts.gen.maxMemOps));
    gen.set("fuel", JsonValue::u64(opts.gen.fuel));
    gen.set("arena_base", JsonValue::u64(opts.gen.arenaBase));
    gen.set("arena_words", JsonValue::u64(opts.gen.arenaWords));
    o.set("gen", std::move(gen));
    return o;
}

bool
fuzzSubmissionFromJson(const JsonValue &doc, fuzz::FuzzOptions *opts,
                       std::string *err)
{
    if (!doc.isObject()) {
        if (err)
            *err = "fuzz submission is not an object";
        return false;
    }
    opts->count = doc.getU64("count", opts->count);
    opts->seed = doc.getU64("seed", opts->seed);
    opts->configs.clear();
    if (const JsonValue *configs = doc.get("configs"))
        for (const JsonValue &c : configs->items())
            opts->configs.push_back(c.asString());
    opts->chaosProfile = chaos::ChaosParams::profileByName(
        doc.getString("chaos_profile",
                      chaos::profileName(opts->chaosProfile)));
    opts->mutation = chaos::mutationByName(doc.getString(
        "mutation", chaos::mutationName(opts->mutation)));
    opts->mutationNode = static_cast<unsigned>(
        doc.getU64("mutation_node", opts->mutationNode));
    opts->checkInvariants =
        doc.getBool("check_invariants", opts->checkInvariants);
    opts->maxCycles = doc.getU64("max_cycles", opts->maxCycles);
    opts->batch = doc.getU64("batch", opts->batch);
    if (const JsonValue *gen = doc.get("gen")) {
        opts->gen.minBlocks = static_cast<unsigned>(
            gen->getU64("min_blocks", opts->gen.minBlocks));
        opts->gen.maxBlocks = static_cast<unsigned>(
            gen->getU64("max_blocks", opts->gen.maxBlocks));
        opts->gen.minOps = static_cast<unsigned>(
            gen->getU64("min_ops", opts->gen.minOps));
        opts->gen.maxOps = static_cast<unsigned>(
            gen->getU64("max_ops", opts->gen.maxOps));
        opts->gen.maxMemOps = static_cast<unsigned>(
            gen->getU64("max_mem_ops", opts->gen.maxMemOps));
        opts->gen.fuel = gen->getU64("fuel", opts->gen.fuel);
        opts->gen.arenaBase =
            gen->getU64("arena_base", opts->gen.arenaBase);
        opts->gen.arenaWords = static_cast<unsigned>(
            gen->getU64("arena_words", opts->gen.arenaWords));
    }
    return true;
}

JsonValue
fuzzReportToJson(const fuzz::FuzzReport &report)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue::str("fuzz"));
    o.set("programs", JsonValue::u64(report.programs));
    o.set("runs", JsonValue::u64(report.runs));
    o.set("passes", JsonValue::u64(report.passes));
    o.set("ref_hangs", JsonValue::u64(report.refHangs));
    o.set("duplicates", JsonValue::u64(report.duplicates));
    o.set("interrupted", JsonValue::boolean(report.interrupted));
    JsonValue failures = JsonValue::array();
    for (const fuzz::FuzzFailure &f : report.failures) {
        JsonValue row = JsonValue::object();
        row.set("seed", JsonValue::u64(f.seed));
        row.set("config", JsonValue::str(f.config));
        row.set("outcome",
                JsonValue::str(fuzz::outcomeName(f.outcome)));
        row.set("signature", JsonValue::str(f.signature));
        row.set("unique", JsonValue::boolean(f.unique));
        row.set("result", triage::resultToJson(f.result));
        if (!f.reproPath.empty())
            row.set("repro", JsonValue::str(f.reproPath));
        failures.push(std::move(row));
    }
    o.set("failures", std::move(failures));
    return o;
}

bool
fuzzReportFromJson(const JsonValue &doc, fuzz::FuzzReport *report,
                   std::string *err)
{
    if (!doc.isObject()) {
        if (err)
            *err = "fuzz report is not an object";
        return false;
    }
    report->programs = doc.getU64("programs");
    report->runs = doc.getU64("runs");
    report->passes = doc.getU64("passes");
    report->refHangs = doc.getU64("ref_hangs");
    report->duplicates = doc.getU64("duplicates");
    report->interrupted = doc.getBool("interrupted");
    report->failures.clear();
    if (const JsonValue *failures = doc.get("failures")) {
        for (const JsonValue &row : failures->items()) {
            fuzz::FuzzFailure f;
            f.seed = row.getU64("seed");
            f.config = row.getString("config");
            if (!outcomeByName(row.getString("outcome"),
                               &f.outcome)) {
                if (err)
                    *err = "unknown fuzz outcome '" +
                           row.getString("outcome") + "'";
                return false;
            }
            f.signature = row.getString("signature");
            f.unique = row.getBool("unique");
            const JsonValue *res = row.get("result");
            if (!res ||
                !triage::resultFromJson(*res, &f.result, err))
                return false;
            f.reproPath = row.getString("repro");
            report->failures.push_back(std::move(f));
        }
    }
    return true;
}

} // namespace edge::serve
