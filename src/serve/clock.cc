#include "serve/clock.hh"

#include <thread>

namespace edge::serve {

namespace {

class RealClock final : public Clock
{
  public:
    time_point
    now() override
    {
        return std::chrono::steady_clock::now();
    }

    void
    sleepFor(std::uint64_t ms) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
};

} // namespace

Clock &
Clock::real()
{
    static RealClock clk;
    return clk;
}

} // namespace edge::serve
