/**
 * @file
 * The fabric's transport: line-delimited JSON over TCP, on plain
 * POSIX sockets (the build's no-external-dependencies rule applies
 * to the network layer too). Two shapes share the framing:
 *
 *  - Conn: a nonblocking, buffered connection for the coordinator's
 *    poll loop and the agent's main loop. Reads accumulate into an
 *    input buffer that complete lines are peeled off of; writes are
 *    queued and flushed as the socket drains. A line longer than
 *    kMaxLineBytes marks the connection dead instead of buffering
 *    without bound — the network twin of the worker's bounded stdin
 *    read.
 *
 *  - The blocking helpers (connectTo / sendLine / LineReader) for
 *    the submission client, which has nothing else to do while it
 *    waits.
 */

#ifndef EDGE_SERVE_NET_HH
#define EDGE_SERVE_NET_HH

#include <cstdint>
#include <string>

namespace edge::serve {

/** Bound on one protocol line (cell specs and results with embedded
 *  fuzz programs included). */
constexpr std::size_t kMaxLineBytes = 32u * 1024 * 1024;

/**
 * Open a listening TCP socket on `port` (0 picks an ephemeral port;
 * see boundPort). Returns the fd, or -1 with *err set.
 */
int listenOn(std::uint16_t port, std::string *err);

/** The port a listening socket is actually bound to. */
std::uint16_t boundPort(int listen_fd);

/**
 * Blocking connect to "host:port" (numeric or resolvable host).
 * Returns the fd, or -1 with *err set. A nonzero `timeoutMs` bounds
 * the TCP connect itself (nonblocking connect + poll) so a client
 * aimed at a black-holed coordinator fails fast with a structured
 * error instead of wedging in the kernel's connect timeout.
 */
int connectTo(const std::string &host_port, std::string *err,
              std::uint64_t timeoutMs = 0);

/** Blocking write of `line` plus the terminating newline. */
bool sendLine(int fd, const std::string &line, std::string *err);

/** Blocking line reader for the submission client. */
class LineReader
{
  public:
    explicit LineReader(int fd) : _fd(fd) {}

    /**
     * Read the next complete line (without the newline). False on
     * EOF, error, or an over-long line, with *err set. A nonzero
     * `timeoutMs` is an inactivity deadline: if the peer sends no
     * bytes at all for that long the read fails with a structured
     * "timed out" error — the client-side guard against a hung
     * coordinator.
     */
    bool next(std::string *line, std::string *err,
              std::uint64_t timeoutMs = 0);

  private:
    int _fd;
    std::string _buf;
    std::size_t _off = 0;
};

/** Nonblocking buffered line connection (see file comment). */
class Conn
{
  public:
    /** Takes ownership of `fd`; sets O_NONBLOCK and FD_CLOEXEC. */
    explicit Conn(int fd);
    ~Conn();
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return _fd; }
    bool dead() const { return _dead; }
    void markDead() { _dead = true; }

    /** Does the poll set need POLLOUT for this connection? */
    bool wantWrite() const { return _outOff < _out.size(); }

    /** Drain the socket into the input buffer; marks the connection
     *  dead on EOF, error, or an over-long line. */
    void onReadable();

    /** Flush as much queued output as the socket accepts. */
    void onWritable();

    /** Peel the next complete line off the input buffer. */
    bool nextLine(std::string *line);

    /** Queue `line` (newline appended) and try an immediate flush. */
    void send(const std::string &line);

  private:
    int _fd;
    bool _dead = false;
    std::string _in;
    std::size_t _inOff = 0;
    std::string _out;
    std::size_t _outOff = 0;
};

} // namespace edge::serve

#endif // EDGE_SERVE_NET_HH
