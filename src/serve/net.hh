/**
 * @file
 * The fabric's transport: line-delimited JSON over TCP, on plain
 * POSIX sockets (the build's no-external-dependencies rule applies
 * to the network layer too). Two shapes share the framing:
 *
 *  - Conn: a nonblocking, buffered connection for the coordinator's
 *    poll loop and the agent's main loop. Reads accumulate into an
 *    input buffer that complete lines are peeled off of; writes are
 *    queued and flushed as the socket drains. A line longer than
 *    kMaxLineBytes marks the connection dead instead of buffering
 *    without bound — the network twin of the worker's bounded stdin
 *    read.
 *
 *  - The blocking helpers (connectTo / sendLine / LineReader) for
 *    the submission client, which has nothing else to do while it
 *    waits.
 *
 * The coordinator never touches Conn (or poll) directly any more: it
 * speaks through the Stream/Transport interfaces below, so the
 * deterministic fabric simulation (src/serve/simnet/) can swap the
 * whole wire for an in-memory event queue while the REAL lease state
 * machine runs unmodified on top.
 *
 * Syscall discipline: every poll/read/write/connect path treats
 * EINTR as "the wait was shortened", never as a failure, and every
 * timed wait is re-armed against an absolute deadline — a signal
 * storm can delay a timeout but can never extend it.
 */

#ifndef EDGE_SERVE_NET_HH
#define EDGE_SERVE_NET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/clock.hh"

namespace edge::serve {

/** Bound on one protocol line (cell specs and results with embedded
 *  fuzz programs included). */
constexpr std::size_t kMaxLineBytes = 32u * 1024 * 1024;

/**
 * One bidirectional line-framed connection, as the coordinator sees
 * it. Conn implements it over a TCP socket; simnet::SimStream over
 * an in-memory message queue with seeded fault injection.
 */
class Stream
{
  public:
    virtual ~Stream() = default;

    virtual bool dead() const = 0;
    virtual void markDead() = 0;

    /** Does the transport's wait need write-readiness for this
     *  stream? (Always false for in-memory streams.) */
    virtual bool wantWrite() const = 0;

    /** Peel the next complete inbound line. */
    virtual bool nextLine(std::string *line) = 0;

    /** Queue `line` (newline appended) for the peer. */
    virtual void send(const std::string &line) = 0;

    /**
     * Kill the connection abruptly, so the PEER observes EOF too —
     * the chaos injector's "yank the cable" primitive (TCP: shutdown
     * both directions; simnet: both endpoints die).
     */
    virtual void sever() = 0;

    /** The pollable fd, or -1 when there is none (in-memory). */
    virtual int fd() const { return -1; }

    /** Socket-readiness hooks, driven by TcpTransport::pump; no-ops
     *  for streams that have no socket. */
    virtual void onReadable() {}
    virtual void onWritable() {}
};

/**
 * The coordinator's whole network surface: one listening endpoint
 * plus a readiness turn over its accepted streams. Fabric owns the
 * streams (inside its peer table) and hands them to pump each turn;
 * the transport owns only the listener.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Bind the listening endpoint (0 = ephemeral). */
    virtual bool listen(std::uint16_t port, std::string *err) = 0;
    /** The bound port (after listen). */
    virtual std::uint16_t port() const = 0;

    /**
     * One network turn: wait up to `timeoutMs` for activity, move
     * bytes on `streams`, and append newly accepted connections to
     * *accepted. On a virtual transport this is where simulated time
     * advances.
     */
    virtual void pump(int timeoutMs,
                      const std::vector<Stream *> &streams,
                      std::vector<std::unique_ptr<Stream>> *accepted)
        = 0;
};

/**
 * Open a listening TCP socket on `port` (0 picks an ephemeral port;
 * see boundPort). Returns the fd, or -1 with *err set.
 */
int listenOn(std::uint16_t port, std::string *err);

/** The port a listening socket is actually bound to. */
std::uint16_t boundPort(int listen_fd);

/**
 * Blocking connect to "host:port" (numeric or resolvable host).
 * Returns the fd, or -1 with *err set. A nonzero `timeoutMs` bounds
 * the TCP connect itself (nonblocking connect + poll) so a client
 * aimed at a black-holed coordinator fails fast with a structured
 * error instead of wedging in the kernel's connect timeout.
 */
int connectTo(const std::string &host_port, std::string *err,
              std::uint64_t timeoutMs = 0);

/** Blocking write of `line` plus the terminating newline. */
bool sendLine(int fd, const std::string &line, std::string *err);

/** Blocking line reader for the submission client. */
class LineReader
{
  public:
    explicit LineReader(int fd) : _fd(fd) {}

    /**
     * Read the next complete line (without the newline). False on
     * EOF, error, or an over-long line, with *err set. A nonzero
     * `timeoutMs` is an inactivity deadline: if the peer sends no
     * bytes at all for that long the read fails with a structured
     * "timed out" error — the client-side guard against a hung
     * coordinator. The deadline is absolute per wait: EINTR re-arms
     * the poll with the time remaining, not the full timeout.
     */
    bool next(std::string *line, std::string *err,
              std::uint64_t timeoutMs = 0);

  private:
    int _fd;
    std::string _buf;
    std::size_t _off = 0;
};

/** Nonblocking buffered line connection (see file comment). */
class Conn final : public Stream
{
  public:
    /** Takes ownership of `fd`; sets O_NONBLOCK and FD_CLOEXEC. */
    explicit Conn(int fd);
    ~Conn() override;
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const override { return _fd; }
    bool dead() const override { return _dead; }
    void markDead() override { _dead = true; }

    /** Does the poll set need POLLOUT for this connection? */
    bool wantWrite() const override { return _outOff < _out.size(); }

    /** Drain the socket into the input buffer; marks the connection
     *  dead on EOF, error, or an over-long line. */
    void onReadable() override;

    /** Flush as much queued output as the socket accepts. */
    void onWritable() override;

    /** Peel the next complete line off the input buffer. */
    bool nextLine(std::string *line) override;

    /** Queue `line` (newline appended) and try an immediate flush. */
    void send(const std::string &line) override;

    /** Shut the socket down both ways so the peer sees EOF. */
    void sever() override;

  private:
    int _fd;
    bool _dead = false;
    std::string _in;
    std::size_t _inOff = 0;
    std::string _out;
    std::size_t _outOff = 0;
};

/** The production Transport: a nonblocking TCP listener plus one
 *  poll() turn over the fabric's live connections. */
class TcpTransport final : public Transport
{
  public:
    TcpTransport() = default;
    ~TcpTransport() override;
    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    bool listen(std::uint16_t port, std::string *err) override;
    std::uint16_t port() const override { return _port; }
    void pump(int timeoutMs, const std::vector<Stream *> &streams,
              std::vector<std::unique_ptr<Stream>> *accepted)
        override;

  private:
    int _listenFd = -1;
    std::uint16_t _port = 0;
};

} // namespace edge::serve

#endif // EDGE_SERVE_NET_HH
