#include "serve/simnet/simnet.hh"

#include <cstring>

#include "common/hash.hh"

namespace edge::serve::simnet {

namespace {

/** Global fired-event cap: any legitimate world is far below this;
 *  past it the schedule is livelocked and the run is abandoned. */
constexpr std::uint64_t kMaxFires = 2'000'000;

bool
peel(std::string &buf, std::size_t &off, std::string *line)
{
    std::size_t nl = buf.find('\n', off);
    if (nl == std::string::npos) {
        if (off > 0 && off >= buf.size()) {
            buf.clear();
            off = 0;
        }
        return false;
    }
    line->assign(buf, off, nl - off);
    off = nl + 1;
    if (off > 256 * 1024) {
        buf.erase(0, off);
        off = 0;
    }
    return true;
}

Clock::time_point
atMsToTp(std::uint64_t atMs)
{
    return Clock::time_point{} + std::chrono::milliseconds(atMs);
}

} // namespace

const char *
simProfileName(SimProfile p)
{
    switch (p) {
    case SimProfile::None:
        return "none";
    case SimProfile::Drop:
        return "drop";
    case SimProfile::Delay:
        return "delay";
    case SimProfile::Partition:
        return "partition";
    case SimProfile::CrashRestart:
        return "crash-restart";
    case SimProfile::Liar:
        return "liar";
    case SimProfile::Heavy:
        return "heavy";
    }
    return "none";
}

bool
simProfileByName(const std::string &name, SimProfile *out)
{
    static const SimProfile all[] = {
        SimProfile::None,      SimProfile::Drop,
        SimProfile::Delay,     SimProfile::Partition,
        SimProfile::CrashRestart, SimProfile::Liar,
        SimProfile::Heavy,
    };
    for (SimProfile p : all) {
        if (name == simProfileName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

const char *
evKindName(EvKind k)
{
    switch (k) {
    case EvKind::Drop:
        return "drop";
    case EvKind::Dup:
        return "dup";
    case EvKind::Delay:
        return "delay";
    case EvKind::SlowExec:
        return "slow-exec";
    case EvKind::Lie:
        return "lie";
    case EvKind::AgentCrash:
        return "agent-crash";
    case EvKind::CoordCrash:
        return "coord-crash";
    }
    return "drop";
}

bool
evKindByName(const std::string &name, EvKind *out)
{
    static const EvKind all[] = {
        EvKind::Drop,       EvKind::Dup,  EvKind::Delay,
        EvKind::SlowExec,   EvKind::Lie,  EvKind::AgentCrash,
        EvKind::CoordCrash,
    };
    for (EvKind k : all) {
        if (name == evKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

// --- SimNet ---------------------------------------------------------

SimNet::SimNet(std::uint64_t seed, SimProfile profile)
    : _seed(seed), _profile(profile)
{
}

SimNet::~SimNet() = default;

namespace {
std::string
scriptKey(EvKind kind, const std::string &edge, std::uint64_t ord)
{
    return std::string(evKindName(kind)) + "|" + edge + "|" +
           std::to_string(ord);
}
} // namespace

void
SimNet::setScript(const std::vector<ChaosEvent> &events)
{
    _scripted = true;
    _script.clear();
    for (const ChaosEvent &e : events)
        _script.emplace(scriptKey(e.kind, e.edge, e.ord), e);
}

const ChaosEvent *
SimNet::scriptMatch(EvKind kind, const std::string &edge,
                    std::uint64_t ord) const
{
    auto it = _script.find(scriptKey(kind, edge, ord));
    return it == _script.end() ? nullptr : &it->second;
}

void
SimNet::at(std::uint64_t atMs, std::function<void()> fn)
{
    std::uint64_t now = _clock.nowMs();
    _queue.push({atMs < now ? now : atMs, _seq++, std::move(fn)});
}

void
SimNet::after(std::uint64_t delayMs, std::function<void()> fn)
{
    at(_clock.nowMs() + delayMs, std::move(fn));
}

void
SimNet::runFor(std::uint64_t ms)
{
    const std::uint64_t end = _clock.nowMs() + ms;
    while (!_queue.empty() && _queue.top().atMs <= end) {
        if (++_firesTotal > kMaxFires) {
            _livelock = true;
            while (!_queue.empty())
                _queue.pop();
            break;
        }
        QEv ev = _queue.top();
        _queue.pop();
        _clock.advanceTo(atMsToTp(ev.atMs));
        ev.fn(); // may throw SimCrash (queue already consistent)
    }
    // No-wait fast-forward: idle simulated time costs nothing real.
    _clock.advanceTo(atMsToTp(end));
}

void
SimNet::recordFired(ChaosEvent ev)
{
    _fired.push_back(std::move(ev));
}

std::uint64_t
SimNet::registerStream(SimStream *s)
{
    std::uint64_t id = ++_streamIds;
    _streams.emplace(id, s);
    return id;
}

void
SimNet::unregisterStream(std::uint64_t id)
{
    _streams.erase(id);
}

void
SimNet::killStream(std::uint64_t id)
{
    auto it = _streams.find(id);
    if (it == _streams.end() || it->second->_dead)
        return;
    SimStream *s = it->second;
    s->_dead = true;
    if (s->_onWake)
        s->_onWake();
}

std::unique_ptr<SimStream>
SimNet::connect(const std::string &edgeBase, bool chaosArmed,
                std::function<void()> onWake)
{
    if (!_acceptor || _acceptor->port() == 0)
        return nullptr; // nobody listening (coordinator down)
    std::unique_ptr<SimStream> near(new SimStream);
    std::unique_ptr<SimStream> far(new SimStream);
    near->_net = this;
    far->_net = this;
    near->_edge = edgeBase + ">c";
    far->_edge = edgeBase + "<c";
    near->_chaos = chaosArmed;
    far->_chaos = chaosArmed;
    near->_id = registerStream(near.get());
    far->_id = registerStream(far.get());
    near->_peerId = far->_id;
    far->_peerId = near->_id;
    near->_onWake = std::move(onWake);
    _acceptor->enqueue(std::move(far));
    return near;
}

std::uint64_t
SimNet::draw(const char *domain, const std::string &edge,
             std::uint64_t ord) const
{
    Fnv1a f;
    f.mix64(_seed);
    f.mix(domain, std::strlen(domain));
    f.mix(edge);
    f.mix64(ord);
    std::uint64_t h = f.state;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

std::uint64_t
SimNet::baseLatencyMs(const std::string &edge, std::uint64_t ord)
{
    return 1 + draw("lat", edge, ord) % 4;
}

MsgFate
SimNet::msgFate(const std::string &edge, std::uint64_t ord,
                bool chaosArmed)
{
    MsgFate fate;
    if (!chaosArmed)
        return fate;

    if (_scripted) {
        if (scriptMatch(EvKind::Drop, edge, ord)) {
            fate.drop = true;
            recordFired({EvKind::Drop, edge, ord, 0, 0});
            return fate;
        }
        if (scriptMatch(EvKind::Dup, edge, ord)) {
            fate.dup = true;
            recordFired({EvKind::Dup, edge, ord, 0, 0});
        }
        if (const ChaosEvent *e =
                scriptMatch(EvKind::Delay, edge, ord)) {
            fate.extraMs = e->param;
            recordFired(*e);
        }
        return fate;
    }

    const bool partitioned = _profile == SimProfile::Partition ||
                             _profile == SimProfile::Heavy;
    if (partitioned) {
        // One blackout window per edge direction, derived from the
        // seed; every message inside it is recorded as an individual
        // Drop so ddmin can thin a partition message by message.
        std::uint64_t ws = 1000 + draw("pwin", edge, 0) % 8000;
        std::uint64_t wl = 400 + draw("plen", edge, 0) % 1600;
        std::uint64_t now = _clock.nowMs();
        if (now >= ws && now < ws + wl) {
            fate.drop = true;
            recordFired({EvKind::Drop, edge, ord, 0, 0});
            return fate;
        }
    }

    unsigned dropPct = 0, dupPct = 0, delayPct = 0;
    std::uint64_t delaySpanMs = 0;
    switch (_profile) {
    case SimProfile::Drop:
        dropPct = 5;
        dupPct = 3;
        delayPct = 15;
        delaySpanMs = 350;
        break;
    case SimProfile::Delay:
        delayPct = 40;
        delaySpanMs = 750;
        break;
    case SimProfile::Partition:
        dupPct = 2;
        break;
    case SimProfile::Heavy:
        dropPct = 4;
        dupPct = 2;
        delayPct = 25;
        delaySpanMs = 500;
        break;
    case SimProfile::None:
    case SimProfile::CrashRestart:
    case SimProfile::Liar:
        break;
    }

    if (dropPct != 0 && draw("drop", edge, ord) % 100 < dropPct) {
        fate.drop = true;
        recordFired({EvKind::Drop, edge, ord, 0, 0});
        return fate;
    }
    if (dupPct != 0 && draw("dup", edge, ord) % 100 < dupPct) {
        fate.dup = true;
        recordFired({EvKind::Dup, edge, ord, 0, 0});
    }
    if (delayPct != 0 && draw("delay", edge, ord) % 100 < delayPct) {
        fate.extraMs = 50 + draw("dms", edge, ord) % delaySpanMs;
        recordFired({EvKind::Delay, edge, ord, fate.extraMs, 0});
    }
    return fate;
}

std::uint64_t
SimNet::execExtraMs(const std::string &agentEdge, std::uint64_t ord)
{
    if (_scripted) {
        if (const ChaosEvent *e =
                scriptMatch(EvKind::SlowExec, agentEdge, ord)) {
            recordFired(*e);
            return e->param;
        }
        return 0;
    }
    unsigned pct = 0;
    std::uint64_t spanMs = 0;
    switch (_profile) {
    case SimProfile::Drop:
        pct = 10;
        spanMs = 400;
        break;
    case SimProfile::Delay:
        pct = 25;
        spanMs = 500;
        break;
    case SimProfile::Heavy:
        pct = 20;
        spanMs = 500;
        break;
    default:
        break;
    }
    if (pct == 0 || draw("slow", agentEdge, ord) % 100 >= pct)
        return 0;
    std::uint64_t extra = 200 + draw("slowms", agentEdge, ord) % spanMs;
    recordFired({EvKind::SlowExec, agentEdge, ord, extra, 0});
    return extra;
}

bool
SimNet::execLie(const std::string &agentEdge, std::uint64_t ord)
{
    if (_scripted) {
        if (scriptMatch(EvKind::Lie, agentEdge, ord)) {
            recordFired({EvKind::Lie, agentEdge, ord, 0, 0});
            return true;
        }
        return false;
    }
    // One designated liar (agent 0) that lies on EVERY execution:
    // deterministic, and with auditFrac=1 every lie is caught, the
    // liar is quarantined, and the report still carries true bytes.
    if (_profile == SimProfile::Liar && agentEdge == "a0") {
        recordFired({EvKind::Lie, agentEdge, ord, 0, 0});
        return true;
    }
    return false;
}

std::vector<ChaosEvent>
SimNet::crashPlan(unsigned nAgents, std::uint64_t horizonMs)
{
    std::vector<ChaosEvent> plan;
    if (_scripted) {
        for (const auto &kv : _script)
            if (kv.second.kind == EvKind::AgentCrash ||
                kv.second.kind == EvKind::CoordCrash)
                plan.push_back(kv.second);
        return plan;
    }
    if (_profile != SimProfile::CrashRestart &&
        _profile != SimProfile::Heavy)
        return plan;

    unsigned nCoord =
        1 + static_cast<unsigned>(draw("ncc", "coord", 0) % 2);
    std::uint64_t t = 0;
    for (unsigned i = 0; i < nCoord; ++i) {
        t += 800 + draw("ccat", "coord", i) % 6000;
        if (t >= horizonMs)
            break;
        plan.push_back({EvKind::CoordCrash, "coord", i, t,
                        200 + draw("ccr", "coord", i) % 800});
        t += 2000;
    }
    for (unsigned a = 0; a < nAgents; ++a) {
        std::string edge = "a" + std::to_string(a);
        if (draw("ac", edge, 0) % 100 >= 40)
            continue;
        std::uint64_t atMs = 500 + draw("acat", edge, 0) % 8000;
        if (atMs >= horizonMs)
            continue;
        plan.push_back({EvKind::AgentCrash, edge, 0, atMs,
                        300 + draw("acr", edge, 0) % 1500});
    }
    return plan;
}

void
SimNet::deliverFrom(SimStream *src, const std::string &line)
{
    if (src->_dead)
        return;
    std::uint64_t ord = src->_msgOrd++;
    std::uint64_t lat = baseLatencyMs(src->_edge, ord);
    MsgFate fate = msgFate(src->_edge, ord, src->_chaos);
    if (fate.drop)
        return;
    std::string framed = line;
    framed.push_back('\n');
    scheduleDelivery(src->_peerId, framed, lat + fate.extraMs);
    if (fate.dup)
        scheduleDelivery(src->_peerId, framed,
                         lat + fate.extraMs + 3 +
                             draw("dupms", src->_edge, ord) % 40);
}

void
SimNet::scheduleDelivery(std::uint64_t peerId, std::string framed,
                         std::uint64_t delayMs)
{
    after(delayMs, [this, peerId, framed = std::move(framed)] {
        auto it = _streams.find(peerId);
        if (it == _streams.end() || it->second->_dead)
            return; // receiver gone: the message evaporates
        it->second->pushLine(framed);
    });
}

// --- SimStream ------------------------------------------------------

SimStream::~SimStream()
{
    if (!_net)
        return;
    _net->unregisterStream(_id);
    // Notify the peer asynchronously (EOF semantics); scheduled so a
    // destructor can never reenter a half-destroyed object graph.
    SimNet *net = _net;
    std::uint64_t peer = _peerId;
    net->after(0, [net, peer] { net->killStream(peer); });
}

bool
SimStream::nextLine(std::string *line)
{
    return peel(_in, _inOff, line);
}

void
SimStream::send(const std::string &line)
{
    if (_dead)
        return;
    _net->deliverFrom(this, line);
}

void
SimStream::sever()
{
    if (_dead)
        return;
    _dead = true;
    SimNet *net = _net;
    std::uint64_t peer = _peerId;
    net->after(0, [net, peer] { net->killStream(peer); });
}

void
SimStream::pushLine(const std::string &framed)
{
    if (_dead)
        return;
    _in.append(framed);
    if (_onWake)
        _onWake();
}

// --- SimTransport ---------------------------------------------------

SimTransport::~SimTransport()
{
    if (_net->acceptor() == this)
        _net->setAcceptor(nullptr);
}

bool
SimTransport::listen(std::uint16_t, std::string *)
{
    _listening = true;
    _net->setAcceptor(this);
    return true;
}

void
SimTransport::pump(int timeoutMs, const std::vector<Stream *> &,
                   std::vector<std::unique_ptr<Stream>> *accepted)
{
    _net->runFor(timeoutMs <= 0
                     ? 0
                     : static_cast<std::uint64_t>(timeoutMs));
    if (accepted)
        for (auto &s : _pending)
            accepted->push_back(std::move(s));
    _pending.clear();
}

void
SimTransport::enqueue(std::unique_ptr<SimStream> s)
{
    _pending.push_back(std::move(s));
}

} // namespace edge::serve::simnet
