/**
 * @file
 * The fabric-simulation explorer: derives a whole simulated world —
 * coordinator, N agents, M submit clients, their cells, and a
 * synthetic truth oracle — from one seed, runs it on virtual time
 * over a SimNet, and checks the fabric's invariants after every
 * campaign:
 *
 *  - no cell lost (every outcome ran) or doubly completed,
 *  - the report byte-identical to the single-host truth,
 *  - durable-ack honored across coordinator crash/restart,
 *  - quarantine only ever for genuinely corrupt agents (idempotent),
 *  - no lease leaked past campaign completion,
 *  - no client starved past the horizon.
 *
 * A violating seed is captured as a self-contained `.fabsim.json`
 * (seed, world parameters, violation, recorded event schedule) that
 * `--replay` reruns bit-identically in scripted mode, and
 * `--minimize` delta-debugs with triage::minimizeOrdinals down to a
 * few-event schedule.
 */

#ifndef EDGE_SERVE_SIMNET_EXPLORER_HH
#define EDGE_SERVE_SIMNET_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/simnet/simnet.hh"
#include "triage/jsonio.hh"

namespace edge::serve::simnet {

/** All program content in a simulated world is this one constant
 *  hash: cells are never built or executed (the oracle synthesizes
 *  results), so cell identity reduces to a cheap FNV over config. */
constexpr std::uint64_t kSimProgramHash = 0x51edce11u;

/** Virtual-time budget per world; a world that can't finish its
 *  campaigns inside it has starved a client. */
constexpr std::uint64_t kHorizonMs = 600'000;

struct ExplorerOptions
{
    std::uint64_t seedLo = 0;
    std::uint64_t seedHi = 99; ///< inclusive
    SimProfile profile = SimProfile::None;
    /** World shape overrides (0 = derive from the seed). */
    unsigned agents = 0;
    unsigned cells = 0;
    unsigned clients = 0;
    /** Fabric knob overrides (defaults derive per profile/seed). */
    std::uint64_t hedgeAfterMs = 0;
    double auditFrac = -1.0; ///< <0 = derive
    std::size_t maxQueued = 0;
    /** Arm the planted hedge-revocation regression (only has an
     *  effect in EDGE_MUTATIONS builds). */
    bool mutateNoHedgeRevoke = false;
    /** Where `.fabsim.json` captures (and crash-profile journal
     *  scratch files) land. */
    std::string fabsimDir = "fabsim";
};

/** Fully derived parameters of one world (what a capture records). */
struct WorldParams
{
    std::uint64_t seed = 0;
    SimProfile profile = SimProfile::None;
    unsigned agents = 1;
    unsigned cells = 3;
    unsigned clients = 1;
    std::uint64_t hedgeAfterMs = 0;
    double auditFrac = 0.0;
    std::size_t maxQueued = 64;
    bool mutateNoHedgeRevoke = false;
    /** Journal scratch file ("" = journal-less world; crash profiles
     *  need one for the durable-ack invariant). */
    std::string journalPath;
};

struct Violation
{
    std::string invariant; ///< "" = clean run
    std::string detail;
};

struct WorldResult
{
    Violation violation;
    /** The recorded chaos schedule (replay/minimize input). */
    std::vector<ChaosEvent> schedule;
};

/** Derive one world's parameters from (seed, options). */
WorldParams deriveWorld(std::uint64_t seed,
                        const ExplorerOptions &opts);

/**
 * Run one world. Generative mode when `script` is null (chaos drawn
 * from the seed and recorded); scripted mode otherwise (ONLY the
 * listed events are injected — the replay/ddmin path).
 */
WorldResult runWorld(const WorldParams &params,
                     const std::vector<ChaosEvent> *script);

/** Serialize / parse the self-contained `.fabsim.json` capture. */
triage::JsonValue fabsimToJson(const WorldParams &params,
                               const Violation &violation,
                               const std::vector<ChaosEvent> &sched);
bool fabsimFromJson(const triage::JsonValue &doc, WorldParams *params,
                    Violation *violation,
                    std::vector<ChaosEvent> *sched, std::string *err);

/**
 * Seed sweep: run [seedLo, seedHi] in generative mode, capture every
 * violating seed to a `.fabsim.json` in opts.fabsimDir. Returns the
 * process exit code (0 clean; the fabric-sim-violation code
 * otherwise).
 */
int exploreMain(const ExplorerOptions &opts);

/**
 * Replay a `.fabsim.json` in scripted mode and report whether the
 * recorded violation reproduces (exit 0) or not. With `minimize`,
 * first ddmin the schedule to a locally 1-minimal event set and
 * write `<file>.min.json`.
 */
int replayMain(const std::string &file, bool minimize,
               const std::string &fabsimDir);

} // namespace edge::serve::simnet

#endif // EDGE_SERVE_SIMNET_EXPLORER_HH
