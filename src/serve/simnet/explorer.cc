/**
 * @file
 * Implementation of the fabric-simulation explorer: world derivation,
 * the simulated agent/client actors, the campaign loop with its
 * invariant checks, `.fabsim.json` capture serialization, and the
 * replay / ddmin drivers. See explorer.hh for the contract.
 */

#include "serve/simnet/explorer.hh"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>

#include "chaos/sim_error.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "serve/fabric.hh"
#include "serve/proto.hh"
#include "super/cell.hh"
#include "triage/minimize.hh"
#include "triage/result_json.hh"

namespace edge::serve::simnet {

namespace {

namespace fs = std::filesystem;
using super::CellOutcome;
using super::CellSpec;
using triage::JsonValue;

/** World-derivation draw, seeded like SimNet's wire draws but in its
 *  own domains so world shape and wire chaos never alias. */
std::uint64_t
wdraw(std::uint64_t seed, const char *domain, std::uint64_t a = 0,
      std::uint64_t b = 0)
{
    Fnv1a f;
    f.mix64(seed);
    f.mix(domain, std::strlen(domain));
    f.mix64(a);
    f.mix64(b);
    std::uint64_t h = f.state;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

std::vector<CellSpec>
makeCampaign(const WorldParams &p, unsigned k)
{
    std::vector<CellSpec> cells;
    cells.reserve(p.cells);
    for (unsigned i = 0; i < p.cells; ++i) {
        CellSpec c;
        c.program.kernel = "parserish";
        c.program.params.iterations = 64;
        c.program.params.seed = 1 + k;
        c.programHash = kSimProgramHash;
        c.config.rngSeed = p.seed * 1000003ull + k * 101ull + i;
        c.maxCycles = 100000;
        cells.push_back(std::move(c));
    }
    return cells;
}

/** The synthetic truth oracle: a clean, fully deterministic result
 *  derived from the cell's identity. Cells are never executed. */
sim::RunResult
synthResult(const CellSpec &c)
{
    std::uint64_t h = super::cellHash(c);
    sim::RunResult r;
    r.cycles = 1000 + h % 100000;
    r.committedBlocks = 10 + h % 1000;
    r.committedInsts = 500 + h % 50000;
    r.halted = true;
    r.archMatch = true;
    r.rngSeed = c.config.rngSeed;
    r.chaosSeed = c.config.chaos.seed;
    r.aluIssues = h % 1009;
    r.loads = h % 97;
    r.stores = h % 89;
    return r;
}

std::string
lineFromRows(const std::vector<sim::RunResult> &rows)
{
    JsonValue body = JsonValue::array();
    for (const sim::RunResult &r : rows)
        body.push(triage::resultToJson(r));
    return proto::report(std::move(body));
}

struct World;

/** A simulated execution agent: connects, heartbeats, answers assign
 *  messages out of the oracle after a seeded virtual "execution". */
struct SimAgent
{
    World *w = nullptr;
    unsigned idx = 0;
    unsigned slots = 1;
    std::unique_ptr<SimStream> conn;
    std::uint64_t gen = 0; ///< connection generation (stale-timer guard)
    std::uint64_t connCount = 0;
    std::uint64_t execOrd = 0; ///< stable across reconnects
    std::uint64_t heartbeatMs = 200;
    bool welcomed = false;
    bool down = false; ///< crashed, awaiting restart
    unsigned inflight = 0;

    void connect();
    void lost(std::uint64_t retryMs);
    void onWake();
    void beatTick(std::uint64_t myGen);
    void handleAssign(const JsonValue &doc);
    void crash(std::uint64_t restartMs);
};

/** A simulated submit client: submits its campaign index, waits for
 *  the report, honors retry-after sheds, reconnects on severed
 *  connections (e.g. across a coordinator crash). */
struct SimClient
{
    World *w = nullptr;
    unsigned idx = 0;
    std::unique_ptr<SimStream> conn;
    std::uint64_t gen = 0;
    std::uint64_t connCount = 0;
    bool done = false;
    bool gaveUp = false;
    unsigned attempts = 0;
    unsigned shedRetries = 0;
    std::string report;

    void connect();
    void onWake();
};

struct World
{
    WorldParams p;
    SimNet net; ///< declared before every stream owner: dies last
    std::vector<std::vector<CellSpec>> campaigns;
    std::map<std::uint64_t, sim::RunResult> oracle;
    std::vector<std::string> truth;  ///< expected report line per campaign
    std::vector<std::string> served; ///< line actually sent ("" = not yet)
    std::vector<std::unique_ptr<SimAgent>> agents;
    std::vector<std::unique_ptr<SimClient>> clients;
    std::unique_ptr<SimTransport> transport;
    std::unique_ptr<Fabric> fabric;
    std::uint64_t restartDelayMs = 0; ///< set by a CoordCrash event
    Violation violation;

    explicit World(const WorldParams &wp)
        : p(wp), net(wp.seed, wp.profile)
    {
    }

    void
    fail(const char *invariant, std::string detail)
    {
        if (violation.invariant.empty())
            violation = {invariant, std::move(detail)};
    }
};

// --- SimAgent -------------------------------------------------------

void
SimAgent::connect()
{
    if (down)
        return;
    std::string base =
        "a" + std::to_string(idx) + "." + std::to_string(connCount++);
    ++gen;
    std::uint64_t myGen = gen;
    welcomed = false;
    inflight = 0;
    conn = w->net.connect(base, /*chaosArmed=*/true, [this, myGen] {
        if (gen == myGen)
            onWake();
    });
    if (!conn) {
        // No coordinator listening (it crashed); retry shortly.
        w->net.after(73, [this, myGen] {
            if (gen == myGen && !down)
                connect();
        });
        return;
    }
    conn->send(proto::hello("sim-a" + std::to_string(idx), slots));
    // Welcome timeout: the hello (or the welcome) may have been
    // dropped by wire chaos — reconnect rather than wedge.
    w->net.after(1000, [this, myGen] {
        if (gen == myGen && conn && !welcomed)
            lost(47);
    });
}

void
SimAgent::lost(std::uint64_t retryMs)
{
    conn.reset();
    ++gen; // invalidate timers and in-flight executions
    std::uint64_t myGen = gen;
    w->net.after(retryMs, [this, myGen] {
        if (gen == myGen && !down)
            connect();
    });
}

void
SimAgent::onWake()
{
    if (!conn)
        return;
    if (conn->dead()) {
        lost(61);
        return;
    }
    std::string line;
    while (conn && !conn->dead() && conn->nextLine(&line)) {
        JsonValue doc;
        std::string type, err;
        if (!proto::parse(line, &doc, &type, &err))
            continue;
        if (type == "welcome") {
            welcomed = true;
            heartbeatMs = doc.getU64("heartbeat_ms", 200);
            std::uint64_t myGen = gen;
            w->net.after(heartbeatMs, [this, myGen] {
                beatTick(myGen);
            });
        } else if (type == "assign") {
            handleAssign(doc);
        }
        // shutdown: ignore; the explorer tears worlds down itself.
    }
}

void
SimAgent::beatTick(std::uint64_t myGen)
{
    if (gen != myGen || !conn || conn->dead())
        return;
    conn->send(proto::heartbeat(inflight, 0));
    w->net.after(heartbeatMs, [this, myGen] { beatTick(myGen); });
}

void
SimAgent::handleAssign(const JsonValue &doc)
{
    std::uint64_t lease = doc.getU64("lease");
    const JsonValue *cj = doc.get("cell");
    CellSpec cell;
    std::string err;
    if (!cj || !super::cellFromJson(*cj, &cell, &err))
        return;
    // cellToJson doesn't carry the program hash; restore the sim
    // constant so cellHash() stays a cheap pure function (a zero hash
    // would make it build the program).
    cell.programHash = kSimProgramHash;
    std::uint64_t h = super::cellHash(cell);
    std::string aedge = "a" + std::to_string(idx);
    std::uint64_t ord = execOrd++;
    std::uint64_t ms = 5 + wdraw(w->p.seed, "execbase", idx, ord) % 25;
    ms += w->net.execExtraMs(aedge, ord);
    bool lie = w->net.execLie(aedge, ord);
    ++inflight;
    std::uint64_t myGen = gen;
    w->net.after(ms, [this, myGen, lease, h, lie] {
        if (gen != myGen || !conn || conn->dead())
            return;
        if (inflight > 0)
            --inflight;
        sim::RunResult r;
        auto it = w->oracle.find(h);
        if (it != w->oracle.end())
            r = it->second;
        if (lie)
            r.cycles ^= 1; // one corrupt bit: the audit's whole job
        conn->send(proto::result(lease, h, r));
    });
}

void
SimAgent::crash(std::uint64_t restartMs)
{
    conn.reset();
    ++gen;
    down = true;
    std::uint64_t myGen = gen;
    w->net.after(restartMs, [this, myGen] {
        if (gen == myGen) {
            down = false;
            connect();
        }
    });
}

// --- SimClient ------------------------------------------------------

void
SimClient::connect()
{
    if (done || gaveUp)
        return;
    if (++attempts > 200) {
        gaveUp = true;
        return;
    }
    std::string base =
        "c" + std::to_string(idx) + "." + std::to_string(connCount++);
    ++gen;
    std::uint64_t myGen = gen;
    conn = w->net.connect(base, /*chaosArmed=*/false, [this, myGen] {
        if (gen == myGen)
            onWake();
    });
    if (!conn) {
        w->net.after(97, [this, myGen] {
            if (gen == myGen)
                connect();
        });
        return;
    }
    JsonValue c = JsonValue::object();
    c.set("kind", JsonValue::str("fabsim"));
    c.set("index", JsonValue::u64(idx));
    conn->send(proto::submit(c));
}

void
SimClient::onWake()
{
    if (done || gaveUp || !conn)
        return;
    if (conn->dead()) {
        conn.reset();
        ++gen;
        std::uint64_t myGen = gen;
        w->net.after(89, [this, myGen] {
            if (gen == myGen)
                connect();
        });
        return;
    }
    std::string line;
    while (conn && conn->nextLine(&line)) {
        JsonValue doc;
        std::string type, err;
        if (!proto::parse(line, &doc, &type, &err))
            continue;
        if (type == "report") {
            report = line;
            done = true;
            conn.reset();
            ++gen;
            return;
        }
        if (type == "error") {
            std::uint64_t ra = doc.getU64("retry_after_ms");
            conn.reset();
            ++gen;
            std::uint64_t myGen = gen;
            if (ra != 0 && shedRetries < 10) {
                // Shed by admission control: honor the hint.
                ++shedRetries;
                std::uint64_t waitMs =
                    ra < 50 ? 50 : (ra > 5000 ? 5000 : ra);
                w->net.after(waitMs, [this, myGen] {
                    if (gen == myGen)
                        connect();
                });
            } else {
                gaveUp = true;
            }
            return;
        }
    }
}

// --- coordinator lifecycle ------------------------------------------

void
buildFabric(World &w, bool resume)
{
    w.transport = std::make_unique<SimTransport>(&w.net);
    FabricOptions fo;
    fo.transport = w.transport.get();
    fo.clock = &w.net.clock();
    fo.heartbeatMs = 200;
    fo.heartbeatTimeoutMs = 900;
    fo.leaseMs = 3000;
    fo.maxReassign = 8;
    fo.localJobs = 2;
    fo.localFallback = true;
    fo.hedgeAfterMs = w.p.hedgeAfterMs;
    fo.hedgeMax = 1;
    fo.auditFrac = w.p.auditFrac;
    fo.maxQueued = w.p.maxQueued;
    fo.journalPath = w.p.journalPath;
    fo.resume = resume && !w.p.journalPath.empty();
    fo.mutateNoHedgeRevoke = w.p.mutateNoHedgeRevoke;
    World *wp = &w;
    fo.localExec = [wp](const CellSpec &cell) {
        CellSpec c = cell;
        c.programHash = kSimProgramHash;
        auto it = wp->oracle.find(super::cellHash(c));
        return it != wp->oracle.end() ? it->second : sim::RunResult{};
    };
    w.fabric = std::make_unique<Fabric>(std::move(fo));
    std::string err;
    if (!w.fabric->start(&err))
        panic("simnet: fabric start failed: %s", err.c_str());
}

/** Rebuild the coordinator after a SimCrash unwound out of it:
 *  whatever the journal's group commit had flushed is what restart
 *  sees — exactly the durable-ack contract under test. */
void
coordRestart(World &w)
{
    w.fabric.reset();
    w.transport.reset(); // agents/clients see severed connections
    std::uint64_t delay = w.restartDelayMs ? w.restartDelayMs : 300;
    w.restartDelayMs = 0;
    try {
        w.net.runFor(delay); // the outage window
    } catch (const SimCrash &) {
        // A second crash while down is a no-op: already down.
    }
    buildFabric(w, /*resume=*/true);
}

void
checkCampaign(World &w, std::uint64_t k,
              const std::vector<CellOutcome> &outs,
              std::uint64_t preDone, std::uint64_t preLeak,
              std::uint64_t preQuar)
{
    const std::size_t n = w.campaigns[k].size();
    for (std::size_t i = 0; i < outs.size(); ++i) {
        if (!outs[i].ran) {
            w.fail("cell-lost",
                   strfmt("campaign %llu cell %zu never completed",
                          (unsigned long long)k, i));
            return;
        }
    }
    std::uint64_t done =
        w.fabric->completed() + w.fabric->skipped();
    if (done - preDone != n) {
        w.fail("double-completion",
               strfmt("campaign %llu: %llu completions for %zu cells",
                      (unsigned long long)k,
                      (unsigned long long)(done - preDone), n));
        return;
    }
    std::uint64_t leaked = w.fabric->leasesLeaked();
    if (leaked > preLeak) {
        w.fail("lease-leak",
               strfmt("campaign %llu ended with %llu live lease(s)",
                      (unsigned long long)k,
                      (unsigned long long)(leaked - preLeak)));
        return;
    }
    std::vector<sim::RunResult> rows;
    rows.reserve(outs.size());
    for (const CellOutcome &o : outs)
        rows.push_back(o.result);
    std::string line = lineFromRows(rows);
    if (line != w.truth[k]) {
        w.fail("report-identity",
               strfmt("campaign %llu report differs from the "
                      "single-host truth",
                      (unsigned long long)k));
        return;
    }
    if (w.p.profile != SimProfile::Liar) {
        // No agent in a non-Liar world is corrupt; quarantining one
        // would be a false positive.
        std::uint64_t q = w.fabric->agentsQuarantined();
        if (q > preQuar) {
            w.fail("false-quarantine",
                   strfmt("campaign %llu quarantined %llu honest "
                          "agent(s)",
                          (unsigned long long)k,
                          (unsigned long long)(q - preQuar)));
            return;
        }
    }
    w.served[k] = std::move(line);
}

} // namespace

// --- public API -----------------------------------------------------

WorldParams
deriveWorld(std::uint64_t seed, const ExplorerOptions &opts)
{
    WorldParams p;
    p.seed = seed;
    p.profile = opts.profile;
    p.agents =
        opts.agents ? opts.agents : 1 + (unsigned)(wdraw(seed, "nagents") % 3);
    p.cells =
        opts.cells ? opts.cells : 3 + (unsigned)(wdraw(seed, "ncells") % 8);
    p.clients = opts.clients
                    ? opts.clients
                    : 1 + (unsigned)(wdraw(seed, "nclients") % 3);
    if (opts.hedgeAfterMs != 0) {
        p.hedgeAfterMs = opts.hedgeAfterMs;
    } else {
        bool straggly = p.profile == SimProfile::Drop ||
                        p.profile == SimProfile::Delay ||
                        p.profile == SimProfile::Heavy;
        p.hedgeAfterMs = straggly ? 400 : 0;
    }
    if (opts.auditFrac >= 0.0)
        p.auditFrac = opts.auditFrac;
    else if (p.profile == SimProfile::Liar)
        p.auditFrac = 1.0; // a liar world must audit to catch it
    else
        p.auditFrac = wdraw(seed, "audit") % 4 == 0 ? 0.25 : 0.0;
    p.maxQueued = opts.maxQueued
                      ? opts.maxQueued
                      : (wdraw(seed, "shed") % 4 == 0 ? 1 : 64);
    p.mutateNoHedgeRevoke = opts.mutateNoHedgeRevoke;
    if (p.profile == SimProfile::CrashRestart ||
        p.profile == SimProfile::Heavy)
        p.journalPath = opts.fabsimDir + "/journal-" +
                        simProfileName(p.profile) + "-" +
                        std::to_string(seed);
    return p;
}

WorldResult
runWorld(const WorldParams &params,
         const std::vector<ChaosEvent> *script)
{
    if (!params.journalPath.empty()) {
        std::error_code ec;
        fs::remove_all(params.journalPath, ec);
    }

    World w(params);
    if (script)
        w.net.setScript(*script);

    // Campaigns, oracle, and the single-host truth reports.
    w.campaigns.resize(w.p.clients);
    w.truth.resize(w.p.clients);
    w.served.resize(w.p.clients);
    for (unsigned k = 0; k < w.p.clients; ++k) {
        w.campaigns[k] = makeCampaign(w.p, k);
        std::vector<sim::RunResult> rows;
        rows.reserve(w.campaigns[k].size());
        for (const CellSpec &c : w.campaigns[k]) {
            sim::RunResult r = synthResult(c);
            w.oracle[super::cellHash(c)] = r;
            rows.push_back(r);
        }
        w.truth[k] = lineFromRows(rows);
    }

    // Actors, staggered so their first messages interleave.
    for (unsigned i = 0; i < w.p.agents; ++i) {
        auto a = std::make_unique<SimAgent>();
        a->w = &w;
        a->idx = i;
        a->slots = 1 + (unsigned)(wdraw(w.p.seed, "slots", i) % 2);
        SimAgent *ap = a.get();
        w.agents.push_back(std::move(a));
        w.net.at(1 + i * 3, [ap] { ap->connect(); });
    }
    for (unsigned i = 0; i < w.p.clients; ++i) {
        auto c = std::make_unique<SimClient>();
        c->w = &w;
        c->idx = i;
        SimClient *cp = c.get();
        w.clients.push_back(std::move(c));
        w.net.at(5 + i * 7, [cp] { cp->connect(); });
    }

    // Arm the crash schedule as timers. Coordinator crashes throw
    // SimCrash through the fabric's own pump into the loop below.
    for (const ChaosEvent &ev :
         w.net.crashPlan(w.p.agents, kHorizonMs)) {
        if (ev.kind == EvKind::CoordCrash) {
            ChaosEvent e = ev;
            World *wp = &w;
            w.net.at(e.param, [wp, e] {
                if (!wp->fabric)
                    return; // already down
                wp->net.recordFired(e);
                wp->restartDelayMs = e.param2;
                throw SimCrash{};
            });
        } else if (ev.kind == EvKind::AgentCrash) {
            if (ev.edge.size() < 2 || ev.edge[0] != 'a')
                continue;
            unsigned ai =
                (unsigned)std::strtoul(ev.edge.c_str() + 1, nullptr,
                                       10);
            if (ai >= w.agents.size())
                continue;
            SimAgent *ap = w.agents[ai].get();
            ChaosEvent e = ev;
            w.net.at(e.param, [ap, e] {
                if (ap->down)
                    return;
                ap->w->net.recordFired(e);
                ap->crash(e.param2);
            });
        }
    }

    buildFabric(w, /*resume=*/false);

    auto allDone = [&w] {
        for (const auto &c : w.clients)
            if (!c->done && !c->gaveUp)
                return false;
        return true;
    };

    while (!allDone()) {
        if (w.net.livelocked()) {
            w.fail("livelock",
                   "event schedule exceeded the global fire cap");
            break;
        }
        if (w.net.nowMs() > kHorizonMs) {
            w.fail("client-starved",
                   strfmt("campaigns incomplete after %llu virtual ms",
                          (unsigned long long)kHorizonMs));
            break;
        }
        try {
            w.fabric->pump(10);
        } catch (const SimCrash &) {
            coordRestart(w);
            continue;
        }
        Fabric::Submission sub;
        while (w.fabric->popSubmission(&sub)) {
            std::uint64_t k = sub.campaign.getU64("index", ~0ull);
            if (k >= w.campaigns.size()) {
                w.fabric->sendToClient(
                    sub.client, proto::error("unknown campaign"));
                continue;
            }
            if (!w.served[k].empty()) {
                // Resubmission (client reconnected across a crash):
                // serve the already-verified bytes.
                w.fabric->sendToClient(sub.client, w.served[k]);
                continue;
            }
            std::uint64_t preDone =
                w.fabric->completed() + w.fabric->skipped();
            std::uint64_t preLeak = w.fabric->leasesLeaked();
            std::uint64_t preQuar = w.fabric->agentsQuarantined();
            std::vector<CellOutcome> outs;
            try {
                outs = w.fabric->runAll(w.campaigns[k]);
            } catch (const SimCrash &) {
                coordRestart(w);
                break; // the client will reconnect and resubmit
            }
            checkCampaign(w, k, outs, preDone, preLeak, preQuar);
            if (!w.violation.invariant.empty())
                break;
            w.fabric->sendToClient(sub.client, w.served[k]);
        }
        if (!w.violation.invariant.empty())
            break;
    }

    if (w.violation.invariant.empty()) {
        for (const auto &c : w.clients) {
            if (c->gaveUp) {
                w.fail("client-starved",
                       strfmt("client %u gave up after %u attempts",
                              c->idx, c->attempts));
                break;
            }
        }
    }

    WorldResult result;
    result.violation = w.violation;
    result.schedule = w.net.fired();

    // Tear the coordinator down before removing its journal scratch.
    w.fabric.reset();
    w.transport.reset();
    if (!params.journalPath.empty()) {
        std::error_code ec;
        fs::remove_all(params.journalPath, ec);
    }
    return result;
}

JsonValue
fabsimToJson(const WorldParams &params, const Violation &violation,
             const std::vector<ChaosEvent> &sched)
{
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::str("edgesim-fabsim"));
    doc.set("version", JsonValue::u64(1));
    doc.set("seed", JsonValue::u64(params.seed));
    doc.set("profile",
            JsonValue::str(simProfileName(params.profile)));
    JsonValue pj = JsonValue::object();
    pj.set("agents", JsonValue::u64(params.agents));
    pj.set("cells", JsonValue::u64(params.cells));
    pj.set("clients", JsonValue::u64(params.clients));
    pj.set("hedge_after_ms", JsonValue::u64(params.hedgeAfterMs));
    pj.set("audit_frac", JsonValue::number(params.auditFrac));
    pj.set("max_queued", JsonValue::u64(params.maxQueued));
    pj.set("journal",
           JsonValue::boolean(!params.journalPath.empty()));
    pj.set("mutate_no_hedge_revoke",
           JsonValue::boolean(params.mutateNoHedgeRevoke));
    doc.set("params", std::move(pj));
    JsonValue vj = JsonValue::object();
    vj.set("invariant", JsonValue::str(violation.invariant));
    vj.set("detail", JsonValue::str(violation.detail));
    doc.set("violation", std::move(vj));
    JsonValue arr = JsonValue::array();
    for (std::size_t i = 0; i < sched.size(); ++i) {
        const ChaosEvent &e = sched[i];
        JsonValue ej = JsonValue::object();
        ej.set("ordinal", JsonValue::u64(i));
        ej.set("kind", JsonValue::str(evKindName(e.kind)));
        ej.set("edge", JsonValue::str(e.edge));
        ej.set("ord", JsonValue::u64(e.ord));
        ej.set("param", JsonValue::u64(e.param));
        ej.set("param2", JsonValue::u64(e.param2));
        arr.push(std::move(ej));
    }
    doc.set("schedule", std::move(arr));
    return doc;
}

bool
fabsimFromJson(const JsonValue &doc, WorldParams *params,
               Violation *violation, std::vector<ChaosEvent> *sched,
               std::string *err)
{
    if (doc.getString("format") != "edgesim-fabsim") {
        *err = "not an edgesim-fabsim document";
        return false;
    }
    params->seed = doc.getU64("seed");
    if (!simProfileByName(doc.getString("profile", "none"),
                          &params->profile)) {
        *err = "unknown profile: " + doc.getString("profile");
        return false;
    }
    const JsonValue *pj = doc.get("params");
    if (!pj) {
        *err = "missing params";
        return false;
    }
    params->agents = (unsigned)pj->getU64("agents", 1);
    params->cells = (unsigned)pj->getU64("cells", 3);
    params->clients = (unsigned)pj->getU64("clients", 1);
    params->hedgeAfterMs = pj->getU64("hedge_after_ms");
    const JsonValue *af = pj->get("audit_frac");
    params->auditFrac = af ? af->asDouble(0.0) : 0.0;
    params->maxQueued = pj->getU64("max_queued", 64);
    params->mutateNoHedgeRevoke =
        pj->getBool("mutate_no_hedge_revoke");
    // journalPath is environment-specific; the caller re-derives it
    // from the "journal" flag (see replayMain).
    params->journalPath.clear();
    const JsonValue *vj = doc.get("violation");
    if (vj) {
        violation->invariant = vj->getString("invariant");
        violation->detail = vj->getString("detail");
    }
    sched->clear();
    const JsonValue *arr = doc.get("schedule");
    if (arr) {
        for (const JsonValue &ej : arr->items()) {
            ChaosEvent e;
            if (!evKindByName(ej.getString("kind"), &e.kind)) {
                *err = "unknown event kind: " + ej.getString("kind");
                return false;
            }
            e.edge = ej.getString("edge");
            e.ord = ej.getU64("ord");
            e.param = ej.getU64("param");
            e.param2 = ej.getU64("param2");
            sched->push_back(std::move(e));
        }
    }
    return true;
}

int
exploreMain(const ExplorerOptions &opts)
{
    std::error_code ec;
    fs::create_directories(opts.fabsimDir, ec);
    std::uint64_t explored = 0, violations = 0;
    for (std::uint64_t s = opts.seedLo; s <= opts.seedHi; ++s) {
        WorldParams p = deriveWorld(s, opts);
        WorldResult r = runWorld(p, nullptr);
        ++explored;
        if (r.violation.invariant.empty())
            continue;
        ++violations;
        std::string path =
            opts.fabsimDir + "/" +
            strfmt("seed-%llu-%s.fabsim.json", (unsigned long long)s,
                   simProfileName(opts.profile));
        std::ofstream out(path, std::ios::trunc);
        out << fabsimToJson(p, r.violation, r.schedule).dump()
            << "\n";
        out.close();
        warn("simnet: seed %llu violated [%s] %s -> %s (%zu events)",
             (unsigned long long)s, r.violation.invariant.c_str(),
             r.violation.detail.c_str(), path.c_str(),
             r.schedule.size());
    }
    inform("simnet: explored %llu seed(s) on profile '%s': "
           "%llu violation(s)",
           (unsigned long long)explored,
           simProfileName(opts.profile),
           (unsigned long long)violations);
    return violations
               ? chaos::exitCodeFor(
                     chaos::SimError::Reason::FabricSimViolation)
               : 0;
}

int
replayMain(const std::string &file, bool minimize,
           const std::string &fabsimDir)
{
    std::ifstream in(file);
    if (!in) {
        warn("simnet: cannot open %s", file.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    JsonValue doc;
    if (!JsonValue::parse(buf.str(), &doc, &err)) {
        warn("simnet: %s: %s", file.c_str(), err.c_str());
        return 1;
    }
    WorldParams params;
    Violation recorded;
    std::vector<ChaosEvent> schedule;
    if (!fabsimFromJson(doc, &params, &recorded, &schedule, &err)) {
        warn("simnet: %s: %s", file.c_str(), err.c_str());
        return 1;
    }
    const JsonValue *pj = doc.get("params");
    if (pj && pj->getBool("journal")) {
        std::error_code ec;
        fs::create_directories(fabsimDir, ec);
        params.journalPath =
            fabsimDir + "/journal-replay-" +
            std::to_string(params.seed);
    }

    WorldResult r = runWorld(params, &schedule);
    bool reproduced = !recorded.invariant.empty() &&
                      r.violation.invariant == recorded.invariant;
    inform("simnet: replay of %s (seed %llu, %s, %zu events): "
           "violation [%s] %s",
           file.c_str(), (unsigned long long)params.seed,
           simProfileName(params.profile), schedule.size(),
           r.violation.invariant.empty()
               ? "none"
               : r.violation.invariant.c_str(),
           reproduced ? "(reproduced)" : "(MISMATCH)");
    if (!minimize)
        return reproduced ? 0 : 1;
    if (!reproduced) {
        warn("simnet: refusing to minimize: the recorded violation "
             "did not reproduce");
        return 1;
    }

    // ddmin over event ordinals: a candidate subset passes when the
    // world, scripted to inject ONLY those events, still trips the
    // same invariant.
    std::vector<std::uint64_t> initial(schedule.size());
    std::iota(initial.begin(), initial.end(), 0);
    triage::BatchTest test =
        [&](const std::vector<std::vector<std::uint64_t>> &cands) {
            std::vector<char> verdicts;
            verdicts.reserve(cands.size());
            for (const auto &cand : cands) {
                std::vector<ChaosEvent> sub;
                sub.reserve(cand.size());
                for (std::uint64_t ord : cand)
                    sub.push_back(schedule[ord]);
                WorldResult rr = runWorld(params, &sub);
                verdicts.push_back(
                    rr.violation.invariant == recorded.invariant
                        ? 1
                        : 0);
            }
            return verdicts;
        };
    triage::MinimizeOptions mo;
    mo.threads = 1; // worlds share journal scratch; keep it serial
    triage::MinimizeResult min =
        triage::minimizeOrdinals(initial, test, mo);
    std::vector<ChaosEvent> minimal;
    minimal.reserve(min.ordinals.size());
    for (std::uint64_t ord : min.ordinals)
        minimal.push_back(schedule[ord]);
    WorldResult conf = runWorld(params, &minimal);
    bool holds = conf.violation.invariant == recorded.invariant;
    std::string minPath = file + ".min.json";
    std::ofstream out(minPath, std::ios::trunc);
    out << fabsimToJson(params, conf.violation, minimal).dump()
        << "\n";
    out.close();
    inform("simnet: minimized %zu -> %zu event(s) in %zu test "
           "run(s) / %u round(s)%s -> %s",
           schedule.size(), minimal.size(), min.testsRun, min.rounds,
           min.converged ? "" : " (round budget hit)",
           minPath.c_str());
    if (!holds)
        warn("simnet: minimized schedule no longer reproduces "
             "[%s]",
             recorded.invariant.c_str());
    return holds ? 0 : 1;
}

} // namespace edge::serve::simnet
