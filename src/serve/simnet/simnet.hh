/**
 * @file
 * The deterministic fabric simulation's wire and clock: a seeded
 * event queue on virtual time, in-memory streams behind the net.hh
 * Stream/Transport surface, and pure FNV-1a chaos decisions over
 * (seed, edge, ordinal) — the same discipline as fabric_chaos and
 * log_chaos, extended to every interleaving dimension the real
 * fabric has: message latency, drop, duplication, reorder (via
 * per-message delay), partition (windowed drops), slow or lying
 * executions, and whole-process crash/restart.
 *
 * One SimNet hosts one simulated world. The REAL Fabric runs on top
 * unmodified: it is constructed with a SimTransport and the SimNet's
 * VirtualClock, so every heartbeat timer, lease deadline, hedge
 * threshold, and backoff the coordinator arms is a virtual-time
 * computation — thousands of campaigns per wall-second, bit-for-bit
 * reproducible from (seed, profile).
 *
 * Determinism contract: everything observable is a pure function of
 * the seed (generative mode) or of the recorded event schedule
 * (scripted mode, used by --replay and ddmin). Base message latency
 * is part of the wire model — always applied, derived from (seed,
 * edge, ordinal), never recorded; chaos decisions beyond it are
 * recorded as ChaosEvents at fire time, so a failing run's schedule
 * is exactly the set of decisions that shaped it.
 */

#ifndef EDGE_SERVE_SIMNET_SIMNET_HH
#define EDGE_SERVE_SIMNET_SIMNET_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "serve/clock.hh"
#include "serve/net.hh"

namespace edge::serve::simnet {

/** World-level fault mix, selected per explorer run. */
enum class SimProfile : std::uint8_t
{
    None,         ///< clean wire (base latency only)
    Drop,         ///< per-message drops + dups + slow executions
    Delay,        ///< heavy per-message delays + slow executions
    Partition,    ///< windowed per-edge blackouts
    CrashRestart, ///< coordinator + agent crash/restart schedules
    Liar,         ///< agent 0 returns corrupt bytes (audit fodder)
    Heavy,        ///< everything at once
};

const char *simProfileName(SimProfile p);
bool simProfileByName(const std::string &name, SimProfile *out);

/** One recorded (or scripted) chaos decision. */
enum class EvKind : std::uint8_t
{
    Drop,       ///< message (edge, ord) vanished
    Dup,        ///< message (edge, ord) delivered twice
    Delay,      ///< message (edge, ord) delayed `param` extra ms
    SlowExec,   ///< execution (agent, ord) took `param` extra ms
    Lie,        ///< execution (agent, ord) returned corrupt bytes
    AgentCrash, ///< agent `edge` crashed at `param`, back in `param2`
    CoordCrash, ///< coordinator crashed at `param`, back in `param2`
};

const char *evKindName(EvKind k);
bool evKindByName(const std::string &name, EvKind *out);

struct ChaosEvent
{
    EvKind kind = EvKind::Drop;
    /** Edge key: "a0.1>c" (agent 0, connection 1, toward the
     *  coordinator), "a0.1<c" (the reverse direction), "a0" (an
     *  execution or crash on agent 0), "coord". */
    std::string edge;
    std::uint64_t ord = 0;    ///< per-edge ordinal (msg / exec / crash)
    std::uint64_t param = 0;  ///< delay ms, or crash time (virtual ms)
    std::uint64_t param2 = 0; ///< crash restart delay ms
};

/** Thrown by a scheduled coordinator-crash event; unwinds through
 *  Fabric::pump/runAll into the explorer, which rebuilds the
 *  coordinator (crash-consistent journal semantics: whatever the
 *  destructor-less unwind left on disk is what restart sees). */
struct SimCrash
{
};

/** The wire's verdict on one message. */
struct MsgFate
{
    bool drop = false;
    bool dup = false;
    std::uint64_t extraMs = 0;
};

class SimStream;
class SimTransport;

class SimNet
{
  public:
    SimNet(std::uint64_t seed, SimProfile profile);
    ~SimNet();
    SimNet(const SimNet &) = delete;
    SimNet &operator=(const SimNet &) = delete;

    /** Switch to scripted mode: ONLY the listed events are injected
     *  (matched by kind+edge+ord); nothing else fires. */
    void setScript(const std::vector<ChaosEvent> &events);
    bool scripted() const { return _scripted; }

    VirtualClock &clock() { return _clock; }
    std::uint64_t nowMs() { return _clock.nowMs(); }

    /** Schedule `fn` at absolute virtual time `atMs` (clamped to
     *  now). Events at equal times fire in scheduling order. */
    void at(std::uint64_t atMs, std::function<void()> fn);
    void after(std::uint64_t delayMs, std::function<void()> fn);

    /**
     * The simulated turn: fire every event due within the next `ms`
     * virtual milliseconds (advancing the clock to each event's
     * time), then fast-forward the clock to the end of the window —
     * an idle wait costs no wall time. May throw SimCrash out of a
     * coordinator-crash event.
     */
    void runFor(std::uint64_t ms);

    /** Runaway-schedule guard: set when the global fired-event count
     *  exceeded the livelock cap; the queue is abandoned. */
    bool livelocked() const { return _livelock; }

    // --- acceptor plumbing ------------------------------------------
    void setAcceptor(SimTransport *t) { _acceptor = t; }
    SimTransport *acceptor() { return _acceptor; }

    /**
     * Actor-side connect: create a stream pair, queue the far end on
     * the listening SimTransport, return the near end (nullptr when
     * no coordinator is listening — the caller retries later).
     * `edgeBase` names the connection (e.g. "a0.2"); `chaosArmed`
     * subjects both directions to message chaos (agent edges only —
     * client edges stay clean so a duplicated submit can't
     * double-serve a campaign).
     */
    std::unique_ptr<SimStream> connect(const std::string &edgeBase,
                                       bool chaosArmed,
                                       std::function<void()> onWake);

    // --- chaos decisions --------------------------------------------
    /** Wire-model base latency for (edge, ord): always applied, never
     *  recorded. */
    std::uint64_t baseLatencyMs(const std::string &edge,
                                std::uint64_t ord);
    /** Chaos verdict for message (edge, ord); records what fired. */
    MsgFate msgFate(const std::string &edge, std::uint64_t ord,
                    bool chaosArmed);
    /** Extra execution time for (agentEdge, execOrd); 0 = none. */
    std::uint64_t execExtraMs(const std::string &agentEdge,
                              std::uint64_t ord);
    /** Should execution (agentEdge, execOrd) return corrupt bytes? */
    bool execLie(const std::string &agentEdge, std::uint64_t ord);
    /** The world's crash schedule (AgentCrash/CoordCrash events for
     *  the explorer to arm as timers). Pure function of the seed in
     *  generative mode; the scripted crashes in scripted mode. */
    std::vector<ChaosEvent> crashPlan(unsigned nAgents,
                                      std::uint64_t horizonMs);

    /** Append a fired event to the recorded schedule. */
    void recordFired(ChaosEvent ev);
    const std::vector<ChaosEvent> &fired() const { return _fired; }

    std::uint64_t seed() const { return _seed; }
    SimProfile profile() const { return _profile; }

  private:
    friend class SimStream;

    std::uint64_t registerStream(SimStream *s);
    void unregisterStream(std::uint64_t id);
    /** Mark stream `id` dead and wake its owner (scheduled, never
     *  synchronous, so destructor-time notifications can't reenter a
     *  half-dead object). */
    void killStream(std::uint64_t id);
    void deliverFrom(SimStream *src, const std::string &line);
    void scheduleDelivery(std::uint64_t peerId, std::string framed,
                          std::uint64_t delayMs);
    /** Seeded draw for a named decision on (edge, ord). */
    std::uint64_t draw(const char *domain, const std::string &edge,
                       std::uint64_t ord) const;
    const ChaosEvent *scriptMatch(EvKind kind, const std::string &edge,
                                  std::uint64_t ord) const;

    struct QEv
    {
        std::uint64_t atMs;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct QEvLater
    {
        bool
        operator()(const QEv &a, const QEv &b) const
        {
            if (a.atMs != b.atMs)
                return a.atMs > b.atMs;
            return a.seq > b.seq;
        }
    };

    std::uint64_t _seed;
    SimProfile _profile;
    VirtualClock _clock;
    std::priority_queue<QEv, std::vector<QEv>, QEvLater> _queue;
    std::uint64_t _seq = 0;
    std::uint64_t _firesTotal = 0;
    bool _livelock = false;

    bool _scripted = false;
    std::map<std::string, ChaosEvent> _script; ///< kind|edge|ord → ev
    std::vector<ChaosEvent> _fired;

    std::map<std::uint64_t, SimStream *> _streams;
    std::uint64_t _streamIds = 0;
    SimTransport *_acceptor = nullptr;
};

/** In-memory line stream (one direction pair endpoint). */
class SimStream final : public Stream
{
  public:
    ~SimStream() override;

    bool dead() const override { return _dead; }
    void markDead() override { _dead = true; }
    bool wantWrite() const override { return false; }
    bool nextLine(std::string *line) override;
    void send(const std::string &line) override;
    void sever() override;

    void setOnWake(std::function<void()> fn)
    {
        _onWake = std::move(fn);
    }
    const std::string &edge() const { return _edge; }

  private:
    friend class SimNet;
    SimStream() = default;

    void pushLine(const std::string &framed);

    SimNet *_net = nullptr;
    std::uint64_t _id = 0;
    std::uint64_t _peerId = 0;
    std::string _edge;
    bool _chaos = false;
    bool _dead = false;
    std::uint64_t _msgOrd = 0;
    std::string _in;
    std::size_t _inOff = 0;
    std::function<void()> _onWake;
};

/** The coordinator's simulated network surface: listening is a flag,
 *  pump is a virtual-time turn plus the pending-accept drain. */
class SimTransport final : public Transport
{
  public:
    explicit SimTransport(SimNet *net) : _net(net) {}
    ~SimTransport() override;

    bool listen(std::uint16_t port, std::string *err) override;
    std::uint16_t port() const override { return _listening ? 1 : 0; }
    void pump(int timeoutMs, const std::vector<Stream *> &streams,
              std::vector<std::unique_ptr<Stream>> *accepted)
        override;

    void enqueue(std::unique_ptr<SimStream> s);

  private:
    SimNet *_net;
    bool _listening = false;
    std::vector<std::unique_ptr<SimStream>> _pending;
};

} // namespace edge::serve::simnet

#endif // EDGE_SERVE_SIMNET_SIMNET_HH
