/**
 * @file
 * The `edgesim serve` coordinator daemon and the client side of
 * campaign submission. The daemon owns one Fabric: it pumps the
 * network between campaigns (agents register and heartbeat while
 * idle), pops client submissions, decomposes them through the
 * existing campaign entry points (super::chaosSweepIsolated,
 * fuzz::runCampaign with the fabric batch runner), and answers with
 * the report document. SIGTERM drains the in-flight campaign's
 * leases before exit; SIGINT stops immediately.
 *
 * The submit helpers are what `edgesim --fuzz/--chaos-sweep
 * --submit host:port` call: serialize the campaign, wait for the
 * report, rebuild it for the CLI's normal printer.
 */

#ifndef EDGE_SERVE_DAEMON_HH
#define EDGE_SERVE_DAEMON_HH

#include <string>

#include "serve/fabric.hh"
#include "serve/campaign_json.hh"

namespace edge::serve {

struct ServeOptions
{
    FabricOptions fabric;
    /** Exit after serving one campaign (CI smoke / tests). */
    bool once = false;
    /** On --resume, refuse a journal written by a different build
     *  (exit 20, provenance-mismatch) instead of warning. */
    bool strictProvenance = false;
};

/** Run the coordinator until stopped. Returns the process exit
 *  code. */
int serveMain(const ServeOptions &opts);

/**
 * Submit a sweep to `coordinator` (host:port) and wait for the
 * report. False (with *err) on connection or protocol failure. A
 * nonzero `timeoutMs` bounds the TCP connect AND each silent wait
 * for a coordinator line — an inactivity deadline, so it must exceed
 * the expected campaign duration (the coordinator sends nothing
 * while a campaign runs). 0 = wait forever (the historical
 * behaviour, which wedges on a hung coordinator). An admission-
 * control shed (structured error with `retry_after_ms`) is honored:
 * the client sleeps the hinted delay (clamped to [50ms, 10s]) and
 * resubmits, up to `shedRetries` times before giving up.
 */
bool submitSweep(const std::string &coordinator,
                 const sim::ChaosSweepParams &params,
                 const triage::ProgramRef &program,
                 sim::ChaosSweepReport *report, bool *interrupted,
                 std::string *err, std::uint64_t timeoutMs = 0,
                 unsigned shedRetries = 3);

/** Submit a fuzz campaign and wait for the report (same deadline and
 *  shed-retry semantics as submitSweep). */
bool submitFuzz(const std::string &coordinator,
                const fuzz::FuzzOptions &opts,
                fuzz::FuzzReport *report, std::string *err,
                std::uint64_t timeoutMs = 0,
                unsigned shedRetries = 3);

} // namespace edge::serve

#endif // EDGE_SERVE_DAEMON_HH
