/**
 * @file
 * The campaign-fabric agent: `edgesim serve --agent <host:port>`.
 * It registers with a coordinator, heartbeats on the interval the
 * welcome message dictates, and runs assigned cells through the
 * existing `--worker-cell` fork/exec isolation path — one
 * single-slot, no-retry Supervisor per in-flight cell, on its own
 * thread — streaming each lossless RunResult line back as it lands.
 * The coordinator owns every campaign-level policy (retries,
 * journaling, repro capture); the agent is deliberately stateless so
 * that SIGKILLing one mid-cell loses nothing but the lease.
 *
 * Exit: 0 after a coordinator-initiated shutdown (in-flight cells
 * finish and their results flush first); 1 when the coordinator
 * connection drops (in-flight workers are stopped — their leases are
 * already being reassigned).
 */

#ifndef EDGE_SERVE_AGENT_HH
#define EDGE_SERVE_AGENT_HH

#include <cstdint>
#include <string>

namespace edge::serve {

struct AgentOptions
{
    /** Coordinator address, host:port. */
    std::string coordinator;
    /** Name reported in hello ("" = "<hostname>/<pid>"). */
    std::string name;
    /** Concurrent cells (0 = all hardware threads). */
    unsigned slots = 0;
    /** Worker image for cells ("" = /proc/self/exe). */
    std::string workerPath;
    /**
     * Test hook: SIGKILL this process right after flushing its N-th
     * result (0 = never). Gives the robustness tests a deterministic
     * "agent dies mid-campaign while holding leases" schedule.
     */
    std::uint64_t dieAfterResults = 0;
    /**
     * Consecutive reconnect attempts after the coordinator connection
     * drops before the agent gives up (0 = exit immediately on loss,
     * the pre-reconnect behaviour). In-flight cells keep running
     * across the outage; their finished results are buffered and
     * re-offered after re-registration — the coordinator's dedup path
     * keeps the ones whose leases are still valid and drops the rest.
     */
    unsigned reconnectMax = 5;
};

int agentMain(const AgentOptions &opts);

} // namespace edge::serve

#endif // EDGE_SERVE_AGENT_HH
