/**
 * @file
 * Wire messages for the campaign fabric. Every message is one
 * compact JSON object per line with a `type` member; the full
 * vocabulary and the lease state machine it drives are documented in
 * docs/PROTOCOL.md ("Campaign fabric").
 *
 *   agent -> coordinator:  hello, heartbeat, result
 *   coordinator -> agent:  welcome, assign, shutdown
 *   client -> coordinator: submit
 *   coordinator -> client: report, error
 *
 * Cell specs and run results ride inside these envelopes in their
 * existing lossless JSON forms (super::cellToJson,
 * triage::resultToJson), which is what lets a merged campaign report
 * reproduce the single-host bytes exactly.
 */

#ifndef EDGE_SERVE_PROTO_HH
#define EDGE_SERVE_PROTO_HH

#include <cstdint>
#include <string>

#include "serve/fabric_chaos.hh"
#include "sim/simulator.hh"
#include "super/cell.hh"
#include "triage/jsonio.hh"

namespace edge::serve::proto {

/** Agent introduction: name plus how many cells it runs at once. */
std::string hello(const std::string &name, unsigned slots);

/**
 * Coordinator's reply to hello: assigned id + heartbeat interval,
 * plus the agent-side chaos affliction (FabricProfile::Slow/Liar,
 * omitted when None) the coordinator elected this agent for.
 */
std::string welcome(std::uint64_t agentId, std::uint64_t heartbeatMs,
                    FabricProfile affliction = FabricProfile::None,
                    std::uint64_t chaosSeed = 0);

/**
 * Periodic liveness beacon, now carrying agent-side load so the
 * coordinator's health scoring sees queue pressure, not just a
 * pulse: `inflight` cells executing, `queued` finished results not
 * yet flushed to the wire.
 */
std::string heartbeat(std::uint64_t inflight = 0,
                      std::uint64_t queued = 0);

/** Lease a cell to an agent. Timeout/rlimits travel with the cell so
 *  agents need no local configuration. */
std::string assign(std::uint64_t lease, const super::CellSpec &cell,
                   std::uint64_t cellTimeoutMs,
                   std::uint64_t rlimitAsMb,
                   std::uint64_t rlimitCpuSec);

/** Completed cell: the lease it answers, the cell identity, and the
 *  verbatim worker result document. */
std::string result(std::uint64_t lease, std::uint64_t cellHash,
                   const sim::RunResult &r);

std::string shutdown();

/** Campaign submission envelope around a campaign_json document. */
std::string submit(const triage::JsonValue &campaign);

/** Campaign report envelope (coordinator -> client). */
std::string report(triage::JsonValue body);

std::string error(const std::string &message);

/**
 * Admission-control shed: a structured `error` with a
 * `retry_after_ms` hint — the coordinator's submission queue is
 * full; try again after the suggested delay instead of wedging in
 * line.
 */
std::string retryAfter(const std::string &message,
                       std::uint64_t retryAfterMs);

/**
 * Parse one wire line: *doc gets the object, *type its `type`
 * member. False (with *err) on malformed JSON or a typeless message.
 */
bool parse(const std::string &line, triage::JsonValue *doc,
           std::string *type, std::string *err);

} // namespace edge::serve::proto

#endif // EDGE_SERVE_PROTO_HH
