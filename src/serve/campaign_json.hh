/**
 * @file
 * Campaign submissions and reports as JSON, for the fabric's
 * submit/report exchange. The client serializes exactly the
 * parameters the local CLI would have used; the coordinator rebuilds
 * them, runs the campaign through the same sim::sweepCells /
 * fuzz::runCampaign drivers, and ships the report back in the same
 * lossless forms (triage::result_json) the repro files use — so the
 * client can print a remote campaign byte-identically to a local
 * one.
 */

#ifndef EDGE_SERVE_CAMPAIGN_JSON_HH
#define EDGE_SERVE_CAMPAIGN_JSON_HH

#include <string>

#include "fuzz/diff.hh"
#include "sim/sweep.hh"
#include "triage/jsonio.hh"
#include "triage/repro.hh"

namespace edge::serve {

/** The `kind` member of a campaign document ("sweep" / "fuzz"). */
std::string campaignKind(const triage::JsonValue &doc);

// --- chaos sweeps ---------------------------------------------------

triage::JsonValue
sweepSubmission(const sim::ChaosSweepParams &params,
                const triage::ProgramRef &program);

bool sweepSubmissionFromJson(const triage::JsonValue &doc,
                             sim::ChaosSweepParams *params,
                             triage::ProgramRef *program,
                             std::string *err);

triage::JsonValue
sweepReportToJson(const sim::ChaosSweepReport &report,
                  bool interrupted);

bool sweepReportFromJson(const triage::JsonValue &doc,
                         sim::ChaosSweepReport *report,
                         bool *interrupted, std::string *err);

// --- differential fuzzing -------------------------------------------

/** Serializes everything but the local-only knobs (corpusDir,
 *  batchRunner, threads — the coordinator picks its own). */
triage::JsonValue fuzzSubmission(const fuzz::FuzzOptions &opts);

bool fuzzSubmissionFromJson(const triage::JsonValue &doc,
                            fuzz::FuzzOptions *opts,
                            std::string *err);

triage::JsonValue fuzzReportToJson(const fuzz::FuzzReport &report);

bool fuzzReportFromJson(const triage::JsonValue &doc,
                        fuzz::FuzzReport *report, std::string *err);

} // namespace edge::serve

#endif // EDGE_SERVE_CAMPAIGN_JSON_HH
