#include "serve/agent.hh"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "serve/fabric_chaos.hh"
#include "serve/net.hh"
#include "serve/proto.hh"
#include "super/cell.hh"
#include "super/supervisor.hh"

namespace edge::serve {

namespace {

struct Agent
{
    AgentOptions opts;
    std::unique_ptr<Conn> conn;
    int wakeRead = -1;
    int wakeWrite = -1;

    std::uint64_t heartbeatMs = 1000;
    bool draining = false; ///< shutdown received: no new assigns

    /** Agent-side affliction the coordinator elected this agent for
     *  in its welcome (slow = delay each cell; liar = deterministic
     *  semantic flips in each result before it hits the wire). */
    FabricProfile affliction = FabricProfile::None;
    std::uint64_t chaosSeed = 0;

    struct Running
    {
        std::thread th;
        std::shared_ptr<super::Supervisor> sup;
    };
    std::map<std::uint64_t, Running> active; // by lease (main thread)

    struct Done
    {
        std::uint64_t lease = 0;
        std::uint64_t cell = 0;
        sim::RunResult result;
        bool ran = false;
    };
    std::mutex mu;
    std::deque<Done> done; // cell threads -> main loop

    /** Result lines finished while disconnected, re-offered after
     *  re-registration (the coordinator dedups stale leases). */
    std::deque<std::string> outbox;

    std::uint64_t resultsSent = 0;

    void
    wake()
    {
        char b = 'x';
        (void)!::write(wakeWrite, &b, 1);
    }

    /** Cell thread body: run one cell in a sandboxed child and hand
     *  the result line back to the poll loop. */
    void
    runCell(std::uint64_t lease, super::CellSpec cell,
            std::uint64_t timeoutMs, std::uint64_t asMb,
            std::uint64_t cpuSec,
            std::shared_ptr<super::Supervisor> sup)
    {
        (void)asMb;
        (void)cpuSec;
        (void)timeoutMs;
        std::vector<super::CellOutcome> outs = sup->runAll({cell});
        Done d;
        d.lease = lease;
        d.cell = super::cellHash(cell);
        if (!outs.empty() && outs[0].ran) {
            d.ran = true;
            d.result = std::move(outs[0].result);
        }
        if (affliction == FabricProfile::Slow && d.ran &&
            !sup->stopRequested()) {
            // Straggle: hold the finished result long enough for the
            // fleet's p95-derived hedge threshold to fire. The sleep
            // lives on the cell thread, so heartbeats keep flowing
            // and the agent stays "alive but slow".
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kSlowCellDelayMs));
        }
        if (affliction == FabricProfile::Liar && d.ran) {
            // Bit-flipping executor: corrupt the result semantically
            // (valid JSON, wrong bytes) so only a byte-compare audit
            // can tell. Which counter gets the flip is a pure
            // function of (seed, cell) — reproducible divergence.
            Fnv1a f;
            f.mix64(chaosSeed);
            f.mix64(d.cell);
            if (f.state % 2 == 0)
                d.result.cycles ^= 1;
            else
                d.result.committedInsts ^= 1;
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            done.push_back(std::move(d));
        }
        wake();
    }

    void
    handleAssign(const triage::JsonValue &doc)
    {
        std::uint64_t lease = doc.getU64("lease");
        const triage::JsonValue *cellDoc = doc.get("cell");
        super::CellSpec cell;
        std::string err;
        if (!cellDoc || !super::cellFromJson(*cellDoc, &cell, &err)) {
            warn("agent: unusable assign for lease %llu: %s",
                 static_cast<unsigned long long>(lease), err.c_str());
            return; // the lease expires and is reassigned
        }
        if (draining)
            return;

        // One single-slot, single-attempt Supervisor per cell: the
        // agent executes, the coordinator schedules and retries.
        super::SupervisorOptions so;
        so.jobs = 1;
        so.cellTimeoutMs = doc.getU64("timeout_ms");
        so.rlimitAsMb = doc.getU64("rlimit_as_mb");
        so.rlimitCpuSec = doc.getU64("rlimit_cpu_sec");
        so.workerPath = opts.workerPath;
        so.retry.maxAttempts = 1;
        auto sup = std::make_shared<super::Supervisor>(so);

        Running r;
        r.sup = sup;
        r.th = std::thread(&Agent::runCell, this, lease,
                           std::move(cell), so.cellTimeoutMs,
                           so.rlimitAsMb, so.rlimitCpuSec, sup);
        active.emplace(lease, std::move(r));
    }

    /** Flush everything queued on the connection (blocking). */
    void
    flushAll()
    {
        while (!conn->dead() && conn->wantWrite()) {
            pollfd p = {conn->fd(), POLLOUT, 0};
            if (::poll(&p, 1, 1000) <= 0)
                break;
            conn->onWritable();
        }
    }

    /** Drain finished cells: join their threads, stream results. */
    void
    pumpDone()
    {
        for (;;) {
            Done d;
            {
                std::lock_guard<std::mutex> lk(mu);
                if (done.empty())
                    return;
                d = std::move(done.front());
                done.pop_front();
            }
            auto it = active.find(d.lease);
            if (it != active.end()) {
                it->second.th.join();
                active.erase(it);
            }
            if (!d.ran)
                continue; // stopped cell: the lease will be revoked
            std::string line =
                proto::result(d.lease, d.cell, d.result);
            if (conn && !conn->dead())
                conn->send(line);
            else
                outbox.push_back(std::move(line));
            ++resultsSent;
            if (opts.dieAfterResults != 0 &&
                resultsSent >= opts.dieAfterResults) {
                // Test hook: die the hard way, leases still held.
                flushAll();
                std::raise(SIGKILL);
            }
        }
    }

    void
    stopAll()
    {
        for (auto &kv : active)
            kv.second.sup->requestStop();
        for (auto &kv : active)
            if (kv.second.th.joinable())
                kv.second.th.join();
        active.clear();
    }

    /**
     * Re-dial the coordinator after a dropped connection: up to
     * reconnectMax attempts with the supervisor's capped-exponential
     * backoff shape plus deterministic jitter, then re-register with
     * a fresh hello and re-offer buffered results. In-flight cells
     * keep running the whole time. False = give up (budget spent or
     * a stop signal arrived).
     */
    bool
    reconnect()
    {
        Clock &clk = Clock::real();
        for (unsigned attempt = 1; attempt <= opts.reconnectMax;
             ++attempt) {
            std::uint64_t backoff = std::min<std::uint64_t>(
                250ull << (attempt - 1), 8000);
            Fnv1a f;
            f.mix(opts.name.data(), opts.name.size());
            f.mix64(attempt);
            std::uint64_t waitMs = backoff + f.state % 250;
            inform("agent '%s': reconnect %u/%u in %llu ms",
                   opts.name.c_str(), attempt, opts.reconnectMax,
                   static_cast<unsigned long long>(waitMs));
            clk.sleepFor(waitMs);
            if (super::stopSignal() != 0)
                return false;
            std::string err;
            int fd = connectTo(opts.coordinator, &err, 2000);
            if (fd < 0) {
                warn("agent '%s': reconnect failed: %s",
                     opts.name.c_str(), err.c_str());
                continue;
            }
            conn = std::make_unique<Conn>(fd);
            draining = false;
            conn->send(proto::hello(opts.name, opts.slots));
            while (!outbox.empty()) {
                conn->send(outbox.front());
                outbox.pop_front();
            }
            inform("agent '%s': re-registered with %s",
                   opts.name.c_str(), opts.coordinator.c_str());
            return true;
        }
        return false;
    }
};

} // namespace

int
agentMain(const AgentOptions &opts)
{
    std::signal(SIGPIPE, SIG_IGN);
    super::installStopHandlers();

    Agent a;
    a.opts = opts;
    if (a.opts.slots == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        a.opts.slots = hw ? hw : 1;
    }
    if (a.opts.name.empty()) {
        char host[256] = "agent";
        ::gethostname(host, sizeof(host) - 1);
        a.opts.name =
            strfmt("%s/%d", host, static_cast<int>(::getpid()));
    }

    std::string err;
    int fd = connectTo(opts.coordinator, &err);
    if (fd < 0) {
        fprintf(stderr, "edgesim: agent: %s\n", err.c_str());
        return 1;
    }
    a.conn = std::make_unique<Conn>(fd);

    int wakePipe[2];
    if (::pipe(wakePipe) != 0) {
        fprintf(stderr, "edgesim: agent: pipe: %s\n",
                std::strerror(errno));
        return 1;
    }
    a.wakeRead = wakePipe[0];
    a.wakeWrite = wakePipe[1];
    ::fcntl(a.wakeRead, F_SETFL,
            ::fcntl(a.wakeRead, F_GETFL, 0) | O_NONBLOCK);

    a.conn->send(proto::hello(a.opts.name, a.opts.slots));
    inform("agent '%s': connected to %s (%u slot%s)",
           a.opts.name.c_str(), opts.coordinator.c_str(),
           a.opts.slots, a.opts.slots == 1 ? "" : "s");

    Clock &clk = Clock::real();
    // Heartbeats run on an absolute deadline, re-armed by addition,
    // so a slow turn (or a long reconnect) never stretches the
    // interval the coordinator's liveness sweep assumes.
    Clock::time_point nextBeat =
        clk.now() + std::chrono::milliseconds(a.heartbeatMs);
    int exitCode = 0;
    bool shuttingDown = false;

    for (;;) {
        if (super::stopSignal() != 0) {
            // Host-initiated stop: stop cells and leave; the
            // coordinator reassigns the leases.
            a.stopAll();
            exitCode = 1;
            break;
        }

        pollfd fds[2];
        fds[0] = {a.conn->fd(), POLLIN, 0};
        if (a.conn->wantWrite())
            fds[0].events |= POLLOUT;
        fds[1] = {a.wakeRead, POLLIN, 0};

        int timeout = clk.msUntil(nextBeat);
        int rc;
        do {
            rc = ::poll(fds, 2, std::max(timeout, 1));
        } while (rc < 0 && errno == EINTR &&
                 super::stopSignal() == 0);
        (void)rc;

        if (fds[1].revents & POLLIN) {
            char buf[64];
            while (::read(a.wakeRead, buf, sizeof(buf)) > 0)
                ;
        }
        if (fds[0].revents & POLLOUT)
            a.conn->onWritable();
        if (fds[0].revents & (POLLIN | POLLHUP | POLLERR))
            a.conn->onReadable();

        std::string line;
        while (!a.conn->dead() && a.conn->nextLine(&line)) {
            triage::JsonValue doc;
            std::string type, perr;
            if (!proto::parse(line, &doc, &type, &perr)) {
                warn("agent: malformed message: %s", perr.c_str());
                continue;
            }
            if (type == "welcome") {
                a.heartbeatMs =
                    std::max<std::uint64_t>(
                        10, doc.getU64("heartbeat_ms", 1000));
                nextBeat = clk.now() +
                           std::chrono::milliseconds(a.heartbeatMs);
                std::string chaos = doc.getString("chaos");
                if (!chaos.empty()) {
                    FabricProfile p;
                    if (fabricProfileByName(chaos, &p)) {
                        a.affliction = p;
                        a.chaosSeed = doc.getU64("chaos_seed");
                        warn("agent '%s': afflicted '%s' (seed %llu)",
                             a.opts.name.c_str(), chaos.c_str(),
                             static_cast<unsigned long long>(
                                 a.chaosSeed));
                    }
                }
            } else if (type == "assign") {
                a.handleAssign(doc);
            } else if (type == "shutdown") {
                a.draining = true;
                shuttingDown = true;
            }
        }

        a.pumpDone();

        if (a.conn->dead()) {
            if (shuttingDown) {
                // Shutdown drain cut short: nothing left to flush to.
                a.stopAll();
                exitCode = 1;
                break;
            }
            inform("agent '%s': coordinator connection closed",
                   a.opts.name.c_str());
            // Keep in-flight cells running and try to re-register:
            // results finished during the outage queue in the outbox
            // and are re-offered after the fresh hello (the
            // coordinator keeps the ones whose leases survived).
            if (!a.reconnect()) {
                inform("agent '%s': giving up after %u reconnect "
                       "attempt(s)",
                       a.opts.name.c_str(), a.opts.reconnectMax);
                a.stopAll();
                exitCode = 1;
                break;
            }
            nextBeat = clk.now() +
                       std::chrono::milliseconds(a.heartbeatMs);
            continue;
        }

        if (shuttingDown && a.active.empty()) {
            bool queued;
            {
                std::lock_guard<std::mutex> lk(a.mu);
                queued = !a.done.empty();
            }
            if (!queued) {
                a.flushAll();
                break;
            }
        }

        Clock::time_point now = clk.now();
        if (now >= nextBeat) {
            std::uint64_t queued;
            {
                std::lock_guard<std::mutex> lk(a.mu);
                queued = a.done.size();
            }
            a.conn->send(
                proto::heartbeat(a.active.size(), queued));
            nextBeat += std::chrono::milliseconds(a.heartbeatMs);
            if (nextBeat <= now)
                nextBeat =
                    now + std::chrono::milliseconds(a.heartbeatMs);
        }
    }

    ::close(a.wakeRead);
    ::close(a.wakeWrite);
    return exitCode;
}

} // namespace edge::serve
