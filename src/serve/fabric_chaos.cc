#include "serve/fabric_chaos.hh"

#include "common/hash.hh"

namespace edge::serve {

const char *
fabricProfileName(FabricProfile p)
{
    switch (p) {
      case FabricProfile::None:
        return "none";
      case FabricProfile::Drop:
        return "drop";
      case FabricProfile::Duplicate:
        return "duplicate";
      case FabricProfile::Partition:
        return "partition";
      case FabricProfile::Kill:
        return "kill";
      case FabricProfile::Heavy:
        return "heavy";
      case FabricProfile::Slow:
        return "slow";
      case FabricProfile::Liar:
        return "liar";
    }
    return "none";
}

bool
fabricProfileByName(const std::string &name, FabricProfile *out)
{
    for (FabricProfile p :
         {FabricProfile::None, FabricProfile::Drop,
          FabricProfile::Duplicate, FabricProfile::Partition,
          FabricProfile::Kill, FabricProfile::Heavy,
          FabricProfile::Slow, FabricProfile::Liar}) {
        if (name == fabricProfileName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

std::uint64_t
FabricChaos::decision(std::uint64_t a, std::uint64_t b,
                      std::uint64_t salt) const
{
    Fnv1a f;
    f.mix64(_seed);
    f.mix64(a);
    f.mix64(b);
    f.mix64(salt);
    // One extra scramble round: FNV alone keys poorly off trailing
    // small integers, and these bits pick modular buckets.
    std::uint64_t h = f.state;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

bool
FabricChaos::dropInbound(std::uint64_t agentOrdinal,
                         std::uint64_t ordinal,
                         const std::string &type)
{
    if (type == "hello")
        return false;
    bool drop = false;
    if (_profile == FabricProfile::Drop ||
        _profile == FabricProfile::Heavy)
        drop = decision(agentOrdinal, ordinal, 0x11) % 4 == 0;
    if (!drop && (_profile == FabricProfile::Partition ||
                  _profile == FabricProfile::Heavy)) {
        // Windows of 6 consecutive messages, 1 window in 3 dark:
        // long enough to miss several heartbeats in a row (a real
        // partition), then traffic resumes and the agent heals.
        drop = decision(agentOrdinal, ordinal / 6, 0x22) % 3 == 0;
    }
    if (drop)
        ++_tally.dropped;
    return drop;
}

bool
FabricChaos::duplicateResult(std::uint64_t agentOrdinal,
                             std::uint64_t ordinal)
{
    (void)agentOrdinal;
    (void)ordinal;
    if (_profile != FabricProfile::Duplicate &&
        _profile != FabricProfile::Heavy)
        return false;
    ++_tally.duplicated;
    return true;
}

bool
FabricChaos::killOnAssign(std::uint64_t agentOrdinal,
                          std::uint64_t assignOrdinal)
{
    if (_profile != FabricProfile::Kill)
        return false;
    (void)agentOrdinal;
    if (assignOrdinal != 1)
        return false;
    ++_tally.kills;
    return true;
}

FabricProfile
FabricChaos::agentAffliction(std::uint64_t agentOrdinal) const
{
    if ((_profile == FabricProfile::Slow ||
         _profile == FabricProfile::Liar) &&
        agentOrdinal == 0)
        return _profile;
    return FabricProfile::None;
}

} // namespace edge::serve
