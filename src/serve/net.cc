#include "serve/net.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace edge::serve {

namespace {

void
setCloexec(int fd)
{
    int flags = fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void
setNonblock(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string
errnoStr(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Compact the front-consumed region of a peel buffer once the dead
 *  prefix dominates, so long sessions don't grow without bound. */
void
compact(std::string &buf, std::size_t &off)
{
    if (off > 0 && (off >= buf.size() || off > 256 * 1024)) {
        buf.erase(0, off);
        off = 0;
    }
}

bool
peelLine(std::string &buf, std::size_t &off, std::string *line)
{
    std::size_t nl = buf.find('\n', off);
    if (nl == std::string::npos) {
        compact(buf, off);
        return false;
    }
    line->assign(buf, off, nl - off);
    off = nl + 1;
    compact(buf, off);
    return true;
}

} // namespace

int
listenOn(std::uint16_t port, std::string *err)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = errnoStr("socket");
        return -1;
    }
    setCloexec(fd);
    // Nonblocking so the accept-until-drained loop in Fabric::pump
    // stops at EAGAIN instead of parking the coordinator.
    setNonblock(fd);
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        if (err)
            *err = errnoStr("bind");
        close(fd);
        return -1;
    }
    if (listen(fd, 64) != 0) {
        if (err)
            *err = errnoStr("listen");
        close(fd);
        return -1;
    }
    return fd;
}

std::uint16_t
boundPort(int listen_fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                    &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
connectTo(const std::string &host_port, std::string *err,
          std::uint64_t timeoutMs)
{
    std::size_t colon = host_port.rfind(':');
    if (colon == std::string::npos || colon + 1 >= host_port.size()) {
        if (err)
            *err = "address '" + host_port +
                   "' is not of the form host:port";
        return -1;
    }
    std::string host = host_port.substr(0, colon);
    std::string port = host_port.substr(colon + 1);

    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0 || !res) {
        if (err)
            *err = "resolve '" + host + "': " + gai_strerror(rc);
        if (res)
            freeaddrinfo(res);
        return -1;
    }

    bool timed_out = false;
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        setCloexec(fd);
        if (timeoutMs == 0) {
            int rc;
            do {
                rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
            } while (rc != 0 && errno == EINTR);
            if (rc == 0)
                break;
        } else {
            // Deadline-bounded connect: go nonblocking, poll for
            // writability, then read back SO_ERROR for the verdict.
            // The poll is re-armed against an ABSOLUTE deadline, so
            // a signal storm (EINTR) shortens nothing and extends
            // nothing.
            setNonblock(fd);
            int rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
            if (rc == 0)
                break;
            if (errno == EINPROGRESS) {
                Clock &clk = Clock::real();
                const Clock::time_point deadline =
                    clk.now() + std::chrono::milliseconds(timeoutMs);
                for (;;) {
                    std::int64_t left = clk.msUntil(deadline);
                    pollfd p = {fd, POLLOUT, 0};
                    rc = poll(&p, 1, static_cast<int>(left));
                    if (rc < 0 && errno == EINTR)
                        continue;
                    break;
                }
                if (rc > 0) {
                    int so_err = 0;
                    socklen_t len = sizeof(so_err);
                    getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err,
                               &len);
                    if (so_err == 0) {
                        // Connected: restore blocking for the
                        // caller's plain read/write helpers.
                        int flags = fcntl(fd, F_GETFL, 0);
                        if (flags >= 0)
                            fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
                        break;
                    }
                    errno = so_err;
                } else if (rc == 0) {
                    timed_out = true;
                }
            }
        }
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0 && err) {
        if (timed_out)
            *err = "connect " + host_port + ": timed out after " +
                   std::to_string(timeoutMs) + " ms";
        else
            *err = errnoStr(("connect " + host_port).c_str());
    }
    if (fd >= 0) {
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return fd;
}

bool
sendLine(int fd, const std::string &line, std::string *err)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = write(fd, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = errnoStr("write");
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineReader::next(std::string *line, std::string *err,
                 std::uint64_t timeoutMs)
{
    for (;;) {
        if (peelLine(_buf, _off, line))
            return true;
        if (_buf.size() - _off > kMaxLineBytes) {
            if (err)
                *err = "peer sent an over-long line";
            return false;
        }
        if (timeoutMs != 0) {
            // Absolute inactivity deadline: EINTR re-arms the poll
            // with the time REMAINING, so interrupted waits neither
            // fall through to a deadline-less blocking read nor
            // restart the full timeout.
            Clock &clk = Clock::real();
            const Clock::time_point deadline =
                clk.now() + std::chrono::milliseconds(timeoutMs);
            int rc;
            for (;;) {
                std::int64_t left = clk.msUntil(deadline);
                pollfd p = {_fd, POLLIN, 0};
                rc = poll(&p, 1, static_cast<int>(left));
                if (rc < 0 && errno == EINTR)
                    continue;
                break;
            }
            if (rc == 0) {
                if (err)
                    *err = "timed out after " +
                           std::to_string(timeoutMs) +
                           " ms waiting for the coordinator";
                return false;
            }
            if (rc < 0) {
                if (err)
                    *err = errnoStr("poll");
                return false;
            }
        }
        char chunk[65536];
        ssize_t n = read(_fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = errnoStr("read");
            return false;
        }
        if (n == 0) {
            if (err)
                *err = "connection closed";
            return false;
        }
        _buf.append(chunk, static_cast<std::size_t>(n));
    }
}

Conn::Conn(int fd) : _fd(fd)
{
    setNonblock(_fd);
    setCloexec(_fd);
    int one = 1;
    setsockopt(_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Conn::~Conn()
{
    if (_fd >= 0)
        close(_fd);
}

void
Conn::onReadable()
{
    char chunk[65536];
    for (;;) {
        ssize_t n = read(_fd, chunk, sizeof(chunk));
        if (n > 0) {
            _in.append(chunk, static_cast<std::size_t>(n));
            if (_in.size() - _inOff > kMaxLineBytes) {
                _dead = true; // over-long line: hostile or corrupt
                return;
            }
            continue;
        }
        if (n == 0) {
            _dead = true; // EOF
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        _dead = true;
        return;
    }
}

void
Conn::onWritable()
{
    while (_outOff < _out.size()) {
        ssize_t n =
            write(_fd, _out.data() + _outOff, _out.size() - _outOff);
        if (n > 0) {
            _outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        _dead = true;
        return;
    }
    compact(_out, _outOff);
}

bool
Conn::nextLine(std::string *line)
{
    return peelLine(_in, _inOff, line);
}

void
Conn::send(const std::string &line)
{
    if (_dead)
        return;
    _out.append(line);
    _out.push_back('\n');
    onWritable();
}

void
Conn::sever()
{
    if (_fd >= 0)
        shutdown(_fd, SHUT_RDWR);
    _dead = true;
}

TcpTransport::~TcpTransport()
{
    if (_listenFd >= 0)
        close(_listenFd);
}

bool
TcpTransport::listen(std::uint16_t port, std::string *err)
{
    _listenFd = listenOn(port, err);
    if (_listenFd < 0)
        return false;
    _port = boundPort(_listenFd);
    return true;
}

void
TcpTransport::pump(int timeoutMs,
                   const std::vector<Stream *> &streams,
                   std::vector<std::unique_ptr<Stream>> *accepted)
{
    std::vector<pollfd> fds;
    std::vector<Stream *> polled;
    fds.reserve(streams.size() + 1);
    if (_listenFd >= 0)
        fds.push_back({_listenFd, POLLIN, 0});
    for (Stream *s : streams) {
        if (!s || s->dead() || s->fd() < 0)
            continue;
        short ev = POLLIN;
        if (s->wantWrite())
            ev |= POLLOUT;
        fds.push_back({s->fd(), ev, 0});
        polled.push_back(s);
    }
    if (fds.empty())
        return;

    int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()),
                  timeoutMs);
    if (rc < 0) {
        // EINTR (or any transient poll failure) is a shortened turn:
        // the caller's loop comes straight back with its own
        // absolute deadlines intact.
        return;
    }
    if (rc == 0)
        return;

    std::size_t base = 0;
    if (_listenFd >= 0) {
        base = 1;
        if ((fds[0].revents & POLLIN) != 0 && accepted) {
            for (;;) {
                int cfd = accept(_listenFd, nullptr, nullptr);
                if (cfd < 0) {
                    if (errno == EINTR)
                        continue;
                    break; // EAGAIN: drained
                }
                accepted->push_back(std::make_unique<Conn>(cfd));
            }
        }
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
        short re = fds[base + i].revents;
        if (re == 0)
            continue;
        if ((re & POLLOUT) != 0)
            polled[i]->onWritable();
        if ((re & (POLLIN | POLLERR | POLLHUP)) != 0)
            polled[i]->onReadable();
    }
}

} // namespace edge::serve
