#include "serve/daemon.hh"

#include <csignal>
#include <unistd.h>

#include "chaos/sim_error.hh"
#include "common/logging.hh"
#include "serve/proto.hh"
#include "super/campaign.hh"

namespace edge::serve {

using triage::JsonValue;

namespace {

/** Run one submitted campaign on the fabric and build the reply. */
std::string
runSubmission(Fabric &fabric, const JsonValue &campaign)
{
    std::string kind = campaignKind(campaign);
    std::string err;

    if (kind == "sweep") {
        sim::ChaosSweepParams params;
        triage::ProgramRef program;
        if (!sweepSubmissionFromJson(campaign, &params, &program,
                                     &err))
            return proto::error("bad sweep submission: " + err);
        inform("serve: sweep campaign: %zu seed(s) x %zu "
               "mechanism(s)",
               params.seeds.size(), params.configs.size());
        bool interrupted = false;
        sim::ChaosSweepReport rep = super::chaosSweepIsolated(
            params, program, fabric, &interrupted);
        return proto::report(sweepReportToJson(rep, interrupted));
    }

    if (kind == "fuzz") {
        fuzz::FuzzOptions opts;
        if (!fuzzSubmissionFromJson(campaign, &opts, &err))
            return proto::error("bad fuzz submission: " + err);
        opts.batchRunner = super::fuzzBatchRunner(fabric);
        inform("serve: fuzz campaign: %llu program(s), seed %llu",
               static_cast<unsigned long long>(opts.count),
               static_cast<unsigned long long>(opts.seed));
        fuzz::FuzzReport rep = fuzz::runCampaign(opts);
        return proto::report(fuzzReportToJson(rep));
    }

    return proto::error("unknown campaign kind '" + kind + "'");
}

} // namespace

int
serveMain(const ServeOptions &opts)
{
    if (opts.strictProvenance && opts.fabric.resume &&
        !opts.fabric.journalPath.empty()) {
        std::string desc;
        if (super::Journal::provenanceMismatch(
                opts.fabric.journalPath, &desc)) {
            fprintf(stderr,
                    "edgesim: serve: journal %s: %s; refusing to "
                    "resume under --strict-provenance\n",
                    opts.fabric.journalPath.c_str(), desc.c_str());
            return chaos::exitCodeFor(
                chaos::SimError::Reason::ProvenanceMismatch);
        }
    }

    Fabric fabric(opts.fabric);
    std::string err;
    if (!fabric.start(&err)) {
        fprintf(stderr, "edgesim: serve: %s\n", err.c_str());
        return 1;
    }
    super::installStopHandlers();
    inform("serve: coordinator listening on port %u "
           "(heartbeat %llu ms, timeout %llu ms, lease %llu ms)",
           fabric.port(),
           static_cast<unsigned long long>(opts.fabric.heartbeatMs),
           static_cast<unsigned long long>(
               opts.fabric.heartbeatTimeoutMs),
           static_cast<unsigned long long>(opts.fabric.leaseMs));

    std::size_t served = 0;
    while (super::stopSignal() == 0) {
        fabric.pump(200);
        Fabric::Submission sub;
        while (fabric.popSubmission(&sub)) {
            std::string reply = runSubmission(fabric, sub.campaign);
            if (!fabric.sendToClient(sub.client, reply))
                warn("serve: client disconnected before its report "
                     "could be delivered");
            // Push the reply out before a potential --once exit.
            for (int i = 0;
                 i < 500 && !fabric.clientFlushed(sub.client); ++i)
                fabric.pump(10);
            ++served;
            if (super::stopSignal() != 0)
                break;
        }
        if (opts.once && served > 0)
            break;
    }

    if (super::stopSignal() != 0)
        inform("serve: stopping on signal %d", super::stopSignal());
    inform("serve: %zu campaign(s) served, %llu duplicate result(s) "
           "deduped, %llu lease(s) reassigned, %llu agent death(s), "
           "%llu hedge(s), %llu audit(s) (%llu passed, %llu "
           "diverged), %llu agent(s) quarantined, %llu "
           "submission(s) shed",
           served,
           static_cast<unsigned long long>(
               fabric.duplicatesDeduped()),
           static_cast<unsigned long long>(fabric.reassignments()),
           static_cast<unsigned long long>(fabric.agentDeaths()),
           static_cast<unsigned long long>(fabric.hedges()),
           static_cast<unsigned long long>(fabric.auditsRun()),
           static_cast<unsigned long long>(fabric.auditsPassed()),
           static_cast<unsigned long long>(fabric.auditsDiverged()),
           static_cast<unsigned long long>(
               fabric.agentsQuarantined()),
           static_cast<unsigned long long>(
               fabric.shedSubmissions()));
    return 0;
}

namespace {

/** One submit round-trip: send the campaign, wait for report/error.
 *  Plain blocking client — it has nothing else to do. On an
 *  admission-control shed, *retryAfterMs gets the coordinator's
 *  structured hint (0 otherwise). */
bool
submitOnce(const std::string &coordinator, const JsonValue &campaign,
           JsonValue *reportBody, std::string *err,
           std::uint64_t timeoutMs, std::uint64_t *retryAfterMs)
{
    *retryAfterMs = 0;
    int fd = connectTo(coordinator, err, timeoutMs);
    if (fd < 0)
        return false;
    bool ok = false;
    if (sendLine(fd, proto::submit(campaign), err)) {
        LineReader reader(fd);
        std::string line;
        for (;;) {
            if (!reader.next(&line, err, timeoutMs))
                break;
            JsonValue doc;
            std::string type;
            if (!proto::parse(line, &doc, &type, err))
                break;
            if (type == "error") {
                std::uint64_t retry = doc.getU64("retry_after_ms");
                *retryAfterMs = retry;
                if (err) {
                    *err = "coordinator: " +
                           doc.getString("message", "unknown error");
                    // Admission-control shed: surface the structured
                    // retry hint so callers (and humans) can back off
                    // rather than hammer a loaded coordinator.
                    if (retry != 0)
                        *err += strfmt(" (retry after %llu ms)",
                                       static_cast<unsigned long long>(
                                           retry));
                }
                break;
            }
            if (type != "report")
                continue; // tolerate future chatter
            const JsonValue *body = doc.get("report");
            if (!body) {
                if (err)
                    *err = "report message without a body";
                break;
            }
            *reportBody = *body;
            ok = true;
            break;
        }
    }
    ::close(fd);
    return ok;
}

/** Submit with shed handling: an admission-control error carrying
 *  `retry_after_ms` is honored — sleep the hinted delay (clamped to
 *  [50ms, 10s]) and resubmit, up to `shedRetries` times. Every other
 *  failure is final. */
bool
submitAndWait(const std::string &coordinator,
              const JsonValue &campaign, JsonValue *reportBody,
              std::string *err, std::uint64_t timeoutMs,
              unsigned shedRetries)
{
    for (unsigned attempt = 0;; ++attempt) {
        std::uint64_t retryMs = 0;
        if (submitOnce(coordinator, campaign, reportBody, err,
                       timeoutMs, &retryMs))
            return true;
        if (retryMs == 0 || attempt >= shedRetries)
            return false;
        std::uint64_t waitMs =
            retryMs < 50 ? 50 : (retryMs > 10000 ? 10000 : retryMs);
        inform("submit: coordinator shed the campaign; retry %u/%u "
               "in %llu ms",
               attempt + 1, shedRetries,
               static_cast<unsigned long long>(waitMs));
        Clock::real().sleepFor(waitMs);
    }
}

} // namespace

bool
submitSweep(const std::string &coordinator,
            const sim::ChaosSweepParams &params,
            const triage::ProgramRef &program,
            sim::ChaosSweepReport *report, bool *interrupted,
            std::string *err, std::uint64_t timeoutMs,
            unsigned shedRetries)
{
    JsonValue body;
    if (!submitAndWait(coordinator, sweepSubmission(params, program),
                       &body, err, timeoutMs, shedRetries))
        return false;
    return sweepReportFromJson(body, report, interrupted, err);
}

bool
submitFuzz(const std::string &coordinator,
           const fuzz::FuzzOptions &opts, fuzz::FuzzReport *report,
           std::string *err, std::uint64_t timeoutMs,
           unsigned shedRetries)
{
    JsonValue body;
    if (!submitAndWait(coordinator, fuzzSubmission(opts), &body, err,
                       timeoutMs, shedRetries))
        return false;
    return fuzzReportFromJson(body, report, err);
}

} // namespace edge::serve
