/**
 * @file
 * Deterministic fault injection for the campaign fabric — the
 * network-layer sibling of the simulator's chaos engine. Every
 * decision is a pure FNV-1a hash of (seed, agent ordinal, event
 * ordinal, salt): no wall clock, no RNG state, so a profile+seed pair
 * names one exact fault schedule and a flaky-looking fabric failure
 * can be replayed on demand. The correctness contract under every
 * profile is unchanged: the merged campaign report must be
 * byte-identical to a clean single-host `--isolate` run.
 *
 * Profiles:
 *   none       no interference (the default)
 *   drop       drop ~1/4 of inbound heartbeats and results
 *   duplicate  deliver every inbound result twice
 *   partition  drop windows of consecutive inbound messages — long
 *              enough to trip the heartbeat timeout — then heal
 *   kill       close an agent's connection right after its second
 *              assignment (an agent death mid-cell)
 *   heavy      drop + duplicate + partition together
 *   slow       the first-registered agent delays every cell by a
 *              fixed kSlowCellDelayMs before answering — alive and
 *              heartbeating, but a straggler on every lease it holds
 *              (exercises hedged re-execution)
 *   liar       the first-registered agent flips bits in every result
 *              payload it returns — structurally valid JSON, wrong
 *              simulation content (exercises result audits)
 *
 * `slow` and `liar` are AGENT-side faults: the coordinator arms them,
 * but the affliction ships to the chosen agent inside its welcome
 * message, so the misbehaviour happens where it would in production —
 * on the executor, past every coordinator-side code path.
 */

#ifndef EDGE_SERVE_FABRIC_CHAOS_HH
#define EDGE_SERVE_FABRIC_CHAOS_HH

#include <cstdint>
#include <string>

namespace edge::serve {

enum class FabricProfile : std::uint8_t
{
    None,
    Drop,
    Duplicate,
    Partition,
    Kill,
    Heavy,
    Slow,
    Liar,
};

/** Per-cell delay a `slow`-afflicted agent adds before answering.
 *  Deliberately far past any sane --hedge-after-ms so the straggler
 *  path fires deterministically in tests and smokes. */
constexpr std::uint64_t kSlowCellDelayMs = 1500;

const char *fabricProfileName(FabricProfile p);

/** Parse a profile name; false on an unknown name. */
bool fabricProfileByName(const std::string &name, FabricProfile *out);

class FabricChaos
{
  public:
    FabricChaos() = default;
    FabricChaos(FabricProfile profile, std::uint64_t seed)
        : _profile(profile), _seed(seed)
    {
    }

    FabricProfile profile() const { return _profile; }
    bool active() const { return _profile != FabricProfile::None; }

    /**
     * Should this inbound message (the `ordinal`-th from this agent)
     * be dropped before processing? A dropped message never updates
     * the agent's last-heard time, so drop/partition schedules
     * exercise the heartbeat-timeout path. `hello` is never dropped —
     * an agent that can't register models a different failure (a
     * never-started agent), which the zero-agent fallback covers.
     */
    bool dropInbound(std::uint64_t agentOrdinal, std::uint64_t ordinal,
                     const std::string &type);

    /** Should this inbound result be delivered a second time? */
    bool duplicateResult(std::uint64_t agentOrdinal,
                         std::uint64_t ordinal);

    /** Should the agent's connection be severed after sending its
     *  `assignOrdinal`-th assignment (0-based)? */
    bool killOnAssign(std::uint64_t agentOrdinal,
                      std::uint64_t assignOrdinal);

    /**
     * The agent-side affliction to ship in this agent's welcome
     * message: FabricProfile::Slow or ::Liar for the afflicted agent
     * (registration ordinal 0 under those profiles), ::None for
     * everyone else. Exactly one agent misbehaves, deterministically
     * — the first to register — so audits always have an honest
     * majority to vote with.
     */
    FabricProfile agentAffliction(std::uint64_t agentOrdinal) const;

    struct Tally
    {
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t kills = 0;
    };
    const Tally &tally() const { return _tally; }

  private:
    std::uint64_t decision(std::uint64_t a, std::uint64_t b,
                           std::uint64_t salt) const;

    FabricProfile _profile = FabricProfile::None;
    std::uint64_t _seed = 0;
    Tally _tally;
};

} // namespace edge::serve

#endif // EDGE_SERVE_FABRIC_CHAOS_HH
