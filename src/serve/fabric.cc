#include "serve/fabric.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "serve/proto.hh"
#include "triage/repro.hh"
#include "triage/result_json.hh"

namespace edge::serve {

using super::CellOutcome;
using super::CellSpec;
using triage::JsonValue;

struct Fabric::Peer
{
    std::uint64_t id = 0;
    std::unique_ptr<Conn> conn;
    enum class Kind : std::uint8_t
    {
        Unknown,
        Agent,
        Client,
    } kind = Kind::Unknown;

    // --- agent state ------------------------------------------------
    std::string name;
    unsigned slots = 1;
    std::uint64_t ordinal = 0; ///< registration order (chaos key)
    bool live = false;         ///< registered and heartbeating
    unsigned inFlight = 0;
    Clock::time_point lastHeard;
    std::uint64_t inOrdinal = 0;     ///< inbound messages (chaos key)
    std::uint64_t resultOrdinal = 0; ///< inbound results (chaos key)
    std::uint64_t assignOrdinal = 0; ///< outbound assigns (chaos key)
};

namespace {

/** Structured result for a cell the fabric lost rather than ran. */
sim::RunResult
lostResult(const CellSpec &cell, chaos::SimError::Reason reason,
           std::string message)
{
    sim::RunResult r;
    r.error.reason = reason;
    r.error.message = std::move(message);
    r.rngSeed = cell.config.rngSeed;
    r.chaosSeed = cell.config.chaos.seed;
    return r;
}

} // namespace

Fabric::Fabric(FabricOptions opts)
    : _opts(std::move(opts)),
      _chaos(_opts.chaosProfile, _opts.chaosSeed)
{
    // Writes to an agent that vanished mid-send must come back as
    // errors, not process-fatal SIGPIPEs.
    std::signal(SIGPIPE, SIG_IGN);
}

Fabric::~Fabric()
{
    if (_listenFd >= 0)
        ::close(_listenFd);
}

bool
Fabric::start(std::string *err)
{
    _listenFd = listenOn(_opts.listenPort, err);
    if (_listenFd < 0)
        return false;
    _port = boundPort(_listenFd);
    if (_chaos.active())
        inform("fabric: chaos profile '%s' (seed %llu) armed",
               fabricProfileName(_chaos.profile()),
               static_cast<unsigned long long>(_opts.chaosSeed));
    return true;
}

void
Fabric::requestStop()
{
    _stop.store(true, std::memory_order_relaxed);
    if (super::Supervisor *local =
            _activeLocal.load(std::memory_order_relaxed))
        local->requestStop();
}

bool
Fabric::stopRequested() const
{
    return _stop.load(std::memory_order_relaxed) ||
           super::stopSignal() != 0;
}

std::string
Fabric::resumeHint() const
{
    if (!_journal.isOpen())
        return "";
    return strfmt("add --resume %s to the same command line to "
                  "continue this campaign",
                  _journal.path().c_str());
}

std::size_t
Fabric::liveAgents() const
{
    std::size_t n = 0;
    for (const auto &kv : _peers)
        if (kv.second->kind == Peer::Kind::Agent && kv.second->live)
            ++n;
    return n;
}

bool
Fabric::popSubmission(Submission *out)
{
    if (_submissions.empty())
        return false;
    *out = std::move(_submissions.front());
    _submissions.pop_front();
    return true;
}

bool
Fabric::sendToClient(std::uint64_t client, const std::string &line)
{
    auto it = _peers.find(client);
    if (it == _peers.end() || it->second->conn->dead())
        return false;
    it->second->conn->send(line);
    return true;
}

bool
Fabric::clientFlushed(std::uint64_t client) const
{
    auto it = _peers.find(client);
    if (it == _peers.end() || it->second->conn->dead())
        return true;
    return !it->second->conn->wantWrite();
}

void
Fabric::ensureJournal()
{
    if (_journalReady || _opts.journalPath.empty())
        return;
    super::JournalSetup setup;
    setup.log = _opts.logOptions;
    setup.resumeThreads = _opts.resumeThreads;
    setup.announceResume = _opts.resume;
    std::string err;
    if (_journal.open(_opts.journalPath, setup, &err))
        _journalReady = true;
    else
        warn("fabric: %s — continuing without a journal", err.c_str());
}

// --- network turn ---------------------------------------------------

void
Fabric::pump(int timeoutMs)
{
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> owner; // peer id per pollfd past [0]
    fds.push_back({_listenFd, POLLIN, 0});
    for (auto &kv : _peers) {
        Peer &p = *kv.second;
        if (p.conn->dead())
            continue;
        short ev = POLLIN;
        if (p.conn->wantWrite())
            ev |= POLLOUT;
        fds.push_back({p.conn->fd(), ev, 0});
        owner.push_back(p.id);
    }

    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                    timeoutMs);
    if (rc < 0 && errno != EINTR)
        warn("fabric: poll: %s", std::strerror(errno));

    if (fds[0].revents & POLLIN) {
        for (;;) {
            int cfd = ::accept(_listenFd, nullptr, nullptr);
            if (cfd < 0)
                break;
            auto peer = std::make_unique<Peer>();
            peer->id = ++_peerIds;
            peer->conn = std::make_unique<Conn>(cfd);
            peer->lastHeard = Clock::now();
            _peers.emplace(peer->id, std::move(peer));
        }
    }

    for (std::size_t fi = 1; fi < fds.size(); ++fi) {
        if (fds[fi].revents == 0)
            continue;
        auto it = _peers.find(owner[fi - 1]);
        if (it == _peers.end())
            continue;
        Peer &p = *it->second;
        if (fds[fi].revents & POLLOUT)
            p.conn->onWritable();
        if (fds[fi].revents & (POLLIN | POLLHUP | POLLERR))
            p.conn->onReadable();
        std::string line;
        while (!p.conn->dead() && p.conn->nextLine(&line))
            handleLine(p, line);
    }

    // Dead-connection sweep: a closed agent socket is an immediate
    // death (leases revoked, cells reassigned); a silent-but-open one
    // is handled by the heartbeat sweep below.
    for (auto it = _peers.begin(); it != _peers.end();) {
        if (!it->second->conn->dead()) {
            ++it;
            continue;
        }
        if (it->second->kind == Peer::Kind::Agent)
            agentLost(*it->second, "connection closed");
        it = _peers.erase(it);
    }

    sweepDeadlines(Clock::now());
}

void
Fabric::sweepDeadlines(Clock::time_point now)
{
    for (auto &kv : _peers) {
        Peer &p = *kv.second;
        if (p.kind != Peer::Kind::Agent || !p.live)
            continue;
        auto silent =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - p.lastHeard)
                .count();
        if (silent >= 0 && static_cast<std::uint64_t>(silent) >
                               _opts.heartbeatTimeoutMs)
            // The connection stays open: a partitioned agent heals by
            // speaking again, and its stale results hit the dedup
            // path.
            agentLost(p, "missed heartbeats");
    }

    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.revoked || l.answered || now < l.expiry)
            continue;
        l.revoked = true;
        auto pit = _peers.find(l.peer);
        if (pit != _peers.end() && pit->second->inFlight > 0)
            --pit->second->inFlight;
        reassignCell(l.cell, kv.first, "lease expired");
    }
}

void
Fabric::handleLine(Peer &peer, const std::string &line)
{
    JsonValue doc;
    std::string type, err;
    if (!proto::parse(line, &doc, &type, &err)) {
        if (peer.kind == Peer::Kind::Unknown) {
            peer.conn->send(proto::error("bad message: " + err));
            peer.conn->markDead();
        } else {
            warn("fabric: ignoring malformed message from peer %llu: "
                 "%s",
                 static_cast<unsigned long long>(peer.id),
                 err.c_str());
        }
        return;
    }

    if (peer.kind == Peer::Kind::Unknown) {
        if (type == "hello") {
            peer.kind = Peer::Kind::Agent;
            peer.name = doc.getString("name", "agent");
            peer.slots = static_cast<unsigned>(
                std::max<std::uint64_t>(1, doc.getU64("slots", 1)));
            peer.ordinal = _agentOrdinals++;
            peer.live = true;
            peer.lastHeard = Clock::now();
            peer.conn->send(
                proto::welcome(peer.id, _opts.heartbeatMs));
            inform("fabric: agent '%s' connected (%u slot%s)",
                   peer.name.c_str(), peer.slots,
                   peer.slots == 1 ? "" : "s");
        } else if (type == "submit") {
            peer.kind = Peer::Kind::Client;
            if (const JsonValue *c = doc.get("campaign"))
                _submissions.push_back({peer.id, *c});
            else
                peer.conn->send(
                    proto::error("submit without a campaign"));
        } else {
            peer.conn->send(proto::error(
                "expected hello or submit, got '" + type + "'"));
            peer.conn->markDead();
        }
        return;
    }

    if (peer.kind == Peer::Kind::Client) {
        if (type == "submit") {
            if (const JsonValue *c = doc.get("campaign"))
                _submissions.push_back({peer.id, *c});
        }
        return;
    }

    handleAgentMessage(peer, doc, type);
}

void
Fabric::handleAgentMessage(Peer &peer, const JsonValue &doc,
                           const std::string &type)
{
    std::uint64_t ordinal = peer.inOrdinal++;
    if (_chaos.dropInbound(peer.ordinal, ordinal, type))
        return; // dropped on the simulated wire: no liveness credit

    if (!peer.live) {
        // A partition healed: the agent was declared dead but the
        // socket stayed up. It re-enters the pool; anything it
        // answers for a revoked lease is deduped or, if the cell is
        // still unfinished, accepted (same bits either way).
        peer.live = true;
        inform("fabric: agent '%s' healed after a partition",
               peer.name.c_str());
    }
    peer.lastHeard = Clock::now();

    if (type == "heartbeat")
        return;
    if (type == "result") {
        std::uint64_t rord = peer.resultOrdinal++;
        handleResult(peer, doc);
        if (_chaos.duplicateResult(peer.ordinal, rord))
            handleResult(peer, doc); // delivered twice by the "wire"
        return;
    }
    warn("fabric: agent '%s' sent unexpected '%s'",
         peer.name.c_str(), type.c_str());
}

// --- lease state machine --------------------------------------------

void
Fabric::agentLost(Peer &peer, const char *why)
{
    if (!peer.live)
        return;
    peer.live = false;
    peer.inFlight = 0;
    ++_agentDeaths;
    warn("fabric: agent '%s' lost (%s) — revoking its leases",
         peer.name.c_str(), why);
    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.peer != peer.id || l.revoked || l.answered)
            continue;
        l.revoked = true;
        reassignCell(l.cell, kv.first, why);
    }
}

void
Fabric::reassignCell(std::size_t i, std::uint64_t leaseId,
                     const char *why)
{
    if (!_run || _run->st[i] != CState::Leased)
        return;
    ++_reassignments;
    if (++_run->reassigns[i] > _opts.maxReassign) {
        sim::RunResult r = lostResult(
            (*_run->cells)[i], chaos::SimError::Reason::AgentLost,
            strfmt("cell lost %u leases (last: %s) — quarantined",
                   _run->reassigns[i], why));
        r.retries = _run->attempt[i] - 1;
        r.backoffMs = _run->backoffAccum[i];
        finalizeCell(i, std::move(r), "", leaseId, _run->attempt[i]);
        return;
    }
    // Same doubling backoff shape as transient retries, so a flapping
    // agent can't spin the scheduler; the budget cap keeps a lost
    // cell from stalling the grid.
    std::uint64_t backoff = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(_opts.retry.backoffMs)
            << std::min(_run->reassigns[i] - 1, 10u),
        _opts.retry.maxTotalBackoffMs);
    _run->st[i] = CState::Pending;
    _run->notBefore[i] =
        Clock::now() + std::chrono::milliseconds(backoff);
}

void
Fabric::handleResult(Peer &peer, const JsonValue &doc)
{
    std::uint64_t leaseId = doc.getU64("lease");
    auto it = _leases.find(leaseId);
    if (it == _leases.end()) {
        ++_staleIgnored; // lease from a previous batch or unknown
        return;
    }
    Lease &l = it->second;
    if (l.answered) {
        ++_dupDeduped;
        return;
    }
    l.answered = true;
    if (!l.revoked && peer.inFlight > 0)
        --peer.inFlight;

    if (!_run)
        return;
    std::size_t i = l.cell;
    if (_run->st[i] == CState::Done ||
        _run->st[i] == CState::WaitDurable) {
        // The cell already finished elsewhere (reassigned after a
        // partition, or the local fallback got it first). Same cell,
        // same bits — drop the copy.
        ++_dupDeduped;
        return;
    }

    std::uint64_t cellId = doc.getU64("cell");
    if (cellId != 0 && cellId != _run->hash[i]) {
        warn("fabric: agent '%s' answered lease %llu with the wrong "
             "cell identity — ignoring",
             peer.name.c_str(),
             static_cast<unsigned long long>(leaseId));
        ++_staleIgnored;
        return;
    }

    sim::RunResult r;
    std::string err;
    const JsonValue *body = doc.get("result");
    if (!body || !triage::resultFromJson(*body, &r, &err))
        r = lostResult((*_run->cells)[i],
                       chaos::SimError::Reason::WorkerProtocol,
                       "agent returned an invalid result document (" +
                           err + ")");

    unsigned attempt = _run->attempt[i];
    if (!l.revoked && _opts.retry.shouldRetry(r, attempt) &&
        !stopRequested()) {
        // Transient failure: same backoff math as the supervisor,
        // scheduled on the fabric's clock.
        std::uint64_t backoff = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(_opts.retry.backoffMs)
                << (attempt - 1),
            _opts.retry.maxTotalBackoffMs -
                std::min(_opts.retry.maxTotalBackoffMs,
                         _run->backoffAccum[i]));
        _run->attempt[i] = attempt + 1;
        _run->backoffAccum[i] += backoff;
        _run->notBefore[i] =
            Clock::now() + std::chrono::milliseconds(backoff);
        _run->st[i] = CState::Pending;
        return;
    }
    if (l.revoked && chaos::isTransient(r.error.reason)) {
        // A stale transient death from a revoked lease: the
        // reassignment already in flight IS the retry; recording this
        // one would double-count.
        ++_staleIgnored;
        return;
    }

    // Deterministic content (or an exhausted retry budget): accept.
    // The stamps mirror Supervisor::runAll exactly — a clean first-
    // attempt result gets retries=0/backoffMs=0, identical to the
    // single-host bytes.
    r.retries = attempt - 1;
    r.backoffMs = _run->backoffAccum[i];
    finalizeCell(i, std::move(r), peer.name, leaseId, attempt);
}

void
Fabric::finalizeCell(std::size_t i, sim::RunResult result,
                     const std::string &agent, std::uint64_t lease,
                     unsigned attempt)
{
    CellOutcome &o = (*_run->out)[i];
    const CellSpec &cell = (*_run->cells)[i];
    o.ran = true;
    o.fromJournal = false;

    const chaos::SimError::Reason reason = result.error.reason;
    const bool worker_death = chaos::isWorkerFailure(reason);
    if (worker_death && !_opts.reproDir.empty()) {
        triage::ReproSpec spec = triage::captureFromResult(
            cell.program, cell.config, cell.maxCycles, result);
        o.reproPath = triage::captureToFile(spec, _opts.reproDir);
    }
    o.result = std::move(result);

    ++_completed;
    if (!(o.result.error.ok() && o.result.halted &&
          o.result.archMatch))
        ++_failures;

    if (_journalReady) {
        super::JournalRecord rec;
        rec.cell = _run->hash[i];
        rec.final = !worker_death && !chaos::isTransient(reason);
        rec.result = o.result;
        rec.reproPath = o.reproPath;
        rec.agent = agent;
        rec.lease = lease;
        rec.attempt = attempt;
        std::string err;
        if (_journal.append(rec, &err)) {
            // Durable-ack: the cell parks in WaitDurable until the
            // group-commit flusher's watermark passes its record. A
            // coordinator killed in this window never marked the cell
            // Done, so a resumed campaign re-leases it.
            _run->st[i] = CState::WaitDurable;
            _run->waitDurable.emplace_back(i, _journal.lastLsn());
            return;
        }
        warn("fabric: journal append failed: %s", err.c_str());
    }

    _run->st[i] = CState::Done;
    --_run->remaining;
}

void
Fabric::promoteDurable(bool force)
{
    if (!_run || _run->waitDurable.empty())
        return;
    if (!force && _journal.logFailed()) {
        // Sticky log failure: the watermark will never reach these
        // records. The results are already in the report, so finish
        // the campaign; the lost records simply re-run on --resume.
        warn("fabric: result log failed — completing %zu cell(s) "
             "without a durable ack (they will re-run on --resume)",
             _run->waitDurable.size());
        force = true;
    }
    const std::uint64_t durable = _journal.durableLsn();
    while (!_run->waitDurable.empty() &&
           (force || _run->waitDurable.front().second <= durable)) {
        _run->st[_run->waitDurable.front().first] = CState::Done;
        --_run->remaining;
        _run->waitDurable.pop_front();
    }
}

// --- scheduling -----------------------------------------------------

void
Fabric::assignReady(Clock::time_point now)
{
    for (auto &kv : _peers) {
        Peer &p = *kv.second;
        if (p.kind != Peer::Kind::Agent || !p.live ||
            p.conn->dead())
            continue;
        while (p.inFlight < p.slots) {
            std::size_t pick = _run->st.size();
            for (std::size_t i = 0; i < _run->st.size(); ++i)
                if (_run->st[i] == CState::Pending &&
                    _run->notBefore[i] <= now) {
                    pick = i;
                    break;
                }
            if (pick == _run->st.size())
                return;

            std::uint64_t id = ++_leaseIds;
            Lease l;
            l.cell = pick;
            l.peer = p.id;
            l.attempt = _run->attempt[pick];
            l.expiry = now + std::chrono::milliseconds(_opts.leaseMs);
            _leases.emplace(id, l);
            _run->st[pick] = CState::Leased;
            ++p.inFlight;

            std::uint64_t aord = p.assignOrdinal++;
            p.conn->send(proto::assign(
                id, (*_run->cells)[pick], _opts.cellTimeoutMs,
                _opts.rlimitAsMb, _opts.rlimitCpuSec));
            if (_chaos.killOnAssign(p.ordinal, aord)) {
                warn("fabric: chaos kill: severing agent '%s' after "
                     "assign %llu",
                     p.name.c_str(),
                     static_cast<unsigned long long>(aord));
                // Shut down the socket so the agent sees EOF and
                // dies mid-cell; the dead-connection sweep revokes.
                ::shutdown(p.conn->fd(), SHUT_RDWR);
                p.conn->markDead();
                break;
            }
        }
    }
}

void
Fabric::runLocalBatch()
{
    unsigned jobs = _opts.localJobs;
    if (jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? hw : 1;
    }

    Clock::time_point now = Clock::now();
    std::vector<std::size_t> idx;
    std::vector<CellSpec> batch;
    for (std::size_t i = 0;
         i < _run->st.size() && idx.size() < jobs; ++i) {
        if (_run->st[i] == CState::Pending &&
            _run->notBefore[i] <= now) {
            idx.push_back(i);
            batch.push_back((*_run->cells)[i]);
        }
    }
    if (idx.empty())
        return;

    if (!_downgradeLogged) {
        warn("fabric: no live agents — downgrading to local "
             "fork/exec workers (campaign continues single-host)");
        _downgradeLogged = true;
    }

    // The embedded local runner owns retries and stamps results the
    // same way a single-host --isolate run would; the fabric journals
    // and tallies, so no journal/repro dir is given to it. Batches
    // are at most `jobs` cells so newly connected agents get picked
    // up between batches.
    super::SupervisorOptions so;
    so.jobs = jobs;
    so.cellTimeoutMs = _opts.cellTimeoutMs;
    so.rlimitAsMb = _opts.rlimitAsMb;
    so.rlimitCpuSec = _opts.rlimitCpuSec;
    so.workerPath = _opts.workerPath;
    so.retry = _opts.retry;
    super::Supervisor sup(so);
    _activeLocal.store(&sup, std::memory_order_relaxed);
    if (_stop.load(std::memory_order_relaxed))
        sup.requestStop();
    std::vector<CellOutcome> outs = sup.runAll(batch);
    _activeLocal.store(nullptr, std::memory_order_relaxed);

    for (std::size_t k = 0; k < idx.size(); ++k) {
        if (!outs[k].ran)
            continue; // stop hit mid-batch; still pending, resumable
        if (_run->st[idx[k]] == CState::Done ||
            _run->st[idx[k]] == CState::WaitDurable) {
            ++_dupDeduped; // a healed agent raced us to it
            continue;
        }
        ++_localCells;
        // Local results arrive fully stamped; pass them through
        // verbatim for byte-identity with a pure single-host run.
        finalizeCell(idx[k], std::move(outs[k].result), "", 0,
                     _run->attempt[idx[k]]);
    }
}

std::size_t
Fabric::outstandingLeases() const
{
    std::size_t n = 0;
    for (const auto &kv : _leases)
        if (!kv.second.revoked && !kv.second.answered)
            ++n;
    return n;
}

bool
Fabric::anyReady(Clock::time_point now) const
{
    for (std::size_t i = 0; i < _run->st.size(); ++i)
        if (_run->st[i] == CState::Pending &&
            _run->notBefore[i] <= now)
            return true;
    return false;
}

int
Fabric::pollTimeout(Clock::time_point now, int base) const
{
    int t = base;
    for (std::size_t i = 0; i < _run->st.size(); ++i) {
        if (_run->st[i] != CState::Pending)
            continue;
        auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                _run->notBefore[i] - now)
                .count();
        if (left > 0)
            t = std::min<int>(t, static_cast<int>(left));
    }
    return std::max(t, 1);
}

// --- the campaign slice ---------------------------------------------

std::vector<CellOutcome>
Fabric::runAll(const std::vector<CellSpec> &cells)
{
    panic_if(_listenFd < 0, "Fabric::runAll before start()");
    ensureJournal();

    std::map<std::uint64_t, const super::JournalRecord *> replayable;
    if (_opts.resume && _journalReady)
        replayable = super::Journal::resumeIndex(_journal.loaded());

    std::vector<CellOutcome> out(cells.size());
    RunCtx ctx;
    ctx.cells = &cells;
    ctx.out = &out;
    ctx.st.assign(cells.size(), CState::Pending);
    ctx.attempt.assign(cells.size(), 1);
    ctx.reassigns.assign(cells.size(), 0);
    ctx.backoffAccum.assign(cells.size(), 0);
    ctx.notBefore.assign(cells.size(), Clock::now());
    ctx.hash.resize(cells.size());

    for (std::size_t i = 0; i < cells.size(); ++i) {
        ctx.hash[i] = super::cellHash(cells[i]);
        if (!replayable.empty()) {
            auto it = replayable.find(ctx.hash[i]);
            if (it != replayable.end()) {
                out[i].ran = true;
                out[i].fromJournal = true;
                out[i].result = it->second->result;
                out[i].reproPath = it->second->reproPath;
                ctx.st[i] = CState::Done;
                ++_skipped;
                if (!(out[i].result.error.ok() &&
                      out[i].result.halted &&
                      out[i].result.archMatch))
                    ++_failures;
                continue;
            }
        }
        ++ctx.remaining;
    }

    _run = &ctx;
    while (ctx.remaining > 0) {
        // requestStop() and SIGINT stop now (un-run cells resume
        // later); SIGTERM drains what is already leased first.
        if (_stop.load(std::memory_order_relaxed) ||
            super::stopSignal() == SIGINT)
            break;
        const bool drain = super::stopSignal() == SIGTERM;

        promoteDurable(false);
        if (ctx.remaining == 0)
            break;

        Clock::time_point now = Clock::now();
        if (!drain) {
            assignReady(now);
            if (liveAgents() == 0 && _opts.localFallback &&
                anyReady(now)) {
                runLocalBatch();
                // Re-enter the loop so a just-connected agent (or a
                // stop) is noticed before the next batch.
                pump(0);
                continue;
            }
        } else if (outstandingLeases() == 0) {
            break; // drained: everything in flight has landed
        }

        pump(pollTimeout(now, 50));
    }
    // End of slice: make everything appended durable (one fsync at
    // most), then promote the stragglers. On a stop/drain exit this
    // is what makes the partial campaign safely resumable.
    if (_journalReady) {
        std::string err;
        if (!_journal.flush(&err))
            warn("fabric: journal flush failed: %s — unflushed "
                 "results will re-run on --resume", err.c_str());
    }
    promoteDurable(true);
    _run = nullptr;
    _leases.clear();
    return out;
}

} // namespace edge::serve
