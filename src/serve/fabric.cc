#include "serve/fabric.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/hash.hh"
#include "common/logging.hh"
#include "serve/proto.hh"
#include "triage/repro.hh"
#include "triage/result_json.hh"

namespace edge::serve {

using super::CellOutcome;
using super::CellSpec;
using triage::JsonValue;

struct Fabric::Peer
{
    std::uint64_t id = 0;
    std::unique_ptr<Stream> conn;
    enum class Kind : std::uint8_t
    {
        Unknown,
        Agent,
        Client,
    } kind = Kind::Unknown;

    // --- agent state ------------------------------------------------
    std::string name;
    unsigned slots = 1;
    std::uint64_t ordinal = 0; ///< registration order (chaos key)
    bool live = false;         ///< registered and heartbeating
    unsigned inFlight = 0;
    Clock::time_point lastHeard;
    std::uint64_t inOrdinal = 0;     ///< inbound messages (chaos key)
    std::uint64_t resultOrdinal = 0; ///< inbound results (chaos key)
    std::uint64_t assignOrdinal = 0; ///< outbound assigns (chaos key)

    // --- health -----------------------------------------------------
    double ewmaMs = 0; ///< EWMA cell latency (0 = no samples yet)
    std::uint64_t okResults = 0;
    std::uint64_t crashes = 0;     ///< worker-failure results
    std::uint64_t timeouts = 0;    ///< expired leases
    std::uint64_t leaseLosses = 0; ///< leases revoked by a death
    std::uint64_t loadInflight = 0; ///< agent-reported, via heartbeat
    std::uint64_t loadQueued = 0;
    /** Audit caught this agent returning corrupt bytes: it never
     *  gets another lease of any kind. */
    bool quarantined = false;
    bool demotionLogged = false;

    std::uint64_t
    badEvents() const
    {
        return crashes + timeouts + leaseLosses;
    }
    double
    failRate() const
    {
        std::uint64_t total = okResults + badEvents();
        return total ? static_cast<double>(badEvents()) /
                           static_cast<double>(total)
                     : 0.0;
    }
    /** Demoted agents are placed last (and never hedged onto): a
     *  majority-failure record past a minimum sample count. */
    bool
    demoted() const
    {
        return badEvents() >= 3 && failRate() > 0.5;
    }
};

namespace {

/** Structured result for a cell the fabric lost rather than ran. */
sim::RunResult
lostResult(const CellSpec &cell, chaos::SimError::Reason reason,
           std::string message)
{
    sim::RunResult r;
    r.error.reason = reason;
    r.error.message = std::move(message);
    r.rngSeed = cell.config.rngSeed;
    r.chaosSeed = cell.config.chaos.seed;
    return r;
}

} // namespace

Fabric::Fabric(FabricOptions opts)
    : _opts(std::move(opts)),
      _chaos(_opts.chaosProfile, _opts.chaosSeed)
{
    _clk = _opts.clock ? _opts.clock : &Clock::real();
    if (_opts.transport) {
        _net = _opts.transport;
    } else {
        _ownedNet = std::make_unique<TcpTransport>();
        _net = _ownedNet.get();
    }
    // Writes to an agent that vanished mid-send must come back as
    // errors, not process-fatal SIGPIPEs.
    std::signal(SIGPIPE, SIG_IGN);
}

Fabric::~Fabric() = default;

bool
Fabric::start(std::string *err)
{
    if (!_net->listen(_opts.listenPort, err))
        return false;
    _port = _net->port();
    _started = true;
    if (_chaos.active())
        inform("fabric: chaos profile '%s' (seed %llu) armed",
               fabricProfileName(_chaos.profile()),
               static_cast<unsigned long long>(_opts.chaosSeed));
    return true;
}

void
Fabric::requestStop()
{
    _stop.store(true, std::memory_order_relaxed);
    if (super::Supervisor *local =
            _activeLocal.load(std::memory_order_relaxed))
        local->requestStop();
}

bool
Fabric::stopRequested() const
{
    return _stop.load(std::memory_order_relaxed) ||
           super::stopSignal() != 0;
}

std::string
Fabric::resumeHint() const
{
    if (!_journal.isOpen())
        return "";
    return strfmt("add --resume %s to the same command line to "
                  "continue this campaign",
                  _journal.path().c_str());
}

std::size_t
Fabric::liveAgents() const
{
    std::size_t n = 0;
    for (const auto &kv : _peers)
        if (kv.second->kind == Peer::Kind::Agent &&
            kv.second->live && !kv.second->quarantined)
            ++n;
    return n;
}

bool
Fabric::popSubmission(Submission *out)
{
    if (_submissions.empty())
        return false;
    // Fair service: prefer the oldest submission from a client other
    // than the one just served, so one chatty client queueing many
    // campaigns cannot FIFO-starve everyone else.
    auto pick = _submissions.begin();
    if (_lastServedClient != 0) {
        for (auto it = _submissions.begin(); it != _submissions.end();
             ++it) {
            if (it->client != _lastServedClient) {
                pick = it;
                break;
            }
        }
    }
    _lastServedClient = pick->client;
    *out = std::move(*pick);
    _submissions.erase(pick);
    return true;
}

bool
Fabric::sendToClient(std::uint64_t client, const std::string &line)
{
    auto it = _peers.find(client);
    if (it == _peers.end() || it->second->conn->dead())
        return false;
    it->second->conn->send(line);
    return true;
}

bool
Fabric::clientFlushed(std::uint64_t client) const
{
    auto it = _peers.find(client);
    if (it == _peers.end() || it->second->conn->dead())
        return true;
    return !it->second->conn->wantWrite();
}

void
Fabric::ensureJournal()
{
    if (_journalReady || _opts.journalPath.empty())
        return;
    super::JournalSetup setup;
    setup.log = _opts.logOptions;
    setup.resumeThreads = _opts.resumeThreads;
    setup.announceResume = _opts.resume;
    std::string err;
    if (_journal.open(_opts.journalPath, setup, &err))
        _journalReady = true;
    else
        warn("fabric: %s — continuing without a journal", err.c_str());
}

// --- network turn ---------------------------------------------------

void
Fabric::pump(int timeoutMs)
{
    std::vector<Stream *> streams;
    streams.reserve(_peers.size());
    for (auto &kv : _peers)
        if (!kv.second->conn->dead())
            streams.push_back(kv.second->conn.get());

    std::vector<std::unique_ptr<Stream>> accepted;
    _net->pump(timeoutMs, streams, &accepted);

    for (auto &s : accepted) {
        auto peer = std::make_unique<Peer>();
        peer->id = ++_peerIds;
        peer->conn = std::move(s);
        peer->lastHeard = _clk->now();
        _peers.emplace(peer->id, std::move(peer));
    }

    // Peel complete lines from every peer — the transport's pump
    // already moved the bytes, whatever the wire was.
    std::vector<std::uint64_t> ids;
    ids.reserve(_peers.size());
    for (auto &kv : _peers)
        ids.push_back(kv.first);
    for (std::uint64_t id : ids) {
        auto it = _peers.find(id);
        if (it == _peers.end())
            continue;
        Peer &p = *it->second;
        std::string line;
        while (!p.conn->dead() && p.conn->nextLine(&line))
            handleLine(p, line);
    }

    // Dead-connection sweep: a closed agent socket is an immediate
    // death (leases revoked, cells reassigned); a silent-but-open one
    // is handled by the heartbeat sweep below.
    for (auto it = _peers.begin(); it != _peers.end();) {
        if (!it->second->conn->dead()) {
            ++it;
            continue;
        }
        if (it->second->kind == Peer::Kind::Agent)
            agentLost(*it->second, "connection closed");
        it = _peers.erase(it);
    }

    sweepDeadlines(_clk->now());
}

void
Fabric::sweepDeadlines(Clock::time_point now)
{
    for (auto &kv : _peers) {
        Peer &p = *kv.second;
        if (p.kind != Peer::Kind::Agent || !p.live)
            continue;
        auto silent =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - p.lastHeard)
                .count();
        if (silent >= 0 && static_cast<std::uint64_t>(silent) >
                               _opts.heartbeatTimeoutMs)
            // The connection stays open: a partitioned agent heals by
            // speaking again, and its stale results hit the dedup
            // path.
            agentLost(p, "missed heartbeats");
    }

    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.revoked || l.answered || now < l.expiry)
            continue;
        l.revoked = true;
        auto pit = _peers.find(l.peer);
        if (pit != _peers.end()) {
            if (pit->second->inFlight > 0)
                --pit->second->inFlight;
            ++pit->second->timeouts;
        }
        leaseLost(kv.first, l, "lease expired");
    }
}

void
Fabric::handleLine(Peer &peer, const std::string &line)
{
    JsonValue doc;
    std::string type, err;
    if (!proto::parse(line, &doc, &type, &err)) {
        if (peer.kind == Peer::Kind::Unknown) {
            peer.conn->send(proto::error("bad message: " + err));
            peer.conn->markDead();
        } else {
            warn("fabric: ignoring malformed message from peer %llu: "
                 "%s",
                 static_cast<unsigned long long>(peer.id),
                 err.c_str());
        }
        return;
    }

    if (peer.kind == Peer::Kind::Unknown) {
        if (type == "hello") {
            peer.kind = Peer::Kind::Agent;
            peer.name = doc.getString("name", "agent");
            peer.slots = static_cast<unsigned>(
                std::max<std::uint64_t>(1, doc.getU64("slots", 1)));
            peer.ordinal = _agentOrdinals++;
            peer.live = true;
            peer.lastHeard = _clk->now();
            FabricProfile affliction =
                _chaos.agentAffliction(peer.ordinal);
            peer.conn->send(proto::welcome(peer.id, _opts.heartbeatMs,
                                           affliction,
                                           _opts.chaosSeed));
            inform("fabric: agent '%s' connected (%u slot%s)%s",
                   peer.name.c_str(), peer.slots,
                   peer.slots == 1 ? "" : "s",
                   affliction != FabricProfile::None
                       ? " [chaos-afflicted]"
                       : "");
        } else if (type == "submit") {
            peer.kind = Peer::Kind::Client;
            admitSubmission(peer, doc);
        } else {
            peer.conn->send(proto::error(
                "expected hello or submit, got '" + type + "'"));
            peer.conn->markDead();
        }
        return;
    }

    if (peer.kind == Peer::Kind::Client) {
        if (type == "submit")
            admitSubmission(peer, doc);
        return;
    }

    handleAgentMessage(peer, doc, type);
}

void
Fabric::admitSubmission(Peer &peer, const JsonValue &doc)
{
    const JsonValue *c = doc.get("campaign");
    if (!c) {
        peer.conn->send(proto::error("submit without a campaign"));
        return;
    }
    if (_opts.maxQueued != 0 &&
        _submissions.size() >= _opts.maxQueued) {
        // Admission control: shed rather than queue without bound.
        // The retry hint scales with the backlog the client would
        // have been stuck behind.
        ++_shedSubmissions;
        std::uint64_t retry =
            1000 *
            static_cast<std::uint64_t>(
                std::max<std::size_t>(1, _submissions.size()));
        peer.conn->send(proto::retryAfter(
            strfmt("submission queue full (%zu campaign(s) queued)",
                   _submissions.size()),
            retry));
        return;
    }
    _submissions.push_back({peer.id, *c});
}

void
Fabric::handleAgentMessage(Peer &peer, const JsonValue &doc,
                           const std::string &type)
{
    std::uint64_t ordinal = peer.inOrdinal++;
    if (_chaos.dropInbound(peer.ordinal, ordinal, type))
        return; // dropped on the simulated wire: no liveness credit

    if (!peer.live) {
        // A partition healed: the agent was declared dead but the
        // socket stayed up. It re-enters the pool; anything it
        // answers for a revoked lease is deduped or, if the cell is
        // still unfinished, accepted (same bits either way).
        peer.live = true;
        inform("fabric: agent '%s' healed after a partition",
               peer.name.c_str());
    }
    peer.lastHeard = _clk->now();

    if (type == "heartbeat") {
        peer.loadInflight = doc.getU64("inflight");
        peer.loadQueued = doc.getU64("queued");
        return;
    }
    if (type == "result") {
        std::uint64_t rord = peer.resultOrdinal++;
        handleResult(peer, doc);
        if (_chaos.duplicateResult(peer.ordinal, rord))
            handleResult(peer, doc); // delivered twice by the "wire"
        return;
    }
    warn("fabric: agent '%s' sent unexpected '%s'",
         peer.name.c_str(), type.c_str());
}

// --- lease state machine --------------------------------------------

void
Fabric::agentLost(Peer &peer, const char *why)
{
    if (!peer.live)
        return;
    peer.live = false;
    peer.inFlight = 0;
    ++_agentDeaths;
    warn("fabric: agent '%s' lost (%s) — revoking its leases",
         peer.name.c_str(), why);
    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.peer != peer.id || l.revoked || l.answered)
            continue;
        l.revoked = true;
        ++peer.leaseLosses;
        leaseLost(kv.first, l, why);
    }
}

/**
 * A lease died without an answer (expiry, agent death, quarantine).
 * Audit leases hand the audit back to pumpAudits for a re-cut;
 * Normal/Hedge leases only revert the cell to Pending when the LAST
 * live lease on it is gone — a surviving hedge (or original) keeps
 * the cell covered, so losing one duplicate is not a reassignment.
 */
void
Fabric::leaseLost(std::uint64_t id, Lease &l, const char *why)
{
    if (!_run)
        return;
    if (l.kind == LeaseKind::Audit) {
        auto it = _run->audits.find(l.cell);
        if (it != _run->audits.end() &&
            it->second.pendingLease == id) {
            it->second.pendingLease = 0;
            ++it->second.execFailures;
        }
        return;
    }
    std::size_t i = l.cell;
    if (i < _run->activeLeases.size() && _run->activeLeases[i] > 0)
        --_run->activeLeases[i];
    if (_run->st[i] == CState::Leased && _run->activeLeases[i] > 0)
        return; // a sibling lease still covers the cell
    reassignCell(i, id, why);
}

void
Fabric::reassignCell(std::size_t i, std::uint64_t leaseId,
                     const char *why)
{
    if (!_run || _run->st[i] != CState::Leased)
        return;
    ++_reassignments;
    if (++_run->reassigns[i] > _opts.maxReassign) {
        sim::RunResult r = lostResult(
            (*_run->cells)[i], chaos::SimError::Reason::AgentLost,
            strfmt("cell lost %u leases (last: %s) — quarantined",
                   _run->reassigns[i], why));
        r.retries = _run->attempt[i] - 1;
        r.backoffMs = _run->backoffAccum[i];
        finalizeCell(i, std::move(r), "", leaseId, _run->attempt[i]);
        return;
    }
    // Same doubling backoff shape as transient retries, so a flapping
    // agent can't spin the scheduler; the budget cap keeps a lost
    // cell from stalling the grid.
    std::uint64_t backoff = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(_opts.retry.backoffMs)
            << std::min(_run->reassigns[i] - 1, 10u),
        _opts.retry.maxTotalBackoffMs);
    _run->st[i] = CState::Pending;
    _run->notBefore[i] =
        _clk->now() + std::chrono::milliseconds(backoff);
}

void
Fabric::handleResult(Peer &peer, const JsonValue &doc)
{
    std::uint64_t leaseId = doc.getU64("lease");
    auto it = _leases.find(leaseId);
    if (it == _leases.end()) {
        ++_staleIgnored; // lease from a previous batch or unknown
        return;
    }
    Lease &l = it->second;
    if (l.answered) {
        ++_dupDeduped;
        return;
    }
    l.answered = true;
    if (!l.revoked && peer.inFlight > 0)
        --peer.inFlight;
    recordLatency(peer, l, _clk->now());

    if (!_run)
        return;
    std::size_t i = l.cell;
    if (l.kind == LeaseKind::Audit) {
        handleAuditResult(peer, l, leaseId, doc);
        return;
    }
    if (!l.revoked && i < _run->activeLeases.size() &&
        _run->activeLeases[i] > 0)
        --_run->activeLeases[i];
    if (_run->st[i] == CState::Done ||
        _run->st[i] == CState::WaitDurable ||
        _run->st[i] == CState::Auditing) {
        // The cell already finished elsewhere (reassigned after a
        // partition, a hedge raced this lease and won, or the local
        // fallback got it first) or is being audited. Same cell,
        // same bits — drop the copy.
        ++_dupDeduped;
        return;
    }

    std::uint64_t cellId = doc.getU64("cell");
    if (cellId != 0 && cellId != _run->hash[i]) {
        warn("fabric: agent '%s' answered lease %llu with the wrong "
             "cell identity — ignoring",
             peer.name.c_str(),
             static_cast<unsigned long long>(leaseId));
        ++_staleIgnored;
        return;
    }

    sim::RunResult r;
    std::string err;
    const JsonValue *body = doc.get("result");
    if (!body || !triage::resultFromJson(*body, &r, &err))
        r = lostResult((*_run->cells)[i],
                       chaos::SimError::Reason::WorkerProtocol,
                       "agent returned an invalid result document (" +
                           err + ")");

    if (chaos::isWorkerFailure(r.error.reason))
        ++peer.crashes;
    else
        ++peer.okResults;

    unsigned attempt = _run->attempt[i];
    if (!l.revoked && _opts.retry.shouldRetry(r, attempt) &&
        !stopRequested()) {
        // Transient failure: same backoff math as the supervisor,
        // scheduled on the fabric's clock. Any hedge siblings would
        // hit the same transient; revoke them so the retry starts
        // clean.
        revokeSiblings(i);
        std::uint64_t backoff = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(_opts.retry.backoffMs)
                << (attempt - 1),
            _opts.retry.maxTotalBackoffMs -
                std::min(_opts.retry.maxTotalBackoffMs,
                         _run->backoffAccum[i]));
        _run->attempt[i] = attempt + 1;
        _run->backoffAccum[i] += backoff;
        _run->notBefore[i] =
            _clk->now() + std::chrono::milliseconds(backoff);
        _run->st[i] = CState::Pending;
        return;
    }
    if (l.revoked && chaos::isTransient(r.error.reason)) {
        // A stale transient death from a revoked lease: the
        // reassignment already in flight IS the retry; recording this
        // one would double-count.
        ++_staleIgnored;
        return;
    }

    // Deterministic content (or an exhausted retry budget): accept.
    // The stamps mirror Supervisor::runAll exactly — a clean first-
    // attempt result gets retries=0/backoffMs=0, identical to the
    // single-host bytes.
    r.retries = attempt - 1;
    r.backoffMs = _run->backoffAccum[i];
    if (r.error.ok() && auditSelected(_run->hash[i])) {
        beginAudit(i, std::move(r), peer, leaseId, attempt);
        return;
    }
    finalizeCell(i, std::move(r), peer.name, leaseId, attempt);
}

/** EWMA + sample-ring update from an answered lease's wall time. */
void
Fabric::recordLatency(Peer &p, const Lease &l, Clock::time_point now)
{
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - l.cutAt)
                  .count();
    if (ms < 0)
        ms = 0;
    double s = static_cast<double>(ms);
    p.ewmaMs = p.ewmaMs == 0 ? s : 0.8 * p.ewmaMs + 0.2 * s;
    _latSamples.push_back(static_cast<std::uint64_t>(ms));
    if (_latSamples.size() > 512)
        _latSamples.pop_front();
}

/**
 * Proactively revoke every un-answered Normal/Hedge lease still out
 * for cell `i` (hedge losers, or the original when a hedge won):
 * their slots free immediately instead of waiting for lease expiry,
 * and their late results land on the dedup path as counted no-ops.
 */
void
Fabric::revokeSiblings(std::size_t i)
{
    if (!_run)
        return;
    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.cell != i || l.revoked || l.answered ||
            l.kind == LeaseKind::Audit)
            continue;
#ifdef EDGE_MUTATIONS
        // Planted regression for the simulation explorer: skip hedge
        // siblings, leaking their leases past campaign completion.
        if (_opts.mutateNoHedgeRevoke && l.kind == LeaseKind::Hedge)
            continue;
#endif
        l.revoked = true;
        auto pit = _peers.find(l.peer);
        if (pit != _peers.end() && pit->second->inFlight > 0)
            --pit->second->inFlight;
        if (i < _run->activeLeases.size() &&
            _run->activeLeases[i] > 0)
            --_run->activeLeases[i];
    }
}

// --- result-integrity audits ----------------------------------------

std::string
Fabric::canonicalBytes(const sim::RunResult &r)
{
    // Retry stamps are coordinator-side scheduling history, not
    // simulation output; zero them so executions from different
    // attempts compare equal exactly when the simulated bits agree.
    sim::RunResult c = r;
    c.retries = 0;
    c.backoffMs = 0;
    return triage::resultToJson(c).dumpCompact();
}

bool
Fabric::auditSelected(std::uint64_t cellHash) const
{
    if (_opts.auditFrac <= 0)
        return false;
    if (_opts.auditFrac >= 1)
        return true;
    Fnv1a f;
    f.mix64(0xa7d17u); // audit domain separator
    f.mix64(_opts.chaosSeed);
    f.mix64(cellHash);
    std::uint64_t h = f.state;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<double>(h % 1000000) < _opts.auditFrac * 1e6;
}

void
Fabric::beginAudit(std::size_t i, sim::RunResult r, Peer &peer,
                   std::uint64_t leaseId, unsigned attempt)
{
    revokeSiblings(i);
    AuditCtx a;
    a.cell = i;
    a.attempt = attempt;
    a.origPeer = peer.id;
    a.origLease = leaseId;
    a.origAgent = peer.name;
    a.origBytes = canonicalBytes(r);
    a.original = std::move(r);
    _run->st[i] = CState::Auditing;
    _run->audits.emplace(i, std::move(a));
    ++_auditsRun;
    // pumpAudits cuts the verification lease on the next turn.
}

void
Fabric::pumpAudits(Clock::time_point now)
{
    if (!_run || _run->audits.empty())
        return;
    std::vector<std::size_t> cells;
    cells.reserve(_run->audits.size());
    for (const auto &kv : _run->audits)
        cells.push_back(kv.first);
    for (std::size_t i : cells) {
        auto it = _run->audits.find(i);
        if (it == _run->audits.end())
            continue;
        AuditCtx &a = it->second;
        if (a.pendingLease != 0)
            continue; // a verification execution is outstanding
        if (a.execFailures > 2) {
            // The fleet cannot produce a clean verification run;
            // trust the original rather than stall the campaign.
            warn("fabric: audit of cell %zu inconclusive after %u "
                 "failed verification runs — accepting the original",
                 i, a.execFailures);
            sim::RunResult orig = a.original;
            std::string agent = a.origAgent;
            finalizeAudit(i, std::move(orig), agent, "inconclusive");
            continue;
        }
        std::vector<std::uint64_t> exclude{a.origPeer};
        if (a.round == 1)
            exclude.push_back(a.secondPeer);
        if (Peer *target = pickAgent(exclude, false)) {
            a.pendingLease =
                cutLease(*target, i, LeaseKind::Audit, a.attempt,
                         now);
            continue;
        }
        // No distinct live agent: the embedded local runner is the
        // verification executor (and, for a tie-break, its vote
        // counts like any other).
        sim::RunResult r = runOneLocal((*_run->cells)[i]);
        if (!r.error.ok()) {
            ++a.execFailures;
            continue;
        }
        std::string bytes = canonicalBytes(r);
        auditVote(i, bytes, 0, "local", std::move(r));
    }
}

void
Fabric::handleAuditResult(Peer &peer, Lease &l,
                          std::uint64_t leaseId,
                          const JsonValue &doc)
{
    auto it = _run->audits.find(l.cell);
    if (it == _run->audits.end() ||
        it->second.pendingLease != leaseId) {
        ++_staleIgnored;
        return;
    }
    AuditCtx &a = it->second;
    a.pendingLease = 0;

    sim::RunResult r;
    std::string err;
    const JsonValue *body = doc.get("result");
    if (!body || !triage::resultFromJson(*body, &r, &err) ||
        !r.error.ok()) {
        // The verification run itself failed (crash, timeout, bad
        // document): not a vote either way. Try again elsewhere.
        ++peer.crashes;
        ++a.execFailures;
        return;
    }
    ++peer.okResults;
    std::string bytes = canonicalBytes(r);
    auditVote(l.cell, bytes, peer.id, peer.name, std::move(r));
}

void
Fabric::auditVote(std::size_t cell, const std::string &bytes,
                  std::uint64_t peerId, const std::string &agentName,
                  sim::RunResult r)
{
    auto it = _run->audits.find(cell);
    if (it == _run->audits.end())
        return;
    AuditCtx &a = it->second;

    if (a.round == 0) {
        if (bytes == a.origBytes) {
            ++_auditsPassed;
            sim::RunResult orig = a.original;
            std::string agent = a.origAgent;
            finalizeAudit(cell, std::move(orig), agent, "match");
            return;
        }
        // Divergence: somebody computed the wrong bits for a
        // deterministic cell. Escalate; majority of three wins.
        ++_auditsDiverged;
        warn("fabric: audit divergence on cell %zu: '%s' vs '%s' — "
             "cutting a tie-breaking third execution",
             cell, a.origAgent.c_str(), agentName.c_str());
        a.round = 1;
        a.secondPeer = peerId;
        a.secondAgent = agentName;
        a.secondBytes = bytes;
        a.second = std::move(r);
        return;
    }

    // Third vote: quarantine the minority executor and finalize the
    // majority bytes — corrupt output never reaches the report.
    if (bytes == a.origBytes) {
        std::uint64_t minority = a.secondPeer;
        std::string minorityName = a.secondAgent;
        sim::RunResult majority = a.original;
        std::string agent = a.origAgent;
        std::string verdict = "diverged:" + minorityName;
        quarantine(minority, minorityName,
                   "audit minority: returned corrupt result bytes");
        finalizeAudit(cell, std::move(majority), agent, verdict);
        return;
    }
    if (bytes == a.secondBytes) {
        std::uint64_t minority = a.origPeer;
        std::string minorityName = a.origAgent;
        sim::RunResult majority = a.second;
        majority.retries = a.attempt - 1;
        majority.backoffMs = _run->backoffAccum[cell];
        std::string agent = a.secondAgent;
        std::string verdict = "diverged:" + minorityName;
        quarantine(minority, minorityName,
                   "audit minority: returned corrupt result bytes");
        finalizeAudit(cell, std::move(majority), agent, verdict);
        return;
    }
    // Three executions, three answers: no majority to trust. The
    // cell fails as a structured agent-corrupt row instead of the
    // fabric guessing which bytes are real.
    warn("fabric: audit of cell %zu unresolved — three independent "
         "executions disagree",
         cell);
    sim::RunResult bad =
        lostResult((*_run->cells)[cell],
                   chaos::SimError::Reason::AgentCorrupt,
                   "result audit unresolved: three independent "
                   "executions returned three different results");
    bad.retries = a.attempt - 1;
    bad.backoffMs = _run->backoffAccum[cell];
    finalizeAudit(cell, std::move(bad), "", "unresolved");
}

void
Fabric::finalizeAudit(std::size_t cell, sim::RunResult result,
                      const std::string &agent,
                      const std::string &verdict)
{
    std::uint64_t lease = 0;
    unsigned attempt = 1;
    auto it = _run->audits.find(cell);
    if (it != _run->audits.end()) {
        lease = it->second.origLease;
        attempt = it->second.attempt;
        _run->audits.erase(it);
    }
    finalizeCell(cell, std::move(result), agent, lease, attempt,
                 verdict);
}

void
Fabric::quarantine(std::uint64_t peerId, const std::string &name,
                   const char *why)
{
    if (peerId == 0)
        return; // the local executor is trusted by construction
    auto it = _peers.find(peerId);
    // Concurrent audits can convict the same agent more than once;
    // the verdict is idempotent.
    if (it != _peers.end() && it->second->quarantined)
        return;
    ++_agentsQuarantined;
    warn("fabric: QUARANTINE agent '%s' (agent-corrupt: %s) — it "
         "gets no further leases",
         name.c_str(), why);
    if (it == _peers.end())
        return;
    Peer &p = *it->second;
    p.quarantined = true;
    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.peer != peerId || l.revoked || l.answered)
            continue;
        l.revoked = true;
        ++p.leaseLosses;
        leaseLost(kv.first, l, "agent quarantined");
    }
    p.inFlight = 0;
}

/** One blocking fork/exec execution of `cell` for audits and
 *  tie-breaks when no distinct agent is available. */
sim::RunResult
Fabric::runOneLocal(const CellSpec &cell)
{
    if (_opts.localExec)
        return _opts.localExec(cell);
    super::SupervisorOptions so;
    so.jobs = 1;
    so.cellTimeoutMs = _opts.cellTimeoutMs;
    so.rlimitAsMb = _opts.rlimitAsMb;
    so.rlimitCpuSec = _opts.rlimitCpuSec;
    so.workerPath = _opts.workerPath;
    so.retry.maxAttempts = 1;
    super::Supervisor sup(so);
    _activeLocal.store(&sup, std::memory_order_relaxed);
    if (_stop.load(std::memory_order_relaxed))
        sup.requestStop();
    std::vector<CellOutcome> outs = sup.runAll({cell});
    _activeLocal.store(nullptr, std::memory_order_relaxed);
    if (!outs.empty() && outs[0].ran)
        return outs[0].result;
    return lostResult(cell, chaos::SimError::Reason::AgentLost,
                      "local verification run did not complete");
}

void
Fabric::finalizeCell(std::size_t i, sim::RunResult result,
                     const std::string &agent, std::uint64_t lease,
                     unsigned attempt, const std::string &audit)
{
    revokeSiblings(i);
    CellOutcome &o = (*_run->out)[i];
    const CellSpec &cell = (*_run->cells)[i];
    o.ran = true;
    o.fromJournal = false;

    const chaos::SimError::Reason reason = result.error.reason;
    const bool worker_death = chaos::isWorkerFailure(reason);
    if (worker_death && !_opts.reproDir.empty()) {
        triage::ReproSpec spec = triage::captureFromResult(
            cell.program, cell.config, cell.maxCycles, result);
        o.reproPath = triage::captureToFile(spec, _opts.reproDir);
    }
    o.result = std::move(result);

    ++_completed;
    if (!(o.result.error.ok() && o.result.halted &&
          o.result.archMatch))
        ++_failures;

    if (_journalReady) {
        super::JournalRecord rec;
        rec.cell = _run->hash[i];
        rec.final = !worker_death && !chaos::isTransient(reason);
        rec.result = o.result;
        rec.reproPath = o.reproPath;
        rec.agent = agent;
        rec.lease = lease;
        rec.attempt = attempt;
        rec.audit = audit;
        std::string err;
        if (_journal.append(rec, &err)) {
            // Durable-ack: the cell parks in WaitDurable until the
            // group-commit flusher's watermark passes its record. A
            // coordinator killed in this window never marked the cell
            // Done, so a resumed campaign re-leases it.
            _run->st[i] = CState::WaitDurable;
            _run->waitDurable.emplace_back(i, _journal.lastLsn());
            return;
        }
        warn("fabric: journal append failed: %s", err.c_str());
    }

    _run->st[i] = CState::Done;
    --_run->remaining;
}

void
Fabric::promoteDurable(bool force)
{
    if (!_run || _run->waitDurable.empty())
        return;
    if (!force && _journal.logFailed()) {
        // Sticky log failure: the watermark will never reach these
        // records. The results are already in the report, so finish
        // the campaign; the lost records simply re-run on --resume.
        warn("fabric: result log failed — completing %zu cell(s) "
             "without a durable ack (they will re-run on --resume)",
             _run->waitDurable.size());
        force = true;
    }
    const std::uint64_t durable = _journal.durableLsn();
    while (!_run->waitDurable.empty() &&
           (force || _run->waitDurable.front().second <= durable)) {
        _run->st[_run->waitDurable.front().first] = CState::Done;
        --_run->remaining;
        _run->waitDurable.pop_front();
    }
}

// --- scheduling -----------------------------------------------------

/** Live, schedulable agents in placement order: healthy before
 *  demoted, then by failure rate, load, latency, id. */
std::vector<Fabric::Peer *>
Fabric::orderedAgents()
{
    std::vector<Peer *> order;
    for (auto &kv : _peers) {
        Peer &p = *kv.second;
        if (p.kind != Peer::Kind::Agent || !p.live ||
            p.conn->dead() || p.quarantined)
            continue;
        if (p.demoted() && !p.demotionLogged) {
            p.demotionLogged = true;
            warn("fabric: agent '%s' demoted (%llu bad of %llu "
                 "events) — deprioritized for placement",
                 p.name.c_str(),
                 static_cast<unsigned long long>(p.badEvents()),
                 static_cast<unsigned long long>(p.okResults +
                                                 p.badEvents()));
        }
        order.push_back(&p);
    }
    std::sort(order.begin(), order.end(), [](Peer *a, Peer *b) {
        if (a->demoted() != b->demoted())
            return !a->demoted();
        double fa = a->failRate(), fb = b->failRate();
        if (fa != fb)
            return fa < fb;
        std::uint64_t la = a->inFlight + a->loadQueued;
        std::uint64_t lb = b->inFlight + b->loadQueued;
        if (la != lb)
            return la < lb;
        if (a->ewmaMs != b->ewmaMs)
            return a->ewmaMs < b->ewmaMs;
        return a->id < b->id;
    });
    return order;
}

/** Best agent with a free slot, excluding `exclude`; requireHealthy
 *  additionally skips demoted agents (hedge targets must be good). */
Fabric::Peer *
Fabric::pickAgent(const std::vector<std::uint64_t> &exclude,
                  bool requireHealthy)
{
    for (Peer *p : orderedAgents()) {
        if (p->inFlight >= p->slots)
            continue;
        if (requireHealthy && p->demoted())
            continue;
        bool excluded = false;
        for (std::uint64_t id : exclude)
            if (p->id == id)
                excluded = true;
        if (!excluded)
            return p;
    }
    return nullptr;
}

std::uint64_t
Fabric::cutLease(Peer &p, std::size_t cell, LeaseKind kind,
                 unsigned attempt, Clock::time_point now)
{
    std::uint64_t id = ++_leaseIds;
    Lease l;
    l.cell = cell;
    l.peer = p.id;
    l.attempt = attempt;
    l.kind = kind;
    l.cutAt = now;
    l.expiry = now + std::chrono::milliseconds(_opts.leaseMs);
    _leases.emplace(id, l);
    ++p.inFlight;
    if (kind != LeaseKind::Audit && cell < _run->activeLeases.size())
        ++_run->activeLeases[cell];

    std::uint64_t aord = p.assignOrdinal++;
    p.conn->send(proto::assign(id, (*_run->cells)[cell],
                               _opts.cellTimeoutMs, _opts.rlimitAsMb,
                               _opts.rlimitCpuSec));
    if (_chaos.killOnAssign(p.ordinal, aord)) {
        warn("fabric: chaos kill: severing agent '%s' after "
             "assign %llu",
             p.name.c_str(), static_cast<unsigned long long>(aord));
        // Yank the wire so the agent sees EOF and dies mid-cell; the
        // dead-connection sweep revokes.
        p.conn->sever();
    }
    return id;
}

void
Fabric::assignReady(Clock::time_point now)
{
    for (Peer *pp : orderedAgents()) {
        Peer &p = *pp;
        while (p.inFlight < p.slots && !p.conn->dead()) {
            std::size_t pick = _run->st.size();
            for (std::size_t i = 0; i < _run->st.size(); ++i)
                if (_run->st[i] == CState::Pending &&
                    _run->notBefore[i] <= now) {
                    pick = i;
                    break;
                }
            if (pick == _run->st.size())
                return;
            _run->st[pick] = CState::Leased;
            cutLease(p, pick, LeaseKind::Normal,
                     _run->attempt[pick], now);
        }
    }
}

/** The hedge threshold: the explicit flag, or 2x the fleet's
 *  observed p95 cell latency (floored) once 8 samples exist. */
std::uint64_t
Fabric::hedgeThresholdMs() const
{
    if (_opts.hedgeAfterMs != 0)
        return _opts.hedgeAfterMs;
    if (_latSamples.size() < 8)
        return 0; // not enough signal to call anything a straggler
    std::vector<std::uint64_t> s(_latSamples.begin(),
                                 _latSamples.end());
    std::size_t k = (s.size() * 95) / 100;
    if (k >= s.size())
        k = s.size() - 1;
    std::nth_element(s.begin(), s.begin() + k, s.end());
    // 2x p95 with a floor: honest jitter is not a straggler, and a
    // fast fleet must not hedge on scheduling noise.
    return std::max<std::uint64_t>(2 * s[k], 200);
}

void
Fabric::maybeHedge(Clock::time_point now)
{
    if (!_run || _opts.hedgeMax == 0)
        return;
    std::uint64_t thresh = hedgeThresholdMs();
    if (thresh == 0)
        return;
    for (auto &kv : _leases) {
        Lease &l = kv.second;
        if (l.revoked || l.answered || l.kind == LeaseKind::Audit)
            continue;
        std::size_t i = l.cell;
        if (_run->st[i] != CState::Leased)
            continue;
        if (_run->hedgesCut[i] >= _opts.hedgeMax)
            continue;
        auto age =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - l.cutAt)
                .count();
        if (age < 0 || static_cast<std::uint64_t>(age) < thresh)
            continue;
        // Straggler: cut one speculative duplicate on a healthy
        // agent not already holding a lease on this cell. First
        // result wins; the loser is revoked on finalize and its late
        // answer is a counted dedup no-op.
        std::vector<std::uint64_t> exclude;
        for (const auto &lkv : _leases)
            if (lkv.second.cell == i && !lkv.second.revoked &&
                !lkv.second.answered)
                exclude.push_back(lkv.second.peer);
        Peer *target = pickAgent(exclude, true);
        if (!target)
            continue;
        ++_run->hedgesCut[i];
        ++_hedges;
        inform("fabric: hedging cell %zu (leased %lld ms > %llu ms "
               "threshold) onto agent '%s'",
               i, static_cast<long long>(age),
               static_cast<unsigned long long>(thresh),
               target->name.c_str());
        cutLease(*target, i, LeaseKind::Hedge, l.attempt, now);
    }
}

void
Fabric::runLocalBatch()
{
    unsigned jobs = _opts.localJobs;
    if (jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? hw : 1;
    }

    Clock::time_point now = _clk->now();
    std::vector<std::size_t> idx;
    std::vector<CellSpec> batch;
    for (std::size_t i = 0;
         i < _run->st.size() && idx.size() < jobs; ++i) {
        if (_run->st[i] == CState::Pending &&
            _run->notBefore[i] <= now) {
            idx.push_back(i);
            batch.push_back((*_run->cells)[i]);
        }
    }
    if (idx.empty())
        return;

    if (_opts.localExec) {
        // Simulation: the injected executor IS the local runner —
        // deterministic, no child processes.
        for (std::size_t i : idx) {
            if (_run->st[i] == CState::Done ||
                _run->st[i] == CState::WaitDurable) {
                ++_dupDeduped;
                continue;
            }
            ++_localCells;
            sim::RunResult r = _opts.localExec((*_run->cells)[i]);
            r.retries = _run->attempt[i] - 1;
            r.backoffMs = _run->backoffAccum[i];
            finalizeCell(i, std::move(r), "", 0, _run->attempt[i]);
        }
        return;
    }

    if (!_downgradeLogged) {
        warn("fabric: no live agents — downgrading to local "
             "fork/exec workers (campaign continues single-host)");
        _downgradeLogged = true;
    }

    // The embedded local runner owns retries and stamps results the
    // same way a single-host --isolate run would; the fabric journals
    // and tallies, so no journal/repro dir is given to it. Batches
    // are at most `jobs` cells so newly connected agents get picked
    // up between batches.
    super::SupervisorOptions so;
    so.jobs = jobs;
    so.cellTimeoutMs = _opts.cellTimeoutMs;
    so.rlimitAsMb = _opts.rlimitAsMb;
    so.rlimitCpuSec = _opts.rlimitCpuSec;
    so.workerPath = _opts.workerPath;
    so.retry = _opts.retry;
    super::Supervisor sup(so);
    _activeLocal.store(&sup, std::memory_order_relaxed);
    if (_stop.load(std::memory_order_relaxed))
        sup.requestStop();
    std::vector<CellOutcome> outs = sup.runAll(batch);
    _activeLocal.store(nullptr, std::memory_order_relaxed);

    for (std::size_t k = 0; k < idx.size(); ++k) {
        if (!outs[k].ran)
            continue; // stop hit mid-batch; still pending, resumable
        if (_run->st[idx[k]] == CState::Done ||
            _run->st[idx[k]] == CState::WaitDurable) {
            ++_dupDeduped; // a healed agent raced us to it
            continue;
        }
        ++_localCells;
        // Local results arrive fully stamped; pass them through
        // verbatim for byte-identity with a pure single-host run.
        finalizeCell(idx[k], std::move(outs[k].result), "", 0,
                     _run->attempt[idx[k]]);
    }
}

std::size_t
Fabric::outstandingLeases() const
{
    std::size_t n = 0;
    for (const auto &kv : _leases)
        if (!kv.second.revoked && !kv.second.answered)
            ++n;
    return n;
}

bool
Fabric::anyReady(Clock::time_point now) const
{
    for (std::size_t i = 0; i < _run->st.size(); ++i)
        if (_run->st[i] == CState::Pending &&
            _run->notBefore[i] <= now)
            return true;
    return false;
}

int
Fabric::pollTimeout(Clock::time_point now, int base) const
{
    int t = base;
    for (std::size_t i = 0; i < _run->st.size(); ++i) {
        if (_run->st[i] != CState::Pending)
            continue;
        auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                _run->notBefore[i] - now)
                .count();
        if (left > 0)
            t = std::min<int>(t, static_cast<int>(left));
    }
    return std::max(t, 1);
}

// --- the campaign slice ---------------------------------------------

std::vector<CellOutcome>
Fabric::runAll(const std::vector<CellSpec> &cells)
{
    panic_if(!_started, "Fabric::runAll before start()");
    ensureJournal();

    std::map<std::uint64_t, const super::JournalRecord *> replayable;
    if (_opts.resume && _journalReady)
        replayable = super::Journal::resumeIndex(_journal.loaded());

    std::vector<CellOutcome> out(cells.size());
    RunCtx ctx;
    ctx.cells = &cells;
    ctx.out = &out;
    ctx.st.assign(cells.size(), CState::Pending);
    ctx.attempt.assign(cells.size(), 1);
    ctx.reassigns.assign(cells.size(), 0);
    ctx.backoffAccum.assign(cells.size(), 0);
    ctx.notBefore.assign(cells.size(), _clk->now());
    ctx.hash.resize(cells.size());
    ctx.activeLeases.assign(cells.size(), 0);
    ctx.hedgesCut.assign(cells.size(), 0);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        ctx.hash[i] = super::cellHash(cells[i]);
        if (!replayable.empty()) {
            auto it = replayable.find(ctx.hash[i]);
            if (it != replayable.end()) {
                out[i].ran = true;
                out[i].fromJournal = true;
                out[i].result = it->second->result;
                out[i].reproPath = it->second->reproPath;
                ctx.st[i] = CState::Done;
                ++_skipped;
                if (!(out[i].result.error.ok() &&
                      out[i].result.halted &&
                      out[i].result.archMatch))
                    ++_failures;
                continue;
            }
        }
        ++ctx.remaining;
    }

    _run = &ctx;
    while (ctx.remaining > 0) {
        // requestStop() and SIGINT stop now (un-run cells resume
        // later); SIGTERM drains what is already leased first.
        if (_stop.load(std::memory_order_relaxed) ||
            super::stopSignal() == SIGINT)
            break;
        const bool drain = super::stopSignal() == SIGTERM;

        promoteDurable(false);
        if (_opts.localExec && _journalReady &&
            !ctx.waitDurable.empty()) {
            // Simulation determinism: the group-commit flusher runs
            // on wall time, which a virtual-time world must not
            // observe. Force the watermark forward synchronously so
            // durable-ack promotion is a pure function of the event
            // schedule.
            std::string ferr;
            if (!_journal.flush(&ferr))
                warn("fabric: journal flush failed: %s",
                     ferr.c_str());
            promoteDurable(false);
        }
        if (ctx.remaining == 0)
            break;

        Clock::time_point now = _clk->now();
        if (!drain) {
            assignReady(now);
            maybeHedge(now);
            pumpAudits(now);
            if (ctx.remaining == 0)
                break;
            if (liveAgents() == 0 && _opts.localFallback &&
                anyReady(now)) {
                runLocalBatch();
                // Re-enter the loop so a just-connected agent (or a
                // stop) is noticed before the next batch.
                pump(0);
                continue;
            }
        } else if (outstandingLeases() == 0) {
            break; // drained: everything in flight has landed
        }

        pump(pollTimeout(now, 50));
    }
    // End of slice: make everything appended durable (one fsync at
    // most), then promote the stragglers. On a stop/drain exit this
    // is what makes the partial campaign safely resumable.
    if (_journalReady) {
        std::string err;
        if (!_journal.flush(&err))
            warn("fabric: journal flush failed: %s — unflushed "
                 "results will re-run on --resume", err.c_str());
    }
    promoteDurable(true);
    // Invariant audit: when a campaign finished on its own, every
    // Normal/Hedge lease must have been answered or revoked — a live
    // one here means a revocation path leaked it (and its agent slot).
    if (!stopRequested() && ctx.remaining == 0) {
        for (const auto &kv : _leases) {
            const Lease &l = kv.second;
            if (!l.revoked && !l.answered &&
                l.kind != LeaseKind::Audit)
                ++_leasesLeaked;
        }
    }
    _run = nullptr;
    _leases.clear();
    return out;
}

} // namespace edge::serve
