/**
 * @file
 * The campaign fabric coordinator: a super::CellRunner that schedules
 * cells across remote agents instead of local child processes. One
 * Fabric owns the listening socket, the registered-agent table, and
 * the lease state machine; campaign code (chaosSweepIsolated, the
 * fuzz batch runner, the bench harness) drives it through the same
 * CellRunner interface as the local Supervisor, so WHERE cells run is
 * invisible to WHAT the campaign reports.
 *
 * The robustness contract, enforced by tests/test_serve.cc:
 *
 *  - Leases. A cell assigned to an agent carries a lease id and a
 *    deadline. Missed heartbeats (or a closed connection) mark the
 *    agent dead, revoke its leases, and put the cells back in the
 *    pending queue; an expired lease does the same for a single cell.
 *    Reassignment reuses the supervisor's transient-retry backoff
 *    shape, and a cell that outlives `maxReassign` lost leases is
 *    quarantined as a structured AgentLost failure row.
 *
 *  - Dedup. Results are keyed by lease and cell identity; a result
 *    for an answered lease or a completed cell (an agent that healed
 *    from a partition, a duplicated message) is counted and dropped.
 *    First result wins; because every worker computes the same bits
 *    for the same cell, which copy wins is unobservable in the
 *    report.
 *
 *  - Degradation. With zero live agents and ready cells, the
 *    coordinator logs the downgrade once and runs cells through an
 *    embedded local fork/exec Supervisor, in small batches so newly
 *    connected agents are picked up between batches. A campaign with
 *    no agents at all is exactly a single-host `--isolate` run.
 *
 *  - Byte-identity. Successful results pass through verbatim and
 *    fabric-level reassignments are never stamped into them, so the
 *    merged report is byte-identical to a clean single-host run
 *    regardless of agent count, kill schedule, or reassignment
 *    history. (Lease provenance goes to the journal, not the
 *    report.)
 *
 * SIGTERM drains: in-flight leases are pumped to completion, nothing
 * new is assigned, and un-run cells come back !ran (resumable).
 * SIGINT and requestStop() stop immediately.
 */

#ifndef EDGE_SERVE_FABRIC_HH
#define EDGE_SERVE_FABRIC_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/clock.hh"
#include "serve/fabric_chaos.hh"
#include "serve/net.hh"
#include "super/supervisor.hh"
#include "triage/jsonio.hh"

namespace edge::serve {

struct FabricOptions
{
    /** Listening port for agents and clients (0 = ephemeral; see
     *  Fabric::port). */
    std::uint16_t listenPort = 0;
    /** Worker processes for the zero-agent local fallback
     *  (0 = all hardware threads). */
    unsigned localJobs = 0;
    /** Run cells locally when no agents are live (the graceful-
     *  degradation path). Disabled only by tests that need to
     *  observe pure fabric behaviour. */
    bool localFallback = true;

    /** Interval agents are told to heartbeat at. */
    std::uint64_t heartbeatMs = 1000;
    /** Silence past this marks an agent dead and revokes its
     *  leases. */
    std::uint64_t heartbeatTimeoutMs = 5000;
    /** Per-lease deadline; an unanswered lease past it is revoked
     *  and its cell reassigned. */
    std::uint64_t leaseMs = 60000;
    /** Lost-lease reassignment budget per cell before the cell is
     *  quarantined as an AgentLost failure. */
    unsigned maxReassign = 16;

    // --- per-cell execution knobs, forwarded to executors ----------
    std::uint64_t cellTimeoutMs = 0;
    std::uint64_t rlimitAsMb = 0;
    std::uint64_t rlimitCpuSec = 0;
    /** Worker image for the LOCAL fallback ("" = /proc/self/exe);
     *  agents choose their own. */
    std::string workerPath;

    // --- campaign durability (same semantics as SupervisorOptions) -
    std::string journalPath;
    bool resume = false;
    std::string reproDir;
    /** Group-commit result-log tuning + crash-fault injection. */
    log::LogOptions logOptions;
    /** Redo workers for `--resume` journal recovery (0 = auto). */
    unsigned resumeThreads = 0;
    /** Transient-failure retry policy, applied coordinator-side to
     *  remote results (agents run each cell exactly once). */
    sim::RetryPolicy retry;

    // --- deterministic fault injection -----------------------------
    FabricProfile chaosProfile = FabricProfile::None;
    std::uint64_t chaosSeed = 0;

    // --- self-defence ----------------------------------------------
    /** Straggler hedge: a leased cell older than this gets a
     *  speculative duplicate lease on a different healthy agent.
     *  First result wins; the loser lands on the dedup path as a
     *  counted no-op, so reports stay byte-identical by
     *  construction. 0 derives the threshold from the fleet's
     *  observed p95 cell latency (armed once 8 samples exist). */
    std::uint64_t hedgeAfterMs = 0;
    /** Speculative duplicate leases per cell (0 disables hedging). */
    unsigned hedgeMax = 1;
    /** Fraction [0,1] of remotely executed clean results re-run on a
     *  second executor and byte-compared before the cell is allowed
     *  to complete; divergence escalates to a tie-breaking third
     *  execution and quarantines the minority agent. */
    double auditFrac = 0.0;
    /** Bound on queued client submissions; past it, submits are shed
     *  with a structured retry-after error (0 = unbounded). */
    std::size_t maxQueued = 64;

    // --- seams for the deterministic simulation ---------------------
    /** Network to run on (nullptr = a TcpTransport the Fabric owns).
     *  The simulation passes a simnet::SimTransport; borrowed, must
     *  outlive the Fabric. */
    Transport *transport = nullptr;
    /** Time source (nullptr = Clock::real()). Borrowed. */
    Clock *clock = nullptr;
    /** When set, replaces the embedded fork/exec Supervisor for BOTH
     *  the zero-agent local fallback and local audit executions —
     *  the simulation's synthetic truth oracle. */
    std::function<sim::RunResult(const super::CellSpec &)> localExec;
    /** Planted regression (compiled only under EDGE_MUTATIONS, armed
     *  only by the explorer's --mutate flag): finalize skips revoking
     *  hedge siblings, leaking their leases — the bug the simulation
     *  explorer must find and minimize. */
    bool mutateNoHedgeRevoke = false;
};

class Fabric : public super::CellRunner
{
  public:
    explicit Fabric(FabricOptions opts);
    ~Fabric() override;

    /** Bind the listening socket. Must succeed before runAll/pump. */
    bool start(std::string *err);
    /** The bound port (after start). */
    std::uint16_t port() const { return _port; }

    std::vector<super::CellOutcome>
    runAll(const std::vector<super::CellSpec> &cells) override;

    void requestStop() override;
    bool stopRequested() const override;

    std::size_t completed() const override { return _completed; }
    std::size_t skipped() const override { return _skipped; }
    std::size_t failures() const override { return _failures; }
    std::string resumeHint() const override;

    /**
     * One network turn: accept connections, read/dispatch messages,
     * flush queued writes, sweep heartbeat and lease deadlines.
     * runAll pumps internally; the serve daemon pumps between
     * campaigns to keep registrations and heartbeats flowing.
     */
    void pump(int timeoutMs);

    /** A client campaign submission, surfaced to the daemon. */
    struct Submission
    {
        std::uint64_t client = 0; ///< connection to answer on
        triage::JsonValue campaign;
    };
    bool popSubmission(Submission *out);
    /** Answer a client (false if it disconnected meanwhile). */
    bool sendToClient(std::uint64_t client, const std::string &line);
    /** Has the client's output queue drained (or the client gone)? */
    bool clientFlushed(std::uint64_t client) const;

    // --- observability (tests and the daemon's log lines) ----------
    std::size_t liveAgents() const;
    std::uint64_t duplicatesDeduped() const { return _dupDeduped; }
    std::uint64_t reassignments() const { return _reassignments; }
    std::uint64_t agentDeaths() const { return _agentDeaths; }
    std::uint64_t staleResultsIgnored() const { return _staleIgnored; }
    std::uint64_t localCellsRun() const { return _localCells; }
    std::uint64_t hedges() const { return _hedges; }
    std::uint64_t auditsRun() const { return _auditsRun; }
    std::uint64_t auditsPassed() const { return _auditsPassed; }
    std::uint64_t auditsDiverged() const { return _auditsDiverged; }
    std::uint64_t agentsQuarantined() const
    {
        return _agentsQuarantined;
    }
    std::uint64_t shedSubmissions() const { return _shedSubmissions; }
    /** Leases still live (un-answered, un-revoked) when a campaign
     *  completed — always 0 unless a revocation path is broken. */
    std::uint64_t leasesLeaked() const { return _leasesLeaked; }
    const FabricChaos::Tally &chaosTally() const
    {
        return _chaos.tally();
    }

  private:
    struct Peer;
    enum class CState : std::uint8_t
    {
        Pending,
        Leased,
        /** An accepted remote result is being re-executed by the
         *  integrity audit; the cell cannot complete (and corrupt
         *  bytes cannot reach the report) until the audit verdict
         *  lands. */
        Auditing,
        /** Result accepted and journaled, but the journal's durable
         *  watermark has not reached its record yet: the cell is not
         *  Done (and the campaign cannot complete) until it is. A
         *  coordinator killed in this window never acknowledged the
         *  cell, so a resumed campaign re-leases it. */
        WaitDurable,
        Done,
    };
    enum class LeaseKind : std::uint8_t
    {
        Normal,
        Hedge, ///< speculative duplicate on a straggling cell
        Audit, ///< integrity re-execution of an accepted result
    };
    struct Lease
    {
        std::size_t cell = 0;
        std::uint64_t peer = 0;
        unsigned attempt = 1; ///< scheduling attempt it was cut on
        LeaseKind kind = LeaseKind::Normal;
        Clock::time_point cutAt;
        Clock::time_point expiry;
        bool revoked = false;
        bool answered = false;
    };
    /** One in-flight result-integrity audit: the accepted original
     *  plus up to two more independent executions of the same cell,
     *  compared byte-for-byte in canonical (stamp-free) form. */
    struct AuditCtx
    {
        std::size_t cell = 0;
        unsigned attempt = 1;
        /** 0 = awaiting the second execution, 1 = diverged and
         *  awaiting the tie-breaking third. */
        unsigned round = 0;
        unsigned execFailures = 0;
        std::uint64_t pendingLease = 0; ///< outstanding audit lease
        std::uint64_t origLease = 0;    ///< lease the original answered
        std::uint64_t origPeer = 0;
        std::uint64_t secondPeer = 0;
        std::string origAgent, secondAgent;
        std::string origBytes, secondBytes;
        sim::RunResult original, second;
    };
    /** Per-cell scheduling state for the active runAll. */
    struct RunCtx
    {
        const std::vector<super::CellSpec> *cells = nullptr;
        std::vector<super::CellOutcome> *out = nullptr;
        std::vector<CState> st;
        std::vector<unsigned> attempt;
        std::vector<unsigned> reassigns;
        std::vector<std::uint64_t> backoffAccum;
        std::vector<Clock::time_point> notBefore;
        std::vector<std::uint64_t> hash;
        /** Live (un-revoked, un-answered) Normal+Hedge leases per
         *  cell; a cell only reverts to Pending when the last one is
         *  lost. */
        std::vector<unsigned> activeLeases;
        std::vector<unsigned> hedgesCut;
        std::map<std::size_t, AuditCtx> audits; ///< by cell index
        std::size_t remaining = 0;
        /** Cells in WaitDurable with the journal LSN they ack at,
         *  in append (and therefore LSN) order. */
        std::deque<std::pair<std::size_t, std::uint64_t>> waitDurable;
    };

    void handleLine(Peer &peer, const std::string &line);
    void admitSubmission(Peer &peer, const triage::JsonValue &doc);
    void handleAgentMessage(Peer &peer, const triage::JsonValue &doc,
                            const std::string &type);
    void handleResult(Peer &peer, const triage::JsonValue &doc);
    void agentLost(Peer &peer, const char *why);
    void leaseLost(std::uint64_t id, Lease &l, const char *why);
    void reassignCell(std::size_t i, std::uint64_t leaseId,
                      const char *why);
    void finalizeCell(std::size_t i, sim::RunResult result,
                      const std::string &agent, std::uint64_t lease,
                      unsigned attempt,
                      const std::string &audit = std::string());
    void assignReady(Clock::time_point now);
    std::uint64_t cutLease(Peer &p, std::size_t cell, LeaseKind kind,
                           unsigned attempt, Clock::time_point now);
    std::vector<Peer *> orderedAgents();
    Peer *pickAgent(const std::vector<std::uint64_t> &exclude,
                    bool requireHealthy);
    std::uint64_t hedgeThresholdMs() const;
    void maybeHedge(Clock::time_point now);
    void recordLatency(Peer &p, const Lease &l,
                       Clock::time_point now);
    void revokeSiblings(std::size_t i);
    bool auditSelected(std::uint64_t cellHash) const;
    void beginAudit(std::size_t i, sim::RunResult r, Peer &peer,
                    std::uint64_t leaseId, unsigned attempt);
    void pumpAudits(Clock::time_point now);
    void handleAuditResult(Peer &peer, Lease &l,
                           std::uint64_t leaseId,
                           const triage::JsonValue &doc);
    void auditVote(std::size_t cell, const std::string &bytes,
                   std::uint64_t peerId, const std::string &agentName,
                   sim::RunResult r);
    void finalizeAudit(std::size_t cell, sim::RunResult result,
                       const std::string &agent,
                       const std::string &verdict);
    void quarantine(std::uint64_t peerId, const std::string &name,
                    const char *why);
    sim::RunResult runOneLocal(const super::CellSpec &cell);
    static std::string canonicalBytes(const sim::RunResult &r);
    void promoteDurable(bool force);
    void runLocalBatch();
    void sweepDeadlines(Clock::time_point now);
    std::size_t outstandingLeases() const;
    bool anyReady(Clock::time_point now) const;
    int pollTimeout(Clock::time_point now, int base) const;
    void ensureJournal();

    FabricOptions _opts;
    Clock *_clk = nullptr;
    Transport *_net = nullptr;
    std::unique_ptr<Transport> _ownedNet; ///< when none was injected
    bool _started = false;
    std::uint16_t _port = 0;

    std::map<std::uint64_t, std::unique_ptr<Peer>> _peers;
    std::uint64_t _peerIds = 0;
    std::uint64_t _agentOrdinals = 0;
    std::map<std::uint64_t, Lease> _leases;
    std::uint64_t _leaseIds = 0;
    std::deque<Submission> _submissions;

    super::Journal _journal;
    bool _journalReady = false;
    FabricChaos _chaos;
    RunCtx *_run = nullptr;

    std::atomic<bool> _stop{false};
    std::atomic<super::Supervisor *> _activeLocal{nullptr};

    std::size_t _completed = 0;
    std::size_t _skipped = 0;
    std::size_t _failures = 0;
    std::uint64_t _dupDeduped = 0;
    std::uint64_t _reassignments = 0;
    std::uint64_t _agentDeaths = 0;
    std::uint64_t _staleIgnored = 0;
    std::uint64_t _localCells = 0;
    std::uint64_t _hedges = 0;
    std::uint64_t _auditsRun = 0;
    std::uint64_t _auditsPassed = 0;
    std::uint64_t _auditsDiverged = 0;
    std::uint64_t _agentsQuarantined = 0;
    std::uint64_t _shedSubmissions = 0;
    std::uint64_t _leasesLeaked = 0;
    std::uint64_t _lastServedClient = 0;
    /** Recent per-cell wall latencies (ms), the p95 source for the
     *  auto hedge threshold. Bounded ring. */
    std::deque<std::uint64_t> _latSamples;
    bool _downgradeLogged = false;
};

} // namespace edge::serve

#endif // EDGE_SERVE_FABRIC_HH
