/**
 * @file
 * Program-level delta debugging (triage::minimizeProgram): shrink a
 * failing program itself, not just its fault schedule. Phase 1 drops
 * whole hyperblocks (exits to removed blocks loop back to the entry);
 * phase 2 drops observable effects — stores and register writes —
 * and then garbage-collects the dataflow feeding only removed
 * effects. Both phases ride the deterministic minimizeOrdinals core,
 * so the result is identical at any thread count.
 */

#include "triage/minimize.hh"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/logging.hh"
#include "compiler/ref_executor.hh"
#include "sim/run_pool.hh"

namespace edge::triage {

namespace {

using Ordinals = std::vector<std::uint64_t>;

/** Cap on the reference run of the *original* program. */
constexpr std::uint64_t kRefCap = 10'000'000;

bool
has(const Ordinals &sorted, std::uint64_t v)
{
    return std::binary_search(sorted.begin(), sorted.end(), v);
}

/**
 * Keep the entry block plus the blocks named in `keep` (sorted
 * non-entry ids), remapping ids; every exit to a dropped block is
 * redirected to the entry block. Redirecting to entry (rather than
 * halting) keeps loops looping, so a shrunk program still builds up
 * the in-flight block pressure most failures need; termination is
 * not assumed — the candidate tester re-checks it on the reference.
 * Exit tables keep their *length*, so a dynamically computed exit
 * index stays in range.
 */
isa::Program
pruneBlocks(const isa::Program &orig, const Ordinals &keep)
{
    constexpr BlockId kDropped = isa::kHaltBlock;
    std::vector<BlockId> new_id(orig.numBlocks(), kDropped);
    std::vector<BlockId> kept;
    for (BlockId b = 0; b < orig.numBlocks(); ++b) {
        if (b == orig.entry() || has(keep, b)) {
            new_id[b] = static_cast<BlockId>(kept.size());
            kept.push_back(b);
        }
    }

    isa::Program out(orig.name());
    out.initRegs() = orig.initRegs();
    out.memImage() = orig.memImage();
    const BlockId new_entry = new_id[orig.entry()];
    for (BlockId b : kept) {
        isa::Block nb = orig.block(b);
        for (BlockId &succ : nb.exits()) {
            if (succ == isa::kHaltBlock)
                continue;
            succ = new_id[succ] == kDropped ? new_entry : new_id[succ];
        }
        out.addBlock(std::move(nb));
    }
    out.setEntry(new_entry);
    return out;
}

/** Effects are enumerated per block: its stores, then its writes. */
std::size_t
countEffects(const isa::Program &prog)
{
    std::size_t n = 0;
    for (BlockId b = 0; b < prog.numBlocks(); ++b) {
        n += prog.block(b).numStores();
        n += prog.block(b).writes().size();
    }
    return n;
}

/**
 * Keep only the effects named in `keep` (sorted global ordinals in
 * countEffects order) and garbage-collect everything feeding only
 * dropped effects. Liveness is a fixpoint — fanout trees target
 * *earlier* slots, so a single reverse pass is not enough. Targets
 * are re-packed, write indices and slots renumbered, LSIDs
 * re-densified over the surviving memory ops, and reads left with no
 * targets dropped, so the result is validator-clean by construction.
 */
isa::Program
pruneEffects(const isa::Program &orig, const Ordinals &keep)
{
    isa::Program out(orig.name());
    out.initRegs() = orig.initRegs();
    out.memImage() = orig.memImage();

    std::uint64_t ordinal = 0;
    auto next_kept = [&]() { return has(keep, ordinal++); };

    for (BlockId b = 0; b < orig.numBlocks(); ++b) {
        const isa::Block &blk = orig.block(b);
        const std::vector<isa::Instruction> &insts = blk.insts();

        std::vector<char> keep_store(insts.size(), 0);
        for (std::size_t s = 0; s < insts.size(); ++s)
            if (isa::isStore(insts[s].op))
                keep_store[s] = next_kept();
        std::vector<char> keep_write(blk.writes().size(), 0);
        for (std::size_t w = 0; w < blk.writes().size(); ++w)
            keep_write[w] = next_kept();

        // Roots: the branch and every kept store. An instruction is
        // live iff it (transitively) feeds a root or a kept write.
        std::vector<char> live(insts.size(), 0);
        for (std::size_t s = 0; s < insts.size(); ++s)
            if (isa::isBranch(insts[s].op) ||
                (isa::isStore(insts[s].op) && keep_store[s]))
                live[s] = 1;
        for (bool changed = true; changed;) {
            changed = false;
            for (std::size_t s = 0; s < insts.size(); ++s) {
                if (live[s] || isa::isStore(insts[s].op))
                    continue;
                for (const isa::Target &t : insts[s].targets) {
                    if (!t.valid())
                        continue;
                    bool feeds = t.kind == isa::TargetKind::Operand
                                     ? live[t.index] != 0
                                     : keep_write[t.index] != 0;
                    if (feeds) {
                        live[s] = 1;
                        changed = true;
                        break;
                    }
                }
            }
        }

        isa::Block nb(blk.name());

        constexpr std::uint16_t kGone = 0xffff;
        std::vector<std::uint16_t> write_map(blk.writes().size(), kGone);
        for (std::size_t w = 0; w < blk.writes().size(); ++w) {
            if (keep_write[w]) {
                write_map[w] =
                    static_cast<std::uint16_t>(nb.writes().size());
                nb.writes().push_back(blk.writes()[w]);
            }
        }

        std::vector<std::uint16_t> slot_map(insts.size(), kGone);
        Lsid lsid = 0;
        for (std::size_t s = 0; s < insts.size(); ++s) {
            if (!live[s])
                continue;
            slot_map[s] = static_cast<std::uint16_t>(nb.insts().size());
            isa::Instruction in = insts[s];
            if (isa::isMem(in.op))
                in.lsid = lsid++;
            nb.insts().push_back(in);
        }

        auto remap = [&](const auto &targets) {
            std::array<isa::Target, isa::kMaxTargets> nt{};
            unsigned k = 0;
            for (const isa::Target &t : targets) {
                if (!t.valid())
                    continue;
                if (t.kind == isa::TargetKind::Operand &&
                    slot_map[t.index] != kGone)
                    nt[k++] = isa::Target::toOperand(slot_map[t.index],
                                                     t.operand);
                else if (t.kind == isa::TargetKind::RegWrite &&
                         write_map[t.index] != kGone)
                    nt[k++] = isa::Target::toWrite(write_map[t.index]);
            }
            return nt;
        };

        for (std::size_t s = 0; s < insts.size(); ++s)
            if (live[s])
                nb.insts()[slot_map[s]].targets =
                    remap(insts[s].targets);

        for (const isa::RegRead &rd : blk.reads()) {
            isa::RegRead nr;
            nr.reg = rd.reg;
            nr.targets = remap(rd.targets);
            if (nr.targets[0].valid())
                nb.reads().push_back(nr);
        }

        nb.exits() = blk.exits();
        out.addBlock(std::move(nb));
    }
    out.setEntry(orig.entry());
    return out;
}

/**
 * One ddmin batch: validate each candidate, pre-check that its
 * reference execution halts (the Simulator treats either failure as
 * fatal), then run the survivors as one RunPool grid. A candidate
 * that is invalid or non-halting simply "does not reproduce".
 */
std::vector<char>
testPrograms(const ReproSpec &spec, sim::RunPool &pool,
             std::uint64_t ref_budget,
             const std::vector<isa::Program> &progs)
{
    std::vector<char> verdicts(progs.size(), 0);
    std::vector<sim::RunJob> jobs;
    std::vector<std::size_t> which;
    for (std::size_t i = 0; i < progs.size(); ++i) {
        if (!progs[i].validateAll().empty())
            continue;
        bool halts = false;
        try {
            compiler::RefExecutor ref(progs[i]);
            halts = ref.run(ref_budget).halted;
        } catch (const SimFailure &) {
            // e.g. the executor deadlocks on a pruned graph
        }
        if (!halts)
            continue;
        sim::RunJob job;
        job.program = &progs[i];
        job.config = spec.config;
        job.maxCycles = spec.maxCycles;
        jobs.push_back(std::move(job));
        which.push_back(i);
    }
    std::vector<sim::RunResult> results = pool.runAll(jobs);
    for (std::size_t k = 0; k < results.size(); ++k)
        verdicts[which[k]] =
            static_cast<char>(sameFailureKind(spec, results[k]));
    return verdicts;
}

} // namespace

ProgramMinimizeResult
minimizeProgram(const ReproSpec &spec, const MinimizeOptions &opts)
{
    isa::Program orig = buildProgram(spec.program);
    {
        std::vector<isa::ValidationIssue> issues = orig.validateAll();
        fatal_if(!issues.empty(),
                 "minimize: the spec's program is invalid: %s",
                 issues.front().str().c_str());
    }
    compiler::RefExecutor::Result ref_result =
        compiler::RefExecutor(orig).run(kRefCap);
    fatal_if(!ref_result.halted,
             "minimize: the spec's reference execution does not halt "
             "within %llu blocks",
             static_cast<unsigned long long>(kRefCap));
    // Headroom so a candidate that loops *longer* than the original
    // (a pruned fuel update, say) is cut off rather than spinning to
    // the cap on every probe.
    const std::uint64_t ref_budget = ref_result.dynBlocks * 2 + 4096;

    sim::RunPool pool(opts.threads);
    ProgramMinimizeResult out;
    out.blocksBefore = orig.numBlocks();

    // Phase 1: which non-entry blocks are needed?
    Ordinals block_universe;
    for (BlockId b = 0; b < orig.numBlocks(); ++b)
        if (b != orig.entry())
            block_universe.push_back(b);

    BatchTest block_batch = [&](const std::vector<Ordinals> &cands) {
        std::vector<isa::Program> progs;
        progs.reserve(cands.size());
        for (const Ordinals &c : cands)
            progs.push_back(pruneBlocks(orig, c));
        return testPrograms(spec, pool, ref_budget, progs);
    };
    MinimizeResult res_blocks =
        minimizeOrdinals(block_universe, block_batch, opts);
    isa::Program shrunk = pruneBlocks(orig, res_blocks.ordinals);
    out.blocksAfter = shrunk.numBlocks();
    out.testsRun += res_blocks.testsRun;
    out.rounds += res_blocks.rounds;

    // Phase 2: which effects of the survivor are needed?
    out.effectsBefore = countEffects(shrunk);
    Ordinals effect_universe(out.effectsBefore);
    std::iota(effect_universe.begin(), effect_universe.end(), 0);

    BatchTest effect_batch = [&](const std::vector<Ordinals> &cands) {
        std::vector<isa::Program> progs;
        progs.reserve(cands.size());
        for (const Ordinals &c : cands)
            progs.push_back(pruneEffects(shrunk, c));
        return testPrograms(spec, pool, ref_budget, progs);
    };
    MinimizeResult res_effects =
        minimizeOrdinals(effect_universe, effect_batch, opts);
    out.program = pruneEffects(shrunk, res_effects.ordinals);
    out.effectsAfter = countEffects(out.program);
    out.testsRun += res_effects.testsRun;
    out.rounds += res_effects.rounds;
    out.converged = res_blocks.converged && res_effects.converged;
    return out;
}

ReproSpec
applyProgram(const ReproSpec &spec, const isa::Program &minimized)
{
    ReproSpec shrunk = spec;
    shrunk.program = embeddedRef(spec.program.kernel, minimized,
                                 spec.program.params.seed);
    shrunk.programHash = programHash(minimized);
    // Re-observe the failure: the cycle, retry count, and chaos-event
    // schedule of the shrunk program all legitimately differ from the
    // original capture, and a stale signature would fail replay's
    // bit-identity check.
    sim::RunResult result = replay(shrunk);
    return captureFromResult(shrunk.program, shrunk.config,
                             shrunk.maxCycles, result);
}

} // namespace edge::triage
