/**
 * @file
 * Deterministic failure-repro capture and replay. A `.repro.json`
 * file is a self-contained description of one failing run — program
 * identity (kernel name + generator params + a content hash), the
 * full resolved MachineConfig including the effective chaos seed and
 * any schedule filter, the cycle budget, and the observed failure
 * signature with the trace-ring tail. Because every run is a pure
 * function of (program, config, budget), `edgesim --replay file`
 * reproduces the failure bit-identically: same SimError kind, same
 * invariant rule, same failure cycle — regardless of the thread count
 * or host the original grid ran at.
 */

#ifndef EDGE_TRIAGE_REPRO_HH
#define EDGE_TRIAGE_REPRO_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "triage/jsonio.hh"
#include "workloads/workloads.hh"

namespace edge::triage {

/**
 * How to rebuild the failing program. Two flavours: a workload-suite
 * kernel identified by (kernel, params) and rebuilt via wl::build on
 * replay, or — for fuzz-generated and minimized programs, which have
 * no kernel to call back into — the program itself, embedded in the
 * repro file (see triage/program_json.hh).
 */
struct ProgramRef
{
    std::string kernel;             ///< wl::build name, or "fuzz"
    wl::KernelParams params;        ///< generator iterations + seed
    /** When set, `embedded` IS the program; `kernel` is just a label
     *  (and `params.seed` records the fuzz generator seed). */
    bool hasEmbedded = false;
    isa::Program embedded;
};

/** A ProgramRef carrying the program itself. */
ProgramRef embeddedRef(std::string label, isa::Program program,
                       std::uint64_t generator_seed = 0);

/** Everything needed to replay one failing run. */
struct ReproSpec
{
    ProgramRef program;
    /**
     * Content hash of the built program (code + initial registers +
     * memory image). Replay recomputes it and refuses to compare
     * signatures across a changed program.
     */
    std::uint64_t programHash = 0;
    /**
     * The exact resolved machine configuration of the failing run.
     * The effective chaos seed is baked in at capture time (a config
     * with chaos.seed == 0 derives it from rngSeed at run time).
     */
    core::MachineConfig config;
    Cycle maxCycles = 500'000'000;
    /**
     * Provenance line of the build that captured this spec (see
     * edge::buildInfoLine). Replay compares it against the running
     * binary and warns on mismatch: a capture from a different git
     * revision, build type, or sanitizer mix may legitimately not
     * reproduce.
     */
    std::string build;

    // --- observed failure signature -----------------------------------
    chaos::SimError error;
    bool halted = false;
    bool archMatch = false;
    unsigned retries = 0;
    /** The failing run's full fault-event schedule (the minimizer's
     *  starting universe); may be truncated for pathological runs. */
    std::vector<chaos::FaultEvent> schedule;
};

/** 64-bit content hash of a program (code, registers, memory image). */
std::uint64_t programHash(const isa::Program &program);

/** Rebuild the program a spec refers to (fatal on unknown kernel). */
isa::Program buildProgram(const ProgramRef &ref);

JsonValue toJson(const ReproSpec &spec);

/** Parse a spec; false (with *err set) on malformed/missing fields. */
bool fromJson(const JsonValue &root, ReproSpec *spec,
              std::string *err);

/** Write `spec` to `path`; false (with *err set) on I/O failure. */
bool save(const ReproSpec &spec, const std::string &path,
          std::string *err);

/** Load a `.repro.json`; false (with *err set) on any failure. */
bool load(const std::string &path, ReproSpec *spec, std::string *err);

/**
 * Build the capture for one failing run. `config` must be the exact
 * config the run used; the effective chaos seed from `result` is
 * baked in so the spec replays standalone.
 */
ReproSpec captureFromResult(const ProgramRef &program,
                            const core::MachineConfig &config,
                            Cycle max_cycles,
                            const sim::RunResult &result);

/**
 * Save a spec under `dir` (created if missing) with a deterministic
 * name derived from the run's identity. Returns the file path, or ""
 * on I/O failure.
 */
std::string captureToFile(const ReproSpec &spec,
                          const std::string &dir);

/**
 * Capture a repro file for every non-converged cell of a sweep
 * report, filling each outcome's `reproPath`. Returns the number of
 * files written.
 */
std::size_t captureSweepFailures(sim::ChaosSweepReport &report,
                                 const ProgramRef &program,
                                 Cycle max_cycles,
                                 const std::string &dir);

/** Re-run the spec's exact configuration (the replay semantics). */
sim::RunResult replay(const ReproSpec &spec);

/**
 * Bit-identity signature check for replay: same failure kind, same
 * invariant rule, same failure cycle, same halted/archMatch verdict.
 */
bool sameSignature(const ReproSpec &spec, const sim::RunResult &result);

/**
 * The weaker predicate the minimizer preserves: same SimError kind
 * and invariant rule. (Masking schedule events legitimately moves
 * the failure cycle.)
 */
bool sameFailureKind(const ReproSpec &spec,
                     const sim::RunResult &result);

/** One-line human summary of a spec's failure signature. */
std::string signatureLine(const ReproSpec &spec);

} // namespace edge::triage

#endif // EDGE_TRIAGE_REPRO_HH
