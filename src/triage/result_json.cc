#include "triage/result_json.hh"

#include "common/logging.hh"
#include "lsq/lsq.hh"
#include "predictor/dependence.hh"

namespace edge::triage {

namespace {

pred::DepPolicy
depPolicyByName(const std::string &name)
{
    for (pred::DepPolicy p :
         {pred::DepPolicy::Blind, pred::DepPolicy::Conservative,
          pred::DepPolicy::StoreSets, pred::DepPolicy::Oracle}) {
        if (name == pred::depPolicyName(p))
            return p;
    }
    fatal("repro: unknown dependence policy '%s'", name.c_str());
}

lsq::Recovery
recoveryByName(const std::string &name)
{
    for (lsq::Recovery r : {lsq::Recovery::Flush, lsq::Recovery::Dsre}) {
        if (name == lsq::recoveryName(r))
            return r;
    }
    fatal("repro: unknown recovery mechanism '%s'", name.c_str());
}

JsonValue
coreToJson(const core::CoreParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("rows", JsonValue::u64(p.rows));
    o.set("cols", JsonValue::u64(p.cols));
    o.set("slots_per_node", JsonValue::u64(p.slotsPerNode));
    o.set("num_frames", JsonValue::u64(p.numFrames));
    o.set("hop_latency", JsonValue::u64(p.hopLatency));
    o.set("fetch_width", JsonValue::u64(p.fetchWidth));
    o.set("reg_read_latency", JsonValue::u64(p.regReadLatency));
    o.set("reg_ports_per_bank", JsonValue::u64(p.regPortsPerBank));
    o.set("commit_ports_per_node", JsonValue::u64(p.commitPortsPerNode));
    o.set("commit_wave_uses_alu", JsonValue::boolean(p.commitWaveUsesAlu));
    o.set("squash_identical_values",
          JsonValue::boolean(p.squashIdenticalValues));
    o.set("lat_int_alu", JsonValue::u64(p.latIntAlu));
    o.set("lat_int_mul", JsonValue::u64(p.latIntMul));
    o.set("lat_int_div", JsonValue::u64(p.latIntDiv));
    o.set("lat_fp_alu", JsonValue::u64(p.latFpAlu));
    o.set("lat_fp_mul", JsonValue::u64(p.latFpMul));
    o.set("lat_fp_div", JsonValue::u64(p.latFpDiv));
    o.set("lat_ctrl", JsonValue::u64(p.latCtrl));
    o.set("lat_mem_addr", JsonValue::u64(p.latMemAddr));
    o.set("watchdog_cycles", JsonValue::u64(p.watchdogCycles));
    o.set("livelock_interval", JsonValue::u64(p.livelockInterval));
    o.set("livelock_repeats", JsonValue::u64(p.livelockRepeats));
    return o;
}

void
coreFromJson(const JsonValue &o, core::CoreParams *p)
{
    p->rows = static_cast<unsigned>(o.getU64("rows", p->rows));
    p->cols = static_cast<unsigned>(o.getU64("cols", p->cols));
    p->slotsPerNode = static_cast<unsigned>(
        o.getU64("slots_per_node", p->slotsPerNode));
    p->numFrames = static_cast<unsigned>(
        o.getU64("num_frames", p->numFrames));
    p->hopLatency = static_cast<unsigned>(
        o.getU64("hop_latency", p->hopLatency));
    p->fetchWidth = static_cast<unsigned>(
        o.getU64("fetch_width", p->fetchWidth));
    p->regReadLatency = static_cast<unsigned>(
        o.getU64("reg_read_latency", p->regReadLatency));
    p->regPortsPerBank = static_cast<unsigned>(
        o.getU64("reg_ports_per_bank", p->regPortsPerBank));
    p->commitPortsPerNode = static_cast<unsigned>(
        o.getU64("commit_ports_per_node", p->commitPortsPerNode));
    p->commitWaveUsesAlu =
        o.getBool("commit_wave_uses_alu", p->commitWaveUsesAlu);
    p->squashIdenticalValues =
        o.getBool("squash_identical_values", p->squashIdenticalValues);
    p->latIntAlu = static_cast<unsigned>(
        o.getU64("lat_int_alu", p->latIntAlu));
    p->latIntMul = static_cast<unsigned>(
        o.getU64("lat_int_mul", p->latIntMul));
    p->latIntDiv = static_cast<unsigned>(
        o.getU64("lat_int_div", p->latIntDiv));
    p->latFpAlu = static_cast<unsigned>(
        o.getU64("lat_fp_alu", p->latFpAlu));
    p->latFpMul = static_cast<unsigned>(
        o.getU64("lat_fp_mul", p->latFpMul));
    p->latFpDiv = static_cast<unsigned>(
        o.getU64("lat_fp_div", p->latFpDiv));
    p->latCtrl = static_cast<unsigned>(
        o.getU64("lat_ctrl", p->latCtrl));
    p->latMemAddr = static_cast<unsigned>(
        o.getU64("lat_mem_addr", p->latMemAddr));
    p->watchdogCycles = o.getU64("watchdog_cycles", p->watchdogCycles);
    p->livelockInterval =
        o.getU64("livelock_interval", p->livelockInterval);
    p->livelockRepeats = static_cast<unsigned>(
        o.getU64("livelock_repeats", p->livelockRepeats));
}

JsonValue
memToJson(const mem::HierarchyParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("num_dbanks", JsonValue::u64(p.numDBanks));
    o.set("l1d_size_bytes", JsonValue::u64(p.l1dSizeBytes));
    o.set("l1d_assoc", JsonValue::u64(p.l1dAssoc));
    o.set("l1d_hit_latency", JsonValue::u64(p.l1dHitLatency));
    o.set("l1d_mshrs", JsonValue::u64(p.l1dMshrs));
    o.set("l1i_size_bytes", JsonValue::u64(p.l1iSizeBytes));
    o.set("l1i_assoc", JsonValue::u64(p.l1iAssoc));
    o.set("l1i_hit_latency", JsonValue::u64(p.l1iHitLatency));
    o.set("l2_size_bytes", JsonValue::u64(p.l2SizeBytes));
    o.set("l2_assoc", JsonValue::u64(p.l2Assoc));
    o.set("l2_hit_latency", JsonValue::u64(p.l2HitLatency));
    o.set("l2_mshrs", JsonValue::u64(p.l2Mshrs));
    o.set("l2_banks", JsonValue::u64(p.l2Banks));
    o.set("line_bytes", JsonValue::u64(p.lineBytes));
    o.set("dram_latency", JsonValue::u64(p.dramLatency));
    o.set("dram_cycles_per_line", JsonValue::u64(p.dramCyclesPerLine));
    return o;
}

void
memFromJson(const JsonValue &o, mem::HierarchyParams *p)
{
    p->numDBanks = static_cast<unsigned>(
        o.getU64("num_dbanks", p->numDBanks));
    p->l1dSizeBytes = o.getU64("l1d_size_bytes", p->l1dSizeBytes);
    p->l1dAssoc = static_cast<unsigned>(
        o.getU64("l1d_assoc", p->l1dAssoc));
    p->l1dHitLatency = static_cast<unsigned>(
        o.getU64("l1d_hit_latency", p->l1dHitLatency));
    p->l1dMshrs = static_cast<unsigned>(
        o.getU64("l1d_mshrs", p->l1dMshrs));
    p->l1iSizeBytes = o.getU64("l1i_size_bytes", p->l1iSizeBytes);
    p->l1iAssoc = static_cast<unsigned>(
        o.getU64("l1i_assoc", p->l1iAssoc));
    p->l1iHitLatency = static_cast<unsigned>(
        o.getU64("l1i_hit_latency", p->l1iHitLatency));
    p->l2SizeBytes = o.getU64("l2_size_bytes", p->l2SizeBytes);
    p->l2Assoc = static_cast<unsigned>(o.getU64("l2_assoc", p->l2Assoc));
    p->l2HitLatency = static_cast<unsigned>(
        o.getU64("l2_hit_latency", p->l2HitLatency));
    p->l2Mshrs = static_cast<unsigned>(o.getU64("l2_mshrs", p->l2Mshrs));
    p->l2Banks = static_cast<unsigned>(o.getU64("l2_banks", p->l2Banks));
    p->lineBytes = static_cast<unsigned>(
        o.getU64("line_bytes", p->lineBytes));
    p->dramLatency = static_cast<unsigned>(
        o.getU64("dram_latency", p->dramLatency));
    p->dramCyclesPerLine = static_cast<unsigned>(
        o.getU64("dram_cycles_per_line", p->dramCyclesPerLine));
}

JsonValue
lsqToJson(const lsq::LsqParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("recovery", JsonValue::str(lsq::recoveryName(p.recovery)));
    o.set("lsq_latency", JsonValue::u64(p.lsqLatency));
    o.set("addr_based_violations",
          JsonValue::boolean(p.addrBasedViolations));
    o.set("max_resends_per_load", JsonValue::u64(p.maxResendsPerLoad));
    o.set("charge_upgrade_ports",
          JsonValue::boolean(p.chargeUpgradePorts));
    o.set("value_predict_misses",
          JsonValue::boolean(p.valuePredictMisses));
    o.set("vp_latency_threshold", JsonValue::u64(p.vpLatencyThreshold));
    o.set("vp_table_size", JsonValue::u64(p.vpTableSize));
    return o;
}

void
lsqFromJson(const JsonValue &o, lsq::LsqParams *p)
{
    p->recovery = recoveryByName(
        o.getString("recovery", lsq::recoveryName(p->recovery)));
    p->lsqLatency = static_cast<unsigned>(
        o.getU64("lsq_latency", p->lsqLatency));
    p->addrBasedViolations =
        o.getBool("addr_based_violations", p->addrBasedViolations);
    p->maxResendsPerLoad = static_cast<unsigned>(
        o.getU64("max_resends_per_load", p->maxResendsPerLoad));
    p->chargeUpgradePorts =
        o.getBool("charge_upgrade_ports", p->chargeUpgradePorts);
    p->valuePredictMisses =
        o.getBool("value_predict_misses", p->valuePredictMisses);
    p->vpLatencyThreshold = static_cast<unsigned>(
        o.getU64("vp_latency_threshold", p->vpLatencyThreshold));
    p->vpTableSize = o.getU64("vp_table_size", p->vpTableSize);
}

JsonValue
chaosToJson(const chaos::ChaosParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("seed", JsonValue::u64(p.seed));
    o.set("profile", JsonValue::str(chaos::profileName(p.profile)));
    o.set("hop_delay_permille", JsonValue::u64(p.hopDelayPermille));
    o.set("hop_delay_max", JsonValue::u64(p.hopDelayMax));
    o.set("duplicate_permille", JsonValue::u64(p.duplicatePermille));
    o.set("duplicate_skew_max", JsonValue::u64(p.duplicateSkewMax));
    o.set("mem_jitter_permille", JsonValue::u64(p.memJitterPermille));
    o.set("mem_jitter_max", JsonValue::u64(p.memJitterMax));
    o.set("store_delay_permille", JsonValue::u64(p.storeDelayPermille));
    o.set("store_delay_max", JsonValue::u64(p.storeDelayMax));
    o.set("spurious_permille", JsonValue::u64(p.spuriousPermille));
    o.set("mutation", JsonValue::str(chaos::mutationName(p.mutation)));
    o.set("mutation_node", JsonValue::u64(p.mutationNode));
    o.set("filter_schedule", JsonValue::boolean(p.filterSchedule));
    JsonValue allowed = JsonValue::array();
    for (std::uint64_t e : p.allowedEvents)
        allowed.push(JsonValue::u64(e));
    o.set("allowed_events", std::move(allowed));
    return o;
}

void
chaosFromJson(const JsonValue &o, chaos::ChaosParams *p)
{
    p->seed = o.getU64("seed", p->seed);
    p->profile = chaos::ChaosParams::profileByName(
        o.getString("profile", chaos::profileName(p->profile)));
    p->hopDelayPermille = static_cast<unsigned>(
        o.getU64("hop_delay_permille", p->hopDelayPermille));
    p->hopDelayMax = static_cast<unsigned>(
        o.getU64("hop_delay_max", p->hopDelayMax));
    p->duplicatePermille = static_cast<unsigned>(
        o.getU64("duplicate_permille", p->duplicatePermille));
    p->duplicateSkewMax = static_cast<unsigned>(
        o.getU64("duplicate_skew_max", p->duplicateSkewMax));
    p->memJitterPermille = static_cast<unsigned>(
        o.getU64("mem_jitter_permille", p->memJitterPermille));
    p->memJitterMax = static_cast<unsigned>(
        o.getU64("mem_jitter_max", p->memJitterMax));
    p->storeDelayPermille = static_cast<unsigned>(
        o.getU64("store_delay_permille", p->storeDelayPermille));
    p->storeDelayMax = static_cast<unsigned>(
        o.getU64("store_delay_max", p->storeDelayMax));
    p->spuriousPermille = static_cast<unsigned>(
        o.getU64("spurious_permille", p->spuriousPermille));
    p->mutation = chaos::mutationByName(
        o.getString("mutation", chaos::mutationName(p->mutation)));
    p->mutationNode = static_cast<unsigned>(
        o.getU64("mutation_node", p->mutationNode));
    p->filterSchedule = o.getBool("filter_schedule", p->filterSchedule);
    p->allowedEvents.clear();
    if (const JsonValue *allowed = o.get("allowed_events"))
        for (const JsonValue &e : allowed->items())
            p->allowedEvents.push_back(e.asU64());
}

} // namespace

JsonValue
configToJson(const core::MachineConfig &cfg)
{
    JsonValue o = JsonValue::object();
    o.set("policy", JsonValue::str(pred::depPolicyName(cfg.policy)));
    o.set("check_committed_path",
          JsonValue::boolean(cfg.checkCommittedPath));
    o.set("rng_seed", JsonValue::u64(cfg.rngSeed));
    o.set("check_invariants", JsonValue::boolean(cfg.checkInvariants));
    o.set("trace_depth", JsonValue::u64(cfg.traceDepth));
    o.set("wall_deadline_ms", JsonValue::u64(cfg.wallDeadlineMs));
    o.set("engine", JsonValue::str(core::engineName(cfg.engine)));
    o.set("core", coreToJson(cfg.core));
    o.set("mem", memToJson(cfg.mem));
    o.set("lsq", lsqToJson(cfg.lsq));
    JsonValue nbp = JsonValue::object();
    nbp.set("table_size", JsonValue::u64(cfg.nbp.tableSize));
    nbp.set("history_bits", JsonValue::u64(cfg.nbp.historyBits));
    o.set("nbp", std::move(nbp));
    o.set("chaos", chaosToJson(cfg.chaos));
    return o;
}

void
configFromJson(const JsonValue &o, core::MachineConfig *cfg)
{
    cfg->policy = depPolicyByName(
        o.getString("policy", pred::depPolicyName(cfg->policy)));
    cfg->checkCommittedPath =
        o.getBool("check_committed_path", cfg->checkCommittedPath);
    cfg->rngSeed = o.getU64("rng_seed", cfg->rngSeed);
    cfg->checkInvariants =
        o.getBool("check_invariants", cfg->checkInvariants);
    cfg->traceDepth = o.getU64("trace_depth", cfg->traceDepth);
    cfg->wallDeadlineMs = o.getU64("wall_deadline_ms", cfg->wallDeadlineMs);
    // Absent in pre-engine repro files: keep the config's default so
    // old repros stay loadable (both engines replay identically).
    cfg->engine = core::engineByName(
        o.getString("engine", core::engineName(cfg->engine)));
    if (const JsonValue *core_o = o.get("core"))
        coreFromJson(*core_o, &cfg->core);
    if (const JsonValue *mem_o = o.get("mem"))
        memFromJson(*mem_o, &cfg->mem);
    if (const JsonValue *lsq_o = o.get("lsq"))
        lsqFromJson(*lsq_o, &cfg->lsq);
    if (const JsonValue *nbp_o = o.get("nbp")) {
        cfg->nbp.tableSize = nbp_o->getU64("table_size",
                                           cfg->nbp.tableSize);
        cfg->nbp.historyBits = static_cast<unsigned>(
            nbp_o->getU64("history_bits", cfg->nbp.historyBits));
    }
    if (const JsonValue *chaos_o = o.get("chaos"))
        chaosFromJson(*chaos_o, &cfg->chaos);
}

JsonValue
errorToJson(const chaos::SimError &e)
{
    JsonValue o = JsonValue::object();
    o.set("reason", JsonValue::str(chaos::reasonName(e.reason)));
    o.set("invariant", JsonValue::str(e.invariant));
    o.set("message", JsonValue::str(e.message));
    o.set("cycle", JsonValue::u64(e.cycle));
    o.set("seq", JsonValue::u64(e.seq));
    o.set("node", JsonValue::u64(e.node));
    JsonValue trace = JsonValue::array();
    for (const std::string &line : e.trace)
        trace.push(JsonValue::str(line));
    o.set("trace", std::move(trace));
    return o;
}

void
errorFromJson(const JsonValue &o, chaos::SimError *e)
{
    e->reason = chaos::reasonByName(
        o.getString("reason", chaos::reasonName(e->reason)));
    e->invariant = o.getString("invariant");
    e->message = o.getString("message");
    e->cycle = o.getU64("cycle");
    e->seq = o.getU64("seq");
    e->node = static_cast<std::uint32_t>(o.getU64("node"));
    e->trace.clear();
    if (const JsonValue *trace = o.get("trace"))
        for (const JsonValue &line : trace->items())
            e->trace.push_back(line.asString());
}

JsonValue
resultToJson(const sim::RunResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("cycles", JsonValue::u64(r.cycles));
    o.set("committed_blocks", JsonValue::u64(r.committedBlocks));
    o.set("committed_insts", JsonValue::u64(r.committedInsts));
    o.set("halted", JsonValue::boolean(r.halted));
    o.set("arch_match", JsonValue::boolean(r.archMatch));
    o.set("error", errorToJson(r.error));
    o.set("rng_seed", JsonValue::u64(r.rngSeed));
    o.set("chaos_seed", JsonValue::u64(r.chaosSeed));

    JsonValue inj = JsonValue::object();
    inj.set("hop_delays", JsonValue::u64(r.injections.hopDelays));
    inj.set("duplicates", JsonValue::u64(r.injections.duplicates));
    inj.set("mem_jitters", JsonValue::u64(r.injections.memJitters));
    inj.set("store_delays", JsonValue::u64(r.injections.storeDelays));
    inj.set("spurious_waves",
            JsonValue::u64(r.injections.spuriousWaves));
    o.set("injections", std::move(inj));

    JsonValue sched = JsonValue::array();
    for (const chaos::FaultEvent &e : r.chaosEvents) {
        JsonValue ev = JsonValue::object();
        ev.set("ordinal", JsonValue::u64(e.ordinal));
        ev.set("site", JsonValue::str(chaos::faultSiteName(e.site)));
        ev.set("magnitude", JsonValue::u64(e.magnitude));
        sched.push(std::move(ev));
    }
    o.set("chaos_events", std::move(sched));

    o.set("invariant_checks", JsonValue::u64(r.invariantChecks));
    o.set("retries", JsonValue::u64(r.retries));
    o.set("backoff_ms", JsonValue::u64(r.backoffMs));

    JsonValue counters = JsonValue::array();
    for (const auto &kv : r.counters) {
        JsonValue c = JsonValue::array();
        c.push(JsonValue::str(kv.first));
        c.push(JsonValue::u64(kv.second));
        counters.push(std::move(c));
    }
    o.set("counters", std::move(counters));

    JsonValue hists = JsonValue::array();
    for (const auto &kv : r.histograms) {
        JsonValue h = JsonValue::object();
        h.set("name", JsonValue::str(kv.first));
        JsonValue buckets = JsonValue::array();
        for (std::uint64_t b : kv.second.buckets())
            buckets.push(JsonValue::u64(b));
        h.set("buckets", std::move(buckets));
        h.set("samples", JsonValue::u64(kv.second.samples()));
        h.set("sum", JsonValue::u64(kv.second.sum()));
        h.set("max", JsonValue::u64(kv.second.maxValue()));
        hists.push(std::move(h));
    }
    o.set("histograms", std::move(hists));

    o.set("violations", JsonValue::u64(r.violations));
    o.set("resends", JsonValue::u64(r.resends));
    o.set("reexecs", JsonValue::u64(r.reexecs));
    o.set("upgrades", JsonValue::u64(r.upgrades));
    o.set("ctrl_flushes", JsonValue::u64(r.ctrlFlushes));
    o.set("viol_flushes", JsonValue::u64(r.violFlushes));
    o.set("alu_issues", JsonValue::u64(r.aluIssues));
    o.set("loads", JsonValue::u64(r.loads));
    o.set("stores", JsonValue::u64(r.stores));
    o.set("forwards", JsonValue::u64(r.forwards));
    o.set("policy_holds", JsonValue::u64(r.policyHolds));
    o.set("deferrals", JsonValue::u64(r.deferrals));
    o.set("squashes", JsonValue::u64(r.squashes));
    return o;
}

bool
resultFromJson(const JsonValue &o, sim::RunResult *r, std::string *err)
{
    if (!o.isObject() || !o.get("cycles") || !o.get("error")) {
        if (err)
            *err = "not a RunResult document";
        return false;
    }
    r->cycles = o.getU64("cycles");
    r->committedBlocks = o.getU64("committed_blocks");
    r->committedInsts = o.getU64("committed_insts");
    r->halted = o.getBool("halted");
    r->archMatch = o.getBool("arch_match");
    if (const JsonValue *e = o.get("error"))
        errorFromJson(*e, &r->error);
    r->rngSeed = o.getU64("rng_seed");
    r->chaosSeed = o.getU64("chaos_seed");

    if (const JsonValue *inj = o.get("injections")) {
        r->injections.hopDelays = inj->getU64("hop_delays");
        r->injections.duplicates = inj->getU64("duplicates");
        r->injections.memJitters = inj->getU64("mem_jitters");
        r->injections.storeDelays = inj->getU64("store_delays");
        r->injections.spuriousWaves = inj->getU64("spurious_waves");
    }

    r->chaosEvents.clear();
    if (const JsonValue *sched = o.get("chaos_events")) {
        for (const JsonValue &ev : sched->items()) {
            chaos::FaultEvent e;
            e.ordinal = ev.getU64("ordinal");
            e.site = chaos::faultSiteByName(
                ev.getString("site", "hop-delay"));
            e.magnitude = ev.getU64("magnitude");
            r->chaosEvents.push_back(e);
        }
    }

    r->invariantChecks = o.getU64("invariant_checks");
    r->retries = static_cast<unsigned>(o.getU64("retries"));
    r->backoffMs = o.getU64("backoff_ms");

    r->counters.clear();
    if (const JsonValue *counters = o.get("counters")) {
        for (const JsonValue &c : counters->items()) {
            if (c.items().size() != 2) {
                if (err)
                    *err = "malformed counter entry";
                return false;
            }
            r->counters.emplace_back(c.items()[0].asString(),
                                     c.items()[1].asU64());
        }
    }

    r->histograms.clear();
    if (const JsonValue *hists = o.get("histograms")) {
        for (const JsonValue &h : hists->items()) {
            std::vector<std::uint64_t> buckets;
            if (const JsonValue *b = h.get("buckets"))
                for (const JsonValue &v : b->items())
                    buckets.push_back(v.asU64());
            Histogram hist;
            hist.restore(std::move(buckets), h.getU64("samples"),
                         h.getU64("sum"), h.getU64("max"));
            r->histograms.emplace_back(h.getString("name"),
                                       std::move(hist));
        }
    }

    r->violations = o.getU64("violations");
    r->resends = o.getU64("resends");
    r->reexecs = o.getU64("reexecs");
    r->upgrades = o.getU64("upgrades");
    r->ctrlFlushes = o.getU64("ctrl_flushes");
    r->violFlushes = o.getU64("viol_flushes");
    r->aluIssues = o.getU64("alu_issues");
    r->loads = o.getU64("loads");
    r->stores = o.getU64("stores");
    r->forwards = o.getU64("forwards");
    r->policyHolds = o.getU64("policy_holds");
    r->deferrals = o.getU64("deferrals");
    r->squashes = o.getU64("squashes");
    return true;
}

} // namespace edge::triage
