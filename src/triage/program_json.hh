/**
 * @file
 * Full (de)serialization of an isa::Program to JSON — the repro
 * format's "embedded program" extension. Kernel-built programs are
 * identified by (kernel, params) and rebuilt on replay; fuzz-
 * generated and minimized programs have no generator to call back
 * into, so the repro file carries the program itself: every block's
 * instructions with opcodes by mnemonic, immediates, LSIDs and
 * direct targets, the register read/write interfaces, exit tables,
 * entry block, initial registers, and the initial memory image.
 */

#ifndef EDGE_TRIAGE_PROGRAM_JSON_HH
#define EDGE_TRIAGE_PROGRAM_JSON_HH

#include <string>

#include "isa/program.hh"
#include "triage/jsonio.hh"

namespace edge::triage {

/** Serialize a whole program (lossless round-trip). */
JsonValue programToJson(const isa::Program &program);

/**
 * Rebuild a program from programToJson() output.
 * @return false (with *err set) on malformed input — unknown
 *         opcodes, bad target kinds, or non-hex image bytes. The
 *         result is NOT validated here; callers run
 *         Program::validateAll() before executing it.
 */
bool programFromJson(const JsonValue &root, isa::Program *program,
                     std::string *err);

} // namespace edge::triage

#endif // EDGE_TRIAGE_PROGRAM_JSON_HH
