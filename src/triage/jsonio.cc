#include "triage/jsonio.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/strutil.hh"

namespace edge::triage {

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v._type = Type::Bool;
    v._bool = b;
    return v;
}

JsonValue
JsonValue::u64(std::uint64_t n)
{
    JsonValue v;
    v._type = Type::Number;
    v._text = strfmt("%llu", static_cast<unsigned long long>(n));
    return v;
}

JsonValue
JsonValue::i64(std::int64_t n)
{
    JsonValue v;
    v._type = Type::Number;
    v._text = strfmt("%lld", static_cast<long long>(n));
    return v;
}

JsonValue
JsonValue::number(double n)
{
    JsonValue v;
    v._type = Type::Number;
    v._text = strfmt("%.17g", n);
    return v;
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v._type = Type::String;
    v._text = std::move(s);
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v._type = Type::Object;
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v._type = Type::Array;
    return v;
}

bool
JsonValue::asBool(bool fallback) const
{
    return _type == Type::Bool ? _bool : fallback;
}

std::uint64_t
JsonValue::asU64(std::uint64_t fallback) const
{
    if (_type != Type::Number)
        return fallback;
    return std::strtoull(_text.c_str(), nullptr, 10);
}

std::int64_t
JsonValue::asI64(std::int64_t fallback) const
{
    if (_type != Type::Number)
        return fallback;
    return std::strtoll(_text.c_str(), nullptr, 10);
}

double
JsonValue::asDouble(double fallback) const
{
    if (_type != Type::Number)
        return fallback;
    return std::strtod(_text.c_str(), nullptr);
}

const std::string &
JsonValue::asString() const
{
    static const std::string kEmpty;
    return _type == Type::String ? _text : kEmpty;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    for (auto &kv : _members) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return *this;
        }
    }
    _members.emplace_back(key, std::move(value));
    return *this;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    for (const auto &kv : _members)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
JsonValue::remove(const std::string &key)
{
    for (auto it = _members.begin(); it != _members.end(); ++it) {
        if (it->first == key) {
            _members.erase(it);
            return true;
        }
    }
    return false;
}

bool
JsonValue::getBool(const std::string &key, bool fallback) const
{
    const JsonValue *v = get(key);
    return v ? v->asBool(fallback) : fallback;
}

std::uint64_t
JsonValue::getU64(const std::string &key, std::uint64_t fallback) const
{
    const JsonValue *v = get(key);
    return v ? v->asU64(fallback) : fallback;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &fallback) const
{
    const JsonValue *v = get(key);
    return v && v->type() == Type::String ? v->asString() : fallback;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    _items.push_back(std::move(value));
    return *this;
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
JsonValue::dumpTo(std::string &out, unsigned depth) const
{
    const std::string pad(2 * (depth + 1), ' ');
    const std::string close_pad(2 * depth, ' ');
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::Number:
        out += _text;
        break;
      case Type::String:
        out += '"';
        out += escape(_text);
        out += '"';
        break;
      case Type::Object:
        if (_members.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < _members.size(); ++i) {
            out += pad;
            out += '"';
            out += escape(_members[i].first);
            out += "\": ";
            _members[i].second.dumpTo(out, depth + 1);
            out += i + 1 < _members.size() ? ",\n" : "\n";
        }
        out += close_pad;
        out += '}';
        break;
      case Type::Array:
        if (_items.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < _items.size(); ++i) {
            out += pad;
            _items[i].dumpTo(out, depth + 1);
            out += i + 1 < _items.size() ? ",\n" : "\n";
        }
        out += close_pad;
        out += ']';
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out, 0);
    out += '\n';
    return out;
}

void
JsonValue::dumpCompactTo(std::string &out) const
{
    switch (_type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += _bool ? "true" : "false";
        break;
      case Type::Number:
        out += _text;
        break;
      case Type::String:
        out += '"';
        out += escape(_text);
        out += '"';
        break;
      case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < _members.size(); ++i) {
            if (i)
                out += ',';
            out += '"';
            out += escape(_members[i].first);
            out += "\":";
            _members[i].second.dumpCompactTo(out);
        }
        out += '}';
        break;
      case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < _items.size(); ++i) {
            if (i)
                out += ',';
            _items[i].dumpCompactTo(out);
        }
        out += ']';
        break;
    }
}

std::string
JsonValue::dumpCompact() const
{
    std::string out;
    dumpCompactTo(out);
    return out;
}

namespace {

/** Recursive-descent parser over a NUL-free text buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : _s(text), _err(err)
    {
    }

    bool
    document(JsonValue *out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (_pos != _s.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (_err && _err->empty())
            *_err = strfmt("JSON parse error at offset %zu: %s", _pos,
                           why.c_str());
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    bool
    literal(const char *word, JsonValue v, JsonValue *out)
    {
        std::size_t n = std::string(word).size();
        if (_s.compare(_pos, n, word) != 0)
            return fail("unrecognised token");
        _pos += n;
        *out = std::move(v);
        return true;
    }

    bool
    value(JsonValue *out)
    {
        if (_pos >= _s.size())
            return fail("unexpected end of input");
        switch (_s[_pos]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': return string(out);
          case 't': return literal("true", JsonValue::boolean(true), out);
          case 'f': return literal("false", JsonValue::boolean(false), out);
          case 'n': return literal("null", JsonValue::null(), out);
          default:  return number(out);
        }
    }

    bool
    object(JsonValue *out)
    {
        ++_pos; // '{'
        *out = JsonValue::object();
        skipWs();
        if (_pos < _s.size() && _s[_pos] == '}') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue key;
            if (_pos >= _s.size() || _s[_pos] != '"' || !string(&key))
                return fail("expected object key string");
            skipWs();
            if (_pos >= _s.size() || _s[_pos] != ':')
                return fail("expected ':' after object key");
            ++_pos;
            skipWs();
            JsonValue member;
            if (!value(&member))
                return false;
            out->set(key.asString(), std::move(member));
            skipWs();
            if (_pos >= _s.size())
                return fail("unterminated object");
            if (_s[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_s[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue *out)
    {
        ++_pos; // '['
        *out = JsonValue::array();
        skipWs();
        if (_pos < _s.size() && _s[_pos] == ']') {
            ++_pos;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue item;
            if (!value(&item))
                return false;
            out->push(std::move(item));
            skipWs();
            if (_pos >= _s.size())
                return fail("unterminated array");
            if (_s[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_s[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(JsonValue *out)
    {
        ++_pos; // opening quote
        std::string body;
        while (_pos < _s.size() && _s[_pos] != '"') {
            char c = _s[_pos];
            if (c != '\\') {
                body += c;
                ++_pos;
                continue;
            }
            if (_pos + 1 >= _s.size())
                return fail("unterminated escape");
            char e = _s[_pos + 1];
            _pos += 2;
            switch (e) {
              case '"':  body += '"'; break;
              case '\\': body += '\\'; break;
              case '/':  body += '/'; break;
              case 'b':  body += '\b'; break;
              case 'f':  body += '\f'; break;
              case 'n':  body += '\n'; break;
              case 'r':  body += '\r'; break;
              case 't':  body += '\t'; break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (unsigned i = 0; i < 4; ++i) {
                    char h = _s[_pos + i];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                _pos += 4;
                // Repro payloads are ASCII; anything wider gets a
                // lossy '?' rather than UTF-8 machinery.
                body += cp < 0x80 ? static_cast<char>(cp) : '?';
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
        if (_pos >= _s.size())
            return fail("unterminated string");
        ++_pos; // closing quote
        *out = JsonValue::str(std::move(body));
        return true;
    }

    bool
    number(JsonValue *out)
    {
        std::size_t start = _pos;
        if (_pos < _s.size() && (_s[_pos] == '-' || _s[_pos] == '+'))
            ++_pos;
        bool digits = false;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' || _s[_pos] == 'E' ||
                _s[_pos] == '-' || _s[_pos] == '+')) {
            digits = digits ||
                     std::isdigit(static_cast<unsigned char>(_s[_pos]));
            ++_pos;
        }
        if (!digits)
            return fail("malformed number");
        // Rebuild through the typed constructors; integer tokens (the
        // only kind the writer emits) round-trip exactly.
        std::string token = _s.substr(start, _pos - start);
        if (token.find_first_of(".eE") != std::string::npos)
            *out = JsonValue::number(
                std::strtod(token.c_str(), nullptr));
        else if (token[0] == '-')
            *out = JsonValue::i64(
                std::strtoll(token.c_str(), nullptr, 10));
        else
            *out = JsonValue::u64(
                std::strtoull(token.c_str(), nullptr, 10));
        return true;
    }

    const std::string &_s;
    std::string *_err;
    std::size_t _pos = 0;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *err)
{
    if (err)
        err->clear();
    Parser p(text, err);
    return p.document(out);
}

bool
writeFileDurable(const std::string &path, const std::string &content,
                 std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = "durable write of '" + path + "' failed: " + why;
        return false;
    };

    std::string dir = ".";
    std::string tmp;
    if (std::size_t slash = path.find_last_of('/');
        slash != std::string::npos) {
        dir = path.substr(0, slash + 1);
        tmp = dir + "." + path.substr(slash + 1);
    } else {
        tmp = "." + path;
    }
    tmp += strfmt(".tmp.%ld", static_cast<long>(::getpid()));

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return fail(std::string("open tmp: ") + std::strerror(errno));
    std::size_t off = 0;
    while (off < content.size()) {
        ssize_t n = ::write(fd, content.data() + off,
                            content.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int e = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            return fail(std::string("write: ") + std::strerror(e));
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int e = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        return fail(std::string("fsync: ") + std::strerror(e));
    }
    if (::close(fd) != 0)
        return fail(std::string("close: ") + std::strerror(errno));
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int e = errno;
        ::unlink(tmp.c_str());
        return fail(std::string("rename: ") + std::strerror(e));
    }
    // Make the rename itself durable.
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

} // namespace edge::triage
