/**
 * @file
 * JSON serialization of the simulator's run-facing structs —
 * MachineConfig, SimError, and the complete RunResult. Shared by
 * `.repro.json` capture (triage/repro), the supervised-campaign
 * worker protocol (a child process returns its RunResult over a pipe
 * as one JSON document), and the campaign journal (every completed
 * cell's result is a JSONL record).
 *
 * The RunResult round-trip is *lossless*: every counter, histogram
 * bucket, chaos event and metric reconstructs bit-identically, so a
 * report assembled from deserialized worker results is byte-identical
 * to the same report assembled from in-process runs.
 */

#ifndef EDGE_TRIAGE_RESULT_JSON_HH
#define EDGE_TRIAGE_RESULT_JSON_HH

#include <string>

#include "sim/simulator.hh"
#include "triage/jsonio.hh"

namespace edge::triage {

JsonValue configToJson(const core::MachineConfig &cfg);
void configFromJson(const JsonValue &o, core::MachineConfig *cfg);

JsonValue errorToJson(const chaos::SimError &e);
void errorFromJson(const JsonValue &o, chaos::SimError *e);

/** Serialize a complete RunResult (all metrics, counters,
 *  histograms, and the chaos-event schedule). */
JsonValue resultToJson(const sim::RunResult &r);

/** Rebuild a RunResult; false (with *err set) on a malformed
 *  document. */
bool resultFromJson(const JsonValue &o, sim::RunResult *r,
                    std::string *err);

} // namespace edge::triage

#endif // EDGE_TRIAGE_RESULT_JSON_HH
