#include "triage/minimize.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/run_pool.hh"

namespace edge::triage {

namespace {

using Ordinals = std::vector<std::uint64_t>;

/** Split `set` into `n` contiguous chunks (none empty; n <= size). */
std::vector<Ordinals>
partition(const Ordinals &set, std::size_t n)
{
    std::vector<Ordinals> chunks;
    chunks.reserve(n);
    std::size_t base = set.size() / n;
    std::size_t extra = set.size() % n;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t len = base + (i < extra ? 1 : 0);
        chunks.emplace_back(set.begin() + pos, set.begin() + pos + len);
        pos += len;
    }
    return chunks;
}

Ordinals
complementOf(const Ordinals &set, const Ordinals &chunk)
{
    Ordinals out;
    out.reserve(set.size() - chunk.size());
    std::set_difference(set.begin(), set.end(), chunk.begin(),
                        chunk.end(), std::back_inserter(out));
    return out;
}

} // namespace

MinimizeResult
minimizeOrdinals(Ordinals initial, const BatchTest &test,
                 const MinimizeOptions &opts)
{
    std::sort(initial.begin(), initial.end());
    initial.erase(std::unique(initial.begin(), initial.end()),
                  initial.end());

    MinimizeResult res;

    // Degenerate cases first: a failure that reproduces with every
    // fault masked does not depend on the schedule at all, and an
    // "initial" set that does not fail violates the ddmin
    // precondition (report it unconverged rather than looping).
    {
        std::vector<char> verdicts = test({Ordinals{}, initial});
        res.testsRun += 2;
        if (verdicts[0]) {
            res.converged = true;
            return res;
        }
        if (!verdicts[1]) {
            warn("minimize: the full schedule does not reproduce the "
                 "failure; nothing to minimize");
            res.ordinals = std::move(initial);
            return res;
        }
    }

    Ordinals cur = std::move(initial);
    std::size_t n = 2;
    while (cur.size() >= 2 && res.rounds < opts.maxRounds) {
        ++res.rounds;
        n = std::min(n, cur.size());
        std::vector<Ordinals> chunks = partition(cur, n);

        // One batch per round: all n subsets, then (for n > 2) all n
        // complements. Evaluated concurrently; the LOWEST-index
        // failing candidate wins so the reduction path is
        // deterministic at any thread count.
        std::vector<Ordinals> candidates = chunks;
        if (n > 2)
            for (const Ordinals &chunk : chunks)
                candidates.push_back(complementOf(cur, chunk));

        std::vector<char> verdicts = test(candidates);
        res.testsRun += candidates.size();

        std::size_t hit = candidates.size();
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (verdicts[i]) {
                hit = i;
                break;
            }
        }

        if (hit < n) {
            // Reduce to the failing subset; restart at binary split.
            cur = std::move(candidates[hit]);
            n = 2;
        } else if (hit < candidates.size()) {
            // Reduce to a failing complement; refine the granularity.
            cur = std::move(candidates[hit]);
            n = std::max<std::size_t>(n - 1, 2);
        } else if (n >= cur.size()) {
            // Every single-event removal makes the failure vanish:
            // the set is 1-minimal.
            res.converged = true;
            break;
        } else {
            n = std::min(n * 2, cur.size());
        }
    }
    if (cur.size() < 2)
        res.converged = true;
    res.ordinals = std::move(cur);
    return res;
}

MinimizeResult
minimizeSchedule(const std::vector<chaos::FaultEvent> &schedule,
                 const SubsetTest &test, const MinimizeOptions &opts)
{
    Ordinals initial;
    initial.reserve(schedule.size());
    for (const chaos::FaultEvent &e : schedule)
        initial.push_back(e.ordinal);

    ThreadPool pool(opts.threads == 0 ? ThreadPool::defaultThreads()
                                      : opts.threads);
    BatchTest batch = [&](const std::vector<Ordinals> &candidates) {
        return parallelIndex(pool, candidates.size(),
                             [&](std::size_t i) {
                                 return static_cast<char>(
                                     test(candidates[i]));
                             });
    };

    MinimizeResult res = minimizeOrdinals(initial, batch, opts);
    for (const chaos::FaultEvent &e : schedule)
        if (std::binary_search(res.ordinals.begin(), res.ordinals.end(),
                               e.ordinal))
            res.schedule.push_back(e);
    return res;
}

MinimizeResult
minimizeRepro(const ReproSpec &spec, const MinimizeOptions &opts)
{
    // One Simulator; every candidate run shares its reference
    // execution read-only (the expensive part of a run for the small
    // kernels triage deals with).
    sim::Simulator simulator(buildProgram(spec.program), spec.config);
    simulator.prepare();
    sim::RunPool pool(opts.threads);

    BatchTest batch = [&](const std::vector<Ordinals> &candidates) {
        std::vector<core::MachineConfig> configs;
        configs.reserve(candidates.size());
        for (const Ordinals &subset : candidates) {
            core::MachineConfig cfg = spec.config;
            cfg.chaos.filterSchedule = true;
            cfg.chaos.allowedEvents = subset; // already sorted
            configs.push_back(std::move(cfg));
        }
        std::vector<sim::RunResult> results =
            pool.runConfigs(simulator, configs, spec.maxCycles);
        std::vector<char> verdicts(results.size());
        for (std::size_t i = 0; i < results.size(); ++i)
            verdicts[i] =
                static_cast<char>(sameFailureKind(spec, results[i]));
        return verdicts;
    };

    Ordinals initial;
    initial.reserve(spec.schedule.size());
    for (const chaos::FaultEvent &e : spec.schedule)
        initial.push_back(e.ordinal);

    MinimizeResult res = minimizeOrdinals(initial, batch, opts);
    for (const chaos::FaultEvent &e : spec.schedule)
        if (std::binary_search(res.ordinals.begin(), res.ordinals.end(),
                               e.ordinal))
            res.schedule.push_back(e);
    return res;
}

ReproSpec
applySchedule(const ReproSpec &spec, const MinimizeResult &minimized)
{
    ReproSpec out = spec;
    out.config.chaos.filterSchedule = true;
    out.config.chaos.allowedEvents = minimized.ordinals;
    out.schedule = minimized.schedule;
    return out;
}

} // namespace edge::triage
