#include "triage/program_json.hh"

#include "common/strutil.hh"

namespace edge::triage {

namespace {

JsonValue
targetToJson(const isa::Target &t)
{
    JsonValue o = JsonValue::object();
    o.set("kind", JsonValue::str(
                      t.kind == isa::TargetKind::Operand ? "operand"
                                                         : "write"));
    o.set("index", JsonValue::u64(t.index));
    if (t.kind == isa::TargetKind::Operand)
        o.set("operand", JsonValue::u64(t.operand));
    return o;
}

bool
targetFromJson(const JsonValue &o, isa::Target *t, std::string *err)
{
    std::string kind = o.getString("kind");
    if (kind == "operand")
        t->kind = isa::TargetKind::Operand;
    else if (kind == "write")
        t->kind = isa::TargetKind::RegWrite;
    else {
        if (err)
            *err = "bad target kind '" + kind + "'";
        return false;
    }
    t->index = static_cast<std::uint16_t>(o.getU64("index"));
    t->operand = static_cast<std::uint8_t>(o.getU64("operand"));
    return true;
}

std::string
bytesToHex(const std::vector<std::uint8_t> &bytes)
{
    static const char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out += kHex[b >> 4];
        out += kHex[b & 0xf];
    }
    return out;
}

bool
hexToBytes(const std::string &hex, std::vector<std::uint8_t> *bytes,
           std::string *err)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    if (hex.size() % 2 != 0) {
        if (err)
            *err = "odd-length hex string";
        return false;
    }
    bytes->clear();
    bytes->reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            if (err)
                *err = "non-hex byte in memory image";
            return false;
        }
        bytes->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return true;
}

} // namespace

JsonValue
programToJson(const isa::Program &program)
{
    JsonValue root = JsonValue::object();
    root.set("name", JsonValue::str(program.name()));
    root.set("entry", JsonValue::u64(program.entry()));

    JsonValue regs = JsonValue::array();
    for (Word w : program.initRegs())
        regs.push(JsonValue::u64(w));
    root.set("init_regs", std::move(regs));

    JsonValue image = JsonValue::array();
    for (const isa::MemInit &chunk : program.memImage()) {
        JsonValue c = JsonValue::object();
        c.set("base", JsonValue::u64(chunk.base));
        c.set("bytes_hex", JsonValue::str(bytesToHex(chunk.bytes)));
        image.push(std::move(c));
    }
    root.set("mem_image", std::move(image));

    JsonValue blocks = JsonValue::array();
    for (std::size_t i = 0; i < program.numBlocks(); ++i) {
        const isa::Block &b = program.block(static_cast<BlockId>(i));
        JsonValue bo = JsonValue::object();
        bo.set("name", JsonValue::str(b.name()));

        JsonValue reads = JsonValue::array();
        for (const isa::RegRead &rd : b.reads()) {
            JsonValue ro = JsonValue::object();
            ro.set("reg", JsonValue::u64(rd.reg));
            JsonValue tgts = JsonValue::array();
            for (const isa::Target &t : rd.targets)
                if (t.valid())
                    tgts.push(targetToJson(t));
            ro.set("targets", std::move(tgts));
            reads.push(std::move(ro));
        }
        bo.set("reads", std::move(reads));

        JsonValue insts = JsonValue::array();
        for (const isa::Instruction &in : b.insts()) {
            JsonValue io = JsonValue::object();
            io.set("op", JsonValue::str(isa::opName(in.op)));
            if (isa::opInfo(in.op).hasImm)
                io.set("imm", JsonValue::i64(in.imm));
            if (isa::isMem(in.op))
                io.set("lsid", JsonValue::u64(in.lsid));
            JsonValue tgts = JsonValue::array();
            for (const isa::Target &t : in.targets)
                if (t.valid())
                    tgts.push(targetToJson(t));
            io.set("targets", std::move(tgts));
            insts.push(std::move(io));
        }
        bo.set("insts", std::move(insts));

        JsonValue writes = JsonValue::array();
        for (const isa::RegWrite &w : b.writes())
            writes.push(JsonValue::u64(w.reg));
        bo.set("writes", std::move(writes));

        JsonValue exits = JsonValue::array();
        for (BlockId e : b.exits())
            exits.push(JsonValue::u64(e));
        bo.set("exits", std::move(exits));

        blocks.push(std::move(bo));
    }
    root.set("blocks", std::move(blocks));
    return root;
}

bool
programFromJson(const JsonValue &root, isa::Program *program,
                std::string *err)
{
    if (!root.isObject()) {
        if (err)
            *err = "embedded program is not an object";
        return false;
    }
    isa::Program prog(root.getString("name", "embedded"));

    const JsonValue *blocks = root.get("blocks");
    if (!blocks || !blocks->isArray()) {
        if (err)
            *err = "embedded program has no blocks array";
        return false;
    }
    for (const JsonValue &bo : blocks->items()) {
        isa::Block b(bo.getString("name"));

        if (const JsonValue *reads = bo.get("reads")) {
            for (const JsonValue &ro : reads->items()) {
                isa::RegRead rd;
                rd.reg = static_cast<std::uint8_t>(ro.getU64("reg"));
                if (const JsonValue *tgts = ro.get("targets")) {
                    std::size_t k = 0;
                    for (const JsonValue &to : tgts->items()) {
                        if (k >= isa::kMaxTargets) {
                            if (err)
                                *err = "too many read targets";
                            return false;
                        }
                        if (!targetFromJson(to, &rd.targets[k++], err))
                            return false;
                    }
                }
                b.reads().push_back(rd);
            }
        }

        if (const JsonValue *insts = bo.get("insts")) {
            for (const JsonValue &io : insts->items()) {
                isa::Instruction in;
                std::string op = io.getString("op");
                if (!isa::opcodeByName(op.c_str(), &in.op)) {
                    if (err)
                        *err = "unknown opcode '" + op + "'";
                    return false;
                }
                if (const JsonValue *imm = io.get("imm"))
                    in.imm = imm->asI64();
                in.lsid = static_cast<Lsid>(io.getU64("lsid"));
                if (const JsonValue *tgts = io.get("targets")) {
                    std::size_t k = 0;
                    for (const JsonValue &to : tgts->items()) {
                        if (k >= isa::kMaxTargets) {
                            if (err)
                                *err = "too many targets";
                            return false;
                        }
                        if (!targetFromJson(to, &in.targets[k++], err))
                            return false;
                    }
                }
                b.insts().push_back(in);
            }
        }

        if (const JsonValue *writes = bo.get("writes")) {
            for (const JsonValue &w : writes->items()) {
                isa::RegWrite wr;
                wr.reg = static_cast<std::uint8_t>(w.asU64());
                b.writes().push_back(wr);
            }
        }

        if (const JsonValue *exits = bo.get("exits"))
            for (const JsonValue &e : exits->items())
                b.exits().push_back(static_cast<BlockId>(e.asU64()));

        prog.addBlock(std::move(b));
    }

    prog.setEntry(static_cast<BlockId>(root.getU64("entry")));

    if (const JsonValue *regs = root.get("init_regs")) {
        std::size_t i = 0;
        for (const JsonValue &r : regs->items()) {
            if (i >= prog.initRegs().size())
                break;
            prog.initRegs()[i++] = r.asU64();
        }
    }

    if (const JsonValue *image = root.get("mem_image")) {
        for (const JsonValue &c : image->items()) {
            isa::MemInit chunk;
            chunk.base = c.getU64("base");
            if (!hexToBytes(c.getString("bytes_hex"), &chunk.bytes, err))
                return false;
            prog.memImage().push_back(std::move(chunk));
        }
    }

    *program = std::move(prog);
    return true;
}

} // namespace edge::triage
