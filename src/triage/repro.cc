#include "triage/repro.hh"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "lsq/lsq.hh"
#include "predictor/dependence.hh"
#include "triage/program_json.hh"
#include "triage/result_json.hh"

namespace edge::triage {

namespace {

/** FNV-1a 64-bit, the classic offset basis / prime. */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    }

    void str(const std::string &s) { bytes(s.data(), s.size()); }
    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
};

/** Filename-safe slug: [a-z0-9-] only. */
std::string
slug(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '-')
            out += '-';
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "x" : out;
}

} // namespace

std::uint64_t
programHash(const isa::Program &program)
{
    Fnv f;
    f.str(program.name());
    f.str(program.disassemble());
    for (Word w : program.initRegs())
        f.u64(w);
    for (const isa::MemInit &chunk : program.memImage()) {
        f.u64(chunk.base);
        f.bytes(chunk.bytes.data(), chunk.bytes.size());
    }
    return f.h;
}

ProgramRef
embeddedRef(std::string label, isa::Program program,
            std::uint64_t generator_seed)
{
    ProgramRef ref;
    ref.kernel = std::move(label);
    ref.params.iterations = 0;
    ref.params.seed = generator_seed;
    ref.hasEmbedded = true;
    ref.embedded = std::move(program);
    return ref;
}

isa::Program
buildProgram(const ProgramRef &ref)
{
    if (ref.hasEmbedded)
        return ref.embedded;
    return wl::build(ref.kernel, ref.params);
}

JsonValue
toJson(const ReproSpec &spec)
{
    JsonValue root = JsonValue::object();
    root.set("format", JsonValue::str("edgesim-repro"));
    root.set("version", JsonValue::u64(1));

    JsonValue prog = JsonValue::object();
    prog.set("kernel", JsonValue::str(spec.program.kernel));
    prog.set("iterations", JsonValue::u64(spec.program.params.iterations));
    prog.set("seed", JsonValue::u64(spec.program.params.seed));
    prog.set("hash", JsonValue::u64(spec.programHash));
    if (spec.program.hasEmbedded)
        prog.set("embedded", programToJson(spec.program.embedded));
    root.set("program", std::move(prog));

    root.set("config", configToJson(spec.config));
    root.set("max_cycles", JsonValue::u64(spec.maxCycles));
    if (!spec.build.empty())
        root.set("build", JsonValue::str(spec.build));

    JsonValue failure = JsonValue::object();
    failure.set("error", errorToJson(spec.error));
    failure.set("halted", JsonValue::boolean(spec.halted));
    failure.set("arch_match", JsonValue::boolean(spec.archMatch));
    failure.set("retries", JsonValue::u64(spec.retries));
    root.set("failure", std::move(failure));

    JsonValue sched = JsonValue::array();
    for (const chaos::FaultEvent &e : spec.schedule) {
        JsonValue ev = JsonValue::object();
        ev.set("ordinal", JsonValue::u64(e.ordinal));
        ev.set("site", JsonValue::str(chaos::faultSiteName(e.site)));
        ev.set("magnitude", JsonValue::u64(e.magnitude));
        sched.push(std::move(ev));
    }
    root.set("schedule", std::move(sched));
    return root;
}

bool
fromJson(const JsonValue &root, ReproSpec *spec, std::string *err)
{
    if (!root.isObject() ||
        root.getString("format") != "edgesim-repro") {
        if (err)
            *err = "not an edgesim-repro document";
        return false;
    }
    const JsonValue *prog = root.get("program");
    if (!prog || !prog->isObject() ||
        prog->getString("kernel").empty()) {
        if (err)
            *err = "missing program.kernel";
        return false;
    }
    spec->program.kernel = prog->getString("kernel");
    spec->program.params.iterations =
        prog->getU64("iterations", spec->program.params.iterations);
    spec->program.params.seed =
        prog->getU64("seed", spec->program.params.seed);
    spec->programHash = prog->getU64("hash");
    spec->program.hasEmbedded = false;
    if (const JsonValue *embedded = prog->get("embedded")) {
        if (!programFromJson(*embedded, &spec->program.embedded, err))
            return false;
        spec->program.hasEmbedded = true;
    }

    if (const JsonValue *cfg = root.get("config"))
        configFromJson(*cfg, &spec->config);
    spec->maxCycles = root.getU64("max_cycles", spec->maxCycles);
    spec->build = root.getString("build");

    if (const JsonValue *failure = root.get("failure")) {
        if (const JsonValue *e = failure->get("error"))
            errorFromJson(*e, &spec->error);
        spec->halted = failure->getBool("halted");
        spec->archMatch = failure->getBool("arch_match");
        spec->retries = static_cast<unsigned>(failure->getU64("retries"));
    }

    spec->schedule.clear();
    if (const JsonValue *sched = root.get("schedule")) {
        for (const JsonValue &ev : sched->items()) {
            chaos::FaultEvent e;
            e.ordinal = ev.getU64("ordinal");
            e.site = chaos::faultSiteByName(
                ev.getString("site", "hop-delay"));
            e.magnitude = ev.getU64("magnitude");
            spec->schedule.push_back(e);
        }
    }
    return true;
}

bool
save(const ReproSpec &spec, const std::string &path, std::string *err)
{
    // Durable write: a repro capture is usually the only artifact of
    // a crash, so it must never itself be lost to a half-write when
    // the capturing process (or host) dies mid-save.
    return writeFileDurable(path, toJson(spec).dump(), err);
}

bool
load(const std::string &path, ReproSpec *spec, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "repro '" + path + "': cannot open";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) {
        if (err)
            *err = "repro '" + path +
                   "': file is empty (truncated capture?)";
        return false;
    }
    JsonValue root;
    std::string perr;
    if (!JsonValue::parse(text, &root, &perr)) {
        if (err)
            *err = "repro '" + path + "': malformed JSON (" + perr +
                   ") — the file is truncated or not a repro capture";
        return false;
    }
    std::string ferr;
    if (!fromJson(root, spec, &ferr)) {
        if (err)
            *err = "repro '" + path + "': " + ferr;
        return false;
    }
    return true;
}

ReproSpec
captureFromResult(const ProgramRef &program,
                  const core::MachineConfig &config, Cycle max_cycles,
                  const sim::RunResult &result)
{
    ReproSpec spec;
    spec.program = program;
    spec.programHash = programHash(buildProgram(program));
    spec.config = config;
    // Bake the effective seeds so the spec replays standalone: the
    // runtime derives chaos.seed from rngSeed when left at 0.
    spec.config.rngSeed = result.rngSeed;
    if (spec.config.chaos.enabled())
        spec.config.chaos.seed = result.chaosSeed;
    spec.maxCycles = max_cycles;
    spec.build = buildInfoLine();
    spec.error = result.error;
    spec.halted = result.halted;
    spec.archMatch = result.archMatch;
    spec.retries = result.retries;
    spec.schedule = result.chaosEvents;
    return spec;
}

std::string
captureToFile(const ReproSpec &spec, const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("repro: cannot create directory '%s': %s", dir.c_str(),
             ec.message().c_str());
        return "";
    }
    std::string kind = chaos::reasonName(spec.error.reason);
    if (spec.error.ok())
        kind = spec.archMatch ? "halt" : "divergence";
    std::string name = strfmt(
        "%s-%s-%s-seed%llu.repro.json", slug(spec.program.kernel).c_str(),
        slug(pred::depPolicyName(spec.config.policy)).c_str(),
        slug(kind + (spec.error.invariant.empty()
                         ? ""
                         : "-" + spec.error.invariant))
            .c_str(),
        static_cast<unsigned long long>(spec.config.rngSeed));
    std::string path = (std::filesystem::path(dir) / name).string();
    std::string err;
    if (!save(spec, path, &err)) {
        warn("repro: %s", err.c_str());
        return "";
    }
    return path;
}

std::size_t
captureSweepFailures(sim::ChaosSweepReport &report,
                     const ProgramRef &program, Cycle max_cycles,
                     const std::string &dir)
{
    std::size_t written = 0;
    for (sim::ChaosSweepOutcome &o : report.runs) {
        if (o.converged())
            continue;
        ReproSpec spec = captureFromResult(program, o.machine,
                                           max_cycles, o.result);
        o.reproPath = captureToFile(spec, dir);
        if (!o.reproPath.empty())
            ++written;
    }
    return written;
}

sim::RunResult
replay(const ReproSpec &spec)
{
    isa::Program prog = buildProgram(spec.program);
    if (spec.program.hasEmbedded) {
        // Loaded from disk, so check before the Simulator's fatal-on-
        // invalid constructor produces an opaque message.
        std::vector<isa::ValidationIssue> issues = prog.validateAll();
        fatal_if(!issues.empty(),
                 "repro: embedded program is invalid: %s",
                 issues.front().str().c_str());
    }
    if (!spec.build.empty()) {
        std::string mismatch = buildMismatch(spec.build);
        if (!mismatch.empty())
            warn("repro: captured on a different build (%s) — the "
                 "replay may legitimately not reproduce",
                 mismatch.c_str());
    }
    std::uint64_t hash = programHash(prog);
    if (spec.programHash != 0 && hash != spec.programHash)
        warn("repro: program hash mismatch (spec %016llx, built "
             "%016llx) — the workload generator changed; the replay "
             "may not reproduce the failure",
             static_cast<unsigned long long>(spec.programHash),
             static_cast<unsigned long long>(hash));
    sim::Simulator sim(std::move(prog), spec.config);
    return sim.run(spec.config, spec.maxCycles);
}

bool
sameSignature(const ReproSpec &spec, const sim::RunResult &result)
{
    return spec.error.reason == result.error.reason &&
           spec.error.invariant == result.error.invariant &&
           spec.error.cycle == result.error.cycle &&
           spec.halted == result.halted &&
           spec.archMatch == result.archMatch;
}

bool
sameFailureKind(const ReproSpec &spec, const sim::RunResult &result)
{
    if (spec.error.reason != chaos::SimError::Reason::None)
        return spec.error.reason == result.error.reason &&
               spec.error.invariant == result.error.invariant;
    // Divergence failures carry no SimError: the signature is the
    // halted/archMatch verdict itself.
    return !result.error.ok()
               ? false
               : spec.halted == result.halted &&
                     spec.archMatch == result.archMatch;
}

std::string
signatureLine(const ReproSpec &spec)
{
    std::string out = strfmt(
        "%s kernel=%s seed=%llu cycle=%llu halted=%d archMatch=%d",
        chaos::reasonName(spec.error.reason),
        spec.program.kernel.c_str(),
        static_cast<unsigned long long>(spec.config.rngSeed),
        static_cast<unsigned long long>(spec.error.cycle), spec.halted,
        spec.archMatch);
    if (!spec.error.invariant.empty())
        out += " invariant=" + spec.error.invariant;
    return out;
}

} // namespace edge::triage
