#include "triage/repro.hh"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "lsq/lsq.hh"
#include "predictor/dependence.hh"
#include "triage/program_json.hh"

namespace edge::triage {

namespace {

/** FNV-1a 64-bit, the classic offset basis / prime. */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    }

    void str(const std::string &s) { bytes(s.data(), s.size()); }
    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
};

pred::DepPolicy
depPolicyByName(const std::string &name)
{
    for (pred::DepPolicy p :
         {pred::DepPolicy::Blind, pred::DepPolicy::Conservative,
          pred::DepPolicy::StoreSets, pred::DepPolicy::Oracle}) {
        if (name == pred::depPolicyName(p))
            return p;
    }
    fatal("repro: unknown dependence policy '%s'", name.c_str());
}

lsq::Recovery
recoveryByName(const std::string &name)
{
    for (lsq::Recovery r : {lsq::Recovery::Flush, lsq::Recovery::Dsre}) {
        if (name == lsq::recoveryName(r))
            return r;
    }
    fatal("repro: unknown recovery mechanism '%s'", name.c_str());
}

JsonValue
coreToJson(const core::CoreParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("rows", JsonValue::u64(p.rows));
    o.set("cols", JsonValue::u64(p.cols));
    o.set("slots_per_node", JsonValue::u64(p.slotsPerNode));
    o.set("num_frames", JsonValue::u64(p.numFrames));
    o.set("hop_latency", JsonValue::u64(p.hopLatency));
    o.set("fetch_width", JsonValue::u64(p.fetchWidth));
    o.set("reg_read_latency", JsonValue::u64(p.regReadLatency));
    o.set("reg_ports_per_bank", JsonValue::u64(p.regPortsPerBank));
    o.set("commit_ports_per_node", JsonValue::u64(p.commitPortsPerNode));
    o.set("commit_wave_uses_alu", JsonValue::boolean(p.commitWaveUsesAlu));
    o.set("squash_identical_values",
          JsonValue::boolean(p.squashIdenticalValues));
    o.set("lat_int_alu", JsonValue::u64(p.latIntAlu));
    o.set("lat_int_mul", JsonValue::u64(p.latIntMul));
    o.set("lat_int_div", JsonValue::u64(p.latIntDiv));
    o.set("lat_fp_alu", JsonValue::u64(p.latFpAlu));
    o.set("lat_fp_mul", JsonValue::u64(p.latFpMul));
    o.set("lat_fp_div", JsonValue::u64(p.latFpDiv));
    o.set("lat_ctrl", JsonValue::u64(p.latCtrl));
    o.set("lat_mem_addr", JsonValue::u64(p.latMemAddr));
    o.set("watchdog_cycles", JsonValue::u64(p.watchdogCycles));
    o.set("livelock_interval", JsonValue::u64(p.livelockInterval));
    o.set("livelock_repeats", JsonValue::u64(p.livelockRepeats));
    return o;
}

void
coreFromJson(const JsonValue &o, core::CoreParams *p)
{
    p->rows = static_cast<unsigned>(o.getU64("rows", p->rows));
    p->cols = static_cast<unsigned>(o.getU64("cols", p->cols));
    p->slotsPerNode = static_cast<unsigned>(
        o.getU64("slots_per_node", p->slotsPerNode));
    p->numFrames = static_cast<unsigned>(
        o.getU64("num_frames", p->numFrames));
    p->hopLatency = static_cast<unsigned>(
        o.getU64("hop_latency", p->hopLatency));
    p->fetchWidth = static_cast<unsigned>(
        o.getU64("fetch_width", p->fetchWidth));
    p->regReadLatency = static_cast<unsigned>(
        o.getU64("reg_read_latency", p->regReadLatency));
    p->regPortsPerBank = static_cast<unsigned>(
        o.getU64("reg_ports_per_bank", p->regPortsPerBank));
    p->commitPortsPerNode = static_cast<unsigned>(
        o.getU64("commit_ports_per_node", p->commitPortsPerNode));
    p->commitWaveUsesAlu =
        o.getBool("commit_wave_uses_alu", p->commitWaveUsesAlu);
    p->squashIdenticalValues =
        o.getBool("squash_identical_values", p->squashIdenticalValues);
    p->latIntAlu = static_cast<unsigned>(
        o.getU64("lat_int_alu", p->latIntAlu));
    p->latIntMul = static_cast<unsigned>(
        o.getU64("lat_int_mul", p->latIntMul));
    p->latIntDiv = static_cast<unsigned>(
        o.getU64("lat_int_div", p->latIntDiv));
    p->latFpAlu = static_cast<unsigned>(
        o.getU64("lat_fp_alu", p->latFpAlu));
    p->latFpMul = static_cast<unsigned>(
        o.getU64("lat_fp_mul", p->latFpMul));
    p->latFpDiv = static_cast<unsigned>(
        o.getU64("lat_fp_div", p->latFpDiv));
    p->latCtrl = static_cast<unsigned>(
        o.getU64("lat_ctrl", p->latCtrl));
    p->latMemAddr = static_cast<unsigned>(
        o.getU64("lat_mem_addr", p->latMemAddr));
    p->watchdogCycles = o.getU64("watchdog_cycles", p->watchdogCycles);
    p->livelockInterval =
        o.getU64("livelock_interval", p->livelockInterval);
    p->livelockRepeats = static_cast<unsigned>(
        o.getU64("livelock_repeats", p->livelockRepeats));
}

JsonValue
memToJson(const mem::HierarchyParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("num_dbanks", JsonValue::u64(p.numDBanks));
    o.set("l1d_size_bytes", JsonValue::u64(p.l1dSizeBytes));
    o.set("l1d_assoc", JsonValue::u64(p.l1dAssoc));
    o.set("l1d_hit_latency", JsonValue::u64(p.l1dHitLatency));
    o.set("l1d_mshrs", JsonValue::u64(p.l1dMshrs));
    o.set("l1i_size_bytes", JsonValue::u64(p.l1iSizeBytes));
    o.set("l1i_assoc", JsonValue::u64(p.l1iAssoc));
    o.set("l1i_hit_latency", JsonValue::u64(p.l1iHitLatency));
    o.set("l2_size_bytes", JsonValue::u64(p.l2SizeBytes));
    o.set("l2_assoc", JsonValue::u64(p.l2Assoc));
    o.set("l2_hit_latency", JsonValue::u64(p.l2HitLatency));
    o.set("l2_mshrs", JsonValue::u64(p.l2Mshrs));
    o.set("l2_banks", JsonValue::u64(p.l2Banks));
    o.set("line_bytes", JsonValue::u64(p.lineBytes));
    o.set("dram_latency", JsonValue::u64(p.dramLatency));
    o.set("dram_cycles_per_line", JsonValue::u64(p.dramCyclesPerLine));
    return o;
}

void
memFromJson(const JsonValue &o, mem::HierarchyParams *p)
{
    p->numDBanks = static_cast<unsigned>(
        o.getU64("num_dbanks", p->numDBanks));
    p->l1dSizeBytes = o.getU64("l1d_size_bytes", p->l1dSizeBytes);
    p->l1dAssoc = static_cast<unsigned>(
        o.getU64("l1d_assoc", p->l1dAssoc));
    p->l1dHitLatency = static_cast<unsigned>(
        o.getU64("l1d_hit_latency", p->l1dHitLatency));
    p->l1dMshrs = static_cast<unsigned>(
        o.getU64("l1d_mshrs", p->l1dMshrs));
    p->l1iSizeBytes = o.getU64("l1i_size_bytes", p->l1iSizeBytes);
    p->l1iAssoc = static_cast<unsigned>(
        o.getU64("l1i_assoc", p->l1iAssoc));
    p->l1iHitLatency = static_cast<unsigned>(
        o.getU64("l1i_hit_latency", p->l1iHitLatency));
    p->l2SizeBytes = o.getU64("l2_size_bytes", p->l2SizeBytes);
    p->l2Assoc = static_cast<unsigned>(o.getU64("l2_assoc", p->l2Assoc));
    p->l2HitLatency = static_cast<unsigned>(
        o.getU64("l2_hit_latency", p->l2HitLatency));
    p->l2Mshrs = static_cast<unsigned>(o.getU64("l2_mshrs", p->l2Mshrs));
    p->l2Banks = static_cast<unsigned>(o.getU64("l2_banks", p->l2Banks));
    p->lineBytes = static_cast<unsigned>(
        o.getU64("line_bytes", p->lineBytes));
    p->dramLatency = static_cast<unsigned>(
        o.getU64("dram_latency", p->dramLatency));
    p->dramCyclesPerLine = static_cast<unsigned>(
        o.getU64("dram_cycles_per_line", p->dramCyclesPerLine));
}

JsonValue
lsqToJson(const lsq::LsqParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("recovery", JsonValue::str(lsq::recoveryName(p.recovery)));
    o.set("lsq_latency", JsonValue::u64(p.lsqLatency));
    o.set("addr_based_violations",
          JsonValue::boolean(p.addrBasedViolations));
    o.set("max_resends_per_load", JsonValue::u64(p.maxResendsPerLoad));
    o.set("charge_upgrade_ports",
          JsonValue::boolean(p.chargeUpgradePorts));
    o.set("value_predict_misses",
          JsonValue::boolean(p.valuePredictMisses));
    o.set("vp_latency_threshold", JsonValue::u64(p.vpLatencyThreshold));
    o.set("vp_table_size", JsonValue::u64(p.vpTableSize));
    return o;
}

void
lsqFromJson(const JsonValue &o, lsq::LsqParams *p)
{
    p->recovery = recoveryByName(
        o.getString("recovery", lsq::recoveryName(p->recovery)));
    p->lsqLatency = static_cast<unsigned>(
        o.getU64("lsq_latency", p->lsqLatency));
    p->addrBasedViolations =
        o.getBool("addr_based_violations", p->addrBasedViolations);
    p->maxResendsPerLoad = static_cast<unsigned>(
        o.getU64("max_resends_per_load", p->maxResendsPerLoad));
    p->chargeUpgradePorts =
        o.getBool("charge_upgrade_ports", p->chargeUpgradePorts);
    p->valuePredictMisses =
        o.getBool("value_predict_misses", p->valuePredictMisses);
    p->vpLatencyThreshold = static_cast<unsigned>(
        o.getU64("vp_latency_threshold", p->vpLatencyThreshold));
    p->vpTableSize = o.getU64("vp_table_size", p->vpTableSize);
}

JsonValue
chaosToJson(const chaos::ChaosParams &p)
{
    JsonValue o = JsonValue::object();
    o.set("seed", JsonValue::u64(p.seed));
    o.set("profile", JsonValue::str(chaos::profileName(p.profile)));
    o.set("hop_delay_permille", JsonValue::u64(p.hopDelayPermille));
    o.set("hop_delay_max", JsonValue::u64(p.hopDelayMax));
    o.set("duplicate_permille", JsonValue::u64(p.duplicatePermille));
    o.set("duplicate_skew_max", JsonValue::u64(p.duplicateSkewMax));
    o.set("mem_jitter_permille", JsonValue::u64(p.memJitterPermille));
    o.set("mem_jitter_max", JsonValue::u64(p.memJitterMax));
    o.set("store_delay_permille", JsonValue::u64(p.storeDelayPermille));
    o.set("store_delay_max", JsonValue::u64(p.storeDelayMax));
    o.set("spurious_permille", JsonValue::u64(p.spuriousPermille));
    o.set("mutation", JsonValue::str(chaos::mutationName(p.mutation)));
    o.set("mutation_node", JsonValue::u64(p.mutationNode));
    o.set("filter_schedule", JsonValue::boolean(p.filterSchedule));
    JsonValue allowed = JsonValue::array();
    for (std::uint64_t e : p.allowedEvents)
        allowed.push(JsonValue::u64(e));
    o.set("allowed_events", std::move(allowed));
    return o;
}

void
chaosFromJson(const JsonValue &o, chaos::ChaosParams *p)
{
    p->seed = o.getU64("seed", p->seed);
    p->profile = chaos::ChaosParams::profileByName(
        o.getString("profile", chaos::profileName(p->profile)));
    p->hopDelayPermille = static_cast<unsigned>(
        o.getU64("hop_delay_permille", p->hopDelayPermille));
    p->hopDelayMax = static_cast<unsigned>(
        o.getU64("hop_delay_max", p->hopDelayMax));
    p->duplicatePermille = static_cast<unsigned>(
        o.getU64("duplicate_permille", p->duplicatePermille));
    p->duplicateSkewMax = static_cast<unsigned>(
        o.getU64("duplicate_skew_max", p->duplicateSkewMax));
    p->memJitterPermille = static_cast<unsigned>(
        o.getU64("mem_jitter_permille", p->memJitterPermille));
    p->memJitterMax = static_cast<unsigned>(
        o.getU64("mem_jitter_max", p->memJitterMax));
    p->storeDelayPermille = static_cast<unsigned>(
        o.getU64("store_delay_permille", p->storeDelayPermille));
    p->storeDelayMax = static_cast<unsigned>(
        o.getU64("store_delay_max", p->storeDelayMax));
    p->spuriousPermille = static_cast<unsigned>(
        o.getU64("spurious_permille", p->spuriousPermille));
    p->mutation = chaos::mutationByName(
        o.getString("mutation", chaos::mutationName(p->mutation)));
    p->mutationNode = static_cast<unsigned>(
        o.getU64("mutation_node", p->mutationNode));
    p->filterSchedule = o.getBool("filter_schedule", p->filterSchedule);
    p->allowedEvents.clear();
    if (const JsonValue *allowed = o.get("allowed_events"))
        for (const JsonValue &e : allowed->items())
            p->allowedEvents.push_back(e.asU64());
}

JsonValue
configToJson(const core::MachineConfig &cfg)
{
    JsonValue o = JsonValue::object();
    o.set("policy", JsonValue::str(pred::depPolicyName(cfg.policy)));
    o.set("check_committed_path",
          JsonValue::boolean(cfg.checkCommittedPath));
    o.set("rng_seed", JsonValue::u64(cfg.rngSeed));
    o.set("check_invariants", JsonValue::boolean(cfg.checkInvariants));
    o.set("trace_depth", JsonValue::u64(cfg.traceDepth));
    o.set("wall_deadline_ms", JsonValue::u64(cfg.wallDeadlineMs));
    o.set("core", coreToJson(cfg.core));
    o.set("mem", memToJson(cfg.mem));
    o.set("lsq", lsqToJson(cfg.lsq));
    JsonValue nbp = JsonValue::object();
    nbp.set("table_size", JsonValue::u64(cfg.nbp.tableSize));
    nbp.set("history_bits", JsonValue::u64(cfg.nbp.historyBits));
    o.set("nbp", std::move(nbp));
    o.set("chaos", chaosToJson(cfg.chaos));
    return o;
}

void
configFromJson(const JsonValue &o, core::MachineConfig *cfg)
{
    cfg->policy = depPolicyByName(
        o.getString("policy", pred::depPolicyName(cfg->policy)));
    cfg->checkCommittedPath =
        o.getBool("check_committed_path", cfg->checkCommittedPath);
    cfg->rngSeed = o.getU64("rng_seed", cfg->rngSeed);
    cfg->checkInvariants =
        o.getBool("check_invariants", cfg->checkInvariants);
    cfg->traceDepth = o.getU64("trace_depth", cfg->traceDepth);
    cfg->wallDeadlineMs = o.getU64("wall_deadline_ms", cfg->wallDeadlineMs);
    if (const JsonValue *core_o = o.get("core"))
        coreFromJson(*core_o, &cfg->core);
    if (const JsonValue *mem_o = o.get("mem"))
        memFromJson(*mem_o, &cfg->mem);
    if (const JsonValue *lsq_o = o.get("lsq"))
        lsqFromJson(*lsq_o, &cfg->lsq);
    if (const JsonValue *nbp_o = o.get("nbp")) {
        cfg->nbp.tableSize = nbp_o->getU64("table_size",
                                           cfg->nbp.tableSize);
        cfg->nbp.historyBits = static_cast<unsigned>(
            nbp_o->getU64("history_bits", cfg->nbp.historyBits));
    }
    if (const JsonValue *chaos_o = o.get("chaos"))
        chaosFromJson(*chaos_o, &cfg->chaos);
}

JsonValue
errorToJson(const chaos::SimError &e)
{
    JsonValue o = JsonValue::object();
    o.set("reason", JsonValue::str(chaos::reasonName(e.reason)));
    o.set("invariant", JsonValue::str(e.invariant));
    o.set("message", JsonValue::str(e.message));
    o.set("cycle", JsonValue::u64(e.cycle));
    o.set("seq", JsonValue::u64(e.seq));
    o.set("node", JsonValue::u64(e.node));
    JsonValue trace = JsonValue::array();
    for (const std::string &line : e.trace)
        trace.push(JsonValue::str(line));
    o.set("trace", std::move(trace));
    return o;
}

void
errorFromJson(const JsonValue &o, chaos::SimError *e)
{
    e->reason = chaos::reasonByName(
        o.getString("reason", chaos::reasonName(e->reason)));
    e->invariant = o.getString("invariant");
    e->message = o.getString("message");
    e->cycle = o.getU64("cycle");
    e->seq = o.getU64("seq");
    e->node = static_cast<std::uint32_t>(o.getU64("node"));
    e->trace.clear();
    if (const JsonValue *trace = o.get("trace"))
        for (const JsonValue &line : trace->items())
            e->trace.push_back(line.asString());
}

/** Filename-safe slug: [a-z0-9-] only. */
std::string
slug(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '-')
            out += '-';
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "x" : out;
}

} // namespace

std::uint64_t
programHash(const isa::Program &program)
{
    Fnv f;
    f.str(program.name());
    f.str(program.disassemble());
    for (Word w : program.initRegs())
        f.u64(w);
    for (const isa::MemInit &chunk : program.memImage()) {
        f.u64(chunk.base);
        f.bytes(chunk.bytes.data(), chunk.bytes.size());
    }
    return f.h;
}

ProgramRef
embeddedRef(std::string label, isa::Program program,
            std::uint64_t generator_seed)
{
    ProgramRef ref;
    ref.kernel = std::move(label);
    ref.params.iterations = 0;
    ref.params.seed = generator_seed;
    ref.hasEmbedded = true;
    ref.embedded = std::move(program);
    return ref;
}

isa::Program
buildProgram(const ProgramRef &ref)
{
    if (ref.hasEmbedded)
        return ref.embedded;
    return wl::build(ref.kernel, ref.params);
}

JsonValue
toJson(const ReproSpec &spec)
{
    JsonValue root = JsonValue::object();
    root.set("format", JsonValue::str("edgesim-repro"));
    root.set("version", JsonValue::u64(1));

    JsonValue prog = JsonValue::object();
    prog.set("kernel", JsonValue::str(spec.program.kernel));
    prog.set("iterations", JsonValue::u64(spec.program.params.iterations));
    prog.set("seed", JsonValue::u64(spec.program.params.seed));
    prog.set("hash", JsonValue::u64(spec.programHash));
    if (spec.program.hasEmbedded)
        prog.set("embedded", programToJson(spec.program.embedded));
    root.set("program", std::move(prog));

    root.set("config", configToJson(spec.config));
    root.set("max_cycles", JsonValue::u64(spec.maxCycles));

    JsonValue failure = JsonValue::object();
    failure.set("error", errorToJson(spec.error));
    failure.set("halted", JsonValue::boolean(spec.halted));
    failure.set("arch_match", JsonValue::boolean(spec.archMatch));
    failure.set("retries", JsonValue::u64(spec.retries));
    root.set("failure", std::move(failure));

    JsonValue sched = JsonValue::array();
    for (const chaos::FaultEvent &e : spec.schedule) {
        JsonValue ev = JsonValue::object();
        ev.set("ordinal", JsonValue::u64(e.ordinal));
        ev.set("site", JsonValue::str(chaos::faultSiteName(e.site)));
        ev.set("magnitude", JsonValue::u64(e.magnitude));
        sched.push(std::move(ev));
    }
    root.set("schedule", std::move(sched));
    return root;
}

bool
fromJson(const JsonValue &root, ReproSpec *spec, std::string *err)
{
    if (!root.isObject() ||
        root.getString("format") != "edgesim-repro") {
        if (err)
            *err = "not an edgesim-repro document";
        return false;
    }
    const JsonValue *prog = root.get("program");
    if (!prog || !prog->isObject() ||
        prog->getString("kernel").empty()) {
        if (err)
            *err = "missing program.kernel";
        return false;
    }
    spec->program.kernel = prog->getString("kernel");
    spec->program.params.iterations =
        prog->getU64("iterations", spec->program.params.iterations);
    spec->program.params.seed =
        prog->getU64("seed", spec->program.params.seed);
    spec->programHash = prog->getU64("hash");
    spec->program.hasEmbedded = false;
    if (const JsonValue *embedded = prog->get("embedded")) {
        if (!programFromJson(*embedded, &spec->program.embedded, err))
            return false;
        spec->program.hasEmbedded = true;
    }

    if (const JsonValue *cfg = root.get("config"))
        configFromJson(*cfg, &spec->config);
    spec->maxCycles = root.getU64("max_cycles", spec->maxCycles);

    if (const JsonValue *failure = root.get("failure")) {
        if (const JsonValue *e = failure->get("error"))
            errorFromJson(*e, &spec->error);
        spec->halted = failure->getBool("halted");
        spec->archMatch = failure->getBool("arch_match");
        spec->retries = static_cast<unsigned>(failure->getU64("retries"));
    }

    spec->schedule.clear();
    if (const JsonValue *sched = root.get("schedule")) {
        for (const JsonValue &ev : sched->items()) {
            chaos::FaultEvent e;
            e.ordinal = ev.getU64("ordinal");
            e.site = chaos::faultSiteByName(
                ev.getString("site", "hop-delay"));
            e.magnitude = ev.getU64("magnitude");
            spec->schedule.push_back(e);
        }
    }
    return true;
}

bool
save(const ReproSpec &spec, const std::string &path, std::string *err)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        if (err)
            *err = "cannot open '" + path + "' for writing";
        return false;
    }
    out << toJson(spec).dump();
    out.flush();
    if (!out) {
        if (err)
            *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

bool
load(const std::string &path, ReproSpec *spec, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue root;
    if (!JsonValue::parse(buf.str(), &root, err))
        return false;
    return fromJson(root, spec, err);
}

ReproSpec
captureFromResult(const ProgramRef &program,
                  const core::MachineConfig &config, Cycle max_cycles,
                  const sim::RunResult &result)
{
    ReproSpec spec;
    spec.program = program;
    spec.programHash = programHash(buildProgram(program));
    spec.config = config;
    // Bake the effective seeds so the spec replays standalone: the
    // runtime derives chaos.seed from rngSeed when left at 0.
    spec.config.rngSeed = result.rngSeed;
    if (spec.config.chaos.enabled())
        spec.config.chaos.seed = result.chaosSeed;
    spec.maxCycles = max_cycles;
    spec.error = result.error;
    spec.halted = result.halted;
    spec.archMatch = result.archMatch;
    spec.retries = result.retries;
    spec.schedule = result.chaosEvents;
    return spec;
}

std::string
captureToFile(const ReproSpec &spec, const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("repro: cannot create directory '%s': %s", dir.c_str(),
             ec.message().c_str());
        return "";
    }
    std::string kind = chaos::reasonName(spec.error.reason);
    if (spec.error.ok())
        kind = spec.archMatch ? "halt" : "divergence";
    std::string name = strfmt(
        "%s-%s-%s-seed%llu.repro.json", slug(spec.program.kernel).c_str(),
        slug(pred::depPolicyName(spec.config.policy)).c_str(),
        slug(kind + (spec.error.invariant.empty()
                         ? ""
                         : "-" + spec.error.invariant))
            .c_str(),
        static_cast<unsigned long long>(spec.config.rngSeed));
    std::string path = (std::filesystem::path(dir) / name).string();
    std::string err;
    if (!save(spec, path, &err)) {
        warn("repro: %s", err.c_str());
        return "";
    }
    return path;
}

std::size_t
captureSweepFailures(sim::ChaosSweepReport &report,
                     const ProgramRef &program, Cycle max_cycles,
                     const std::string &dir)
{
    std::size_t written = 0;
    for (sim::ChaosSweepOutcome &o : report.runs) {
        if (o.converged())
            continue;
        ReproSpec spec = captureFromResult(program, o.machine,
                                           max_cycles, o.result);
        o.reproPath = captureToFile(spec, dir);
        if (!o.reproPath.empty())
            ++written;
    }
    return written;
}

sim::RunResult
replay(const ReproSpec &spec)
{
    isa::Program prog = buildProgram(spec.program);
    if (spec.program.hasEmbedded) {
        // Loaded from disk, so check before the Simulator's fatal-on-
        // invalid constructor produces an opaque message.
        std::vector<isa::ValidationIssue> issues = prog.validateAll();
        fatal_if(!issues.empty(),
                 "repro: embedded program is invalid: %s",
                 issues.front().str().c_str());
    }
    std::uint64_t hash = programHash(prog);
    if (spec.programHash != 0 && hash != spec.programHash)
        warn("repro: program hash mismatch (spec %016llx, built "
             "%016llx) — the workload generator changed; the replay "
             "may not reproduce the failure",
             static_cast<unsigned long long>(spec.programHash),
             static_cast<unsigned long long>(hash));
    sim::Simulator sim(std::move(prog), spec.config);
    return sim.run(spec.config, spec.maxCycles);
}

bool
sameSignature(const ReproSpec &spec, const sim::RunResult &result)
{
    return spec.error.reason == result.error.reason &&
           spec.error.invariant == result.error.invariant &&
           spec.error.cycle == result.error.cycle &&
           spec.halted == result.halted &&
           spec.archMatch == result.archMatch;
}

bool
sameFailureKind(const ReproSpec &spec, const sim::RunResult &result)
{
    if (spec.error.reason != chaos::SimError::Reason::None)
        return spec.error.reason == result.error.reason &&
               spec.error.invariant == result.error.invariant;
    // Divergence failures carry no SimError: the signature is the
    // halted/archMatch verdict itself.
    return !result.error.ok()
               ? false
               : spec.halted == result.halted &&
                     spec.archMatch == result.archMatch;
}

std::string
signatureLine(const ReproSpec &spec)
{
    std::string out = strfmt(
        "%s kernel=%s seed=%llu cycle=%llu halted=%d archMatch=%d",
        chaos::reasonName(spec.error.reason),
        spec.program.kernel.c_str(),
        static_cast<unsigned long long>(spec.config.rngSeed),
        static_cast<unsigned long long>(spec.error.cycle), spec.halted,
        spec.archMatch);
    if (!spec.error.invariant.empty())
        out += " invariant=" + spec.error.invariant;
    return out;
}

} // namespace edge::triage
