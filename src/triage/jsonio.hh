/**
 * @file
 * A minimal JSON value, writer, and recursive-descent parser — just
 * enough for `.repro.json` files. Hand-rolled on purpose: the build
 * has a no-external-dependencies rule, and repro files need exact
 * 64-bit integer round-trips (seeds, cycles, ordinals), which a
 * double-backed JSON library would silently corrupt. Number tokens
 * are therefore kept verbatim as text and reparsed on access.
 */

#ifndef EDGE_TRIAGE_JSONIO_HH
#define EDGE_TRIAGE_JSONIO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace edge::triage {

class JsonValue
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    JsonValue() = default;

    // --- constructors ----------------------------------------------------
    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    static JsonValue u64(std::uint64_t v);
    static JsonValue i64(std::int64_t v);
    static JsonValue number(double v);
    static JsonValue str(std::string s);
    static JsonValue object();
    static JsonValue array();

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isObject() const { return _type == Type::Object; }
    bool isArray() const { return _type == Type::Array; }

    // --- scalar access (returns the fallback on type mismatch) -----------
    bool asBool(bool fallback = false) const;
    std::uint64_t asU64(std::uint64_t fallback = 0) const;
    std::int64_t asI64(std::int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    const std::string &asString() const; ///< empty on mismatch

    // --- object access ----------------------------------------------------
    /** Set / replace a member (this must be an Object). */
    JsonValue &set(const std::string &key, JsonValue value);
    /** Member lookup; null when absent or not an object. */
    const JsonValue *get(const std::string &key) const;
    /** Drop a member if present (order of the rest is preserved);
     *  returns true when something was removed. */
    bool remove(const std::string &key);
    /** Convenience scalar getters over get(). */
    bool getBool(const std::string &key, bool fallback = false) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback = 0) const;
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

    // --- array access ------------------------------------------------------
    JsonValue &push(JsonValue value); ///< append (this must be an Array)
    const std::vector<JsonValue> &items() const { return _items; }

    /** Serialize (2-space indent, members in insertion order). */
    std::string dump() const;

    /**
     * Serialize on a single line, no whitespace — the JSONL form the
     * campaign journal appends one record per line in. Escaping
     * guarantees the output itself contains no newline.
     */
    std::string dumpCompact() const;

    /**
     * Parse a complete JSON document. Returns false (with a
     * position-bearing message in *err) on malformed input; trailing
     * garbage after the document is an error.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *err);

    /** JSON-escape a string body (no surrounding quotes). */
    static std::string escape(const std::string &s);

  private:
    void dumpTo(std::string &out, unsigned depth) const;
    void dumpCompactTo(std::string &out) const;

    Type _type = Type::Null;
    bool _bool = false;
    /** String payload, or the verbatim number token. */
    std::string _text;
    std::vector<std::pair<std::string, JsonValue>> _members;
    std::vector<JsonValue> _items;
};

/**
 * Crash-durable whole-file write: the content goes to a temp file in
 * the same directory, is fsync'd, and is atomically renamed over
 * `path` (the directory is fsync'd too). A reader therefore sees
 * either the previous complete file or the new complete file — never
 * a truncated half-write, even if the writer dies mid-call or the
 * host loses power. Used for `.repro.json` captures and for every
 * campaign-journal append.
 */
bool writeFileDurable(const std::string &path,
                      const std::string &content, std::string *err);

} // namespace edge::triage

#endif // EDGE_TRIAGE_JSONIO_HH
