/**
 * @file
 * Chaos-schedule minimization: delta debugging (ddmin) over the
 * fault-event ordinals of a failing run. The chaos engine records
 * every would-inject event with a stable ordinal; a candidate subset
 * is tested by re-running the same (program, config, seed) with the
 * schedule filter restricted to that subset — the RNG draw order is
 * preserved under masking, so ordinals mean the same thing in every
 * candidate run. The result is a locally 1-minimal schedule: removing
 * any single remaining event makes the failure signature disappear.
 */

#ifndef EDGE_TRIAGE_MINIMIZE_HH
#define EDGE_TRIAGE_MINIMIZE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "triage/repro.hh"

namespace edge::triage {

struct MinimizeOptions
{
    /** Worker threads for candidate batches (0 = all hardware). */
    unsigned threads = 0;
    /** Safety valve on ddmin rounds (never hit in practice). */
    unsigned maxRounds = 256;
};

struct MinimizeResult
{
    /** The minimal ordinal subset that still fails (sorted). */
    std::vector<std::uint64_t> ordinals;
    /** The surviving events of the original schedule, in order. */
    std::vector<chaos::FaultEvent> schedule;
    std::size_t testsRun = 0; ///< candidate evaluations performed
    unsigned rounds = 0;      ///< ddmin partition rounds
    /** True when the loop reached 1-minimality (not the round cap). */
    bool converged = false;
};

/**
 * Does this candidate subset of ordinals still reproduce the failure?
 * Must be deterministic and thread-safe: batches of candidates are
 * evaluated concurrently.
 */
using SubsetTest =
    std::function<bool(const std::vector<std::uint64_t> &)>;

/**
 * Evaluate a whole round's candidates at once; result[i] is the
 * verdict for candidates[i]. The default driver adapts a SubsetTest
 * onto a thread pool.
 */
using BatchTest = std::function<std::vector<char>(
    const std::vector<std::vector<std::uint64_t>> &)>;

/**
 * ddmin (Zeller & Hildebrandt) over an ordinal set. `initial` must
 * fail under `test`. Each round's candidate subsets and complements
 * are evaluated as one batch; when several candidates fail, the
 * lowest-index one wins, so the reduction path — and therefore the
 * result — is deterministic at any thread count.
 */
MinimizeResult minimizeOrdinals(std::vector<std::uint64_t> initial,
                                const BatchTest &test,
                                const MinimizeOptions &opts = {});

/** Convenience: run ddmin with a per-subset predicate on a pool. */
MinimizeResult minimizeSchedule(
    const std::vector<chaos::FaultEvent> &schedule,
    const SubsetTest &test, const MinimizeOptions &opts = {});

/**
 * Minimize a captured failure end to end: rebuild the program once,
 * share its reference execution across all candidate runs
 * (sim::RunPool::runConfigs), and delta-debug the spec's schedule
 * down to a subset that preserves the failure *kind* (SimError
 * reason + invariant rule; the exact cycle may legitimately move).
 * Returns an empty schedule when the failure does not depend on the
 * injected faults at all (e.g. a pure protocol-mutation failure).
 */
MinimizeResult minimizeRepro(const ReproSpec &spec,
                             const MinimizeOptions &opts = {});

/**
 * A copy of `spec` whose config replays only the minimized schedule
 * (filterSchedule + allowedEvents baked in).
 */
ReproSpec applySchedule(const ReproSpec &spec,
                        const MinimizeResult &minimized);

/** Outcome of program-level (block + effect) delta debugging. */
struct ProgramMinimizeResult
{
    /** The minimized program (always validator-clean and halting). */
    isa::Program program;
    std::size_t blocksBefore = 0;
    std::size_t blocksAfter = 0;
    /** Observable effects: stores + register writes. */
    std::size_t effectsBefore = 0;
    std::size_t effectsAfter = 0;
    std::size_t testsRun = 0;
    unsigned rounds = 0;
    /** True when both phases reached local 1-minimality. */
    bool converged = false;
};

/**
 * Block-and-instruction-level ddmin over the spec's program,
 * composing with the chaos-event ddmin above (minimize the program
 * first, then minimizeRepro the schedule of the shrunk spec). Two
 * phases, both driven by minimizeOrdinals so the reduction path is
 * deterministic at any thread count:
 *
 *  1. Block-level: the ordinal universe is every non-entry block;
 *     a candidate keeps a subset and redirects exits to removed
 *     blocks back to the entry block (keeping loops alive; the
 *     tester re-proves termination on the reference).
 *  2. Effect-level: the universe is every observable effect (store
 *     instruction or register-write slot) of the phase-1 winner; a
 *     candidate keeps a subset, recomputes liveness from the kept
 *     roots (branch + kept stores + kept writes), drops dead
 *     instructions, renumbers slots and targets, and re-densifies
 *     LSIDs — so every candidate is validator-clean by construction.
 *
 * Candidates that fail validation or whose reference execution does
 * not halt are treated as "does not reproduce". The verdict
 * predicate is sameFailureKind (the exact failure cycle may move).
 */
ProgramMinimizeResult minimizeProgram(const ReproSpec &spec,
                                      const MinimizeOptions &opts = {});

/**
 * A copy of `spec` carrying `minimized` as its embedded program.
 * Replays it once to re-capture the failure signature and chaos
 * schedule (cycle and ordinals legitimately shift when the program
 * shrinks), so the result both replays bit-identically and is a
 * fresh starting point for minimizeRepro's schedule ddmin.
 */
ReproSpec applyProgram(const ReproSpec &spec,
                       const isa::Program &minimized);

} // namespace edge::triage

#endif // EDGE_TRIAGE_MINIMIZE_HH
