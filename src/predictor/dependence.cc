#include "predictor/dependence.hh"

#include "common/logging.hh"
#include "predictor/oracle.hh"
#include "predictor/store_sets.hh"

namespace edge::pred {

const char *
depPolicyName(DepPolicy policy)
{
    switch (policy) {
      case DepPolicy::Blind:        return "blind";
      case DepPolicy::Conservative: return "conservative";
      case DepPolicy::StoreSets:    return "store-sets";
      case DepPolicy::Oracle:       return "oracle";
    }
    return "?";
}

namespace {

/** Always speculate: a load issues the moment its address arrives. */
class BlindPredictor : public DependencePredictor
{
  public:
    bool
    loadMustWait(const LoadQuery &query) override
    {
        return false;
    }

    const char *name() const override { return "blind"; }
};

/** Never speculate: wait for every older store to resolve. */
class ConservativePredictor : public DependencePredictor
{
  public:
    explicit ConservativePredictor(StatSet &stats)
        : _waits(stats.counter("conservative.waits",
                               "loads held for older stores"))
    {
    }

    bool
    loadMustWait(const LoadQuery &query) override
    {
        if (query.olderUnresolved->empty())
            return false;
        ++_waits;
        return true;
    }

    const char *name() const override { return "conservative"; }

  private:
    Counter &_waits;
};

} // namespace

std::unique_ptr<DependencePredictor>
makeDependencePredictor(DepPolicy policy, const OracleDb *oracle,
                        StatSet &stats)
{
    switch (policy) {
      case DepPolicy::Blind:
        return std::make_unique<BlindPredictor>();
      case DepPolicy::Conservative:
        return std::make_unique<ConservativePredictor>(stats);
      case DepPolicy::StoreSets:
        return std::make_unique<StoreSetsPredictor>(StoreSetsParams{},
                                                    stats);
      case DepPolicy::Oracle:
        fatal_if(!oracle, "oracle policy requires an OracleDb");
        return std::make_unique<OraclePredictor>(*oracle, stats);
    }
    panic("unknown dependence policy");
}

} // namespace edge::pred
