/**
 * @file
 * The perfect dependence oracle. Built from a functional reference
 * trace, it knows the architectural address of every memory
 * operation of every dynamic block on the committed path, so it can
 * direct each load to issue at the earliest provably safe moment:
 * wait exactly while an older in-flight store that *will* overlap is
 * still unresolved. The abstract reports DSRE reaching 82% of the
 * performance of this oracle.
 *
 * Wrong-path blocks (fetched past a mispredicted exit) do not match
 * the committed-path trace; the oracle detects the mismatch by block
 * id and answers "don't wait" — those blocks are squashed anyway, so
 * only timing noise on doomed work is affected.
 */

#ifndef EDGE_PREDICTOR_ORACLE_HH
#define EDGE_PREDICTOR_ORACLE_HH

#include <vector>

#include "compiler/ref_executor.hh"
#include "predictor/dependence.hh"

namespace edge::pred {

/** The committed-path memory behaviour of a whole run. */
class OracleDb
{
  public:
    struct MemOp
    {
        bool isStore = false;
        Addr addr = 0;
        std::uint8_t bytes = 0;
    };

    /** Build from a RefExecutor block trace. */
    explicit OracleDb(const std::vector<compiler::BlockTrace> &trace);

    std::size_t numBlocks() const { return _blocks.size(); }

    /** Static block executed at architectural index i. */
    BlockId blockAt(std::uint64_t arch_idx) const;

    /** Taken exit of the block at architectural index i. */
    unsigned exitAt(std::uint64_t arch_idx) const;

    /**
     * The memory op (block at arch_idx, lsid); nullptr when arch_idx
     * is beyond the trace or lsid out of range.
     */
    const MemOp *memOp(std::uint64_t arch_idx, Lsid lsid) const;

  private:
    struct BlockEntry
    {
        BlockId block;
        unsigned exitIndex;
        std::vector<MemOp> memOps;
    };

    std::vector<BlockEntry> _blocks;
};

class OraclePredictor : public DependencePredictor
{
  public:
    OraclePredictor(const OracleDb &db, StatSet &stats);

    bool loadMustWait(const LoadQuery &query) override;

    const char *name() const override { return "oracle"; }

  private:
    const OracleDb &_db;
    Counter &_waits;
    Counter &_offPath;
};

/** Do two byte ranges [a, a+an) and [b, b+bn) overlap? */
inline bool
rangesOverlap(Addr a, unsigned an, Addr b, unsigned bn)
{
    return a < b + bn && b < a + an;
}

} // namespace edge::pred

#endif // EDGE_PREDICTOR_ORACLE_HH
