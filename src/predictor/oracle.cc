#include "predictor/oracle.hh"

#include "common/logging.hh"

namespace edge::pred {

OracleDb::OracleDb(const std::vector<compiler::BlockTrace> &trace)
{
    _blocks.reserve(trace.size());
    for (const auto &bt : trace) {
        BlockEntry e;
        e.block = bt.block;
        e.exitIndex = static_cast<unsigned>(bt.exitIndex);
        e.memOps.reserve(bt.memOps.size());
        for (const auto &m : bt.memOps)
            e.memOps.push_back({m.isStore, m.addr, m.bytes});
        _blocks.push_back(std::move(e));
    }
}

BlockId
OracleDb::blockAt(std::uint64_t arch_idx) const
{
    if (arch_idx >= _blocks.size())
        return kInvalidBlock;
    return _blocks[arch_idx].block;
}

unsigned
OracleDb::exitAt(std::uint64_t arch_idx) const
{
    panic_if(arch_idx >= _blocks.size(), "exitAt beyond trace");
    return _blocks[arch_idx].exitIndex;
}

const OracleDb::MemOp *
OracleDb::memOp(std::uint64_t arch_idx, Lsid lsid) const
{
    if (arch_idx >= _blocks.size())
        return nullptr;
    const auto &ops = _blocks[arch_idx].memOps;
    if (lsid >= ops.size())
        return nullptr;
    return &ops[lsid];
}

OraclePredictor::OraclePredictor(const OracleDb &db, StatSet &stats)
    : _db(db),
      _waits(stats.counter("oracle.waits",
                           "loads held for a truly conflicting store")),
      _offPath(stats.counter("oracle.off_path",
                             "oracle queries from wrong-path blocks"))
{
}

bool
OraclePredictor::loadMustWait(const LoadQuery &query)
{
    // A wrong-path block does not match the committed trace: let it
    // speculate freely, it will be squashed.
    if (_db.blockAt(query.archIdx) != query.block) {
        ++_offPath;
        return false;
    }
    for (const UnresolvedStore &st : *query.olderUnresolved) {
        if (_db.blockAt(st.archIdx) != st.block)
            continue; // wrong-path store: its block will be squashed
        const OracleDb::MemOp *op = _db.memOp(st.archIdx, st.lsid);
        if (!op || !op->isStore)
            continue;
        if (rangesOverlap(op->addr, op->bytes, query.addr, query.bytes)) {
            ++_waits;
            return true;
        }
    }
    return false;
}

} // namespace edge::pred
