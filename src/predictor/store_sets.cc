#include "predictor/store_sets.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edge::pred {

StoreSetsPredictor::StoreSetsPredictor(const StoreSetsParams &params,
                                       StatSet &stats)
    : _p(params),
      _ssit(_p.ssitSize, kNoSet),
      _lfst(_p.lfstSize),
      _waits(stats.counter("storesets.waits",
                           "loads delayed by a store-set match")),
      _trainings(stats.counter("storesets.trainings",
                               "violation-driven set assignments"))
{
    fatal_if(_p.ssitSize == 0 || (_p.ssitSize & (_p.ssitSize - 1)),
             "SSIT size must be a power of two");
    fatal_if(_p.lfstSize == 0, "LFST must be nonempty");
}

std::size_t
StoreSetsPredictor::ssitIndex(BlockId block, Lsid lsid) const
{
    std::uint64_t h = (static_cast<std::uint64_t>(block) << 6) ^
                      (static_cast<std::uint64_t>(lsid) * 0x85ebca6bULL);
    h *= 0x9e3779b97f4a7c15ULL;
    return (h >> 32) & (_p.ssitSize - 1);
}

std::uint32_t
StoreSetsPredictor::allocateSet()
{
    std::uint32_t id = _nextSet;
    _nextSet = (_nextSet + 1) % static_cast<std::uint32_t>(_p.lfstSize);
    return id;
}

bool
StoreSetsPredictor::hasSet(BlockId block, Lsid lsid) const
{
    return _ssit[ssitIndex(block, lsid)] != kNoSet;
}

CapturedDep
StoreSetsPredictor::onLoadMapped(DynBlockSeq seq, BlockId block,
                                 Lsid lsid)
{
    // Chrysos & Emer read the LFST at dispatch: the load depends on
    // the youngest store of its set fetched *before* it.
    std::uint32_t set = _ssit[ssitIndex(block, lsid)];
    if (set == kNoSet)
        return {};
    const LfstEntry &last = _lfst[set];
    if (!last.valid)
        return {};
    return {true, last.seq, last.lsid};
}

bool
StoreSetsPredictor::loadMustWait(const LoadQuery &query)
{
    if (!query.dep.valid)
        return false;
    // Wait while the captured store instance is still an older,
    // unresolved in-flight store.
    for (const UnresolvedStore &st : *query.olderUnresolved) {
        if (st.seq == query.dep.seq && st.lsid == query.dep.lsid) {
            ++_waits;
            return true;
        }
    }
    return false;
}

void
StoreSetsPredictor::onStoreMapped(DynBlockSeq seq, BlockId block,
                                  Lsid lsid)
{
    std::uint32_t set = _ssit[ssitIndex(block, lsid)];
    if (set == kNoSet)
        return;
    _lfst[set] = {true, seq, lsid};
}

void
StoreSetsPredictor::onStoreResolved(DynBlockSeq seq, BlockId block,
                                    Lsid lsid)
{
    std::uint32_t set = _ssit[ssitIndex(block, lsid)];
    if (set == kNoSet)
        return;
    LfstEntry &last = _lfst[set];
    if (last.valid && last.seq == seq && last.lsid == lsid)
        last.valid = false;
}

void
StoreSetsPredictor::onViolation(BlockId load_block, Lsid load_lsid,
                                BlockId store_block, Lsid store_lsid)
{
    ++_trainings;
    std::size_t li = ssitIndex(load_block, load_lsid);
    std::size_t si = ssitIndex(store_block, store_lsid);
    std::uint32_t lset = _ssit[li];
    std::uint32_t sset = _ssit[si];
    if (lset == kNoSet && sset == kNoSet) {
        std::uint32_t set = allocateSet();
        _ssit[li] = set;
        _ssit[si] = set;
    } else if (lset == kNoSet) {
        _ssit[li] = sset;
    } else if (sset == kNoSet) {
        _ssit[si] = lset;
    } else {
        // Merge: both adopt the smaller set id (Chrysos & Emer).
        std::uint32_t m = std::min(lset, sset);
        _ssit[li] = m;
        _ssit[si] = m;
    }
}

void
StoreSetsPredictor::onFlush(DynBlockSeq from_seq)
{
    for (LfstEntry &e : _lfst)
        if (e.valid && e.seq >= from_seq)
            e.valid = false;
}

} // namespace edge::pred
