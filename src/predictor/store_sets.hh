/**
 * @file
 * The store-set dependence predictor of Chrysos & Emer (ISCA 1998),
 * adapted to EDGE static memory-instruction identities (block id,
 * LSID). SSIT maps a static load/store to its store-set id; LFST
 * tracks the last fetched, still-unresolved store instance of each
 * set. A load whose set has an unresolved in-flight store waits for
 * that specific store.
 *
 * Simplification vs the original: we do not enforce store-to-store
 * ordering within a set (our stores only take effect at block
 * commit, which is already in program order), and the tables are
 * cleared by explicit flush notifications rather than cyclically.
 */

#ifndef EDGE_PREDICTOR_STORE_SETS_HH
#define EDGE_PREDICTOR_STORE_SETS_HH

#include <vector>

#include "predictor/dependence.hh"

namespace edge::pred {

struct StoreSetsParams
{
    std::size_t ssitSize = 16384; ///< static-id table (power of two)
    std::size_t lfstSize = 1024;  ///< number of store-set ids
};

class StoreSetsPredictor : public DependencePredictor
{
  public:
    StoreSetsPredictor(const StoreSetsParams &params, StatSet &stats);

    bool loadMustWait(const LoadQuery &query) override;
    void onStoreMapped(DynBlockSeq seq, BlockId block,
                       Lsid lsid) override;
    CapturedDep onLoadMapped(DynBlockSeq seq, BlockId block,
                             Lsid lsid) override;
    void onStoreResolved(DynBlockSeq seq, BlockId block,
                         Lsid lsid) override;
    void onViolation(BlockId load_block, Lsid load_lsid,
                     BlockId store_block, Lsid store_lsid) override;
    void onFlush(DynBlockSeq from_seq) override;

    const char *name() const override { return "store-sets"; }

    /** Exposed for unit tests. */
    bool hasSet(BlockId block, Lsid lsid) const;

  private:
    static constexpr std::uint32_t kNoSet = ~std::uint32_t{0};

    struct LfstEntry
    {
        bool valid = false;
        DynBlockSeq seq = 0;
        Lsid lsid = 0;
    };

    std::size_t ssitIndex(BlockId block, Lsid lsid) const;
    std::uint32_t allocateSet();

    StoreSetsParams _p;
    std::vector<std::uint32_t> _ssit; ///< static id -> set id
    std::vector<LfstEntry> _lfst;     ///< set id -> last fetched store
    std::uint32_t _nextSet = 0;

    Counter &_waits;
    Counter &_trainings;
};

} // namespace edge::pred

#endif // EDGE_PREDICTOR_STORE_SETS_HH
