/**
 * @file
 * Next-block (exit) predictor. EDGE blocks have one taken exit out
 * of a small static exit table, so control prediction means
 * predicting the exit *index* of each fetched block. We use a
 * gshare-indexed table of exit predictions with 2-bit hysteresis
 * plus a global exit-history register, which is the moral
 * equivalent of the TRIPS prototype's exit predictor.
 */

#ifndef EDGE_PREDICTOR_NEXT_BLOCK_HH
#define EDGE_PREDICTOR_NEXT_BLOCK_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace edge::pred {

struct NextBlockParams
{
    std::size_t tableSize = 4096; ///< entries (power of two)
    unsigned historyBits = 10;    ///< global exit-history length
};

class NextBlockPredictor
{
  public:
    NextBlockPredictor(const NextBlockParams &params, StatSet &stats);

    /** Predicted exit index for fetching `block` now. */
    unsigned predict(BlockId block);

    /**
     * Speculatively update the history as the fetch engine follows
     * the predicted path. Returns a snapshot for later repair.
     */
    std::uint64_t pushSpeculativeHistory(unsigned exit_index);

    /** Restore history to a snapshot (on flush / mispredict). */
    void restoreHistory(std::uint64_t snapshot);

    /**
     * Train with the architecturally taken exit of `block`.
     * @param history_at_predict the history snapshot returned when
     *        this block's prediction was made (indexes the same
     *        table entry the prediction read)
     */
    void update(BlockId block, unsigned taken_exit,
                std::uint64_t history_at_predict);

    /** Record prediction outcome (for the stat counters). */
    void recordOutcome(bool correct);

  private:
    struct Entry
    {
        std::uint8_t exitIndex = 0;
        std::uint8_t confidence = 0; ///< 2-bit hysteresis
    };

    std::size_t index(BlockId block, std::uint64_t history) const;

    NextBlockParams _p;
    std::vector<Entry> _table;
    std::uint64_t _history = 0;
    std::uint64_t _historyMask;

    Counter &_lookups;
    Counter &_correct;
    Counter &_wrong;
};

} // namespace edge::pred

#endif // EDGE_PREDICTOR_NEXT_BLOCK_HH
