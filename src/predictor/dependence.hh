/**
 * @file
 * Load/store dependence speculation policies. The LSQ consults the
 * active policy whenever a load's address becomes ready: may the
 * load issue now, or must it wait for (some of) the older in-flight
 * stores whose addresses are still unknown?
 *
 * Policies:
 *  - Blind:        always issue (maximum speculation);
 *  - Conservative: wait until every older store has resolved
 *                  (no speculation, no violations);
 *  - StoreSets:    Chrysos & Emer's store-set predictor — "the best
 *                  dependence predictor proposed to date" the paper
 *                  compares DSRE against;
 *  - Oracle:       the paper's perfect oracle, which issues each
 *                  load as early as is provably safe.
 */

#ifndef EDGE_PREDICTOR_DEPENDENCE_HH
#define EDGE_PREDICTOR_DEPENDENCE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace edge::pred {

class OracleDb;

/** Which dependence policy the machine runs. */
enum class DepPolicy
{
    Blind,
    Conservative,
    StoreSets,
    Oracle,
};

const char *depPolicyName(DepPolicy policy);

/** An older in-flight store whose address is not yet known. */
struct UnresolvedStore
{
    DynBlockSeq seq = 0;       ///< dynamic block instance
    std::uint64_t archIdx = 0; ///< architectural block index
    BlockId block = 0;
    Lsid lsid = 0;
};

/** A specific older store instance a load was told to respect. */
struct CapturedDep
{
    bool valid = false;
    DynBlockSeq seq = 0;
    Lsid lsid = 0;
};

/** Everything the policy may inspect about a ready load. */
struct LoadQuery
{
    DynBlockSeq seq = 0;
    std::uint64_t archIdx = 0;
    BlockId block = 0;
    Lsid lsid = 0;
    Addr addr = 0;
    unsigned bytes = 0;
    /** Older stores with unknown addresses, oldest first. */
    const std::vector<UnresolvedStore> *olderUnresolved = nullptr;
    /** Dependence captured at map time (store-set style). */
    CapturedDep dep;
};

class DependencePredictor
{
  public:
    virtual ~DependencePredictor() = default;

    /** True if the load must keep waiting; re-queried on changes. */
    virtual bool loadMustWait(const LoadQuery &query) = 0;

    /** A store entered the window (block mapped). */
    virtual void
    onStoreMapped(DynBlockSeq seq, BlockId block, Lsid lsid)
    {
    }

    /**
     * A load entered the window. Store-set style predictors read
     * the last-fetched-store table *here* (fetch order), returning
     * the specific older store instance the load must respect.
     */
    virtual CapturedDep
    onLoadMapped(DynBlockSeq seq, BlockId block, Lsid lsid)
    {
        return {};
    }

    /** A store's address (and data) became known. */
    virtual void
    onStoreResolved(DynBlockSeq seq, BlockId block, Lsid lsid)
    {
    }

    /** A dependence violation was detected; train the predictor. */
    virtual void
    onViolation(BlockId load_block, Lsid load_lsid, BlockId store_block,
                Lsid store_lsid)
    {
    }

    /** Blocks with seq >= from_seq were squashed. */
    virtual void
    onFlush(DynBlockSeq from_seq)
    {
    }

    virtual const char *name() const = 0;
};

/**
 * Factory.
 * @param oracle required (non-null) only for DepPolicy::Oracle
 */
std::unique_ptr<DependencePredictor>
makeDependencePredictor(DepPolicy policy, const OracleDb *oracle,
                        StatSet &stats);

} // namespace edge::pred

#endif // EDGE_PREDICTOR_DEPENDENCE_HH
