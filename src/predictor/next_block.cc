#include "predictor/next_block.hh"

#include "common/logging.hh"

namespace edge::pred {

NextBlockPredictor::NextBlockPredictor(const NextBlockParams &params,
                                       StatSet &stats)
    : _p(params),
      _table(_p.tableSize),
      _historyMask((std::uint64_t{1} << _p.historyBits) - 1),
      _lookups(stats.counter("nbp.lookups", "next-block predictions")),
      _correct(stats.counter("nbp.correct", "correct predictions")),
      _wrong(stats.counter("nbp.wrong", "mispredicted block exits"))
{
    fatal_if(_p.tableSize == 0 || (_p.tableSize & (_p.tableSize - 1)),
             "next-block predictor table must be a power of two");
}

std::size_t
NextBlockPredictor::index(BlockId block, std::uint64_t history) const
{
    std::uint64_t h = static_cast<std::uint64_t>(block) * 0x9e3779b1ULL;
    return (h ^ history) & (_p.tableSize - 1);
}

unsigned
NextBlockPredictor::predict(BlockId block)
{
    ++_lookups;
    return _table[index(block, _history)].exitIndex;
}

std::uint64_t
NextBlockPredictor::pushSpeculativeHistory(unsigned exit_index)
{
    std::uint64_t snapshot = _history;
    _history = ((_history << 2) | (exit_index & 3)) & _historyMask;
    return snapshot;
}

void
NextBlockPredictor::restoreHistory(std::uint64_t snapshot)
{
    _history = snapshot;
}

void
NextBlockPredictor::update(BlockId block, unsigned taken_exit,
                           std::uint64_t history_at_predict)
{
    Entry &e = _table[index(block, history_at_predict)];
    if (e.exitIndex == taken_exit) {
        if (e.confidence < 3)
            ++e.confidence;
    } else if (e.confidence > 0) {
        --e.confidence;
    } else {
        e.exitIndex = static_cast<std::uint8_t>(taken_exit);
        e.confidence = 1;
    }
}

void
NextBlockPredictor::recordOutcome(bool correct)
{
    if (correct)
        ++_correct;
    else
        ++_wrong;
}

} // namespace edge::pred
