#include "sim/run_pool.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <thread>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace edge::sim {

RunPool::RunPool(unsigned threads)
    : _threads(threads == 0 ? ThreadPool::defaultThreads() : threads)
{
}

namespace {

/**
 * Sleep for `ms`, polling `cancel` in short slices so a shutdown
 * request never waits behind a long backoff. Returns the
 * milliseconds actually slept.
 */
std::uint64_t
interruptibleSleep(std::uint64_t ms, const std::atomic<bool> *cancel)
{
    constexpr std::uint64_t kSliceMs = 5;
    std::uint64_t slept = 0;
    while (slept < ms) {
        if (cancel && cancel->load(std::memory_order_relaxed))
            break;
        std::uint64_t slice = std::min(kSliceMs, ms - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
    }
    return slept;
}

} // namespace

RunResult
RunPool::runWithRetry(const std::function<RunResult()> &once,
                      const RetryPolicy &retry) const
{
    unsigned attempt = 1;
    std::uint64_t backoff_ms = retry.backoffMs;
    std::uint64_t total_backoff = 0;
    for (;;) {
        RunResult r = once();
        r.retries = attempt - 1;
        r.backoffMs = total_backoff;
        if (!retry.shouldRetry(r, attempt))
            return r;
        // Transient host-level failure: back off and rerun. The run
        // itself is deterministic, so only host conditions (load,
        // wall-clock pressure) can change the outcome. The backoff
        // budget is capped per cell and the sleep is cancellable.
        std::uint64_t budget =
            retry.maxTotalBackoffMs > total_backoff
                ? retry.maxTotalBackoffMs - total_backoff
                : 0;
        total_backoff += interruptibleSleep(
            std::min<std::uint64_t>(backoff_ms, budget), retry.cancel);
        backoff_ms *= 2;
        ++attempt;
    }
}

std::vector<RunResult>
RunPool::runAll(const std::vector<RunJob> &jobs,
                const RetryPolicy &retry)
{
    if (jobs.empty())
        return {};
    for (const RunJob &job : jobs)
        fatal_if(job.program == nullptr, "RunPool: job without a program");

    // One Simulator per distinct program; map preserves a
    // deterministic preparation order (pointer order is fine — it
    // only affects which thread prepares what, never any result).
    std::map<const isa::Program *, std::unique_ptr<Simulator>> sims;
    for (const RunJob &job : jobs) {
        auto &slot = sims[job.program];
        if (!slot)
            slot = std::make_unique<Simulator>(*job.program,
                                               job.config);
    }

    ThreadPool pool(_threads);

    // Phase 1: reference executions, one pool job per program. Each
    // Simulator is touched by exactly one thread here; afterwards its
    // reference state is immutable and safe to share.
    std::vector<Simulator *> to_prepare;
    for (auto &kv : sims)
        to_prepare.push_back(kv.second.get());
    parallelIndex(pool, to_prepare.size(), [&](std::size_t i) {
        to_prepare[i]->prepare();
        return 0;
    });

    // Phase 2: the cells. Each job owns its Processor + StatSet via
    // runShared(); results land in submission order.
    return parallelIndex(pool, jobs.size(), [&](std::size_t i) {
        const RunJob &job = jobs[i];
        const Simulator *sim = sims.at(job.program).get();
        return runWithRetry(
            [&] { return sim->runShared(job.config, job.maxCycles); },
            retry);
    });
}

std::vector<RunResult>
RunPool::runConfigs(Simulator &sim,
                    const std::vector<core::MachineConfig> &configs,
                    Cycle max_cycles, const RetryPolicy &retry)
{
    if (configs.empty())
        return {};
    sim.prepare();
    ThreadPool pool(_threads);
    return parallelIndex(pool, configs.size(), [&](std::size_t i) {
        return runWithRetry(
            [&] { return sim.runShared(configs[i], max_cycles); },
            retry);
    });
}

} // namespace edge::sim
