#include "sim/sweep.hh"

#include "common/strutil.hh"

namespace edge::sim {

std::string
ChaosSweepReport::summary() const
{
    std::string out = strfmt(
        "%zu/%zu runs converged, %llu injections, %llu checks\n",
        runs.size() - failures, runs.size(),
        static_cast<unsigned long long>(totalInjections),
        static_cast<unsigned long long>(totalChecks));
    for (const ChaosSweepOutcome &o : runs) {
        if (o.converged())
            continue;
        out += strfmt(
            "  FAIL seed=%llu config=%s halted=%d archMatch=%d\n",
            static_cast<unsigned long long>(o.seed), o.config.c_str(),
            o.result.halted, o.result.archMatch);
        if (!o.result.error.ok())
            out += "    " + o.result.error.format() + "\n";
    }
    return out;
}

ChaosSweepReport
chaosSweep(const isa::Program &program, const ChaosSweepParams &params)
{
    ChaosSweepReport report;
    for (const std::string &name : params.configs) {
        core::MachineConfig base = Configs::byName(name);
        // One Simulator per config so the reference execution (and
        // oracle database) is shared across every seed.
        Simulator simulator(program, base);
        for (std::uint64_t seed : params.seeds) {
            core::MachineConfig cfg = base;
            cfg.rngSeed = seed;
            cfg.chaos = chaos::ChaosParams::byProfile(params.profile,
                                                      seed);
            cfg.checkInvariants = params.checkInvariants;

            ChaosSweepOutcome o;
            o.seed = seed;
            o.config = name;
            o.result = simulator.run(cfg, params.maxCycles);
            report.totalInjections += o.result.injections.total();
            report.totalChecks += o.result.invariantChecks;
            if (!o.converged())
                ++report.failures;
            report.runs.push_back(std::move(o));
        }
    }
    return report;
}

} // namespace edge::sim
