#include "sim/sweep.hh"

#include "common/strutil.hh"
#include "sim/run_pool.hh"

namespace edge::sim {

std::string
ChaosSweepReport::summary() const
{
    std::string out = strfmt(
        "%zu/%zu runs converged, %llu injections, %llu checks\n",
        runs.size() - failures, runs.size(),
        static_cast<unsigned long long>(totalInjections),
        static_cast<unsigned long long>(totalChecks));
    for (const ChaosSweepOutcome &o : runs) {
        if (o.converged())
            continue;
        out += strfmt(
            "  FAIL seed=%llu config=%s halted=%d archMatch=%d\n",
            static_cast<unsigned long long>(o.seed), o.config.c_str(),
            o.result.halted, o.result.archMatch);
        if (!o.result.error.ok())
            out += "    " + o.result.error.format() + "\n";
        if (o.result.retries != 0)
            out += strfmt("    retries=%u\n", o.result.retries);
        if (!o.reproPath.empty())
            out += strfmt("    to reproduce: edgesim --replay %s\n",
                          o.reproPath.c_str());
    }
    return out;
}

ChaosSweepReport
chaosSweep(const isa::Program &program, const ChaosSweepParams &params)
{
    // Build the whole grid up front (config-major, seed-minor — the
    // historical serial order), then run it on the pool. All cells
    // share one read-only reference execution of `program`; results
    // come back in submission order, so the report is bit-identical
    // at any thread count.
    std::vector<RunJob> jobs;
    jobs.reserve(params.configs.size() * params.seeds.size());
    for (const std::string &name : params.configs) {
        core::MachineConfig base = Configs::byName(name);
        for (std::uint64_t seed : params.seeds) {
            RunJob job;
            job.program = &program;
            job.config = base;
            job.config.rngSeed = seed;
            job.config.chaos =
                chaos::ChaosParams::byProfile(params.profile, seed);
            job.config.chaos.mutation = params.mutation;
            job.config.chaos.mutationNode = params.mutationNode;
            job.config.checkInvariants = params.checkInvariants;
            job.maxCycles = params.maxCycles;
            jobs.push_back(std::move(job));
        }
    }

    RunPool pool(params.threads);
    std::vector<RunResult> results = pool.runAll(jobs, params.retry);

    ChaosSweepReport report;
    std::size_t idx = 0;
    for (const std::string &name : params.configs) {
        for (std::uint64_t seed : params.seeds) {
            ChaosSweepOutcome o;
            o.seed = seed;
            o.config = name;
            o.machine = jobs[idx].config;
            o.result = std::move(results[idx++]);
            report.totalInjections += o.result.injections.total();
            report.totalChecks += o.result.invariantChecks;
            if (!o.converged())
                ++report.failures;
            report.runs.push_back(std::move(o));
        }
    }
    return report;
}

} // namespace edge::sim
