#include "sim/sweep.hh"

#include "common/strutil.hh"
#include "sim/run_pool.hh"

namespace edge::sim {

std::string
ChaosSweepReport::summary() const
{
    std::string out = strfmt(
        "%zu/%zu runs converged, %llu injections, %llu checks\n",
        runs.size() - failures, runs.size(),
        static_cast<unsigned long long>(totalInjections),
        static_cast<unsigned long long>(totalChecks));
    for (const ChaosSweepOutcome &o : runs) {
        if (o.converged())
            continue;
        out += strfmt(
            "  FAIL seed=%llu config=%s halted=%d archMatch=%d\n",
            static_cast<unsigned long long>(o.seed), o.config.c_str(),
            o.result.halted, o.result.archMatch);
        if (!o.result.error.ok())
            out += "    " + o.result.error.format() + "\n";
        if (o.result.retries != 0)
            out += strfmt("    retries=%u\n", o.result.retries);
        if (!o.reproPath.empty())
            out += strfmt("    to reproduce: edgesim --replay %s\n",
                          o.reproPath.c_str());
    }
    return out;
}

std::vector<SweepCell>
sweepCells(const ChaosSweepParams &params)
{
    std::vector<SweepCell> cells;
    cells.reserve(params.configs.size() * params.seeds.size());
    for (const std::string &name : params.configs) {
        core::MachineConfig base = Configs::byName(name);
        for (std::uint64_t seed : params.seeds) {
            SweepCell cell;
            cell.seed = seed;
            cell.config = name;
            cell.machine = base;
            cell.machine.rngSeed = seed;
            cell.machine.chaos =
                chaos::ChaosParams::byProfile(params.profile, seed);
            cell.machine.chaos.mutation = params.mutation;
            cell.machine.chaos.mutationNode = params.mutationNode;
            cell.machine.checkInvariants = params.checkInvariants;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

ChaosSweepReport
assembleSweepReport(std::vector<ChaosSweepOutcome> runs)
{
    ChaosSweepReport report;
    report.runs = std::move(runs);
    for (const ChaosSweepOutcome &o : report.runs) {
        report.totalInjections += o.result.injections.total();
        report.totalChecks += o.result.invariantChecks;
        if (!o.converged())
            ++report.failures;
    }
    return report;
}

ChaosSweepReport
chaosSweep(const isa::Program &program, const ChaosSweepParams &params)
{
    // Build the whole grid up front, then run it on the pool. All
    // cells share one read-only reference execution of `program`;
    // results come back in submission order, so the report is
    // bit-identical at any thread count.
    std::vector<SweepCell> cells = sweepCells(params);
    std::vector<RunJob> jobs;
    jobs.reserve(cells.size());
    for (const SweepCell &cell : cells) {
        RunJob job;
        job.program = &program;
        job.config = cell.machine;
        job.maxCycles = params.maxCycles;
        jobs.push_back(std::move(job));
    }

    RunPool pool(params.threads);
    std::vector<RunResult> results = pool.runAll(jobs, params.retry);

    std::vector<ChaosSweepOutcome> runs;
    runs.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        ChaosSweepOutcome o;
        o.seed = cells[i].seed;
        o.config = cells[i].config;
        o.machine = std::move(cells[i].machine);
        o.result = std::move(results[i]);
        runs.push_back(std::move(o));
    }
    return assembleSweepReport(std::move(runs));
}

} // namespace edge::sim
