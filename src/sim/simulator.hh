/**
 * @file
 * The top-level user-facing API. A Simulator takes a validated EDGE
 * program and a MachineConfig, runs the functional reference
 * execution (which doubles as the oracle database and golden model),
 * then runs the timing simulation and verifies that the committed
 * architectural state matches the reference bit for bit.
 *
 * Typical use:
 * @code
 *   isa::Program prog = wl::buildKernel("gzipish", {});
 *   sim::Simulator s(prog, sim::Configs::dsre());
 *   sim::RunResult r = s.run();
 *   printf("IPC %.2f\n", r.ipc());
 * @endcode
 */

#ifndef EDGE_SIM_SIMULATOR_HH
#define EDGE_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <utility>

#include "core/processor.hh"

namespace edge::sim {

/** Outcome of one timing run, plus the paper-relevant metrics. */
struct RunResult
{
    Cycle cycles = 0;
    std::uint64_t committedBlocks = 0;
    std::uint64_t committedInsts = 0;
    bool halted = false;    ///< program ran to completion
    bool archMatch = false; ///< registers + memory match the reference

    /** Structured failure report (ok() when the run was clean). */
    chaos::SimError error;
    /** The run-level seed the run used (replay handle). */
    std::uint64_t rngSeed = 0;
    /** The chaos seed actually used (0 when chaos was off). */
    std::uint64_t chaosSeed = 0;
    /** What the chaos engine injected (all zero when off). */
    chaos::InjectionCounts injections;
    /**
     * The run's candidate fault schedule, in injection order,
     * including events a schedule filter suppressed (empty when chaos
     * is off). This is the universe triage::minimizeSchedule
     * delta-debugs over.
     */
    std::vector<chaos::FaultEvent> chaosEvents;
    /** Individual invariant checks evaluated (0 when off). */
    std::uint64_t invariantChecks = 0;
    /**
     * Transparent retries the grid retry policy performed before
     * this result was accepted (0 for first-attempt results; only
     * host-level transient failures are ever retried).
     */
    unsigned retries = 0;
    /**
     * Total milliseconds the retry policy spent backing off before
     * this result was accepted (0 when no retry happened). Surfaced
     * in per-cell JSON rows and journal records so slow hosts are
     * visible in campaign artifacts.
     */
    std::uint64_t backoffMs = 0;

    /**
     * Snapshot of every counter of the run's StatSet, sorted by
     * name. Lets parallel runs (sim::RunPool), whose per-run StatSet
     * dies with the job, still report arbitrary counters — and lets
     * tests compare two runs bit for bit.
     */
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /** Value of a snapshotted counter; 0 when absent. */
    std::uint64_t
    counter(const std::string &name) const
    {
        for (const auto &kv : counters)
            if (kv.first == name)
                return kv.second;
        return 0;
    }

    /** Histogram snapshots (sorted by name), same rationale. */
    std::vector<std::pair<std::string, Histogram>> histograms;

    /** Snapshotted histogram; an empty one when absent. */
    const Histogram &
    histogram(const std::string &name) const
    {
        static const Histogram kEmpty;
        for (const auto &kv : histograms)
            if (kv.first == name)
                return kv.second;
        return kEmpty;
    }

    std::uint64_t violations = 0;
    std::uint64_t resends = 0;
    std::uint64_t reexecs = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t ctrlFlushes = 0;
    std::uint64_t violFlushes = 0;
    std::uint64_t aluIssues = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t forwards = 0;
    std::uint64_t policyHolds = 0;
    std::uint64_t deferrals = 0;
    std::uint64_t squashes = 0;

    double
    ipc() const
    {
        return cycles == 0
                   ? 0.0
                   : static_cast<double>(committedInsts) /
                         static_cast<double>(cycles);
    }

    /** Fraction of ALU work that is DSRE re-execution. */
    double
    reexecFraction() const
    {
        return aluIssues == 0
                   ? 0.0
                   : static_cast<double>(reexecs) /
                         static_cast<double>(aluIssues);
    }
};

/** Canned machine configurations matching the paper's mechanisms. */
struct Configs
{
    /** Conservative loads, no speculation: the safe baseline. */
    static core::MachineConfig conservative();
    /** Blind speculation with flush recovery. */
    static core::MachineConfig blindFlush();
    /** Store-set prediction with flush recovery (best predictor). */
    static core::MachineConfig storeSetsFlush();
    /** Blind speculation with DSRE recovery (the paper's proposal). */
    static core::MachineConfig dsre();
    /** Store-set prediction with DSRE recovery (an extension). */
    static core::MachineConfig storeSetsDsre();
    /** Perfect oracle load issue (upper bound). */
    static core::MachineConfig oracle();
    /**
     * DSRE plus miss value prediction — the second application of
     * the protocol (extension beyond the paper's evaluation).
     */
    static core::MachineConfig dsreVp();

    /** The config named by one of {conservative, blind-flush,
     * storesets-flush, dsre, storesets-dsre, oracle}. */
    static core::MachineConfig byName(const std::string &name);

    /** All mechanism names in presentation order. */
    static const std::vector<std::string> &allNames();
};

class Simulator
{
  public:
    /**
     * @param program the program to run (copied)
     * @param config machine configuration
     * @param ref_max_blocks budget for the reference pre-execution
     */
    Simulator(isa::Program program, core::MachineConfig config,
              std::uint64_t ref_max_blocks = 50'000'000);

    /**
     * Run the timing simulation (reference runs lazily first).
     * @param max_cycles timing-simulation cycle budget
     */
    RunResult run(Cycle max_cycles = 500'000'000);

    /**
     * Run with a different machine configuration, reusing the cached
     * reference execution — the cheap path for seed/config sweeps
     * over one program.
     */
    RunResult run(const core::MachineConfig &config,
                  Cycle max_cycles = 500'000'000);

    /**
     * Force the reference execution (and oracle database) now.
     * After prepare() returns, this Simulator is safe to share
     * read-only across threads via runShared(): the reference state
     * is immutable for the rest of the object's lifetime.
     */
    void prepare() { ensureReference(); }

    /**
     * Thread-safe run: requires prepare() to have been called. The
     * job owns its own Processor and StatSet, touches no Simulator
     * member except the immutable program/reference/oracle state,
     * and is bit-identical to run() for the same config — results
     * depend only on the config's seeds, never on the thread
     * schedule. The run's counters are snapshotted into
     * RunResult::counters (stats() is NOT updated).
     */
    RunResult runShared(const core::MachineConfig &config,
                        Cycle max_cycles = 500'000'000) const;

    /** Reference (functional) dynamic instruction count. */
    std::uint64_t refDynInsts();

    /** Reference dynamic block count. */
    std::uint64_t refDynBlocks();

    /** The oracle / golden database (reference runs lazily first). */
    const pred::OracleDb &oracleDb();

    /** Statistics of the last timing run. */
    const StatSet &stats() const { return *_stats; }

    const isa::Program &program() const { return _prog; }

  private:
    void ensureReference();
    RunResult runWith(const core::MachineConfig &config,
                      Cycle max_cycles, StatSet &stats) const;

    isa::Program _prog;
    core::MachineConfig _cfg;
    std::uint64_t _refMaxBlocks;

    bool _refDone = false;
    std::uint64_t _refBlocks = 0;
    std::uint64_t _refInsts = 0;
    std::unique_ptr<compiler::RefExecutor> _ref;
    std::unique_ptr<pred::OracleDb> _oracleDb;
    /**
     * Shared program image: validation + placement computed once and
     * reused by every Processor this simulator constructs (including
     * concurrent runShared() jobs — the image is thread-safe).
     * Built by ensureReference(), immutable afterwards.
     */
    std::unique_ptr<core::ProgramImage> _image;
    std::unique_ptr<StatSet> _stats;
};

} // namespace edge::sim

#endif // EDGE_SIM_SIMULATOR_HH
