#include "sim/simulator.hh"

#include "common/logging.hh"

namespace edge::sim {

namespace {

core::MachineConfig
baseConfig()
{
    core::MachineConfig cfg;
    // TRIPS-prototype-like defaults already live in the param
    // structs; nothing machine-specific to override here.
    return cfg;
}

} // namespace

core::MachineConfig
Configs::conservative()
{
    core::MachineConfig cfg = baseConfig();
    cfg.policy = pred::DepPolicy::Conservative;
    cfg.lsq.recovery = lsq::Recovery::Flush;
    return cfg;
}

core::MachineConfig
Configs::blindFlush()
{
    core::MachineConfig cfg = baseConfig();
    cfg.policy = pred::DepPolicy::Blind;
    cfg.lsq.recovery = lsq::Recovery::Flush;
    return cfg;
}

core::MachineConfig
Configs::storeSetsFlush()
{
    core::MachineConfig cfg = baseConfig();
    cfg.policy = pred::DepPolicy::StoreSets;
    cfg.lsq.recovery = lsq::Recovery::Flush;
    return cfg;
}

core::MachineConfig
Configs::dsre()
{
    core::MachineConfig cfg = baseConfig();
    cfg.policy = pred::DepPolicy::Blind;
    cfg.lsq.recovery = lsq::Recovery::Dsre;
    return cfg;
}

core::MachineConfig
Configs::storeSetsDsre()
{
    core::MachineConfig cfg = baseConfig();
    cfg.policy = pred::DepPolicy::StoreSets;
    cfg.lsq.recovery = lsq::Recovery::Dsre;
    return cfg;
}

core::MachineConfig
Configs::oracle()
{
    core::MachineConfig cfg = baseConfig();
    cfg.policy = pred::DepPolicy::Oracle;
    cfg.lsq.recovery = lsq::Recovery::Flush;
    return cfg;
}

core::MachineConfig
Configs::dsreVp()
{
    core::MachineConfig cfg = dsre();
    cfg.lsq.valuePredictMisses = true;
    return cfg;
}

core::MachineConfig
Configs::byName(const std::string &name)
{
    if (name == "conservative")
        return conservative();
    if (name == "blind-flush")
        return blindFlush();
    if (name == "storesets-flush")
        return storeSetsFlush();
    if (name == "dsre")
        return dsre();
    if (name == "storesets-dsre")
        return storeSetsDsre();
    if (name == "oracle")
        return oracle();
    if (name == "dsre-vp")
        return dsreVp();
    fatal("unknown machine configuration '%s'", name.c_str());
}

const std::vector<std::string> &
Configs::allNames()
{
    static const std::vector<std::string> names = {
        "conservative",   "blind-flush", "storesets-flush",
        "dsre",           "storesets-dsre", "dsre-vp",
        "oracle",
    };
    return names;
}

Simulator::Simulator(isa::Program program, core::MachineConfig config,
                     std::uint64_t ref_max_blocks)
    : _prog(std::move(program)),
      _cfg(config),
      _refMaxBlocks(ref_max_blocks)
{
    std::string why;
    fatal_if(!_prog.validate(&why), "Simulator: invalid program: %s",
             why.c_str());
}

void
Simulator::ensureReference()
{
    if (_refDone)
        return;
    _ref = std::make_unique<compiler::RefExecutor>(_prog);
    std::vector<compiler::BlockTrace> trace;
    compiler::RefExecutor::Result r = _ref->run(_refMaxBlocks, &trace);
    fatal_if(!r.halted,
             "reference execution of %s hit the %llu-block budget; "
             "the program may not terminate",
             _prog.name().c_str(),
             static_cast<unsigned long long>(_refMaxBlocks));
    _refBlocks = r.dynBlocks;
    _refInsts = r.dynInsts;
    _oracleDb = std::make_unique<pred::OracleDb>(trace);
    // Decode/validate/place once; every Processor (across run(),
    // runShared() and all sweep configs with this geometry) shares
    // the image read-only. Warm the default geometry's placements so
    // concurrent first runs never contend on the build.
    _image = std::make_unique<core::ProgramImage>(_prog);
    _image->placements({_cfg.core.rows, _cfg.core.cols,
                        _cfg.core.slotsPerNode});
    _refDone = true;
}

std::uint64_t
Simulator::refDynInsts()
{
    ensureReference();
    return _refInsts;
}

std::uint64_t
Simulator::refDynBlocks()
{
    ensureReference();
    return _refBlocks;
}

const pred::OracleDb &
Simulator::oracleDb()
{
    ensureReference();
    return *_oracleDb;
}

RunResult
Simulator::run(Cycle max_cycles)
{
    return run(_cfg, max_cycles);
}

RunResult
Simulator::run(const core::MachineConfig &config, Cycle max_cycles)
{
    ensureReference();
    _stats = std::make_unique<StatSet>(_prog.name());
    return runWith(config, max_cycles, *_stats);
}

RunResult
Simulator::runShared(const core::MachineConfig &config,
                     Cycle max_cycles) const
{
    panic_if(!_refDone,
             "Simulator::runShared before prepare(): the reference "
             "execution must exist before concurrent runs");
    StatSet stats(_prog.name());
    return runWith(config, max_cycles, stats);
}

RunResult
Simulator::runWith(const core::MachineConfig &config, Cycle max_cycles,
                   StatSet &stats) const
{
    core::MachineConfig cfg = config;
    // One run-level seed drives everything: an unset chaos seed
    // derives from the run seed, so `--seed` alone replays a chaotic
    // run exactly.
    if (cfg.chaos.enabled() && cfg.chaos.seed == 0)
        cfg.chaos.seed = cfg.rngSeed;

    core::Processor proc(cfg, _prog, _oracleDb.get(), stats,
                         _image.get());
    core::Processor::Result r = proc.run(max_cycles);

    RunResult out;
    out.cycles = r.cycles;
    out.committedBlocks = r.committedBlocks;
    out.committedInsts = r.committedInsts;
    out.halted = r.halted;
    out.error = r.error;
    out.rngSeed = cfg.rngSeed;
    if (proc.chaosEngine()) {
        out.chaosSeed = proc.chaosEngine()->params().seed;
        out.injections = proc.chaosEngine()->counts();
        out.chaosEvents = proc.chaosEngine()->events();
    }
    if (proc.checker())
        out.invariantChecks = proc.checker()->checksRun();

    out.violations = stats.counterValue("lsq.violations");
    out.resends = stats.counterValue("lsq.resends");
    out.reexecs = stats.counterValue("core.alu_reexecs");
    out.upgrades = stats.counterValue("core.upgrades");
    out.ctrlFlushes = stats.counterValue("core.ctrl_flushes");
    out.violFlushes = stats.counterValue("core.viol_flushes");
    out.aluIssues = stats.counterValue("core.alu_issues");
    out.loads = stats.counterValue("lsq.loads");
    out.stores = stats.counterValue("lsq.stores");
    out.forwards = stats.counterValue("lsq.forwards");
    out.policyHolds = stats.counterValue("lsq.policy_holds");
    out.deferrals = stats.counterValue("lsq.deferrals");
    out.squashes = stats.counterValue("core.squashes");
    for (const std::string &name : stats.counterNames())
        out.counters.emplace_back(name, stats.counterValue(name));
    for (const std::string &name : stats.histogramNames())
        out.histograms.emplace_back(name, stats.histogramRef(name));

    // Golden-model verification: committed register and memory state
    // must match the functional reference exactly.
    bool regs_match = true;
    for (unsigned i = 0; i < isa::kNumArchRegs; ++i)
        regs_match = regs_match &&
                     proc.archRegs()[i] == _ref->regs()[i];
    bool mem_match = proc.memory().equals(_ref->memory());
    bool counts_match = r.halted &&
                        r.committedBlocks == _refBlocks &&
                        r.committedInsts == _refInsts;
    out.archMatch = regs_match && mem_match && counts_match;
    return out;
}

} // namespace edge::sim
