/**
 * @file
 * Chaos convergence sweeps: run one program under many fault
 * schedules (seed x mechanism grid) and verify the DSRE convergence
 * claim — every perturbed schedule must still halt, pass the runtime
 * invariant checker, and commit architectural state bit-identical to
 * the functional reference. The reference execution is computed once
 * per program and shared across all runs.
 */

#ifndef EDGE_SIM_SWEEP_HH
#define EDGE_SIM_SWEEP_HH

#include <string>
#include <vector>

#include "sim/run_pool.hh"
#include "sim/simulator.hh"

namespace edge::sim {

struct ChaosSweepParams
{
    /** Run-level seeds; each derives a full fault schedule. */
    std::vector<std::uint64_t> seeds;
    /** Mechanism names (Configs::byName) to cross with the seeds. */
    std::vector<std::string> configs;
    chaos::Profile profile = chaos::Profile::Light;
    bool checkInvariants = true;
    Cycle maxCycles = 500'000'000;
    /**
     * Worker threads for the grid (0 = all hardware threads). Cells
     * are independent deterministic runs, so any thread count
     * produces bit-identical results — see sim::RunPool.
     */
    unsigned threads = 0;
    /**
     * Compile-time protocol mutation to plant in every cell (for
     * triage testing and CI smoke — requires EDGE_MUTATIONS builds).
     */
    chaos::Mutation mutation = chaos::Mutation::None;
    /** Node the planted mutation applies to. */
    unsigned mutationNode = 0;
    /** Transient-failure retry policy applied to every cell. */
    RetryPolicy retry;
};

/** One (seed, config) cell of the sweep grid. */
struct ChaosSweepOutcome
{
    std::uint64_t seed = 0;
    std::string config;
    /** The exact resolved MachineConfig the cell ran (replay handle:
     *  triage repro capture serializes this, not the config name). */
    core::MachineConfig machine;
    RunResult result;
    /** Path of a captured .repro.json for this cell, if any
     *  (filled by triage::captureSweepFailures, empty otherwise). */
    std::string reproPath;

    bool
    converged() const
    {
        return result.halted && result.archMatch && result.error.ok();
    }
};

struct ChaosSweepReport
{
    std::vector<ChaosSweepOutcome> runs;
    std::size_t failures = 0; ///< runs that did not converge
    std::uint64_t totalInjections = 0;
    std::uint64_t totalChecks = 0;

    bool allConverged() const { return failures == 0; }

    /** One line per failing run plus a grid-level tally. */
    std::string summary() const;
};

/**
 * Run the full seed x config grid over one program. Failing cells
 * carry their structured SimError in the report; nothing aborts.
 */
ChaosSweepReport chaosSweep(const isa::Program &program,
                            const ChaosSweepParams &params);

/** One cell of the grid before it runs: identity plus the fully
 *  resolved config. */
struct SweepCell
{
    std::uint64_t seed = 0;
    std::string config;
    core::MachineConfig machine;
};

/**
 * Materialize the seed x config grid (config-major, seed-minor — the
 * historical serial order). Shared by the in-process chaosSweep and
 * the process-isolated campaign supervisor so both run the exact
 * same cells in the exact same order.
 */
std::vector<SweepCell> sweepCells(const ChaosSweepParams &params);

/**
 * Tally a report from per-cell outcomes (in grid order). The other
 * shared half of the chaosSweep path: a report assembled from
 * supervised worker results is byte-identical to the in-process one.
 */
ChaosSweepReport
assembleSweepReport(std::vector<ChaosSweepOutcome> runs);

} // namespace edge::sim

#endif // EDGE_SIM_SWEEP_HH
