/**
 * @file
 * Parallel execution of independent simulator runs. Every
 * (program, MachineConfig, max_cycles) cell of a sweep or bench grid
 * is an isolated deterministic computation: the run-level rngSeed in
 * the config fixes every stochastic decision, each job owns its own
 * Processor and StatSet, and the only shared state is the per-program
 * reference execution (RefExecutor + OracleDb), which RunPool
 * computes once per distinct program and then shares read-only.
 * Results come back in submission order, so a parallel grid is bit-
 * identical to the same grid run serially — `-j N` changes wall-clock
 * only, never output.
 */

#ifndef EDGE_SIM_RUN_POOL_HH
#define EDGE_SIM_RUN_POOL_HH

#include <atomic>
#include <functional>
#include <vector>

#include "sim/simulator.hh"

namespace edge::sim {

/** One independent run: a program under one config. */
struct RunJob
{
    /**
     * Program to run (not owned; must outlive runAll). Jobs sharing
     * the same pointer share one reference execution.
     */
    const isa::Program *program = nullptr;
    core::MachineConfig config;
    Cycle maxCycles = 500'000'000;
};

/**
 * Bounded retry with backoff for *transient* (host-level) failures —
 * today that is exactly SimError::Reason::HostDeadline, the
 * wall-clock guard. Deterministic failures (watchdog, invariant
 * violation, protocol panic, livelock, divergence) are properties of
 * (program, config, seed) and are NEVER retried: rerunning them
 * would burn time to reproduce the same bits. A cell that fails
 * deterministically is quarantined — reported as a structured row
 * while the rest of the grid keeps running.
 */
struct RetryPolicy
{
    /** Total attempts per cell (1 = no retry). */
    unsigned maxAttempts = 3;
    /** Sleep before the first retry; doubles on each further one. */
    unsigned backoffMs = 10;
    /**
     * Hard cap on the *total* milliseconds of backoff one cell may
     * accumulate across all its retries. Exponential doubling is
     * clipped against whatever budget remains, so a cell can never
     * stall a grid for more than this long in sleeps.
     */
    std::uint64_t maxTotalBackoffMs = 2'000;
    /**
     * Cooperative cancellation flag (not owned; may be null). A
     * backoff sleep polls it and aborts early — during shutdown no
     * cell sits in an un-cancellable sleep. When it becomes true the
     * cell's current result is accepted as-is, with no further
     * attempts. The campaign supervisor points this at its stop flag.
     */
    const std::atomic<bool> *cancel = nullptr;

    /** Should this result be retried at the given attempt number? */
    bool
    shouldRetry(const RunResult &result, unsigned attempt) const
    {
        return attempt < maxAttempts &&
               chaos::isTransient(result.error.reason) &&
               !(cancel && cancel->load(std::memory_order_relaxed));
    }
};

class RunPool
{
  public:
    /** @param threads worker count; 0 means all hardware threads */
    explicit RunPool(unsigned threads = 0);

    unsigned threads() const { return _threads; }

    /**
     * Run every job, concurrently, and return results indexed like
     * `jobs`. Distinct programs get their reference executions
     * computed first (also in parallel, one job per program); then
     * every cell runs as its own pool job. Run failures (watchdog,
     * invariant violation, protocol panic, divergence) are per-cell
     * data in RunResult — one bad cell never aborts the grid.
     * Transient host-level failures are retried per `retry`; the
     * accepted result's `retries` field reports how many times.
     */
    std::vector<RunResult> runAll(const std::vector<RunJob> &jobs,
                                  const RetryPolicy &retry = {});

    /**
     * Run many configs of one already-constructed Simulator without
     * rebuilding its reference execution (prepares it on first use).
     * The triage minimizer leans on this: each delta-debugging round
     * is a batch of masked-schedule candidate runs over one program.
     */
    std::vector<RunResult>
    runConfigs(Simulator &sim,
               const std::vector<core::MachineConfig> &configs,
               Cycle max_cycles = 500'000'000,
               const RetryPolicy &retry = {});

  private:
    RunResult runWithRetry(const std::function<RunResult()> &once,
                           const RetryPolicy &retry) const;

    unsigned _threads;
};

} // namespace edge::sim

#endif // EDGE_SIM_RUN_POOL_HH
