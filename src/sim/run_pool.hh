/**
 * @file
 * Parallel execution of independent simulator runs. Every
 * (program, MachineConfig, max_cycles) cell of a sweep or bench grid
 * is an isolated deterministic computation: the run-level rngSeed in
 * the config fixes every stochastic decision, each job owns its own
 * Processor and StatSet, and the only shared state is the per-program
 * reference execution (RefExecutor + OracleDb), which RunPool
 * computes once per distinct program and then shares read-only.
 * Results come back in submission order, so a parallel grid is bit-
 * identical to the same grid run serially — `-j N` changes wall-clock
 * only, never output.
 */

#ifndef EDGE_SIM_RUN_POOL_HH
#define EDGE_SIM_RUN_POOL_HH

#include <vector>

#include "sim/simulator.hh"

namespace edge::sim {

/** One independent run: a program under one config. */
struct RunJob
{
    /**
     * Program to run (not owned; must outlive runAll). Jobs sharing
     * the same pointer share one reference execution.
     */
    const isa::Program *program = nullptr;
    core::MachineConfig config;
    Cycle maxCycles = 500'000'000;
};

class RunPool
{
  public:
    /** @param threads worker count; 0 means all hardware threads */
    explicit RunPool(unsigned threads = 0);

    unsigned threads() const { return _threads; }

    /**
     * Run every job, concurrently, and return results indexed like
     * `jobs`. Distinct programs get their reference executions
     * computed first (also in parallel, one job per program); then
     * every cell runs as its own pool job. Run failures (watchdog,
     * invariant violation, protocol panic, divergence) are per-cell
     * data in RunResult — one bad cell never aborts the grid.
     */
    std::vector<RunResult> runAll(const std::vector<RunJob> &jobs);

  private:
    unsigned _threads;
};

} // namespace edge::sim

#endif // EDGE_SIM_RUN_POOL_HH
