/**
 * @file
 * Microarchitectural parameters of the EDGE core. Defaults follow
 * the public TRIPS prototype configuration: a 4x4 grid of execution
 * nodes, 8 reservation-station slots per node per frame (so a frame
 * holds one 128-instruction block), 8 frames (a 1024-instruction
 * window), a 1-cycle operand-network hop.
 */

#ifndef EDGE_CORE_PARAMS_HH
#define EDGE_CORE_PARAMS_HH

#include "common/types.hh"
#include "isa/opcode.hh"

namespace edge::core {

struct CoreParams
{
    unsigned rows = 4;
    unsigned cols = 4;
    unsigned slotsPerNode = 8;  ///< RS slots per node per frame
    unsigned numFrames = 8;     ///< blocks in flight (window/128)

    unsigned hopLatency = 1;    ///< operand network, cycles per hop
    unsigned fetchWidth = 16;   ///< instructions mapped per cycle
    unsigned regReadLatency = 1;
    unsigned regPortsPerBank = 2; ///< RF forwards per bank per cycle

    /** State-upgrade (commit wave) sends per node per cycle. */
    unsigned commitPortsPerNode = 2;
    /** Ablation: commit-wave propagation occupies the ALU instead. */
    bool commitWaveUsesAlu = false;
    /** Ablation: suppress re-sends whose value did not change. */
    bool squashIdenticalValues = true;

    // Execution latencies by functional-unit class.
    unsigned latIntAlu = 1;
    unsigned latIntMul = 3;
    unsigned latIntDiv = 12;
    unsigned latFpAlu = 4;
    unsigned latFpMul = 4;
    unsigned latFpDiv = 16;
    unsigned latCtrl = 1;
    unsigned latMemAddr = 1; ///< address generation for loads/stores

    /** Abort if no block commits for this many cycles. */
    Cycle watchdogCycles = 200000;

    /**
     * Livelock detector: cycles between activity-digest samples (0
     * disables). With the defaults a commit-free machine whose
     * per-interval activity repeats exactly is reported as Livelock
     * after interval * repeats cycles — well inside the watchdog
     * budget — while a fully drained machine (no activity) is left to
     * the watchdog and reported as a deadlock.
     */
    Cycle livelockInterval = 25000;
    /** Identical commit-free activity digests before firing. */
    unsigned livelockRepeats = 4;

    unsigned numNodes() const { return rows * cols; }

    unsigned
    execLatency(isa::Opcode op) const
    {
        if (isa::isMem(op))
            return latMemAddr;
        switch (isa::opInfo(op).fu) {
          case isa::FuClass::IntAlu: return latIntAlu;
          case isa::FuClass::IntMul: return latIntMul;
          case isa::FuClass::IntDiv: return latIntDiv;
          case isa::FuClass::FpAlu:  return latFpAlu;
          case isa::FuClass::FpMul:  return latFpMul;
          case isa::FuClass::FpDiv:  return latFpDiv;
          case isa::FuClass::Ctrl:   return latCtrl;
          case isa::FuClass::Mem:    return latMemAddr;
        }
        return 1;
    }
};

} // namespace edge::core

#endif // EDGE_CORE_PARAMS_HH
