/**
 * @file
 * One execution node of the grid: an integer/FP ALU fronted by
 * `slotsPerNode * numFrames` reservation-station slots. Implements
 * the node-side half of the DSRE protocol:
 *
 *  - an operand arrival with a *changed value* re-arms the slot for
 *    a full ALU re-execution (a speculative wave passing through);
 *  - an arrival that only upgrades Spec -> Final re-arms the slot
 *    for a cheap state-upgrade re-send (the commit wave), which by
 *    default uses a separate commit port rather than the ALU;
 *  - re-sends whose value and state match the last send are
 *    squashed (value-identity squash), configurable for ablation;
 *  - wave numbers are per producer-link monotonic: stale (lower
 *    wave) messages are ignored, Final is sticky.
 */

#ifndef EDGE_CORE_EXEC_NODE_HH
#define EDGE_CORE_EXEC_NODE_HH

#include <array>
#include <functional>
#include <vector>

#include "chaos/chaos.hh"
#include "common/stats.hh"
#include "core/params.hh"
#include "isa/instruction.hh"

namespace edge::core {

/** What an issued instruction sends; the processor routes it. */
struct NodeEvent
{
    enum class Kind : std::uint8_t
    {
        Result,       ///< value to the instruction's targets
        LoadRequest,  ///< address to the LSQ
        StoreResolve, ///< address + data to the LSQ
        Exit,         ///< branch outcome to the control unit
    };

    Kind kind = Kind::Result;
    Cycle when = 0; ///< completion time (message leaves the node)
    DynBlockSeq seq = 0;
    SlotId slot = 0;
    Lsid lsid = 0;
    Word value = 0; ///< result / store data / exit index
    Addr addr = 0;  ///< loads and stores
    ValState state = ValState::Spec;    ///< result / store *data* state
    ValState addrState = ValState::Spec; ///< store *address* state
    std::uint32_t wave = 0; ///< per-producer monotonic send count
    std::uint16_t depth = 0;
    bool statusOnly = false; ///< commit-wave upgrade (no new value)
    std::array<isa::Target, isa::kMaxTargets> targets{};
};

/** Aggregated (across nodes) execution statistics. */
struct NodeStats
{
    Counter &issues;      ///< ALU issues (first executions)
    Counter &reexecs;     ///< ALU issues that are DSRE re-fires
    Counter &upgrades;    ///< commit-wave state-upgrade re-sends
    Counter &squashes;    ///< re-sends suppressed by value identity
    Histogram &waveDepth; ///< propagation depth of each re-fire
};

class ExecNode
{
  public:
    using SendFn = std::function<void(const NodeEvent &)>;

    /**
     * @param chaos optional fault injector (not owned); only its
     *        compile-time-gated protocol *mutations* apply here
     * @param node_index this node's flat grid index, matched against
     *        ChaosParams::mutationNode
     */
    ExecNode(const CoreParams &params, NodeStats stats, SendFn send,
             chaos::ChaosEngine *chaos = nullptr,
             unsigned node_index = 0);

    /** Install one instruction into (frame, local slot). */
    void mapInst(unsigned frame, unsigned local, DynBlockSeq seq,
                 SlotId slot, const isa::Instruction &inst);

    /** Release every slot of the frame (commit or flush). */
    void clearFrame(unsigned frame);

    /**
     * An operand message arrived for (frame, local slot).
     * @return false if the message was stale (old wave) and dropped
     */
    bool deliver(unsigned frame, unsigned local, unsigned operand,
                 Word value, ValState state, std::uint32_t wave,
                 std::uint16_t depth);

    /** Issue up to one ALU op and the commit-port budget. */
    void tick(Cycle now);

    /** Number of occupied slots (tests / deadlock dumps). */
    unsigned occupancy() const;

    /** True if some slot could still make progress (debug dumps). */
    std::string debugState() const;

  private:
    struct RsEntry
    {
        bool valid = false;
        DynBlockSeq seq = 0;
        SlotId slot = 0;
        isa::Opcode op = isa::Opcode::MOVI;
        std::int64_t imm = 0;
        Lsid lsid = 0;
        std::uint8_t numOps = 0;
        std::array<isa::Target, isa::kMaxTargets> targets{};

        std::array<Word, isa::kMaxOperands> opVal{};
        std::array<ValState, isa::kMaxOperands> opState{};
        std::array<std::uint32_t, isa::kMaxOperands> opWave{};
        std::array<bool, isa::kMaxOperands> opSeen{};

        bool executed = false;
        bool dirtyValue = false; ///< needs a full re-execution
        bool dirtyState = false; ///< needs a state-upgrade re-send
        Word lastValue = 0;      ///< last sent value (loads: address)
        Word lastData = 0;       ///< stores: last sent data
        ValState lastState = ValState::Spec;
        ValState lastAddrState = ValState::Spec; ///< stores only
        std::uint32_t sendCount = 0; ///< outgoing wave counter
        Cycle lastSendWhen = 0; ///< upgrades may not overtake data
        std::uint16_t triggerDepth = 0;

        bool allSeen() const
        {
            for (unsigned k = 0; k < numOps; ++k)
                if (!opSeen[k])
                    return false;
            return true;
        }

        ValState
        inputState() const
        {
            ValState s = ValState::Final;
            for (unsigned k = 0; k < numOps; ++k)
                s = andState(s, opState[k]);
            return s;
        }
    };

    RsEntry &at(unsigned frame, unsigned local);

    /** Is the given protocol mutation active on this node? */
    bool mutated(chaos::Mutation m) const;

    /** Execute one entry on the ALU; emit its event. */
    void execute(Cycle now, RsEntry &e, bool is_reexec);

    /** Send the commit-wave upgrade for an entry (no ALU). */
    void upgrade(Cycle now, RsEntry &e);

    /** Build the outgoing event for an entry's current operands. */
    NodeEvent makeEvent(Cycle done, const RsEntry &e, Word value,
                        ValState state, std::uint16_t depth) const;

    const CoreParams &_p;
    NodeStats _stats;
    SendFn _send;
    chaos::ChaosEngine *_chaos;
    unsigned _nodeIndex;
    std::vector<RsEntry> _slots; ///< slotsPerNode * numFrames
};

} // namespace edge::core

#endif // EDGE_CORE_EXEC_NODE_HH
