/**
 * @file
 * One execution node of the grid: an integer/FP ALU fronted by
 * `slotsPerNode * numFrames` reservation-station slots. Implements
 * the node-side half of the DSRE protocol:
 *
 *  - an operand arrival with a *changed value* re-arms the slot for
 *    a full ALU re-execution (a speculative wave passing through);
 *  - an arrival that only upgrades Spec -> Final re-arms the slot
 *    for a cheap state-upgrade re-send (the commit wave), which by
 *    default uses a separate commit port rather than the ALU;
 *  - re-sends whose value and state match the last send are
 *    squashed (value-identity squash), configurable for ablation;
 *  - wave numbers are per producer-link monotonic: stale (lower
 *    wave) messages are ignored, Final is sticky.
 *
 * Reservation-station state is stored structure-of-arrays: the issue
 * scan walks two per-slot want-bitmaps (want-ALU, want-upgrade) kept
 * incrementally up to date by deliver/map/issue, so an idle node
 * answers hasWork() from a couple of words and a busy node's tick
 * touches only the slots that can actually issue — instead of
 * striding over ~100-byte cold slot objects every cycle.
 */

#ifndef EDGE_CORE_EXEC_NODE_HH
#define EDGE_CORE_EXEC_NODE_HH

#include <array>
#include <functional>
#include <vector>

#include "chaos/chaos.hh"
#include "common/stats.hh"
#include "core/params.hh"
#include "isa/instruction.hh"

namespace edge::core {

/** What an issued instruction sends; the processor routes it. */
struct NodeEvent
{
    enum class Kind : std::uint8_t
    {
        Result,       ///< value to the instruction's targets
        LoadRequest,  ///< address to the LSQ
        StoreResolve, ///< address + data to the LSQ
        Exit,         ///< branch outcome to the control unit
    };

    Kind kind = Kind::Result;
    Cycle when = 0; ///< completion time (message leaves the node)
    DynBlockSeq seq = 0;
    SlotId slot = 0;
    Lsid lsid = 0;
    Word value = 0; ///< result / store data / exit index
    Addr addr = 0;  ///< loads and stores
    ValState state = ValState::Spec;    ///< result / store *data* state
    ValState addrState = ValState::Spec; ///< store *address* state
    std::uint32_t wave = 0; ///< per-producer monotonic send count
    std::uint16_t depth = 0;
    bool statusOnly = false; ///< commit-wave upgrade (no new value)
    std::array<isa::Target, isa::kMaxTargets> targets{};
};

/** Aggregated (across nodes) execution statistics. */
struct NodeStats
{
    Counter &issues;      ///< ALU issues (first executions)
    Counter &reexecs;     ///< ALU issues that are DSRE re-fires
    Counter &upgrades;    ///< commit-wave state-upgrade re-sends
    Counter &squashes;    ///< re-sends suppressed by value identity
    Histogram &waveDepth; ///< propagation depth of each re-fire
};

class ExecNode
{
  public:
    using SendFn = std::function<void(const NodeEvent &)>;

    /**
     * @param chaos optional fault injector (not owned); only its
     *        compile-time-gated protocol *mutations* apply here
     * @param node_index this node's flat grid index, matched against
     *        ChaosParams::mutationNode
     */
    ExecNode(const CoreParams &params, NodeStats stats, SendFn send,
             chaos::ChaosEngine *chaos = nullptr,
             unsigned node_index = 0);

    /** Install one instruction into (frame, local slot). */
    void mapInst(unsigned frame, unsigned local, DynBlockSeq seq,
                 SlotId slot, const isa::Instruction &inst);

    /** Release every slot of the frame (commit or flush). */
    void clearFrame(unsigned frame);

    /**
     * An operand message arrived for (frame, local slot).
     * @return false if the message was stale (old wave) and dropped
     */
    bool deliver(unsigned frame, unsigned local, unsigned operand,
                 Word value, ValState state, std::uint32_t wave,
                 std::uint16_t depth);

    /**
     * Issue up to one ALU op and the commit-port budget.
     * @return true iff any slot issued (the node did work)
     */
    bool tick(Cycle now);

    /**
     * True if tick(now) would issue anything — i.e. some slot wants
     * the ALU or a commit-port upgrade. The event-driven engine skips
     * the node (and lets the cycle loop skip whole cycles) when every
     * node answers false. O(words of the want-bitmaps).
     */
    bool hasWork() const;

    /** Number of occupied slots (tests / deadlock dumps). */
    unsigned occupancy() const;

    /** True if some slot could still make progress (debug dumps). */
    std::string debugState() const;

  private:
    // Per-slot flag bits (_flags).
    static constexpr std::uint8_t kValid = 1u << 0;
    static constexpr std::uint8_t kExecuted = 1u << 1;
    static constexpr std::uint8_t kDirtyValue = 1u << 2;
    static constexpr std::uint8_t kDirtyState = 1u << 3;

    unsigned at(unsigned frame, unsigned local) const;

    bool allSeen(unsigned rs) const { return _seen[rs] == _full[rs]; }
    ValState inputState(unsigned rs) const;

    /** Re-derive the two want bits of slot `rs` from its flags. */
    void refreshWant(unsigned rs);

    /** Is the given protocol mutation active on this node? */
    bool mutated(chaos::Mutation m) const;

    /** Execute one slot on the ALU; emit its event. */
    void execute(Cycle now, unsigned rs, bool is_reexec);

    /** Send the commit-wave upgrade for a slot (no ALU). */
    void upgrade(Cycle now, unsigned rs);

    /** Build the outgoing event for a slot's current operands. */
    NodeEvent makeEvent(Cycle done, unsigned rs, Word value,
                        ValState state, std::uint16_t depth) const;

    const CoreParams &_p;
    NodeStats _stats;
    SendFn _send;
    chaos::ChaosEngine *_chaos;
    unsigned _nodeIndex;
    unsigned _numSlots; ///< slotsPerNode * numFrames

    // Structure-of-arrays reservation-station state, indexed by
    // rs = frame * slotsPerNode + local. The scan-hot fields (flags,
    // seen masks, seq for age ordering) are dense byte/word arrays;
    // operand values are flattened [rs * kMaxOperands + k].
    std::vector<std::uint8_t> _flags;
    std::vector<std::uint8_t> _seen; ///< operand-seen bitmask
    std::vector<std::uint8_t> _full; ///< (1 << numOps) - 1
    std::vector<std::uint8_t> _numOps;
    std::vector<DynBlockSeq> _seq;
    std::vector<SlotId> _slot;
    std::vector<isa::Opcode> _op;
    std::vector<std::int64_t> _imm;
    std::vector<Lsid> _lsid;
    std::vector<std::array<isa::Target, isa::kMaxTargets>> _targets;

    std::vector<Word> _opVal;
    std::vector<ValState> _opState;
    std::vector<std::uint32_t> _opWave;

    std::vector<Word> _lastValue; ///< last sent value (loads: address)
    std::vector<Word> _lastData;  ///< stores: last sent data
    std::vector<ValState> _lastState;
    std::vector<ValState> _lastAddrState; ///< stores only
    std::vector<std::uint32_t> _sendCount; ///< outgoing wave counter
    std::vector<Cycle> _lastSendWhen; ///< upgrades don't overtake data
    std::vector<std::uint16_t> _triggerDepth;

    // Wake bitmaps: bit rs set iff the slot is valid, all operands
    // seen, and it wants an ALU issue / a commit-port upgrade.
    std::vector<std::uint64_t> _wantAlu;
    std::vector<std::uint64_t> _wantUpgrade;
};

} // namespace edge::core

#endif // EDGE_CORE_EXEC_NODE_HH
