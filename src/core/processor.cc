#include "core/processor.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/scheduler.hh"

static const bool kTrace = std::getenv("EDGE_TRACE") != nullptr;

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::core {

Processor::Processor(const MachineConfig &config,
                     const isa::Program &program,
                     const pred::OracleDb *oracle, StatSet &stats,
                     const ProgramImage *image)
    : _cfg(config),
      _prog(program),
      _oracle(oracle),
      _stats(stats),
      _trace(config.traceDepth),
      _livelock(config.core.livelockInterval,
                config.core.livelockRepeats),
      _statCommittedBlocks(stats.counter("core.committed_blocks",
                                         "blocks committed")),
      _statCommittedInsts(stats.counter("core.committed_insts",
                                        "instructions committed")),
      _statCtrlFlushes(stats.counter("core.ctrl_flushes",
                                     "flushes from exit mispredicts")),
      _statViolFlushes(stats.counter(
          "core.viol_flushes", "flushes from dependence violations")),
      _statFetchedBlocks(stats.counter("core.fetched_blocks",
                                       "blocks fetched and mapped"))
{
    fatal_if(_cfg.core.numNodes() * _cfg.core.slotsPerNode <
                 isa::kMaxBlockInsts,
             "grid capacity below the maximum block size");
    fatal_if(_cfg.policy == pred::DepPolicy::Oracle && !oracle,
             "the oracle policy needs an OracleDb");

    compiler::GridGeom geom{_cfg.core.rows, _cfg.core.cols,
                            _cfg.core.slotsPerNode};
    if (image) {
        // The shared image already validated the program and caches
        // placements per geometry; skip the per-Processor work.
        fatal_if(&image->program() != &program,
                 "program image does not wrap this program");
        _placements = &image->placements(geom);
    } else {
        std::string why;
        fatal_if(!program.validate(&why), "invalid program: %s",
                 why.c_str());
        _ownPlacements.reserve(program.numBlocks());
        for (std::size_t b = 0; b < program.numBlocks(); ++b) {
            _ownPlacements.push_back(
                compiler::placeBlock(program.block(
                                         static_cast<BlockId>(b)),
                                     geom));
        }
        _placements = &_ownPlacements;
    }

    _localIdxPool = _arena.allocArray<std::uint16_t>(
        static_cast<std::size_t>(_cfg.core.numFrames) *
        isa::kMaxBlockInsts);
    _nodeFill.resize(_cfg.core.numNodes(), 0);

    for (const auto &init : program.memImage())
        _dmem.writeBytes(init.base, init.bytes.data(), init.bytes.size());

    if (_cfg.chaos.enabled() ||
        _cfg.chaos.mutation != chaos::Mutation::None) {
        _chaos = std::make_unique<chaos::ChaosEngine>(_cfg.chaos);
    }
    if (_cfg.checkInvariants) {
        _check = std::make_unique<chaos::InvariantChecker>(
            _cfg.core.squashIdenticalValues,
            _cfg.lsq.recovery == lsq::Recovery::Dsre,
            [this](Addr a, unsigned bytes) {
                return _dmem.read(a, bytes);
            });
    }

    _hier =
        std::make_unique<mem::Hierarchy>(_cfg.mem, stats, _chaos.get());

    net::MeshParams mp;
    mp.geom = {_cfg.core.rows + 1, _cfg.core.cols + 1};
    mp.hopLatency = _cfg.core.hopLatency;
    mp.chaos = _chaos.get();
    _mesh = std::make_unique<net::Mesh<Msg>>(mp, stats);
    net::MeshParams gp = mp;
    gp.statPrefix = "gcn";
    _gcn = std::make_unique<net::Mesh<Msg>>(gp, stats);

    _policy = pred::makeDependencePredictor(_cfg.policy, oracle, stats);
    _nbp = std::make_unique<pred::NextBlockPredictor>(_cfg.nbp, stats);

    _regs = std::make_unique<RegUnit>(
        _cfg.core, program.initRegs(), stats,
        [this](const RegForward &f) { routeRegForward(f); });

    _lsq = std::make_unique<lsq::LoadStoreQueue>(
        _cfg.lsq, _hier.get(), &_dmem, _policy.get(), stats,
        [this](const lsq::LoadReply &r) { routeLoadReply(r); },
        [this](const lsq::Violation &v) { onViolation(v); },
        _chaos.get(), _check.get());

    NodeStats ns{
        stats.counter("core.alu_issues", "ALU issues (all executions)"),
        stats.counter("core.alu_reexecs", "DSRE re-executions"),
        stats.counter("core.upgrades", "commit-wave upgrade sends"),
        stats.counter("core.squashes", "value-identity squashes"),
        stats.histogram("core.wave_depth",
                        "propagation depth of re-executions"),
    };
    for (unsigned n = 0; n < _cfg.core.numNodes(); ++n) {
        _nodes.push_back(std::make_unique<ExecNode>(
            _cfg.core, ns,
            [this, n](const NodeEvent &ev) { routeNodeEvent(ev, n); },
            _chaos.get(), n));
    }

    for (unsigned f = 0; f < _cfg.core.numFrames; ++f)
        _freeFrames.push_back(_cfg.core.numFrames - 1 - f);
    _nextFetch = program.entry();
}

const std::vector<Word> &
Processor::archRegs() const
{
    return _regs->archRegs();
}

net::Coord
Processor::gridCoord(unsigned node) const
{
    return {static_cast<std::uint16_t>(node / _cfg.core.cols + 1),
            static_cast<std::uint16_t>(node % _cfg.core.cols + 1)};
}

net::Coord
Processor::rfCoord(unsigned reg) const
{
    return {0, static_cast<std::uint16_t>(reg % _cfg.core.cols + 1)};
}

net::Coord
Processor::lsqCoord(Addr addr) const
{
    unsigned bank = _hier->bankOf(addr);
    return {static_cast<std::uint16_t>(bank % _cfg.core.rows + 1), 0};
}

Addr
Processor::codeAddr(BlockId block) const
{
    // Code lives in its own region; a block occupies 512 bytes of
    // instruction storage (128 x 4 bytes) in the I-cache's eyes.
    return 0x40000000ull + static_cast<Addr>(block) * 512;
}

Processor::BlockCtx *
Processor::findCtx(DynBlockSeq seq)
{
    for (BlockCtx &ctx : _inflight)
        if (ctx.seq == seq)
            return &ctx;
    return nullptr;
}

void
Processor::meshSend(Cycle when, net::Coord src, net::Coord dst,
                    const Msg &msg)
{
    if (msg.statusOnly)
        _gcn->send(when, src, dst, msg);
    else
        _mesh->send(when, src, dst, msg);
}

void
Processor::sendToTargets(
    Cycle when, net::Coord src, DynBlockSeq seq,
    const std::array<isa::Target, isa::kMaxTargets> &targets, Word value,
    ValState state, std::uint32_t wave, std::uint16_t depth,
    bool status_only, bool echo)
{
    BlockCtx *ctx = findCtx(seq);
    panic_if(!ctx, "sendToTargets for a flushed block");
    for (const isa::Target &t : targets) {
        if (!t.valid())
            continue;
        Msg m;
        m.seq = seq;
        m.value = value;
        m.state = state;
        m.wave = wave;
        m.depth = depth;
        m.statusOnly = status_only;
        m.echo = echo;
        if (t.kind == isa::TargetKind::Operand) {
            m.kind = Msg::Kind::Operand;
            m.slot = t.index;
            m.operand = t.operand;
            unsigned node = ctx->placement->nodeOf[t.index];
            meshSend(when, src, gridCoord(node), m);
        } else {
            m.kind = Msg::Kind::WriteVal;
            m.writeIdx = t.index;
            unsigned reg = ctx->block->writes()[t.index].reg;
            meshSend(when, src, rfCoord(reg), m);
        }
    }
}

void
Processor::routeNodeEvent(const NodeEvent &ev, unsigned node)
{
    net::Coord src = gridCoord(node);
    switch (ev.kind) {
      case NodeEvent::Kind::Result:
        sendToTargets(ev.when, src, ev.seq, ev.targets, ev.value,
                      ev.state, ev.wave, ev.depth, ev.statusOnly,
                      false);
        return;
      case NodeEvent::Kind::LoadRequest: {
        Msg m;
        m.kind = Msg::Kind::LoadReq;
        m.seq = ev.seq;
        m.slot = ev.slot;
        m.lsid = ev.lsid;
        m.addr = ev.addr;
        m.state = ev.state;
        m.wave = ev.wave;
        m.depth = ev.depth;
        m.statusOnly = ev.statusOnly;
        m.targets = ev.targets;
        meshSend(ev.when, src, lsqCoord(ev.addr), m);
        return;
      }
      case NodeEvent::Kind::StoreResolve: {
        Msg m;
        m.kind = Msg::Kind::StoreResolve;
        m.seq = ev.seq;
        m.slot = ev.slot;
        m.lsid = ev.lsid;
        m.addr = ev.addr;
        m.value = ev.value;
        m.state = ev.state;
        m.addrState = ev.addrState;
        m.wave = ev.wave;
        m.depth = ev.depth;
        m.statusOnly = ev.statusOnly;
        meshSend(ev.when, src, lsqCoord(ev.addr), m);
        return;
      }
      case NodeEvent::Kind::Exit: {
        Msg m;
        m.kind = Msg::Kind::ExitVal;
        m.seq = ev.seq;
        m.value = ev.value;
        m.state = ev.state;
        m.wave = ev.wave;
        m.depth = ev.depth;
        m.statusOnly = ev.statusOnly;
        meshSend(ev.when, src, ctrlCoord(), m);
        return;
      }
    }
}

void
Processor::routeLoadReply(const lsq::LoadReply &reply)
{
    sendToTargets(reply.when, lsqCoord(reply.addr), reply.seq,
                  reply.targets, reply.value, reply.state, reply.wave,
                  reply.depth, reply.statusOnly, reply.echo);
}

void
Processor::routeRegForward(const RegForward &fwd)
{
    sendToTargets(fwd.when, rfCoord(fwd.reg), fwd.readerSeq, fwd.targets,
                  fwd.value, fwd.state, fwd.wave, fwd.depth,
                  fwd.statusOnly, false);
}

void
Processor::deliverMsg(Cycle now, const Msg &msg)
{
    _trace.push({now, chaos::TraceEvent::Kind::Deliver, msg.seq,
                 msg.slot, msg.wave, msg.value,
                 msg.state == ValState::Final});
    if (_check && findCtx(msg.seq)) {
        using Site = chaos::InvariantChecker::Delivery::Site;
        chaos::InvariantChecker::Delivery d;
        d.seq = msg.seq;
        d.value = msg.value;
        d.addr = msg.addr;
        d.state = msg.state;
        d.addrState = msg.addrState;
        d.wave = msg.wave;
        d.statusOnly = msg.statusOnly;
        d.echo = msg.echo;
        d.cycle = now;
        switch (msg.kind) {
          case Msg::Kind::Operand:
            d.site = Site::NodeOperand;
            d.a = msg.slot;
            d.b = msg.operand;
            break;
          case Msg::Kind::WriteVal:
            d.site = Site::RegWrite;
            d.a = msg.writeIdx;
            break;
          case Msg::Kind::LoadReq:
            d.site = Site::LsqLoad;
            d.a = msg.lsid;
            break;
          case Msg::Kind::StoreResolve:
            d.site = Site::LsqStore;
            d.a = msg.lsid;
            break;
          case Msg::Kind::ExitVal:
            d.site = Site::Exit;
            break;
        }
        _check->onDelivery(d);
    }
    switch (msg.kind) {
      case Msg::Kind::Operand: {
        BlockCtx *ctx = findCtx(msg.seq);
        if (!ctx)
            return; // flushed
        unsigned node = ctx->placement->nodeOf[msg.slot];
        _nodes[node]->deliver(ctx->frame, ctx->localIdx[msg.slot],
                              msg.operand, msg.value, msg.state,
                              msg.wave, msg.depth);
        return;
      }
      case Msg::Kind::WriteVal:
        _regs->writeArrived(now, msg.seq, msg.writeIdx, msg.value,
                            msg.state, msg.wave, msg.depth);
        return;
      case Msg::Kind::LoadReq:
        _lsq->loadRequest(now, msg.seq, msg.lsid, msg.addr, msg.state,
                          msg.wave, msg.depth, msg.targets, msg.slot);
        return;
      case Msg::Kind::StoreResolve:
        _lsq->storeResolve(now, msg.seq, msg.lsid, msg.addr, msg.value,
                           msg.addrState, msg.state, msg.wave,
                           msg.depth);
        return;
      case Msg::Kind::ExitVal:
        handleExit(now, msg);
        return;
    }
}

void
Processor::handleExit(Cycle now, const Msg &msg)
{
    BlockCtx *ctx = findCtx(msg.seq);
    if (!ctx)
        return; // flushed
    if (msg.wave <= ctx->exitWave)
        return; // stale wave
    ctx->exitWave = msg.wave;

    bool value_changed = !ctx->exitSeen || ctx->exitValue != msg.value;
    panic_if(ctx->exitSeen && ctx->exitState == ValState::Final &&
                 value_changed,
             "protocol violation: Final exit changed value");
    ctx->exitSeen = true;
    ctx->exitValue = msg.value;
    if (msg.state == ValState::Final)
        ctx->exitState = ValState::Final;

    unsigned actual = static_cast<unsigned>(
        ctx->exitValue % ctx->block->exits().size());
    if (actual == ctx->fetchedExit)
        return; // the fetch chain already follows this exit

    // Control misspeculation: the DSRE protocol cannot selectively
    // re-execute across a wrong control edge, so flush younger.
    ++_statCtrlFlushes;
    DynBlockSeq seq = ctx->seq;
    std::uint64_t arch_idx = ctx->archIdx;
    std::uint64_t snapshot = ctx->historySnapshot;
    BlockId succ = ctx->block->exits()[actual];

    flushFrom(seq + 1);
    // flushFrom may invalidate ctx? It flushes strictly younger
    // blocks, so ctx survives; refresh anyway for clarity.
    ctx = findCtx(seq);
    panic_if(!ctx, "exit owner vanished during flush");
    ctx->fetchedExit = actual;

    _nbp->restoreHistory(snapshot);
    _nbp->pushSpeculativeHistory(actual);
    redirectFetch(succ, arch_idx + 1);
}

void
Processor::onViolation(const lsq::Violation &violation)
{
    // Only flush recovery routes violations here (DSRE re-sends).
    BlockCtx *ctx = findCtx(violation.loadSeq);
    if (!ctx)
        return; // already squashed by an earlier violation
    _trace.push({_cycle, chaos::TraceEvent::Kind::Violation,
                 violation.loadSeq, violation.loadLsid});
    ++_statViolFlushes;
    BlockId blk = ctx->blockId;
    std::uint64_t arch_idx = ctx->archIdx;
    _nbp->restoreHistory(ctx->historySnapshot);
    flushFrom(violation.loadSeq);
    redirectFetch(blk, arch_idx);
}

void
Processor::flushFrom(DynBlockSeq from_seq)
{
    _trace.push({_cycle, chaos::TraceEvent::Kind::Flush, from_seq});
    while (!_inflight.empty() && _inflight.back().seq >= from_seq) {
        BlockCtx &ctx = _inflight.back();
        for (auto &node : _nodes)
            node->clearFrame(ctx.frame);
        _freeFrames.push_back(ctx.frame);
        _inflight.pop_back();
    }
    _lsq->flushFrom(from_seq);
    _regs->flushFrom(from_seq);
    _fetchBusy = false; // cancel any in-progress fetch
    _fetchHalted = false;
}

void
Processor::redirectFetch(BlockId next, std::uint64_t arch_idx)
{
    if (next == isa::kHaltBlock) {
        _fetchHalted = true;
        return;
    }
    _nextFetch = next;
    _nextArchIdx = arch_idx;
    _fetchHalted = false;
}

bool
Processor::fetchTick(Cycle now)
{
    if (_halted)
        return false;
    if (_fetchBusy) {
        if (now >= _fetchReady && !_freeFrames.empty()) {
            mapFetchedBlock(now);
            return true;
        }
        return false;
    }
    if (_fetchHalted || _freeFrames.empty())
        return false;
    _fetchBlock = _nextFetch;
    _fetchBusy = true;
    Cycle ic = _hier->instFetch(now, codeAddr(_fetchBlock));
    auto n = static_cast<unsigned>(
        _prog.block(_fetchBlock).insts().size());
    _fetchReady =
        ic + (n + _cfg.core.fetchWidth - 1) / _cfg.core.fetchWidth;
    return true;
}

void
Processor::mapFetchedBlock(Cycle now)
{
    unsigned frame = _freeFrames.back();
    _freeFrames.pop_back();

    BlockId bid = _fetchBlock;
    const isa::Block &b = _prog.block(bid);

    BlockCtx ctx;
    ctx.seq = _nextSeq++;
    ctx.blockId = bid;
    ctx.archIdx = _nextArchIdx++;
    ctx.frame = frame;
    ctx.block = &b;
    ctx.placement = &(*_placements)[bid];
    // The frame's fixed region of the arena pool: frames recycle out
    // of order (flush vs. commit), so the pool is keyed by frame, not
    // carved per block.
    ctx.localIdx =
        _localIdxPool +
        static_cast<std::size_t>(frame) * isa::kMaxBlockInsts;

    std::fill(_nodeFill.begin(), _nodeFill.end(), 0);
    for (std::size_t s = 0; s < b.insts().size(); ++s) {
        unsigned node = ctx.placement->nodeOf[s];
        std::uint16_t local = _nodeFill[node]++;
        panic_if(local >= _cfg.core.slotsPerNode,
                 "placement overflows node %u", node);
        ctx.localIdx[s] = local;
        _nodes[node]->mapInst(frame, local, ctx.seq,
                              static_cast<SlotId>(s), b.insts()[s]);
    }

    unsigned e = std::min<unsigned>(
        _nbp->predict(bid),
        static_cast<unsigned>(b.exits().size()) - 1);
    ctx.predictedExit = ctx.fetchedExit = e;
    ctx.historySnapshot = _nbp->pushSpeculativeHistory(e);

    BlockId succ = b.exits()[e];
    DynBlockSeq seq = ctx.seq;
    if (kTrace && seq < 40)
        std::fprintf(stderr, "map seq=%llu blk=%u cyc=%llu\n",
                     (unsigned long long)seq, bid,
                     (unsigned long long)now);
    // The context must be visible before the LSQ / register unit
    // map the block: register reads can forward immediately.
    _inflight.push_back(std::move(ctx));
    ++_statFetchedBlocks;
    _lsq->mapBlock(seq, _inflight.back().archIdx, bid, b);
    _regs->mapBlock(now, seq, b);

    if (succ == isa::kHaltBlock)
        _fetchHalted = true;
    else
        _nextFetch = succ;
    _fetchBusy = false;
}

bool
Processor::commitTick(Cycle now)
{
    if (_inflight.empty())
        return false;
    BlockCtx &ctx = _inflight.front();
    bool need_final = _cfg.lsq.recovery == lsq::Recovery::Dsre;

    bool exit_ok = ctx.exitSeen &&
                   (!need_final || ctx.exitState == ValState::Final);
    bool writes_ok = _regs->blockWritesFinal(ctx.seq, need_final);
    bool mem_ok = _lsq->blockMemFinal(ctx.seq);
    if (kTrace) {
        if (exit_ok && !ctx.dbgExitOk) ctx.dbgExitOk = now;
        if (writes_ok && !ctx.dbgWritesOk) ctx.dbgWritesOk = now;
        if (mem_ok && !ctx.dbgMemOk) ctx.dbgMemOk = now;
    }
    if (!exit_ok || !writes_ok || !mem_ok)
        return false;

    auto actual = static_cast<unsigned>(
        ctx.exitValue % ctx.block->exits().size());
    panic_if(actual != ctx.fetchedExit,
             "committing block whose exit disagrees with the fetch "
             "chain (exit %u vs %u)", actual, ctx.fetchedExit);

    if (_cfg.checkCommittedPath && _oracle &&
        ctx.archIdx < _oracle->numBlocks()) {
        panic_if(_oracle->blockAt(ctx.archIdx) != ctx.blockId,
                 "committed path diverges from the reference at "
                 "architectural block %llu",
                 static_cast<unsigned long long>(ctx.archIdx));
        panic_if(_oracle->exitAt(ctx.archIdx) != actual,
                 "committed exit diverges from the reference at "
                 "architectural block %llu",
                 static_cast<unsigned long long>(ctx.archIdx));
    }

    _nbp->update(ctx.blockId, actual, ctx.historySnapshot);
    _nbp->recordOutcome(actual == ctx.predictedExit);

    _regs->commitBlock(ctx.seq);
    _lsq->commitBlock(now, ctx.seq);
    for (auto &node : _nodes)
        node->clearFrame(ctx.frame);
    _freeFrames.push_back(ctx.frame);

    if (kTrace && ctx.seq < 40)
        std::fprintf(stderr,
                     "commit seq=%llu cyc=%llu exitOk=%llu "
                     "writesOk=%llu memOk=%llu\n",
                     (unsigned long long)ctx.seq,
                     (unsigned long long)now,
                     (unsigned long long)ctx.dbgExitOk,
                     (unsigned long long)ctx.dbgWritesOk,
                     (unsigned long long)ctx.dbgMemOk);
    _trace.push({now, chaos::TraceEvent::Kind::Commit, ctx.seq, 0, 0,
                 ctx.exitValue, true});
    ++_statCommittedBlocks;
    _statCommittedInsts += ctx.block->insts().size();
    ++_committedBlocks;
    _committedInsts += ctx.block->insts().size();
    _lastCommit = now;

    BlockId succ = ctx.block->exits()[actual];
    _inflight.pop_front();

    if (succ == isa::kHaltBlock)
        _halted = true;
    return true;
}

std::string
Processor::machineDump(Cycle now)
{
    std::string dump = strfmt(
        "no commit for %llu cycles (cycle %llu); committed %llu; "
        "fetchBusy=%d fetchHalted=%d halted=%d freeFrames=%zu "
        "nextFetch=%u mesh=%zu; in flight:\n",
        static_cast<unsigned long long>(now - _lastCommit),
        static_cast<unsigned long long>(now),
        static_cast<unsigned long long>(_committedBlocks), _fetchBusy,
        _fetchHalted, _halted, _freeFrames.size(), _nextFetch,
        _mesh->inFlight());
    dump += strfmt("  fetchBlock=%u fetchReady=%llu\n", _fetchBlock,
                   static_cast<unsigned long long>(_fetchReady));
    for (const BlockCtx &ctx : _inflight) {
        dump += strfmt(
            "  seq %llu block %u (%s) frame %u exitSeen=%d\n",
            static_cast<unsigned long long>(ctx.seq), ctx.blockId,
            ctx.block->name().c_str(), ctx.frame, ctx.exitSeen);
    }
    if (!_inflight.empty()) {
        const BlockCtx &o = _inflight.front();
        bool nf = _cfg.lsq.recovery == lsq::Recovery::Dsre;
        dump += strfmt(
            "oldest: exitSeen=%d exitFinal=%d writesOk=%d memOk=%d\n",
            o.exitSeen, o.exitState == ValState::Final,
            _regs->blockWritesFinal(o.seq, nf),
            _lsq->blockMemFinal(o.seq));
    }
    dump += strfmt("lsq non-final entries:\n%s",
                   _lsq->debugState().c_str());
    for (unsigned n = 0; n < _nodes.size(); ++n) {
        std::string s = _nodes[n]->debugState();
        if (!s.empty())
            dump += strfmt("node %u:\n%s", n, s.c_str());
    }
    return dump;
}

chaos::SimError
Processor::watchdogDump(Cycle now)
{
    chaos::SimError err;
    err.reason = chaos::SimError::Reason::Watchdog;
    err.invariant = "commit-progress";
    err.message = "deadlock watchdog fired:\n" + machineDump(now);
    err.cycle = now;
    if (!_inflight.empty())
        err.seq = _inflight.front().seq;
    err.trace = _trace.snapshot();
    return err;
}

chaos::SimError
Processor::livelockDump(Cycle now)
{
    chaos::SimError err;
    err.reason = chaos::SimError::Reason::Livelock;
    err.invariant = "forward-progress";
    err.message = strfmt(
        "livelock detected: the per-interval activity digest repeated "
        "%u times (sample interval %llu cycles) without a commit — "
        "the machine is exchanging waves but making no architectural "
        "progress:\n",
        _livelock.streak() + 1,
        static_cast<unsigned long long>(_livelock.interval()));
    err.message += machineDump(now);
    err.cycle = now;
    if (!_inflight.empty())
        err.seq = _inflight.front().seq;
    err.trace = _trace.snapshot();
    return err;
}

std::uint64_t
Processor::activityDigest(bool *active)
{
    const std::uint64_t cur[4] = {
        _stats.counterValue("net.delivered"),
        _stats.counterValue("gcn.delivered"),
        _stats.counterValue("core.alu_issues"),
        _stats.counterValue("lsq.resends"),
    };
    std::uint64_t digest = 0;
    std::uint64_t total = 0;
    for (unsigned i = 0; i < 4; ++i) {
        std::uint64_t delta = cur[i] - _llPrev[i];
        _llPrev[i] = cur[i];
        total += delta;
        digest = chaos::digestMix(digest, delta);
    }
    digest = chaos::digestMix(digest, _mesh->inFlight());
    digest = chaos::digestMix(digest, _gcn->inFlight());
    total += _mesh->inFlight() + _gcn->inFlight();
    *active = total != 0;
    return digest;
}

bool
Processor::wallDeadlineHit(Result &res)
{
    if (_cfg.wallDeadlineMs == 0)
        return false;
    // The clock read is amortised over 4096 *loop iterations*, not a
    // cycle-number mask: the event engine skips cycle numbers, so a
    // `(_cycle & 0xfff) == 0` gate could be stepped over forever.
    if ((_wallPoll++ & 0xfff) != 0)
        return false;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - _wallStart)
                       .count();
    if (static_cast<std::uint64_t>(elapsed) < _cfg.wallDeadlineMs)
        return false;
    res.error.reason = chaos::SimError::Reason::HostDeadline;
    res.error.message = strfmt(
        "host wall-clock deadline of %llu ms exceeded after %lld ms "
        "at cycle %llu",
        static_cast<unsigned long long>(_cfg.wallDeadlineMs),
        static_cast<long long>(elapsed),
        static_cast<unsigned long long>(_cycle));
    res.error.cycle = _cycle;
    res.error.trace = _trace.snapshot();
    return true;
}

void
Processor::runTick(Cycle max_cycles, Result &res)
{
    while (!_halted && _cycle < max_cycles) {
        _mesh->deliver(_cycle, [this](net::Coord, Msg &&m) {
            deliverMsg(_cycle, m);
        });
        _gcn->deliver(_cycle, [this](net::Coord, Msg &&m) {
            deliverMsg(_cycle, m);
        });
        for (auto &node : _nodes)
            node->tick(_cycle);
        fetchTick(_cycle);
        commitTick(_cycle);
        if (_cycle - _lastCommit > _cfg.core.watchdogCycles) {
            res.error = watchdogDump(_cycle);
            break;
        }
        if (_livelock.due(_cycle)) {
            bool active = false;
            std::uint64_t digest = activityDigest(&active);
            if (_livelock.sample(_committedBlocks, digest, active)) {
                res.error = livelockDump(_cycle);
                break;
            }
        }
        if (wallDeadlineHit(res))
            break;
        ++_cycle;
    }
}

void
Processor::runEvent(Cycle max_cycles, Result &res)
{
    // Wake-list engine. Every cycle that the ticking loop would have
    // processed *non-inertly* is either (a) a mesh/GCN arrival cycle,
    // (b) the cycle after an active one (local state changed, so
    // fetch/commit/nodes may act), or (c) a registered wake (fetch
    // completion, watchdog fire, livelock sample). Everything else is
    // provably inert — node ticks with no want-bits, fetch with no
    // state change, commit with unchanged finality have zero side
    // effects — so skipping those cycles is observably identical to
    // ticking through them (see DESIGN.md "Event-driven cycle
    // engine"). Stale wakes merely cause one inert processed cycle.
    Scheduler sched;
    sched.wakeAt(_lastCommit + _cfg.core.watchdogCycles + 1);
    if (_livelock.enabled())
        sched.wakeAt(_livelock.interval());
    if (_fetchBusy)
        sched.wakeAt(_fetchReady);

    while (!_halted && _cycle < max_cycles) {
        bool active = false;
        _mesh->deliver(_cycle, [this, &active](net::Coord, Msg &&m) {
            active = true;
            deliverMsg(_cycle, m);
        });
        _gcn->deliver(_cycle, [this, &active](net::Coord, Msg &&m) {
            active = true;
            deliverMsg(_cycle, m);
        });
        for (auto &node : _nodes)
            if (node->hasWork())
                active |= node->tick(_cycle);
        if (fetchTick(_cycle))
            active = true;
        if (_fetchBusy)
            sched.wakeAt(_fetchReady);
        if (commitTick(_cycle)) {
            active = true;
            // The watchdog deadline moved: it fires the first cycle
            // where now - lastCommit exceeds the budget.
            sched.wakeAt(_lastCommit + _cfg.core.watchdogCycles + 1);
        }
        if (_cycle - _lastCommit > _cfg.core.watchdogCycles) {
            res.error = watchdogDump(_cycle);
            break;
        }
        if (_livelock.due(_cycle)) {
            bool ll_active = false;
            std::uint64_t digest = activityDigest(&ll_active);
            if (_livelock.sample(_committedBlocks, digest, ll_active)) {
                res.error = livelockDump(_cycle);
                break;
            }
            // Keep the sample chain alive: every multiple of the
            // interval must be processed, exactly as the tick loop
            // visits them.
            sched.wakeAt(_cycle + _livelock.interval());
        }
        if (wallDeadlineHit(res))
            break;

        Cycle next = _cycle + 1;
        if (!active) {
            Cycle wake = std::min(
                sched.nextAtOrAfter(next),
                std::min(_mesh->nextArrival(), _gcn->nextArrival()));
            next = std::max(next, std::min(wake, max_cycles));
        }
        _cycle = next;
    }
}

Processor::Result
Processor::run(Cycle max_cycles)
{
    Result res;
    _wallStart = std::chrono::steady_clock::now();
    _wallPoll = 0;
    // Graceful degradation: a watchdog timeout, a livelock, a missed
    // wall-clock deadline, a protocol panic or an invariant-checker
    // failure stops the run and surfaces as a structured report
    // instead of aborting the process.
    try {
        if (_cfg.engine == EngineKind::Tick)
            runTick(max_cycles, res);
        else
            runEvent(max_cycles, res);
    } catch (const chaos::InvariantFailure &f) {
        res.error.reason = chaos::SimError::Reason::InvariantViolation;
        res.error.invariant = f.invariant();
        res.error.message = f.what();
        res.error.cycle = f.cycle();
        res.error.seq = f.seq();
        res.error.trace = _trace.snapshot();
    } catch (const SimFailure &f) {
        res.error.reason = chaos::SimError::Reason::ProtocolPanic;
        res.error.message = f.what();
        res.error.cycle = _cycle;
        res.error.trace = _trace.snapshot();
    }
    res.cycles = _cycle;
    res.committedBlocks = _committedBlocks;
    res.committedInsts = _committedInsts;
    res.halted = _halted && res.error.ok();
    return res;
}

} // namespace edge::core
