/**
 * @file
 * A shared, immutable program image: validation and static placement
 * are computed once per distinct program and shared read-only across
 * every Processor instance in a sweep cell. Before this existed each
 * Processor re-validated the program and re-placed every block —
 * identical work repeated for all N configs x M seeds of a grid.
 *
 * Placements depend on the grid geometry (rows, cols, slotsPerNode),
 * which parameter sweeps do vary, so the image caches one placement
 * vector per distinct geometry. The cache is mutex-guarded and the
 * returned references are stable, so concurrent runShared() jobs can
 * share one image safely.
 */

#ifndef EDGE_CORE_PROGRAM_IMAGE_HH
#define EDGE_CORE_PROGRAM_IMAGE_HH

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "compiler/placement.hh"
#include "isa/program.hh"

namespace edge::core {

class ProgramImage
{
  public:
    /**
     * Validate `program` once (fatal if invalid). The program is
     * referenced, not copied: it must outlive the image.
     */
    explicit ProgramImage(const isa::Program &program);

    const isa::Program &program() const { return _prog; }

    /**
     * Placements for every static block under `geom`, computed on
     * first request per distinct geometry and cached. Thread-safe;
     * the returned reference stays valid for the image's lifetime.
     */
    const std::vector<compiler::Placement> &
    placements(const compiler::GridGeom &geom) const;

  private:
    static std::uint64_t geomKey(const compiler::GridGeom &geom);

    const isa::Program &_prog;
    mutable std::mutex _mu;
    mutable std::map<std::uint64_t,
                     std::unique_ptr<std::vector<compiler::Placement>>>
        _byGeom;
};

} // namespace edge::core

#endif // EDGE_CORE_PROGRAM_IMAGE_HH
