/**
 * @file
 * Wake-list scheduler for the event-driven cycle engine: a calendar
 * wheel of pending wake-up cycles plus a min-heap overflow for wakes
 * beyond the wheel's horizon. Components register the cycles at
 * which they could next do work (fetch completion, watchdog fire,
 * livelock sample); the run loop jumps straight to the earliest wake
 * instead of ticking through dead cycles.
 *
 * Wakes are idempotent markers ("something may happen at cycle c"),
 * not event payloads — registering the same cycle twice is free, and
 * a stale wake merely causes one processed-but-inert cycle, which is
 * observably identical to the ticking loop by construction. The
 * near window (1024 cycles) covers every latency in the machine
 * (hops, ALU, cache); only the watchdog and livelock horizons land
 * in the overflow heap.
 */

#ifndef EDGE_CORE_SCHEDULER_HH
#define EDGE_CORE_SCHEDULER_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace edge::core {

class Scheduler
{
  public:
    /** Returned by nextAtOrAfter when no wake is pending. */
    static constexpr Cycle kIdle = ~Cycle{0};

    /** Register a wake-up at cycle `when` (idempotent). */
    void
    wakeAt(Cycle when)
    {
        if (when == kIdle)
            return;
        if (when < _base)
            when = _base; // already due: keep it visible, never lose it
        if (when - _base < kWheelSize) {
            unsigned idx = static_cast<unsigned>(when & (kWheelSize - 1));
            _bits[idx >> 6] |= 1ull << (idx & 63);
        } else {
            _far.push_back(when);
            std::push_heap(_far.begin(), _far.end(),
                           std::greater<Cycle>{});
        }
    }

    /**
     * Earliest pending wake at or after `now` (kIdle if none).
     * Everything before `now` is pruned: the caller has processed
     * those cycles. The returned wake stays registered until a later
     * call prunes past it.
     */
    Cycle
    nextAtOrAfter(Cycle now)
    {
        advanceTo(now);
        while (!_far.empty() && _far.front() < now) {
            std::pop_heap(_far.begin(), _far.end(),
                          std::greater<Cycle>{});
            _far.pop_back();
        }
        Cycle hit = scanWheel();
        if (!_far.empty())
            hit = std::min(hit, _far.front());
        return hit;
    }

  private:
    static constexpr unsigned kWheelBits = 10;
    static constexpr unsigned kWheelSize = 1u << kWheelBits;
    static constexpr unsigned kWords = kWheelSize / 64;

    /** Slide the wheel window forward, clearing passed slots. */
    void
    advanceTo(Cycle now)
    {
        if (now <= _base)
            return;
        if (now - _base >= kWheelSize) {
            _bits.fill(0);
            _base = now;
            return;
        }
        for (Cycle c = _base; c < now;) {
            unsigned idx = static_cast<unsigned>(c & (kWheelSize - 1));
            unsigned word = idx >> 6, bit = idx & 63;
            Cycle n = std::min<Cycle>(now - c, 64 - bit);
            std::uint64_t mask = n == 64
                                     ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << n) - 1)
                                           << bit;
            _bits[word] &= ~mask;
            c += n;
        }
        _base = now;
    }

    /** First set slot in [_base, _base + kWheelSize), or kIdle. */
    Cycle
    scanWheel() const
    {
        for (Cycle c = _base; c < _base + kWheelSize;) {
            unsigned idx = static_cast<unsigned>(c & (kWheelSize - 1));
            unsigned word = idx >> 6, bit = idx & 63;
            std::uint64_t w = _bits[word] >> bit;
            if (w)
                return c + static_cast<unsigned>(__builtin_ctzll(w));
            c += 64 - bit;
        }
        return kIdle;
    }

    std::array<std::uint64_t, kWords> _bits{};
    Cycle _base = 0;          ///< wheel covers [_base, _base + kWheelSize)
    std::vector<Cycle> _far;  ///< min-heap of wakes past the wheel
};

} // namespace edge::core

#endif // EDGE_CORE_SCHEDULER_HH
