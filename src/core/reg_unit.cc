#include "core/reg_unit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edge::core {

RegUnit::RegUnit(const CoreParams &params,
                 const std::vector<Word> &init_regs, StatSet &stats,
                 ForwardFn forward)
    : _p(params),
      _regs(init_regs),
      _bankFree(params.cols, 0),
      _forward(std::move(forward)),
      _archReads(stats.counter("regs.arch_reads",
                               "reads satisfied from the committed RF")),
      _forwardReads(stats.counter(
          "regs.forward_reads",
          "reads satisfied by in-flight block forwarding")),
      _rewrites(stats.counter(
          "regs.rewrites",
          "write values that changed after first arrival (waves)"))
{
    _regs.resize(isa::kNumArchRegs, 0);
}

Cycle
RegUnit::bankPort(Cycle now, unsigned reg)
{
    unsigned bank = reg % _p.cols;
    Cycle start = std::max(now, _bankFree[bank]);
    _bankFree[bank] = start + 1;
    return start;
}

void
RegUnit::forwardTo(Cycle now, Subscription &sub, Word value,
                   ValState state, std::uint16_t depth,
                   bool status_only)
{
    RegForward f;
    // Status-only forwards ride the status network and do not
    // occupy a register-file data port; either way a later forward
    // (commit wave) may not overtake an earlier one on this link.
    f.when = status_only ? now + _p.regReadLatency
                         : bankPort(now, sub.reg) + _p.regReadLatency;
    f.when = std::max(f.when, sub.lastWhen);
    sub.lastWhen = f.when;
    f.statusOnly = status_only;
    f.readerSeq = sub.readerSeq;
    f.reg = sub.reg;
    f.value = value;
    f.state = state;
    f.wave = ++sub.wave;
    f.depth = depth;
    f.targets = sub.targets;
    _forward(f);
}

void
RegUnit::mapBlock(Cycle now, DynBlockSeq seq, const isa::Block &block)
{
    panic_if(_blocks.count(seq), "register map of seq twice");

    // Resolve the reads *before* inserting our own writes so a block
    // never forwards from itself.
    for (const isa::RegRead &rd : block.reads()) {
        // Youngest older in-flight writer of this register.
        BlockRegs *writer = nullptr;
        std::size_t write_idx = 0;
        for (auto it = _blocks.rbegin(); it != _blocks.rend(); ++it) {
            for (std::size_t w = 0; w < it->second.writes.size(); ++w) {
                if (it->second.writes[w].reg == rd.reg) {
                    writer = &it->second;
                    write_idx = w;
                    break;
                }
            }
            if (writer)
                break;
        }
        Subscription sub;
        sub.readerSeq = seq;
        sub.reg = rd.reg;
        sub.targets = rd.targets;
        if (!writer) {
            // Architectural value: Final by definition.
            ++_archReads;
            forwardTo(now, sub, _regs[rd.reg], ValState::Final, 0,
                      false);
            // No subscription: the committed value cannot change.
            continue;
        }
        ++_forwardReads;
        WriteSlot &ws = writer->writes[write_idx];
        writer->subscribers[write_idx].push_back(sub);
        if (ws.seen) {
            forwardTo(now, writer->subscribers[write_idx].back(),
                      ws.value, ws.state, ws.depth, false);
        }
    }

    BlockRegs br;
    br.block = &block;
    br.writes.resize(block.writes().size());
    br.subscribers.resize(block.writes().size());
    for (std::size_t w = 0; w < block.writes().size(); ++w)
        br.writes[w].reg = block.writes()[w].reg;
    _blocks.emplace(seq, std::move(br));
}

void
RegUnit::writeArrived(Cycle now, DynBlockSeq seq, unsigned write_idx,
                      Word value, ValState state, std::uint32_t wave,
                      std::uint16_t depth)
{
    auto it = _blocks.find(seq);
    if (it == _blocks.end())
        return; // flushed block: stale message
    panic_if(write_idx >= it->second.writes.size(),
             "write index out of range");
    WriteSlot &ws = it->second.writes[write_idx];

    // The data and status networks can reorder messages from the
    // same producer; waves are per-producer monotonic, so anything
    // at or below the last accepted wave is stale.
    if (ws.seen && wave <= ws.wave)
        return;
    ws.wave = wave;

    bool value_changed = !ws.seen || ws.value != value;
    panic_if(ws.seen && ws.state == ValState::Final && value_changed,
             "protocol violation: Final register write changed");
    bool state_up = ws.seen && ws.state != ValState::Final &&
                    state == ValState::Final;
    if (ws.seen && !value_changed && !state_up)
        return; // duplicate
    if (ws.seen && value_changed)
        ++_rewrites;

    bool first = !ws.seen;
    ws.seen = true;
    ws.value = value;
    if (state == ValState::Final)
        ws.state = ValState::Final;
    else if (first || value_changed)
        ws.state = state;
    ws.depth = depth;

    bool status_only = !first && !value_changed && state_up;
    for (Subscription &sub : it->second.subscribers[write_idx])
        forwardTo(now, sub, ws.value, ws.state, ws.depth, status_only);
}

bool
RegUnit::blockWritesFinal(DynBlockSeq seq, bool need_final) const
{
    auto it = _blocks.find(seq);
    panic_if(it == _blocks.end(), "blockWritesFinal on unknown seq");
    for (const WriteSlot &ws : it->second.writes) {
        if (!ws.seen)
            return false;
        if (need_final && ws.state != ValState::Final)
            return false;
    }
    return true;
}

void
RegUnit::commitBlock(DynBlockSeq seq)
{
    auto it = _blocks.find(seq);
    panic_if(it == _blocks.end(), "commit of unknown seq");
    panic_if(it != _blocks.begin(), "register commit out of order");
    for (const WriteSlot &ws : it->second.writes) {
        panic_if(!ws.seen, "commit with a missing write value");
        _regs[ws.reg] = ws.value;
    }
    _blocks.erase(it);
}

void
RegUnit::flushFrom(DynBlockSeq from_seq)
{
    _blocks.erase(_blocks.lower_bound(from_seq), _blocks.end());
    // Remove subscriptions from squashed readers.
    for (auto &[seq, br] : _blocks) {
        for (auto &subs : br.subscribers) {
            std::erase_if(subs, [&](const Subscription &s) {
                return s.readerSeq >= from_seq;
            });
        }
    }
}

} // namespace edge::core
