/**
 * @file
 * The register tiles: the architectural register file plus the
 * forwarding logic that lets in-flight blocks communicate. A block's
 * register read is satisfied either from the architectural file
 * (Final by definition) or from the youngest older in-flight block
 * that writes the register — in which case the reader subscribes and
 * receives every wave the writer produces, so DSRE waves and the
 * commit wave propagate across block boundaries.
 */

#ifndef EDGE_CORE_REG_UNIT_HH
#define EDGE_CORE_REG_UNIT_HH

#include <functional>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "core/params.hh"
#include "isa/block.hh"

namespace edge::core {

/** A register value being forwarded to one reader's targets. */
struct RegForward
{
    Cycle when = 0;
    DynBlockSeq readerSeq = 0;
    std::uint8_t reg = 0; ///< for bank routing
    Word value = 0;
    ValState state = ValState::Spec;
    std::uint32_t wave = 0; ///< per reader-read link, monotonic
    std::uint16_t depth = 0;
    bool statusOnly = false; ///< commit-wave upgrade (same value)
    std::array<isa::Target, isa::kMaxTargets> targets{};
};

class RegUnit
{
  public:
    using ForwardFn = std::function<void(const RegForward &)>;

    RegUnit(const CoreParams &params, const std::vector<Word> &init_regs,
            StatSet &stats, ForwardFn forward);

    /**
     * A block entered the window: resolve every register read
     * (forward immediately or subscribe) and register its writes.
     */
    void mapBlock(Cycle now, DynBlockSeq seq, const isa::Block &block);

    /** A write value arrived (or changed / upgraded) from the grid. */
    void writeArrived(Cycle now, DynBlockSeq seq, unsigned write_idx,
                      Word value, ValState state, std::uint32_t wave,
                      std::uint16_t depth);

    /** All of the block's writes present (and Final if required)? */
    bool blockWritesFinal(DynBlockSeq seq, bool need_final) const;

    /** Commit the oldest block: retire its writes architecturally. */
    void commitBlock(DynBlockSeq seq);

    /** Squash blocks with seq >= from_seq. */
    void flushFrom(DynBlockSeq from_seq);

    const std::vector<Word> &archRegs() const { return _regs; }

    std::size_t numBlocks() const { return _blocks.size(); }

  private:
    struct WriteSlot
    {
        std::uint8_t reg = 0;
        bool seen = false;
        Word value = 0;
        ValState state = ValState::Spec;
        std::uint32_t wave = 0; ///< drop stale (reordered) arrivals
        std::uint16_t depth = 0;
    };

    struct Subscription
    {
        DynBlockSeq readerSeq = 0;
        std::uint8_t reg = 0;
        std::array<isa::Target, isa::kMaxTargets> targets{};
        std::uint32_t wave = 0; ///< forwards sent on this link
        Cycle lastWhen = 0;     ///< upgrades may not overtake data
    };

    struct BlockRegs
    {
        const isa::Block *block = nullptr;
        std::vector<WriteSlot> writes;
        /** Readers subscribed to each write slot. */
        std::vector<std::vector<Subscription>> subscribers;
    };

    /** Charge a register-bank port; returns the start cycle. */
    Cycle bankPort(Cycle now, unsigned reg);

    void forwardTo(Cycle now, Subscription &sub, Word value,
                   ValState state, std::uint16_t depth,
                   bool status_only);

    const CoreParams &_p;
    std::vector<Word> _regs;
    std::map<DynBlockSeq, BlockRegs> _blocks;
    std::vector<Cycle> _bankFree;

    ForwardFn _forward;
    Counter &_archReads;
    Counter &_forwardReads;
    Counter &_rewrites;
};

} // namespace edge::core

#endif // EDGE_CORE_REG_UNIT_HH
