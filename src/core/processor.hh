/**
 * @file
 * The EDGE processor: a grid of execution nodes, register tiles,
 * LSQ / D-cache banks, an operand micronetwork, a next-block
 * predictor, and the block-atomic fetch/map/execute/commit pipeline.
 * Supports two misspeculation recovery mechanisms — classic pipeline
 * flush, and the paper's distributed selective re-execution (DSRE)
 * protocol with speculative waves and a trailing commit wave.
 */

#ifndef EDGE_CORE_PROCESSOR_HH
#define EDGE_CORE_PROCESSOR_HH

#include <deque>
#include <memory>
#include <vector>

#include "chaos/chaos.hh"
#include "chaos/invariants.hh"
#include "chaos/progress.hh"
#include "chaos/sim_error.hh"
#include "chaos/trace_ring.hh"
#include "compiler/placement.hh"
#include "core/exec_node.hh"
#include "core/msg.hh"
#include "core/params.hh"
#include "core/reg_unit.hh"
#include "lsq/lsq.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"
#include "net/mesh.hh"
#include "predictor/dependence.hh"
#include "predictor/next_block.hh"
#include "predictor/oracle.hh"

namespace edge::core {

/** Everything configurable about one simulated machine. */
struct MachineConfig
{
    CoreParams core;
    mem::HierarchyParams mem;
    lsq::LsqParams lsq;
    pred::NextBlockParams nbp;
    pred::DepPolicy policy = pred::DepPolicy::Blind;
    /**
     * Cross-check the committed path against the reference trace
     * (catches control/commit bugs; requires an OracleDb).
     */
    bool checkCommittedPath = true;
    /**
     * Run-level RNG seed. Every pseudo-random draw in a run — the
     * workload generators and the chaos engine's per-site streams —
     * derives from one run seed, so any run replays exactly.
     */
    std::uint64_t rngSeed = 1;
    /** Deterministic fault injection (off unless a profile is set). */
    chaos::ChaosParams chaos;
    /** Feed every delivery through the DSRE invariant checker. */
    bool checkInvariants = false;
    /** Events retained in the failure-report trace ring. */
    std::size_t traceDepth = 64;
    /**
     * Per-run wall-clock deadline in milliseconds (0 disables). A
     * host-level guard, not a property of the simulated machine:
     * exceeding it stops the run with SimError::Reason::HostDeadline,
     * the one failure kind the grid retry policy treats as transient.
     */
    std::uint64_t wallDeadlineMs = 0;
};

class Processor
{
  public:
    /**
     * @param config machine configuration
     * @param program validated program to run
     * @param oracle committed-path database; required for the Oracle
     *        policy and the committed-path cross-check, may be null
     *        otherwise
     * @param stats statistics sink (must outlive the processor)
     */
    Processor(const MachineConfig &config, const isa::Program &program,
              const pred::OracleDb *oracle, StatSet &stats);

    struct Result
    {
        Cycle cycles = 0;
        std::uint64_t committedBlocks = 0;
        std::uint64_t committedInsts = 0;
        bool halted = false;
        /** Why the run stopped early, with diagnostics (ok() if it
         *  did not): watchdog, invariant violation, protocol panic. */
        chaos::SimError error;
    };

    /** Run until the program halts or the cycle budget is spent. */
    Result run(Cycle max_cycles);

    /** Architectural register state (for golden-model comparison). */
    const std::vector<Word> &archRegs() const;

    /** Architectural memory state (for golden-model comparison). */
    const mem::SparseMemory &memory() const { return _dmem; }

    const MachineConfig &config() const { return _cfg; }

    /** The fault injector, if one is active (null otherwise). */
    const chaos::ChaosEngine *chaosEngine() const { return _chaos.get(); }

    /** The invariant checker, if enabled (null otherwise). */
    const chaos::InvariantChecker *checker() const { return _check.get(); }

  private:
    struct BlockCtx
    {
        DynBlockSeq seq = 0;
        BlockId blockId = 0;
        std::uint64_t archIdx = 0;
        unsigned frame = 0;
        const isa::Block *block = nullptr;
        const compiler::Placement *placement = nullptr;
        std::vector<std::uint16_t> localIdx; ///< per slot, node-local

        unsigned predictedExit = 0; ///< original prediction (stats)
        unsigned fetchedExit = 0;   ///< exit the fetch chain follows
        std::uint64_t historySnapshot = 0;

        // Debug (EDGE_TRACE): first cycle each commit condition held.
        Cycle dbgExitOk = 0, dbgWritesOk = 0, dbgMemOk = 0;

        bool exitSeen = false;
        Word exitValue = 0;
        ValState exitState = ValState::Spec;
        std::uint32_t exitWave = 0;
    };

    // --- geometry helpers -------------------------------------------------
    net::Coord gridCoord(unsigned node) const;
    net::Coord rfCoord(unsigned reg) const;
    net::Coord lsqCoord(Addr addr) const;
    net::Coord ctrlCoord() const { return {0, 0}; }
    Addr codeAddr(BlockId block) const;

    // --- pipeline stages --------------------------------------------------
    void deliverMsg(Cycle now, const Msg &msg);
    void handleExit(Cycle now, const Msg &msg);
    void routeNodeEvent(const NodeEvent &ev, unsigned node);
    void routeLoadReply(const lsq::LoadReply &reply);
    void routeRegForward(const RegForward &fwd);
    void sendToTargets(Cycle when, net::Coord src, DynBlockSeq seq,
                       const std::array<isa::Target, isa::kMaxTargets>
                           &targets,
                       Word value, ValState state, std::uint32_t wave,
                       std::uint16_t depth, bool status_only,
                       bool echo);

    /** Pick the operand or status mesh and send. */
    void meshSend(Cycle when, net::Coord src, net::Coord dst,
                  const Msg &msg);
    void onViolation(const lsq::Violation &violation);

    void fetchTick(Cycle now);
    void mapFetchedBlock(Cycle now);
    void commitTick(Cycle now);

    /** Squash every block with seq >= from_seq. */
    void flushFrom(DynBlockSeq from_seq);

    /** Redirect fetch to the given block / architectural index. */
    void redirectFetch(BlockId next, std::uint64_t arch_idx);

    BlockCtx *findCtx(DynBlockSeq seq);

    /** Render the stuck-machine state (watchdog/livelock reports). */
    std::string machineDump(Cycle now);

    /** Build the graceful deadlock report (no commit for too long). */
    chaos::SimError watchdogDump(Cycle now);

    /** Build the livelock report (repeating commit-free activity). */
    chaos::SimError livelockDump(Cycle now);

    /** Digest of activity since the last livelock sample. */
    std::uint64_t activityDigest(bool *active);

    // --- configuration & substrate ----------------------------------------
    MachineConfig _cfg;
    const isa::Program &_prog;
    const pred::OracleDb *_oracle;
    StatSet &_stats;

    std::vector<compiler::Placement> _placements; ///< per static block
    std::unique_ptr<chaos::ChaosEngine> _chaos;   ///< null = no chaos
    std::unique_ptr<chaos::InvariantChecker> _check; ///< null = off
    chaos::TraceRing _trace;
    mem::SparseMemory _dmem;
    std::unique_ptr<mem::Hierarchy> _hier;
    std::unique_ptr<net::Mesh<Msg>> _mesh; ///< operand network
    /** Status network for commit-wave messages (TRIPS GCN). */
    std::unique_ptr<net::Mesh<Msg>> _gcn;
    std::unique_ptr<pred::DependencePredictor> _policy;
    std::unique_ptr<pred::NextBlockPredictor> _nbp;
    std::unique_ptr<RegUnit> _regs;
    std::unique_ptr<lsq::LoadStoreQueue> _lsq;
    std::vector<std::unique_ptr<ExecNode>> _nodes;

    // --- dynamic state -----------------------------------------------------
    std::deque<BlockCtx> _inflight; ///< oldest first
    std::vector<unsigned> _freeFrames;
    DynBlockSeq _nextSeq = 1;
    std::uint64_t _nextArchIdx = 0;
    BlockId _nextFetch = 0;
    bool _fetchBusy = false;
    bool _fetchHalted = false;
    Cycle _fetchReady = 0;
    BlockId _fetchBlock = 0;
    bool _halted = false;
    Cycle _cycle = 0;
    Cycle _lastCommit = 0;
    chaos::LivelockDetector _livelock;
    /** Counter snapshot backing the livelock activity deltas. */
    std::uint64_t _llPrev[4] = {0, 0, 0, 0};
    std::uint64_t _committedBlocks = 0;
    std::uint64_t _committedInsts = 0;

    // --- statistics ---------------------------------------------------------
    Counter &_statCommittedBlocks;
    Counter &_statCommittedInsts;
    Counter &_statCtrlFlushes;
    Counter &_statViolFlushes;
    Counter &_statFetchedBlocks;
};

} // namespace edge::core

#endif // EDGE_CORE_PROCESSOR_HH
