/**
 * @file
 * The EDGE processor: a grid of execution nodes, register tiles,
 * LSQ / D-cache banks, an operand micronetwork, a next-block
 * predictor, and the block-atomic fetch/map/execute/commit pipeline.
 * Supports two misspeculation recovery mechanisms — classic pipeline
 * flush, and the paper's distributed selective re-execution (DSRE)
 * protocol with speculative waves and a trailing commit wave.
 */

#ifndef EDGE_CORE_PROCESSOR_HH
#define EDGE_CORE_PROCESSOR_HH

#include <chrono>
#include <deque>
#include <memory>
#include <vector>

#include "chaos/chaos.hh"
#include "chaos/invariants.hh"
#include "chaos/progress.hh"
#include "chaos/sim_error.hh"
#include "chaos/trace_ring.hh"
#include "common/arena.hh"
#include "compiler/placement.hh"
#include "core/exec_node.hh"
#include "core/msg.hh"
#include "core/params.hh"
#include "core/program_image.hh"
#include "core/reg_unit.hh"
#include "lsq/lsq.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"
#include "net/mesh.hh"
#include "predictor/dependence.hh"
#include "predictor/next_block.hh"
#include "predictor/oracle.hh"

namespace edge::core {

/**
 * Which cycle-loop implementation drives the machine. Both produce
 * bit-identical results (same cycle counts, stats, failure reports);
 * the event engine skips cycles in which nothing can happen by
 * consulting a wake list, and is the default. The tick engine is the
 * original poll-every-cycle loop, kept as a differential reference.
 */
enum class EngineKind : std::uint8_t
{
    Tick,
    Event,
};

inline const char *
engineName(EngineKind kind)
{
    return kind == EngineKind::Tick ? "tick" : "event";
}

/**
 * Parse an engine name; returns Event and sets *ok = false (when
 * provided) if the name is not recognised.
 */
inline EngineKind
engineByName(const std::string &name, bool *ok = nullptr)
{
    if (ok)
        *ok = true;
    if (name == "tick")
        return EngineKind::Tick;
    if (name == "event")
        return EngineKind::Event;
    if (ok)
        *ok = false;
    return EngineKind::Event;
}

/** Everything configurable about one simulated machine. */
struct MachineConfig
{
    CoreParams core;
    mem::HierarchyParams mem;
    lsq::LsqParams lsq;
    pred::NextBlockParams nbp;
    pred::DepPolicy policy = pred::DepPolicy::Blind;
    /**
     * Cross-check the committed path against the reference trace
     * (catches control/commit bugs; requires an OracleDb).
     */
    bool checkCommittedPath = true;
    /**
     * Run-level RNG seed. Every pseudo-random draw in a run — the
     * workload generators and the chaos engine's per-site streams —
     * derives from one run seed, so any run replays exactly.
     */
    std::uint64_t rngSeed = 1;
    /** Deterministic fault injection (off unless a profile is set). */
    chaos::ChaosParams chaos;
    /** Feed every delivery through the DSRE invariant checker. */
    bool checkInvariants = false;
    /** Events retained in the failure-report trace ring. */
    std::size_t traceDepth = 64;
    /**
     * Per-run wall-clock deadline in milliseconds (0 disables). A
     * host-level guard, not a property of the simulated machine:
     * exceeding it stops the run with SimError::Reason::HostDeadline,
     * the one failure kind the grid retry policy treats as transient.
     */
    std::uint64_t wallDeadlineMs = 0;
    /** Cycle-loop implementation (observably identical either way). */
    EngineKind engine = EngineKind::Event;
};

class Processor
{
  public:
    /**
     * @param config machine configuration
     * @param program validated program to run
     * @param oracle committed-path database; required for the Oracle
     *        policy and the committed-path cross-check, may be null
     *        otherwise
     * @param stats statistics sink (must outlive the processor)
     * @param image optional shared program image (validated program +
     *        cached placements); when given it must wrap `program`,
     *        and per-Processor validation / placement is skipped
     */
    Processor(const MachineConfig &config, const isa::Program &program,
              const pred::OracleDb *oracle, StatSet &stats,
              const ProgramImage *image = nullptr);

    struct Result
    {
        Cycle cycles = 0;
        std::uint64_t committedBlocks = 0;
        std::uint64_t committedInsts = 0;
        bool halted = false;
        /** Why the run stopped early, with diagnostics (ok() if it
         *  did not): watchdog, invariant violation, protocol panic. */
        chaos::SimError error;
    };

    /** Run until the program halts or the cycle budget is spent. */
    Result run(Cycle max_cycles);

    /** Architectural register state (for golden-model comparison). */
    const std::vector<Word> &archRegs() const;

    /** Architectural memory state (for golden-model comparison). */
    const mem::SparseMemory &memory() const { return _dmem; }

    const MachineConfig &config() const { return _cfg; }

    /** The fault injector, if one is active (null otherwise). */
    const chaos::ChaosEngine *chaosEngine() const { return _chaos.get(); }

    /** The invariant checker, if enabled (null otherwise). */
    const chaos::InvariantChecker *checker() const { return _check.get(); }

  private:
    struct BlockCtx
    {
        DynBlockSeq seq = 0;
        BlockId blockId = 0;
        std::uint64_t archIdx = 0;
        unsigned frame = 0;
        const isa::Block *block = nullptr;
        const compiler::Placement *placement = nullptr;
        /**
         * Per-slot node-local RS index. Points into the processor's
         * arena-backed per-frame pool (kMaxBlockInsts entries per
         * frame), valid while this block owns its frame.
         */
        std::uint16_t *localIdx = nullptr;

        unsigned predictedExit = 0; ///< original prediction (stats)
        unsigned fetchedExit = 0;   ///< exit the fetch chain follows
        std::uint64_t historySnapshot = 0;

        // Debug (EDGE_TRACE): first cycle each commit condition held.
        Cycle dbgExitOk = 0, dbgWritesOk = 0, dbgMemOk = 0;

        bool exitSeen = false;
        Word exitValue = 0;
        ValState exitState = ValState::Spec;
        std::uint32_t exitWave = 0;
    };

    // --- geometry helpers -------------------------------------------------
    net::Coord gridCoord(unsigned node) const;
    net::Coord rfCoord(unsigned reg) const;
    net::Coord lsqCoord(Addr addr) const;
    net::Coord ctrlCoord() const { return {0, 0}; }
    Addr codeAddr(BlockId block) const;

    // --- pipeline stages --------------------------------------------------
    void deliverMsg(Cycle now, const Msg &msg);
    void handleExit(Cycle now, const Msg &msg);
    void routeNodeEvent(const NodeEvent &ev, unsigned node);
    void routeLoadReply(const lsq::LoadReply &reply);
    void routeRegForward(const RegForward &fwd);
    void sendToTargets(Cycle when, net::Coord src, DynBlockSeq seq,
                       const std::array<isa::Target, isa::kMaxTargets>
                           &targets,
                       Word value, ValState state, std::uint32_t wave,
                       std::uint16_t depth, bool status_only,
                       bool echo);

    /** Pick the operand or status mesh and send. */
    void meshSend(Cycle when, net::Coord src, net::Coord dst,
                  const Msg &msg);
    void onViolation(const lsq::Violation &violation);

    /** @return true iff fetch did anything (started or mapped). */
    bool fetchTick(Cycle now);
    void mapFetchedBlock(Cycle now);
    /** @return true iff a block committed this cycle. */
    bool commitTick(Cycle now);

    /**
     * The two cycle-loop engines behind run(): the original
     * poll-every-cycle loop and the wake-list engine that jumps over
     * cycles in which nothing can happen. Both fill `res` with the
     * same values for the same machine and program (differentially
     * tested); exceptions propagate to run()'s handler.
     */
    void runTick(Cycle max_cycles, Result &res);
    void runEvent(Cycle max_cycles, Result &res);

    /** Squash every block with seq >= from_seq. */
    void flushFrom(DynBlockSeq from_seq);

    /** Redirect fetch to the given block / architectural index. */
    void redirectFetch(BlockId next, std::uint64_t arch_idx);

    BlockCtx *findCtx(DynBlockSeq seq);

    /**
     * Host wall-clock deadline poll, engine-independent: counts
     * iterations (not simulated cycles, which the event engine can
     * skip) and reads the clock every 4096 polls. Fills `res.error`
     * and returns true when the deadline has passed.
     */
    bool wallDeadlineHit(Result &res);

    /** Render the stuck-machine state (watchdog/livelock reports). */
    std::string machineDump(Cycle now);

    /** Build the graceful deadlock report (no commit for too long). */
    chaos::SimError watchdogDump(Cycle now);

    /** Build the livelock report (repeating commit-free activity). */
    chaos::SimError livelockDump(Cycle now);

    /** Digest of activity since the last livelock sample. */
    std::uint64_t activityDigest(bool *active);

    // --- configuration & substrate ----------------------------------------
    MachineConfig _cfg;
    const isa::Program &_prog;
    const pred::OracleDb *_oracle;
    StatSet &_stats;

    /** Per static block; points at the shared image's cache when a
     *  ProgramImage was supplied, else at _ownPlacements. */
    const std::vector<compiler::Placement> *_placements = nullptr;
    std::vector<compiler::Placement> _ownPlacements;
    std::unique_ptr<chaos::ChaosEngine> _chaos;   ///< null = no chaos
    std::unique_ptr<chaos::InvariantChecker> _check; ///< null = off
    chaos::TraceRing _trace;
    mem::SparseMemory _dmem;
    std::unique_ptr<mem::Hierarchy> _hier;
    std::unique_ptr<net::Mesh<Msg>> _mesh; ///< operand network
    /** Status network for commit-wave messages (TRIPS GCN). */
    std::unique_ptr<net::Mesh<Msg>> _gcn;
    std::unique_ptr<pred::DependencePredictor> _policy;
    std::unique_ptr<pred::NextBlockPredictor> _nbp;
    std::unique_ptr<RegUnit> _regs;
    std::unique_ptr<lsq::LoadStoreQueue> _lsq;
    std::vector<std::unique_ptr<ExecNode>> _nodes;

    // --- dynamic state -----------------------------------------------------
    /** Backs the per-frame localIdx pools (see BlockCtx::localIdx). */
    Arena _arena;
    /** numFrames x kMaxBlockInsts, carved from _arena once. */
    std::uint16_t *_localIdxPool = nullptr;
    /** Per-node fill scratch reused by every mapFetchedBlock. */
    std::vector<std::uint16_t> _nodeFill;
    std::deque<BlockCtx> _inflight; ///< oldest first
    std::vector<unsigned> _freeFrames;
    DynBlockSeq _nextSeq = 1;
    std::uint64_t _nextArchIdx = 0;
    BlockId _nextFetch = 0;
    bool _fetchBusy = false;
    bool _fetchHalted = false;
    Cycle _fetchReady = 0;
    BlockId _fetchBlock = 0;
    bool _halted = false;
    Cycle _cycle = 0;
    Cycle _lastCommit = 0;
    /** Wall-deadline poll state (see wallDeadlineHit). */
    std::chrono::steady_clock::time_point _wallStart{};
    unsigned _wallPoll = 0;
    chaos::LivelockDetector _livelock;
    /** Counter snapshot backing the livelock activity deltas. */
    std::uint64_t _llPrev[4] = {0, 0, 0, 0};
    std::uint64_t _committedBlocks = 0;
    std::uint64_t _committedInsts = 0;

    // --- statistics ---------------------------------------------------------
    Counter &_statCommittedBlocks;
    Counter &_statCommittedInsts;
    Counter &_statCtrlFlushes;
    Counter &_statViolFlushes;
    Counter &_statFetchedBlocks;
};

} // namespace edge::core

#endif // EDGE_CORE_PROCESSOR_HH
