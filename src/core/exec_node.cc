#include "core/exec_node.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::core {

namespace {

inline void
setBit(std::vector<std::uint64_t> &words, unsigned idx, bool on)
{
    std::uint64_t mask = std::uint64_t{1} << (idx & 63);
    if (on)
        words[idx >> 6] |= mask;
    else
        words[idx >> 6] &= ~mask;
}

} // namespace

ExecNode::ExecNode(const CoreParams &params, NodeStats stats, SendFn send,
                   chaos::ChaosEngine *chaos, unsigned node_index)
    : _p(params),
      _stats(stats),
      _send(std::move(send)),
      _chaos(chaos),
      _nodeIndex(node_index),
      _numSlots(params.slotsPerNode * params.numFrames),
      _flags(_numSlots, 0),
      _seen(_numSlots, 0),
      _full(_numSlots, 0),
      _numOps(_numSlots, 0),
      _seq(_numSlots, 0),
      _slot(_numSlots, 0),
      _op(_numSlots, isa::Opcode::MOVI),
      _imm(_numSlots, 0),
      _lsid(_numSlots, 0),
      _targets(_numSlots),
      _opVal(_numSlots * isa::kMaxOperands, 0),
      _opState(_numSlots * isa::kMaxOperands, ValState::Spec),
      _opWave(_numSlots * isa::kMaxOperands, 0),
      _lastValue(_numSlots, 0),
      _lastData(_numSlots, 0),
      _lastState(_numSlots, ValState::Spec),
      _lastAddrState(_numSlots, ValState::Spec),
      _sendCount(_numSlots, 0),
      _lastSendWhen(_numSlots, 0),
      _triggerDepth(_numSlots, 0),
      _wantAlu((_numSlots + 63) / 64, 0),
      _wantUpgrade((_numSlots + 63) / 64, 0)
{
}

bool
ExecNode::mutated(chaos::Mutation m) const
{
#ifdef EDGE_MUTATIONS
    return _chaos && _chaos->mutation() == m &&
           (_chaos->mutationNode() == ~0u ||
            _chaos->mutationNode() == _nodeIndex);
#else
    (void)m;
    return false;
#endif
}

unsigned
ExecNode::at(unsigned frame, unsigned local) const
{
    panic_if(frame >= _p.numFrames || local >= _p.slotsPerNode,
             "RS index (%u, %u) out of range", frame, local);
    return frame * _p.slotsPerNode + local;
}

ValState
ExecNode::inputState(unsigned rs) const
{
    ValState s = ValState::Final;
    for (unsigned k = 0; k < _numOps[rs]; ++k)
        s = andState(s, _opState[rs * isa::kMaxOperands + k]);
    return s;
}

void
ExecNode::refreshWant(unsigned rs)
{
    std::uint8_t f = _flags[rs];
    bool ready = (f & kValid) && _seen[rs] == _full[rs];
    bool executed = f & kExecuted;
    bool dv = f & kDirtyValue;
    bool ds = f & kDirtyState;
    bool want_alu =
        ready && (!executed || dv || (_p.commitWaveUsesAlu && ds));
    bool want_up =
        ready && !_p.commitWaveUsesAlu && executed && !dv && ds;
    setBit(_wantAlu, rs, want_alu);
    setBit(_wantUpgrade, rs, want_up);
}

void
ExecNode::mapInst(unsigned frame, unsigned local, DynBlockSeq seq,
                  SlotId slot, const isa::Instruction &inst)
{
    unsigned rs = at(frame, local);
    panic_if(_flags[rs] & kValid, "mapping into an occupied RS slot");
    _flags[rs] = kValid;
    _seq[rs] = seq;
    _slot[rs] = slot;
    _op[rs] = inst.op;
    _imm[rs] = inst.imm;
    _lsid[rs] = inst.lsid;
    auto n = static_cast<std::uint8_t>(inst.numOperands());
    _numOps[rs] = n;
    _full[rs] = static_cast<std::uint8_t>((1u << n) - 1);
    _seen[rs] = 0;
    _targets[rs] = inst.targets;
    for (unsigned k = 0; k < isa::kMaxOperands; ++k) {
        unsigned oi = rs * isa::kMaxOperands + k;
        _opVal[oi] = 0;
        _opState[oi] = ValState::Spec;
        _opWave[oi] = 0;
    }
    _lastValue[rs] = 0;
    _lastData[rs] = 0;
    _lastState[rs] = ValState::Spec;
    _lastAddrState[rs] = ValState::Spec;
    _sendCount[rs] = 0;
    _lastSendWhen[rs] = 0;
    _triggerDepth[rs] = 0;
    refreshWant(rs);
}

void
ExecNode::clearFrame(unsigned frame)
{
    for (unsigned i = 0; i < _p.slotsPerNode; ++i) {
        unsigned rs = frame * _p.slotsPerNode + i;
        _flags[rs] = 0;
        setBit(_wantAlu, rs, false);
        setBit(_wantUpgrade, rs, false);
    }
}

bool
ExecNode::deliver(unsigned frame, unsigned local, unsigned operand,
                  Word value, ValState state, std::uint32_t wave,
                  std::uint16_t depth)
{
    unsigned rs = at(frame, local);
    panic_if(!(_flags[rs] & kValid),
             "operand delivered to an empty RS slot");
    panic_if(operand >= _numOps[rs], "operand %u out of range for %s",
             operand, isa::opName(_op[rs]));

    unsigned oi = rs * isa::kMaxOperands + operand;
    if (wave <= _opWave[oi])
        return false; // stale wave: the producer has sent newer data
    _opWave[oi] = wave;

    bool first = !(_seen[rs] & (1u << operand));
    ValState prev_state = first ? ValState::Spec : _opState[oi];
    bool value_changed = first || _opVal[oi] != value;

    panic_if(!first && prev_state == ValState::Final && value_changed,
             "protocol violation: Final operand changed value "
             "(seq %llu slot %u op %u)",
             static_cast<unsigned long long>(_seq[rs]), _slot[rs],
             operand);

    // Final is sticky.
    ValState next_state = state;
    if (prev_state == ValState::Final)
        next_state = ValState::Final;

    _seen[rs] |= static_cast<std::uint8_t>(1u << operand);
    _opVal[oi] = value;
    _opState[oi] = next_state;

    if (_flags[rs] & kExecuted) {
        if (value_changed) {
            _flags[rs] |= kDirtyValue;
            _triggerDepth[rs] = std::max<std::uint16_t>(
                _triggerDepth[rs],
                static_cast<std::uint16_t>(depth + 1));
        } else if (prev_state != ValState::Final &&
                   next_state == ValState::Final) {
            _flags[rs] |= kDirtyState;
            _triggerDepth[rs] = std::max<std::uint16_t>(
                _triggerDepth[rs],
                static_cast<std::uint16_t>(depth + 1));
        }
    }
    refreshWant(rs);
    return true;
}

NodeEvent
ExecNode::makeEvent(Cycle done, unsigned rs, Word value, ValState state,
                    std::uint16_t depth) const
{
    unsigned oi = rs * isa::kMaxOperands;
    NodeEvent ev;
    ev.when = done;
    ev.seq = _seq[rs];
    ev.slot = _slot[rs];
    ev.lsid = _lsid[rs];
    ev.value = value;
    ev.state = state;
    ev.wave = _sendCount[rs];
    ev.depth = depth;
    ev.targets = _targets[rs];
    if (isa::isLoad(_op[rs])) {
        ev.kind = NodeEvent::Kind::LoadRequest;
        ev.addr = isa::memEffAddr(_opVal[oi + 0], _imm[rs]);
    } else if (isa::isStore(_op[rs])) {
        ev.kind = NodeEvent::Kind::StoreResolve;
        ev.addr = isa::memEffAddr(_opVal[oi + 0], _imm[rs]);
        ev.value = _opVal[oi + 1];
        ev.addrState = _opState[oi + 0];
        ev.state = _opState[oi + 1];
    } else if (isa::isBranch(_op[rs])) {
        ev.kind = NodeEvent::Kind::Exit;
    } else {
        ev.kind = NodeEvent::Kind::Result;
    }
    return ev;
}

void
ExecNode::execute(Cycle now, unsigned rs, bool is_reexec)
{
    unsigned oi = rs * isa::kMaxOperands;
    Cycle done = now + _p.execLatency(_op[rs]);
    ValState state = inputState(rs);
    std::uint16_t depth = is_reexec ? _triggerDepth[rs] : 0;

    Word value = 0;
    Word addr_key = 0; ///< identity key for the squash comparison
    Word data_key = 0;
    if (isa::isLoad(_op[rs])) {
        addr_key = isa::memEffAddr(_opVal[oi + 0], _imm[rs]);
        state = _opState[oi + 0];
    } else if (isa::isStore(_op[rs])) {
        addr_key = isa::memEffAddr(_opVal[oi + 0], _imm[rs]);
        data_key = _opVal[oi + 1];
    } else {
        value = isa::evalOp(_op[rs], _opVal[oi + 0], _opVal[oi + 1],
                            _opVal[oi + 2], _imm[rs]);
        addr_key = value;
    }

    ValState addr_state =
        isa::isMem(_op[rs]) ? _opState[oi + 0] : ValState::Spec;
    if (isa::isStore(_op[rs]))
        state = _opState[oi + 1]; // data state travels separately

    ++_stats.issues;
    if (is_reexec) {
        ++_stats.reexecs;
        _stats.waveDepth.sample(depth);
    }

    bool executed = _flags[rs] & kExecuted;
    bool identical = executed && _lastValue[rs] == addr_key &&
                     _lastData[rs] == data_key &&
                     _lastState[rs] == state &&
                     _lastAddrState[rs] == addr_state;
    bool squash = identical && _p.squashIdenticalValues;
    // Deliberate protocol mutation: this node forgets to squash and
    // re-sends bit-identical waves. The invariant checker catches it
    // as `value-identity-squash`.
    if (squash && mutated(chaos::Mutation::SkipSquash))
        squash = false;
    bool send = !squash;
    if (squash)
        ++_stats.squashes;

    _flags[rs] = static_cast<std::uint8_t>(
        (_flags[rs] | kExecuted) & ~(kDirtyValue | kDirtyState));
    _triggerDepth[rs] = 0;
    _lastValue[rs] = addr_key;
    _lastData[rs] = data_key;
    _lastState[rs] = state;
    _lastAddrState[rs] = addr_state;

    if (send) {
        ++_sendCount[rs];
        done = std::max(done, _lastSendWhen[rs]);
        _lastSendWhen[rs] = done;
        _send(makeEvent(done, rs, value, state, depth));
    }
}

void
ExecNode::upgrade(Cycle now, unsigned rs)
{
    unsigned oi = rs * isa::kMaxOperands;
    _flags[rs] &= static_cast<std::uint8_t>(~kDirtyState);
    std::uint16_t depth = _triggerDepth[rs];
    _triggerDepth[rs] = 0;

    // Deliberate protocol mutation: this node swallows commit-wave
    // upgrades, so downstream finality never arrives and the commit
    // frontier stalls. Caught as `commit-progress` (watchdog).
    if (mutated(chaos::Mutation::DropUpgrade))
        return;

    if (isa::isStore(_op[rs])) {
        // Stores propagate address and data finality independently:
        // a final address alone already un-blocks younger loads'
        // commit waves (they learn the store cannot move onto them).
        ValState as = _opState[oi + 0];
        ValState ds = _opState[oi + 1];
        if (as == _lastAddrState[rs] && ds == _lastState[rs])
            return;
        _lastAddrState[rs] = as;
        _lastState[rs] = ds;
        ++_stats.upgrades;
        ++_sendCount[rs];
        Cycle when = std::max(now + 1, _lastSendWhen[rs]);
        _lastSendWhen[rs] = when;
        NodeEvent ev = makeEvent(when, rs, _lastData[rs], ds, depth);
        ev.addr = _lastValue[rs];
        ev.statusOnly = true;
        _send(ev);
        return;
    }

    ValState state =
        isa::isLoad(_op[rs]) ? _opState[oi + 0] : inputState(rs);
    if (state != ValState::Final || _lastState[rs] == ValState::Final)
        return;
    _lastState[rs] = state;
    ++_stats.upgrades;
    ++_sendCount[rs];
    Cycle when = std::max(now + 1, _lastSendWhen[rs]);
    _lastSendWhen[rs] = when;
    NodeEvent ev = makeEvent(when, rs, _lastValue[rs], state, depth);
    if (ev.kind == NodeEvent::Kind::LoadRequest)
        ev.addr = _lastValue[rs]; // lastValue holds the address key
    ev.statusOnly = true;
    _send(ev);
}

bool
ExecNode::tick(Cycle now)
{
    bool did = false;

    // ALU: one issue per cycle; oldest block first, then slot order.
    // The want-ALU bitmap holds exactly the valid, all-seen slots
    // that need a (re-)execution, so the scan touches only those.
    int best = -1;
    for (std::size_t w = 0; w < _wantAlu.size(); ++w) {
        std::uint64_t bits = _wantAlu[w];
        while (bits) {
            unsigned rs = static_cast<unsigned>(w * 64) +
                          static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            if (best < 0 || _seq[rs] < _seq[best] ||
                (_seq[rs] == _seq[best] && _slot[rs] < _slot[best]))
                best = static_cast<int>(rs);
        }
    }
    if (best >= 0) {
        unsigned rs = static_cast<unsigned>(best);
        bool is_reexec = _flags[rs] & kExecuted;
        if (_p.commitWaveUsesAlu && is_reexec &&
            !(_flags[rs] & kDirtyValue) && (_flags[rs] & kDirtyState)) {
            upgrade(now, rs);
        } else {
            execute(now, rs, is_reexec);
        }
        refreshWant(rs);
        did = true;
    }

    if (!_p.commitWaveUsesAlu) {
        unsigned budget = _p.commitPortsPerNode;
        for (std::size_t w = 0; w < _wantUpgrade.size() && budget;
             ++w) {
            std::uint64_t bits = _wantUpgrade[w];
            while (bits && budget) {
                unsigned rs =
                    static_cast<unsigned>(w * 64) +
                    static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                upgrade(now, rs);
                refreshWant(rs);
                --budget;
                did = true;
            }
        }
    }
    return did;
}

bool
ExecNode::hasWork() const
{
    for (std::uint64_t w : _wantAlu)
        if (w)
            return true;
    for (std::uint64_t w : _wantUpgrade)
        if (w)
            return true;
    return false;
}

unsigned
ExecNode::occupancy() const
{
    unsigned n = 0;
    for (unsigned rs = 0; rs < _numSlots; ++rs)
        n += (_flags[rs] & kValid) != 0;
    return n;
}

std::string
ExecNode::debugState() const
{
    std::string out;
    for (unsigned rs = 0; rs < _numSlots; ++rs) {
        if (!(_flags[rs] & kValid) || (_flags[rs] & kExecuted))
            continue;
        std::string missing;
        for (unsigned k = 0; k < _numOps[rs]; ++k)
            if (!(_seen[rs] & (1u << k)))
                missing += strfmt(" op%u", k);
        out += strfmt("  seq %llu slot %u %s waiting:%s\n",
                      static_cast<unsigned long long>(_seq[rs]),
                      _slot[rs], isa::opName(_op[rs]),
                      missing.empty() ? " (ready)" : missing.c_str());
    }
    return out;
}

} // namespace edge::core
