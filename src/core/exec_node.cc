#include "core/exec_node.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::core {

ExecNode::ExecNode(const CoreParams &params, NodeStats stats, SendFn send,
                   chaos::ChaosEngine *chaos, unsigned node_index)
    : _p(params),
      _stats(stats),
      _send(std::move(send)),
      _chaos(chaos),
      _nodeIndex(node_index),
      _slots(params.slotsPerNode * params.numFrames)
{
}

bool
ExecNode::mutated(chaos::Mutation m) const
{
#ifdef EDGE_MUTATIONS
    return _chaos && _chaos->mutation() == m &&
           (_chaos->mutationNode() == ~0u ||
            _chaos->mutationNode() == _nodeIndex);
#else
    (void)m;
    return false;
#endif
}

ExecNode::RsEntry &
ExecNode::at(unsigned frame, unsigned local)
{
    panic_if(frame >= _p.numFrames || local >= _p.slotsPerNode,
             "RS index (%u, %u) out of range", frame, local);
    return _slots[frame * _p.slotsPerNode + local];
}

void
ExecNode::mapInst(unsigned frame, unsigned local, DynBlockSeq seq,
                  SlotId slot, const isa::Instruction &inst)
{
    RsEntry &e = at(frame, local);
    panic_if(e.valid, "mapping into an occupied RS slot");
    e = RsEntry{};
    e.valid = true;
    e.seq = seq;
    e.slot = slot;
    e.op = inst.op;
    e.imm = inst.imm;
    e.lsid = inst.lsid;
    e.numOps = static_cast<std::uint8_t>(inst.numOperands());
    e.targets = inst.targets;
}

void
ExecNode::clearFrame(unsigned frame)
{
    for (unsigned i = 0; i < _p.slotsPerNode; ++i)
        _slots[frame * _p.slotsPerNode + i] = RsEntry{};
}

bool
ExecNode::deliver(unsigned frame, unsigned local, unsigned operand,
                  Word value, ValState state, std::uint32_t wave,
                  std::uint16_t depth)
{
    RsEntry &e = at(frame, local);
    panic_if(!e.valid, "operand delivered to an empty RS slot");
    panic_if(operand >= e.numOps, "operand %u out of range for %s",
             operand, isa::opName(e.op));

    if (wave <= e.opWave[operand])
        return false; // stale wave: the producer has sent newer data
    e.opWave[operand] = wave;

    bool first = !e.opSeen[operand];
    ValState prev_state = first ? ValState::Spec : e.opState[operand];
    bool value_changed = first || e.opVal[operand] != value;

    panic_if(!first && prev_state == ValState::Final && value_changed,
             "protocol violation: Final operand changed value "
             "(seq %llu slot %u op %u)",
             static_cast<unsigned long long>(e.seq), e.slot, operand);

    // Final is sticky.
    ValState next_state = state;
    if (prev_state == ValState::Final)
        next_state = ValState::Final;

    e.opSeen[operand] = true;
    e.opVal[operand] = value;
    e.opState[operand] = next_state;

    if (e.executed) {
        if (value_changed) {
            e.dirtyValue = true;
            e.triggerDepth = std::max<std::uint16_t>(
                e.triggerDepth, static_cast<std::uint16_t>(depth + 1));
        } else if (prev_state != ValState::Final &&
                   next_state == ValState::Final) {
            e.dirtyState = true;
            e.triggerDepth = std::max<std::uint16_t>(
                e.triggerDepth, static_cast<std::uint16_t>(depth + 1));
        }
    }
    return true;
}

NodeEvent
ExecNode::makeEvent(Cycle done, const RsEntry &e, Word value,
                    ValState state, std::uint16_t depth) const
{
    NodeEvent ev;
    ev.when = done;
    ev.seq = e.seq;
    ev.slot = e.slot;
    ev.lsid = e.lsid;
    ev.value = value;
    ev.state = state;
    ev.wave = e.sendCount;
    ev.depth = depth;
    ev.targets = e.targets;
    if (isa::isLoad(e.op)) {
        ev.kind = NodeEvent::Kind::LoadRequest;
        ev.addr = isa::memEffAddr(e.opVal[0], e.imm);
    } else if (isa::isStore(e.op)) {
        ev.kind = NodeEvent::Kind::StoreResolve;
        ev.addr = isa::memEffAddr(e.opVal[0], e.imm);
        ev.value = e.opVal[1];
        ev.addrState = e.opState[0];
        ev.state = e.opState[1];
    } else if (isa::isBranch(e.op)) {
        ev.kind = NodeEvent::Kind::Exit;
    } else {
        ev.kind = NodeEvent::Kind::Result;
    }
    return ev;
}

void
ExecNode::execute(Cycle now, RsEntry &e, bool is_reexec)
{
    Cycle done = now + _p.execLatency(e.op);
    ValState state = e.inputState();
    std::uint16_t depth = is_reexec ? e.triggerDepth : 0;

    Word value = 0;
    Word addr_key = 0; ///< identity key for the squash comparison
    Word data_key = 0;
    if (isa::isLoad(e.op)) {
        addr_key = isa::memEffAddr(e.opVal[0], e.imm);
        state = e.opState[0];
    } else if (isa::isStore(e.op)) {
        addr_key = isa::memEffAddr(e.opVal[0], e.imm);
        data_key = e.opVal[1];
    } else {
        value = isa::evalOp(e.op, e.opVal[0], e.opVal[1], e.opVal[2],
                            e.imm);
        addr_key = value;
    }

    ValState addr_state =
        isa::isMem(e.op) ? e.opState[0] : ValState::Spec;
    if (isa::isStore(e.op))
        state = e.opState[1]; // data state travels separately

    ++_stats.issues;
    if (is_reexec) {
        ++_stats.reexecs;
        _stats.waveDepth.sample(depth);
    }

    bool identical = e.executed && e.lastValue == addr_key &&
                     e.lastData == data_key && e.lastState == state &&
                     e.lastAddrState == addr_state;
    bool squash = identical && _p.squashIdenticalValues;
    // Deliberate protocol mutation: this node forgets to squash and
    // re-sends bit-identical waves. The invariant checker catches it
    // as `value-identity-squash`.
    if (squash && mutated(chaos::Mutation::SkipSquash))
        squash = false;
    bool send = !squash;
    if (squash)
        ++_stats.squashes;

    e.executed = true;
    e.dirtyValue = false;
    e.dirtyState = false;
    e.triggerDepth = 0;
    e.lastValue = addr_key;
    e.lastData = data_key;
    e.lastState = state;
    e.lastAddrState = addr_state;

    if (send) {
        ++e.sendCount;
        done = std::max(done, e.lastSendWhen);
        e.lastSendWhen = done;
        _send(makeEvent(done, e, value, state, depth));
    }
}

void
ExecNode::upgrade(Cycle now, RsEntry &e)
{
    e.dirtyState = false;
    std::uint16_t depth = e.triggerDepth;
    e.triggerDepth = 0;

    // Deliberate protocol mutation: this node swallows commit-wave
    // upgrades, so downstream finality never arrives and the commit
    // frontier stalls. Caught as `commit-progress` (watchdog).
    if (mutated(chaos::Mutation::DropUpgrade))
        return;

    if (isa::isStore(e.op)) {
        // Stores propagate address and data finality independently:
        // a final address alone already un-blocks younger loads'
        // commit waves (they learn the store cannot move onto them).
        ValState as = e.opState[0];
        ValState ds = e.opState[1];
        if (as == e.lastAddrState && ds == e.lastState)
            return;
        e.lastAddrState = as;
        e.lastState = ds;
        ++_stats.upgrades;
        ++e.sendCount;
        Cycle when = std::max(now + 1, e.lastSendWhen);
        e.lastSendWhen = when;
        NodeEvent ev = makeEvent(when, e, e.lastData, ds, depth);
        ev.addr = e.lastValue;
        ev.statusOnly = true;
        _send(ev);
        return;
    }

    ValState state = isa::isLoad(e.op) ? e.opState[0] : e.inputState();
    if (state != ValState::Final || e.lastState == ValState::Final)
        return;
    e.lastState = state;
    ++_stats.upgrades;
    ++e.sendCount;
    Cycle when = std::max(now + 1, e.lastSendWhen);
    e.lastSendWhen = when;
    NodeEvent ev = makeEvent(when, e, e.lastValue, state, depth);
    if (ev.kind == NodeEvent::Kind::LoadRequest)
        ev.addr = e.lastValue; // lastValue holds the address key
    ev.statusOnly = true;
    _send(ev);
}

void
ExecNode::tick(Cycle now)
{
    // ALU: one issue per cycle; oldest block first, then slot order.
    RsEntry *best = nullptr;
    for (RsEntry &e : _slots) {
        if (!e.valid || !e.allSeen())
            continue;
        bool wants_alu = !e.executed || e.dirtyValue ||
                         (_p.commitWaveUsesAlu && e.dirtyState);
        if (!wants_alu)
            continue;
        if (!best || e.seq < best->seq ||
            (e.seq == best->seq && e.slot < best->slot)) {
            best = &e;
        }
    }
    if (best) {
        bool is_reexec = best->executed;
        if (_p.commitWaveUsesAlu && best->executed && !best->dirtyValue &&
            best->dirtyState) {
            upgrade(now, *best);
        } else {
            execute(now, *best, is_reexec);
        }
    }

    if (!_p.commitWaveUsesAlu) {
        unsigned budget = _p.commitPortsPerNode;
        for (RsEntry &e : _slots) {
            if (budget == 0)
                break;
            if (e.valid && e.executed && !e.dirtyValue && e.dirtyState &&
                e.allSeen()) {
                upgrade(now, e);
                --budget;
            }
        }
    }
}

unsigned
ExecNode::occupancy() const
{
    unsigned n = 0;
    for (const RsEntry &e : _slots)
        n += e.valid;
    return n;
}

std::string
ExecNode::debugState() const
{
    std::string out;
    for (const RsEntry &e : _slots) {
        if (!e.valid || e.executed)
            continue;
        std::string missing;
        for (unsigned k = 0; k < e.numOps; ++k)
            if (!e.opSeen[k])
                missing += strfmt(" op%u", k);
        out += strfmt("  seq %llu slot %u %s waiting:%s\n",
                      static_cast<unsigned long long>(e.seq), e.slot,
                      isa::opName(e.op),
                      missing.empty() ? " (ready)" : missing.c_str());
    }
    return out;
}

} // namespace edge::core
