#include "core/program_image.hh"

#include "common/logging.hh"

namespace edge::core {

ProgramImage::ProgramImage(const isa::Program &program) : _prog(program)
{
    std::string why;
    fatal_if(!program.validate(&why), "invalid program: %s",
             why.c_str());
}

std::uint64_t
ProgramImage::geomKey(const compiler::GridGeom &geom)
{
    return (static_cast<std::uint64_t>(geom.rows) << 42) |
           (static_cast<std::uint64_t>(geom.cols) << 21) |
           static_cast<std::uint64_t>(geom.slotsPerNode);
}

const std::vector<compiler::Placement> &
ProgramImage::placements(const compiler::GridGeom &geom) const
{
    std::lock_guard<std::mutex> lock(_mu);
    auto &slot = _byGeom[geomKey(geom)];
    if (!slot) {
        auto built =
            std::make_unique<std::vector<compiler::Placement>>();
        built->reserve(_prog.numBlocks());
        for (std::size_t b = 0; b < _prog.numBlocks(); ++b) {
            built->push_back(compiler::placeBlock(
                _prog.block(static_cast<BlockId>(b)), geom));
        }
        slot = std::move(built);
    }
    return *slot;
}

} // namespace edge::core
