/**
 * @file
 * The operand-network message format. Every value moving through the
 * machine — operands between instructions, register writes, load
 * requests and replies, store resolutions, block exits — is one of
 * these, tagged with the DSRE protocol fields (state, wave, depth).
 */

#ifndef EDGE_CORE_MSG_HH
#define EDGE_CORE_MSG_HH

#include <array>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace edge::core {

struct Msg
{
    enum class Kind : std::uint8_t
    {
        Operand,      ///< to an instruction's operand slot
        WriteVal,     ///< to a block's register-write slot
        LoadReq,      ///< load address to the LSQ
        StoreResolve, ///< store address + data to the LSQ
        ExitVal,      ///< branch outcome to the control unit
    };

    Kind kind = Kind::Operand;
    DynBlockSeq seq = 0;  ///< dynamic block the message belongs to
    SlotId slot = 0;      ///< consumer slot (Operand) / memop slot
    std::uint8_t operand = 0;
    std::uint16_t writeIdx = 0;
    Lsid lsid = 0;
    Word value = 0;       ///< operand value / store data / exit index
    Addr addr = 0;        ///< memory ops only
    ValState state = ValState::Spec;
    ValState addrState = ValState::Spec; ///< store address state
    std::uint32_t wave = 0;
    std::uint16_t depth = 0;
    /** Commit-wave (state-only) message: rides the status
     *  network, the analogue of TRIPS's global control network. */
    bool statusOnly = false;
    /** Deliberate same-value resend (chaos echo wave or a value
     *  prediction confirmation); exempt from the
     *  value-identity-squash invariant. */
    bool echo = false;
    /** Load replies are sent straight to these consumers. */
    std::array<isa::Target, isa::kMaxTargets> targets{};
};

} // namespace edge::core

#endif // EDGE_CORE_MSG_HH
