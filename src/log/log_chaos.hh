/**
 * @file
 * Deterministic crash/IO-fault injection for the durable result log.
 * The same philosophy as serve/fabric_chaos: every physical log
 * operation (block write, fsync, segment rotation) gets an ordinal,
 * and an FNV-1a hash of (seed, ordinal, crash point) decides — with
 * no RNG state and no ordering sensitivity — whether the armed fault
 * fires there. A given (point, seed) pair therefore always kills the
 * process at the same byte of the same write, which is what lets the
 * recovery matrix in tests/test_log.cc assert byte-identical resumes
 * instead of "usually recovers".
 *
 * Crash points name the instant of death relative to the flusher's
 * write/fsync/rotate sequence. `mid-write` additionally tears the
 * in-flight write at a hash-chosen byte before dying, so recovery
 * must cope with a half-block tail. `fail-fsync` is the one
 * non-lethal fault: the fsync is skipped and reported as failed, and
 * the log goes into its sticky failed state exactly as it would on a
 * real EIO.
 */

#ifndef EDGE_LOG_LOG_CHAOS_HH
#define EDGE_LOG_LOG_CHAOS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace edge::log {

enum class LogCrashPoint : std::uint8_t
{
    None,         ///< injection disabled
    BeforeWrite,  ///< die before a block batch write starts
    MidWrite,     ///< tear the write at a hash-chosen byte, then die
    AfterWrite,   ///< die after write(2) returns, before the fsync
    BeforeFsync,  ///< die immediately before fsync(2)
    AfterFsync,   ///< die after fsync, before the durable watermark
                  ///  advances (data durable, ack lost)
    BeforeRotate, ///< die before the next segment file is created
    FailFsync,    ///< non-lethal: fsync fails, log goes sticky-failed
};

const char *logCrashPointName(LogCrashPoint point);

/** Parse a crash-point name; returns false on an unknown name. */
bool logCrashPointByName(const std::string &name, LogCrashPoint *out);

struct LogChaosOptions
{
    LogCrashPoint point = LogCrashPoint::None;
    std::uint64_t seed = 1;
};

class LogChaos
{
  public:
    explicit LogChaos(const LogChaosOptions &opts = {}) : _opts(opts) {}

    bool armed() const { return _opts.point != LogCrashPoint::None; }
    LogCrashPoint point() const { return _opts.point; }

    /**
     * Pure decision function: does the fault armed as `point` with
     * `seed` fire at operation ordinal `ordinal`? Roughly one in four
     * eligible ordinals fire; the process dies at the first hit, so
     * the seed selects WHICH write/fsync of a campaign is the victim.
     * Exposed statically so tests can pick a seed that fires at a
     * known ordinal.
     */
    static bool wouldFire(LogCrashPoint point, std::uint64_t seed,
                          std::uint64_t ordinal);

    /**
     * Consult the injector at a named point. Kills the process (via
     * SIGKILL, mimicking `kill -9`) when the armed lethal point
     * fires. For FailFsync returns true exactly once when the fault
     * fires — the caller then skips the fsync and fails the log.
     */
    bool at(LogCrashPoint point, std::uint64_t ordinal);

    /**
     * For an armed mid-write tear at `ordinal`: how many bytes of an
     * `n`-byte write to let through before dying. Hash-chosen in
     * [1, n) so the tail always ends inside a block.
     */
    std::size_t tearBytes(std::uint64_t ordinal, std::size_t n) const;

  private:
    LogChaosOptions _opts;
    bool _fsyncFailed = false; ///< FailFsync latches: one fault per log
};

} // namespace edge::log

#endif // EDGE_LOG_LOG_CHAOS_HH
