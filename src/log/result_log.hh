/**
 * @file
 * The durable result log: an append-only directory of segment files
 * holding fixed-header, FNV-1a-checksummed, LSN-addressed blocks of
 * campaign records — the ERMIA-style replacement for the journal's
 * per-record whole-file rewrite. Producers append serialized records
 * from any thread; a single group-commit flusher batches everything
 * that arrived inside the commit window into as few blocks and ONE
 * fsync as possible, then advances the `durableLsn()` watermark. A
 * record is acknowledged (its ack LSN is at or below the watermark)
 * only once its bytes are on disk, so the supervisor and fabric can
 * gate completion on real durability while paying ~one fsync per
 * batch instead of one per record.
 *
 * On-disk layout (`<dir>/seg-NNNNNN.elog`, numbered from 1):
 *
 *   block  := header(32B) payload
 *   header := magic u32 ("ELB1") | flags u16 | nrecords u16
 *           | payloadBytes u32 | reserved u32 | lsn u64 | checksum u64
 *   record := cell u64 | bytes u32 | payload (record framing inside
 *             a data block's payload)
 *
 * The LSN is the block's global byte offset across the segment chain,
 * so any block is addressable by (segment, offset) arithmetic alone.
 * The checksum is FNV-1a over the header (checksum field zeroed)
 * plus the payload: a torn tail fails it, and so does any later bit
 * flip. Every segment opens with a meta block (flag SegmentStart)
 * whose payload is a JSON header carrying the segment number and the
 * writing build's provenance line. Records larger than the block
 * payload cap are split into an overflow chain (ChainFirst /
 * ChainCont / ChainLast flags) of consecutive blocks in the same
 * segment.
 *
 * Recovery scans segments (in parallel when asked), verifies every
 * checksum, and tolerates exactly one kind of damage: a torn tail at
 * the physical end of the NEWEST segment, which is what a crash
 * mid-append leaves behind. A checksum failure anywhere else is
 * bit-level corruption and rejects the log with an error naming the
 * segment and LSN. Opening for append truncates the torn tail and
 * continues where the valid prefix ends.
 */

#ifndef EDGE_LOG_RESULT_LOG_HH
#define EDGE_LOG_RESULT_LOG_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "log/log_chaos.hh"

namespace edge::log {

/** Writer/recovery tuning; all CLI-exposed knobs land here. */
struct LogOptions
{
    /** Group-commit window: how long the flusher waits for more
     *  producers to join a batch before writing + fsyncing it. */
    std::uint64_t groupCommitMs = 5;
    /** Rotate to a new segment once the current one passes this. */
    std::uint64_t segmentBytes = 64ull << 20;
    /** Crash/IO-fault injection (tests and CI chaos smokes). */
    LogChaosOptions chaos;
};

/** One record as scanned back from the log, in append order. */
struct RawRecord
{
    std::uint64_t cell = 0; ///< partition key (cellHash identity)
    std::uint64_t lsn = 0;  ///< LSN of the containing block
    std::string payload;    ///< serialized record, byte-exact
};

/** What recovery saw; surfaced as `--resume` progress. */
struct ReplayStats
{
    std::size_t segments = 0;
    std::uint64_t blocks = 0;
    std::uint64_t metaBlocks = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;        ///< valid bytes scanned
    std::uint64_t tornRecords = 0;  ///< records lost to the torn tail
    std::uint64_t tornBytes = 0;    ///< tail bytes discarded
    double scanMillis = 0;
    unsigned workers = 1;
};

class ResultLog
{
  public:
    ResultLog() = default;
    ~ResultLog() { close(); }
    ResultLog(const ResultLog &) = delete;
    ResultLog &operator=(const ResultLog &) = delete;

    /**
     * Open (creating or recovering) the log directory at `dir`.
     * Existing segments are scanned with `scanThreads` workers, the
     * torn tail (if any) is truncated away, and appending continues
     * at the end of the valid prefix. A fresh log writes segment 1's
     * meta block — stamped with `build_line` — durably before
     * returning, so provenance exists from the first instant.
     */
    bool open(const std::string &dir, const std::string &build_line,
              const LogOptions &opts, unsigned scanThreads,
              std::string *err);

    /** Records recovered by open(), in append order. */
    const std::vector<RawRecord> &loaded() const { return _loadedRecords; }
    /** Build-provenance line from segment 1's meta block. */
    const std::string &buildLine() const { return _buildLine; }
    const ReplayStats &recoveryStats() const { return _recovery; }

    const std::string &dir() const { return _dir; }
    bool isOpen() const;

    /**
     * Enqueue one record for the flusher. Returns the record's ack
     * LSN: the record is durable once durableLsn() reaches it.
     * Returns 0 if the log has failed (sticky I/O error).
     */
    std::uint64_t append(std::uint64_t cell, std::string payload);

    /** Enqueue a meta block (session/recovery annotations). */
    std::uint64_t appendMeta(std::string payload);

    /** Everything at or below this LSN is fsynced to disk. */
    std::uint64_t durableLsn() const;

    /**
     * Block until `lsn` is durable (requesting an immediate flush).
     * Returns false if the log failed before reaching it.
     */
    bool waitDurable(std::uint64_t lsn);

    /** waitDurable() over everything appended so far. */
    bool flush();

    /** Flush, stop the flusher, close the segment. Idempotent. */
    void close();

    bool failed() const;
    std::string error() const;

    // --- flusher telemetry (bench + tests) -------------------------
    std::uint64_t appendedRecords() const { return _appendedRecords; }
    std::uint64_t blockWrites() const { return _blockWrites; }
    std::uint64_t fsyncs() const { return _fsyncCount; }
    unsigned long groupCommitMs() const { return _opts.groupCommitMs; }

    /**
     * Standalone reader: scan a log directory with `threads` redo
     * workers (one per segment, merged in segment order) and return
     * every record byte-exactly in append order. The result is
     * independent of `threads` by construction. Fails — naming the
     * segment and LSN — on any corruption that is not a torn tail of
     * the newest segment.
     */
    static bool scan(const std::string &dir, unsigned threads,
                     std::vector<RawRecord> *out, std::string *build_line,
                     ReplayStats *stats, std::string *err);

    /** Cheap provenance probe: read segment 1's build line only. */
    static bool readBuildLine(const std::string &dir,
                              std::string *build_line, std::string *err);

  private:
    struct PendingBlock
    {
        std::uint64_t lsn = 0;
        std::uint16_t flags = 0;
        std::uint16_t nrecords = 0;
        std::uint64_t segment = 0;    ///< segment this block lands in
        bool startsSegment = false;   ///< flusher opens the file first
        std::string payload;
    };

    std::uint64_t appendImpl(std::uint64_t cell, std::string payload,
                             std::uint16_t flags);
    void sealOpenBlockLocked();
    void openBlockLocked(std::uint16_t flags);
    void maybeRotateLocked();
    std::uint64_t pendingEndLsnLocked() const;
    void flusherMain();
    bool writeBatch(std::vector<PendingBlock> &batch, std::string *err);
    bool writeSegmentMetaLocked(std::string *err);

    std::string _dir;
    LogOptions _opts;
    LogChaos _chaos;
    /** Current segment file; owned by the flusher once it runs. */
    int _fd = -1;
    bool _accepting = false; ///< open() finished; appends allowed

    mutable std::mutex _mu;
    std::condition_variable _cv;    ///< wakes the flusher
    std::condition_variable _ackCv; ///< wakes durability waiters
    std::thread _flusher;
    bool _closing = false;
    bool _flushRequested = false;
    bool _failed = false;
    std::string _error;

    // Append-side byte accounting (all under _mu): blocks are packed
    // and LSN-addressed by producers; the flusher only writes bytes.
    std::vector<PendingBlock> _pending;
    PendingBlock _open;          ///< block currently accepting records
    bool _openActive = false;
    std::uint64_t _tailLsn = 0;  ///< next unallocated byte (sealed)
    std::uint64_t _durableLsn = 0;
    std::uint64_t _segment = 1;      ///< segment now accepting appends
    std::uint64_t _segmentBase = 0;  ///< its base LSN

    // Flusher-side ordinals for chaos decisions.
    std::uint64_t _writeOps = 0;
    std::uint64_t _fsyncOps = 0;

    std::atomic<std::uint64_t> _appendedRecords{0};
    std::atomic<std::uint64_t> _blockWrites{0};
    std::atomic<std::uint64_t> _fsyncCount{0};

    std::string _sessionBuild; ///< this session's provenance line
    std::string _buildLine;
    std::vector<RawRecord> _loadedRecords;
    ReplayStats _recovery;
};

// Block-format constants, shared with tests that corrupt blocks on
// purpose.
constexpr std::uint32_t kBlockMagic = 0x31424c45u; // "ELB1" LE
constexpr std::size_t kBlockHeaderBytes = 32;
constexpr std::size_t kMaxBlockPayload = 256 * 1024;
constexpr std::uint16_t kMaxBlockRecords = 254;
constexpr std::size_t kRecordFrameBytes = 12; // cell u64 + bytes u32

constexpr std::uint16_t kBlockMeta = 0x1;
constexpr std::uint16_t kBlockSegmentStart = 0x2;
constexpr std::uint16_t kBlockChainFirst = 0x4;
constexpr std::uint16_t kBlockChainCont = 0x8;
constexpr std::uint16_t kBlockChainLast = 0x10;

/** Segment file name for a 1-based segment number. */
std::string segmentFileName(std::uint64_t number);

} // namespace edge::log

#endif // EDGE_LOG_RESULT_LOG_HH
