#include "log/result_log.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/thread_pool.hh"
#include "triage/jsonio.hh"

namespace edge::log {

namespace fs = std::filesystem;
using triage::JsonValue;

std::string
segmentFileName(std::uint64_t number)
{
    return strfmt("seg-%06llu.elog", (unsigned long long)number);
}

namespace {

void
put16(std::string &out, std::uint16_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
put32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
put64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint16_t
get16(const char *p)
{
    std::uint16_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t
get32(const char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
get64(const char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

struct BlockHeader
{
    std::uint16_t flags = 0;
    std::uint16_t nrecords = 0;
    std::uint32_t payloadBytes = 0;
    std::uint64_t lsn = 0;
    std::uint64_t checksum = 0;
};

/** Serialize header + payload; the checksum is computed over the
 *  header with its checksum field zeroed, then the payload. */
std::string
packBlock(std::uint16_t flags, std::uint16_t nrecords,
          std::uint64_t lsn, const std::string &payload)
{
    std::string out;
    out.reserve(kBlockHeaderBytes + payload.size());
    put32(out, kBlockMagic);
    put16(out, flags);
    put16(out, nrecords);
    put32(out, static_cast<std::uint32_t>(payload.size()));
    put32(out, 0); // reserved
    put64(out, lsn);
    put64(out, 0); // checksum placeholder
    Fnv1a h;
    h.mix(out.data(), kBlockHeaderBytes);
    h.mix(payload);
    std::uint64_t sum = h.state;
    std::memcpy(out.data() + 24, &sum, sizeof(sum));
    out += payload;
    return out;
}

bool
parseHeader(const char *p, BlockHeader *h)
{
    if (get32(p) != kBlockMagic)
        return false;
    h->flags = get16(p + 4);
    h->nrecords = get16(p + 6);
    h->payloadBytes = get32(p + 8);
    h->lsn = get64(p + 16);
    h->checksum = get64(p + 24);
    return true;
}

bool
checksumOk(const char *block, std::size_t payloadBytes,
           std::uint64_t recorded)
{
    std::string head(block, kBlockHeaderBytes);
    std::memset(head.data() + 24, 0, 8);
    Fnv1a h;
    h.mix(head.data(), kBlockHeaderBytes);
    h.mix(block + kBlockHeaderBytes, payloadBytes);
    return h.state == recorded;
}

bool
fsyncPath(const std::string &path, std::string *err)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (err)
            *err = "cannot open '" + path + "' for fsync";
        return false;
    }
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
        if (err)
            *err = "fsync of '" + path + "' failed";
        return false;
    }
    return true;
}

bool
writeFully(int fd, const char *data, std::size_t n, std::string *err)
{
    std::size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = strfmt("write failed: %s", std::strerror(errno));
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

/** One segment's scan result; `err` empty means the segment (or its
 *  valid prefix, when `torn`) parsed cleanly. */
struct SegScan
{
    std::uint64_t number = 0;
    std::string path;
    bool present = false; ///< at least one valid block
    bool torn = false;    ///< damage after the valid prefix
    std::uint64_t baseLsn = 0;
    std::uint64_t endLsn = 0;    ///< base + valid bytes
    std::uint64_t fileBytes = 0; ///< physical size on disk
    std::vector<RawRecord> records;
    /** Meta payloads in order, with their block flags. */
    std::vector<std::pair<std::uint16_t, std::string>> metas;
    std::uint64_t blocks = 0;
    std::uint64_t metaBlocks = 0;
    std::uint64_t tornRecords = 0;
    std::uint64_t tornBytes = 0;
    std::string err;
};

void
scanSegment(const std::string &path, std::uint64_t number, bool isLast,
            SegScan *out)
{
    out->number = number;
    out->path = path;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out->err = "segment '" + path + "': cannot open";
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    out->fileBytes = data.size();

    auto tornTail = [&](std::size_t pos, std::uint64_t records,
                        const char *what) {
        if (!isLast) {
            out->err = strfmt("segment '%s': %s at offset %zu "
                              "(corruption before the newest segment)",
                              path.c_str(), what, pos);
            return;
        }
        out->torn = true;
        out->tornBytes = data.size() - pos;
        out->tornRecords += records;
    };

    std::size_t pos = 0;
    // Overflow-chain assembly state: a chain's record is complete
    // only at its ChainLast block.
    bool chainOpen = false;
    std::uint64_t chainCell = 0;
    std::uint64_t chainLsn = 0;
    std::uint32_t chainTotal = 0;
    std::string chainData;

    while (pos < data.size()) {
        if (data.size() - pos < kBlockHeaderBytes) {
            tornTail(pos, 1, "short block header");
            return;
        }
        BlockHeader h;
        if (!parseHeader(data.data() + pos, &h)) {
            out->err = strfmt("segment '%s': bad block magic at "
                              "offset %zu (corrupt block)",
                              path.c_str(), pos);
            return;
        }
        if (data.size() - pos - kBlockHeaderBytes < h.payloadBytes) {
            // A write torn mid-payload: the header (written first)
            // is intact, the payload is not all there.
            tornTail(pos, chainOpen ? 1 : h.nrecords,
                     "incomplete block payload");
            return;
        }
        if (!checksumOk(data.data() + pos, h.payloadBytes, h.checksum)) {
            // The whole block is physically present, so this is a bit
            // flip, not a torn append — reject wherever it sits.
            out->err = strfmt("segment '%s': block checksum mismatch "
                              "at lsn %llu (corrupt block)",
                              path.c_str(), (unsigned long long)h.lsn);
            return;
        }
        if (!out->present) {
            out->present = true;
            out->baseLsn = h.lsn;
            out->endLsn = h.lsn;
        }
        if (h.lsn != out->endLsn) {
            out->err = strfmt("segment '%s': block lsn %llu does not "
                              "match its offset (expected %llu)",
                              path.c_str(), (unsigned long long)h.lsn,
                              (unsigned long long)out->endLsn);
            return;
        }
        const char *payload = data.data() + pos + kBlockHeaderBytes;

        if (h.flags & kBlockMeta) {
            if (chainOpen) {
                out->err = strfmt("segment '%s': overflow chain broken "
                                  "at lsn %llu",
                                  path.c_str(), (unsigned long long)h.lsn);
                return;
            }
            out->metas.emplace_back(h.flags,
                                    std::string(payload, h.payloadBytes));
            ++out->metaBlocks;
        } else if (h.flags & (kBlockChainFirst | kBlockChainCont)) {
            if (h.flags & kBlockChainFirst) {
                if (chainOpen || h.payloadBytes < kRecordFrameBytes) {
                    out->err = strfmt("segment '%s': malformed overflow "
                                      "chain at lsn %llu",
                                      path.c_str(),
                                      (unsigned long long)h.lsn);
                    return;
                }
                chainOpen = true;
                chainCell = get64(payload);
                chainTotal = get32(payload + 8);
                chainLsn = h.lsn;
                chainData.assign(payload + kRecordFrameBytes,
                                 h.payloadBytes - kRecordFrameBytes);
            } else {
                if (!chainOpen) {
                    out->err = strfmt("segment '%s': overflow "
                                      "continuation without a chain at "
                                      "lsn %llu",
                                      path.c_str(),
                                      (unsigned long long)h.lsn);
                    return;
                }
                chainData.append(payload, h.payloadBytes);
            }
            if (h.flags & kBlockChainLast) {
                if (chainData.size() != chainTotal) {
                    out->err = strfmt("segment '%s': overflow chain "
                                      "size mismatch at lsn %llu",
                                      path.c_str(),
                                      (unsigned long long)h.lsn);
                    return;
                }
                RawRecord rec;
                rec.cell = chainCell;
                rec.lsn = chainLsn;
                rec.payload = std::move(chainData);
                out->records.push_back(std::move(rec));
                chainOpen = false;
                chainData.clear();
            }
        } else {
            if (chainOpen) {
                out->err = strfmt("segment '%s': overflow chain broken "
                                  "at lsn %llu",
                                  path.c_str(), (unsigned long long)h.lsn);
                return;
            }
            // Plain data block: nrecords framed records that must
            // consume the payload exactly.
            std::size_t rpos = 0;
            for (std::uint16_t i = 0; i < h.nrecords; ++i) {
                if (h.payloadBytes - rpos < kRecordFrameBytes) {
                    out->err = strfmt("segment '%s': record frame "
                                      "overruns block at lsn %llu",
                                      path.c_str(),
                                      (unsigned long long)h.lsn);
                    return;
                }
                RawRecord rec;
                rec.cell = get64(payload + rpos);
                std::uint32_t bytes = get32(payload + rpos + 8);
                rpos += kRecordFrameBytes;
                if (h.payloadBytes - rpos < bytes) {
                    out->err = strfmt("segment '%s': record payload "
                                      "overruns block at lsn %llu",
                                      path.c_str(),
                                      (unsigned long long)h.lsn);
                    return;
                }
                rec.lsn = h.lsn;
                rec.payload.assign(payload + rpos, bytes);
                rpos += bytes;
                out->records.push_back(std::move(rec));
            }
            if (rpos != h.payloadBytes) {
                out->err = strfmt("segment '%s': trailing bytes in "
                                  "block at lsn %llu",
                                  path.c_str(), (unsigned long long)h.lsn);
                return;
            }
        }

        ++out->blocks;
        pos += kBlockHeaderBytes + h.payloadBytes;
        out->endLsn = h.lsn + kBlockHeaderBytes + h.payloadBytes;
    }

    if (chainOpen) {
        // The chain's tail blocks never made it: the record is torn.
        tornTail(pos, 1, "unterminated overflow chain");
        if (!out->err.empty())
            return;
        // The chain bytes counted as valid blocks; back the valid end
        // up to the chain's first block so append resumes before it.
        out->endLsn = chainLsn;
        out->tornBytes = out->fileBytes - (chainLsn - out->baseLsn);
    }
}

/** List `seg-NNNNNN.elog` files; sorted by number. */
bool
listSegments(const std::string &dir,
             std::vector<std::pair<std::uint64_t, std::string>> *out,
             std::string *err)
{
    out->clear();
    std::error_code ec;
    for (const auto &ent : fs::directory_iterator(dir, ec)) {
        std::string name = ent.path().filename().string();
        unsigned long long num = 0;
        if (std::sscanf(name.c_str(), "seg-%6llu.elog", &num) == 1 &&
            name == segmentFileName(num))
            out->emplace_back(num, ent.path().string());
    }
    if (ec) {
        if (err)
            *err = "log '" + dir + "': cannot list directory";
        return false;
    }
    std::sort(out->begin(), out->end());
    for (std::size_t i = 0; i < out->size(); ++i) {
        if ((*out)[i].first != i + 1) {
            if (err)
                *err = strfmt("log '%s': segment %llu missing from the "
                              "chain",
                              dir.c_str(), (unsigned long long)(i + 1));
            return false;
        }
    }
    return true;
}

/**
 * Scan every segment (redo workers in parallel past one segment),
 * validate the LSN chain across them, and merge in segment order.
 */
bool
scanSegments(const std::string &dir, unsigned threads,
             std::vector<SegScan> *segs, std::string *err)
{
    std::vector<std::pair<std::uint64_t, std::string>> files;
    if (!listSegments(dir, &files, err))
        return false;
    if (files.empty()) {
        if (err)
            *err = "log '" + dir + "': no segments (not a result log)";
        return false;
    }

    segs->assign(files.size(), SegScan{});
    unsigned workers = threads == 0 ? ThreadPool::defaultThreads() : threads;
    workers = std::min<unsigned>(workers,
                                 static_cast<unsigned>(files.size()));
    auto scanOne = [&](std::size_t i) {
        scanSegment(files[i].second, files[i].first,
                    i + 1 == files.size(), &(*segs)[i]);
        return 0;
    };
    if (workers <= 1) {
        for (std::size_t i = 0; i < files.size(); ++i)
            scanOne(i);
    } else {
        ThreadPool pool(workers);
        parallelIndex(pool, files.size(), scanOne);
    }

    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < segs->size(); ++i) {
        SegScan &s = (*segs)[i];
        if (!s.err.empty()) {
            if (err)
                *err = s.err;
            return false;
        }
        const bool last = i + 1 == segs->size();
        if (!s.present) {
            // A segment with no valid block (created, then the crash
            // beat the meta write) is only legal as the newest one.
            if (!last) {
                if (err)
                    *err = strfmt("log '%s': segment %llu is empty "
                                  "mid-chain",
                                  dir.c_str(),
                                  (unsigned long long)s.number);
                return false;
            }
            s.baseLsn = s.endLsn = expect;
            s.torn = s.fileBytes > 0;
            s.tornBytes = s.fileBytes;
            continue;
        }
        if (s.baseLsn != expect) {
            if (err)
                *err = strfmt("log '%s': segment %llu starts at lsn "
                              "%llu, expected %llu (broken chain)",
                              dir.c_str(), (unsigned long long)s.number,
                              (unsigned long long)s.baseLsn,
                              (unsigned long long)expect);
            return false;
        }
        if (s.torn && !last) {
            if (err)
                *err = strfmt("log '%s': segment %llu has a torn tail "
                              "but is not the newest segment",
                              dir.c_str(), (unsigned long long)s.number);
            return false;
        }
        expect = s.endLsn;
    }
    return true;
}

std::string
firstBuildLine(const std::vector<SegScan> &segs)
{
    if (segs.empty())
        return "";
    for (const auto &m : segs[0].metas) {
        if (!(m.first & kBlockSegmentStart))
            continue;
        JsonValue v;
        std::string perr;
        if (JsonValue::parse(m.second, &v, &perr))
            return v.getString("build");
        return "";
    }
    return "";
}

void
fillStats(const std::vector<SegScan> &segs, unsigned workers,
          double millis, ReplayStats *stats)
{
    *stats = ReplayStats{};
    stats->segments = segs.size();
    stats->workers = workers;
    stats->scanMillis = millis;
    for (const SegScan &s : segs) {
        stats->blocks += s.blocks;
        stats->metaBlocks += s.metaBlocks;
        stats->records += s.records.size();
        stats->bytes += s.endLsn - s.baseLsn;
        stats->tornRecords += s.tornRecords;
        stats->tornBytes += s.tornBytes;
    }
}

} // namespace

bool
ResultLog::scan(const std::string &dir, unsigned threads,
                std::vector<RawRecord> *out, std::string *build_line,
                ReplayStats *stats, std::string *err)
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<SegScan> segs;
    if (!scanSegments(dir, threads, &segs, err))
        return false;

    out->clear();
    for (SegScan &s : segs)
        for (RawRecord &r : s.records)
            out->push_back(std::move(r));
    if (build_line)
        *build_line = firstBuildLine(segs);
    if (stats) {
        unsigned workers =
            threads == 0 ? ThreadPool::defaultThreads() : threads;
        workers = std::min<unsigned>(workers,
                                     static_cast<unsigned>(segs.size()));
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        fillStats(segs, std::max(1u, workers), ms, stats);
    }
    return true;
}

bool
ResultLog::readBuildLine(const std::string &dir, std::string *build_line,
                         std::string *err)
{
    // Only segment 1's leading meta block is needed; read just enough
    // of the file instead of scanning the whole log.
    std::string path = dir + "/" + segmentFileName(1);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "log '" + dir + "': cannot open " + path;
        return false;
    }
    char head[kBlockHeaderBytes];
    if (!in.read(head, sizeof(head))) {
        if (err)
            *err = "log '" + dir + "': segment 1 too short";
        return false;
    }
    BlockHeader h;
    if (!parseHeader(head, &h) || !(h.flags & kBlockSegmentStart)) {
        if (err)
            *err = "log '" + dir + "': segment 1 has no header block";
        return false;
    }
    std::string payload(h.payloadBytes, '\0');
    if (!in.read(payload.data(), h.payloadBytes)) {
        if (err)
            *err = "log '" + dir + "': segment 1 header block torn";
        return false;
    }
    std::string block(head, sizeof(head));
    block += payload;
    if (!checksumOk(block.data(), h.payloadBytes, h.checksum)) {
        if (err)
            *err = "log '" + dir + "': segment 1 header block corrupt";
        return false;
    }
    JsonValue v;
    std::string perr;
    if (!JsonValue::parse(payload, &v, &perr)) {
        if (err)
            *err = "log '" + dir + "': segment 1 header is not JSON";
        return false;
    }
    *build_line = v.getString("build");
    return true;
}

bool
ResultLog::open(const std::string &dir, const std::string &build_line,
                const LogOptions &opts, unsigned scanThreads,
                std::string *err)
{
    close();
    _dir = dir;
    _opts = opts;
    _chaos = LogChaos(opts.chaos);
    _sessionBuild = build_line;
    _buildLine.clear();
    _loadedRecords.clear();
    _recovery = ReplayStats{};
    _failed = false;
    _error.clear();
    _closing = false;
    _flushRequested = false;
    _pending.clear();
    _openActive = false;
    _writeOps = _fsyncOps = 0;
    _appendedRecords = _blockWrites = _fsyncCount = 0;

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        if (err)
            *err = "log '" + dir + "': cannot create directory";
        return false;
    }

    std::vector<std::pair<std::uint64_t, std::string>> files;
    if (!listSegments(dir, &files, err))
        return false;

    if (files.empty()) {
        // Fresh log: segment 1's meta block goes down durably before
        // anyone appends, so provenance exists from the first instant.
        _segment = 1;
        _segmentBase = 0;
        _tailLsn = 0;
        _durableLsn = 0;
        _buildLine = build_line;
        if (!writeSegmentMetaLocked(err))
            return false;
    } else {
        auto t0 = std::chrono::steady_clock::now();
        std::vector<SegScan> segs;
        if (!scanSegments(dir, scanThreads, &segs, err))
            return false;
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        unsigned workers = scanThreads == 0 ? ThreadPool::defaultThreads()
                                            : scanThreads;
        workers = std::min<unsigned>(workers,
                                     static_cast<unsigned>(segs.size()));
        fillStats(segs, std::max(1u, workers), ms, &_recovery);
        _buildLine = firstBuildLine(segs);
        for (SegScan &s : segs)
            for (RawRecord &r : s.records)
                _loadedRecords.push_back(std::move(r));

        const SegScan &last = segs.back();
        std::uint64_t validBytes = last.endLsn - last.baseLsn;
        std::string path = last.path;
        if (last.fileBytes > validBytes) {
            // Truncate the torn tail so appending continues from the
            // end of the valid prefix.
            if (::truncate(path.c_str(),
                           static_cast<off_t>(validBytes)) != 0) {
                if (err)
                    *err = "log '" + dir + "': cannot truncate torn "
                           "tail of " + path;
                return false;
            }
            if (!fsyncPath(path, err))
                return false;
        }
        _segment = last.number;
        _segmentBase = last.baseLsn;
        _tailLsn = last.endLsn;
        _durableLsn = _tailLsn;
        _fd = ::open(path.c_str(), O_WRONLY);
        if (_fd < 0) {
            if (err)
                *err = "log '" + dir + "': cannot open " + path +
                       " for append";
            return false;
        }
        if (::lseek(_fd, 0, SEEK_END) < 0) {
            ::close(_fd);
            _fd = -1;
            if (err)
                *err = "log '" + dir + "': cannot seek " + path;
            return false;
        }
        // A recovered segment that never got its meta block (crash
        // between file creation and the first write) restarts with
        // one so every segment opens with provenance.
        if (!last.present && validBytes == 0 && last.number == 1) {
            ::close(_fd);
            _fd = -1;
            _buildLine = build_line;
            if (!writeSegmentMetaLocked(err))
                return false;
        }
    }

    _accepting = true;
    _flusher = std::thread([this] { flusherMain(); });
    return true;
}

bool
ResultLog::isOpen() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _accepting;
}

bool
ResultLog::writeSegmentMetaLocked(std::string *err)
{
    JsonValue meta = JsonValue::object();
    meta.set("format", JsonValue::str("edgesim-log"));
    meta.set("version", JsonValue::u64(1));
    meta.set("segment", JsonValue::u64(_segment));
    meta.set("build", JsonValue::str(_segment == 1 ? _buildLine
                                                   : _sessionBuild));
    std::string block = packBlock(kBlockMeta | kBlockSegmentStart, 0,
                                  _tailLsn, meta.dumpCompact());

    std::string path = _dir + "/" + segmentFileName(_segment);
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (err)
            *err = "log '" + _dir + "': cannot create " + path;
        return false;
    }
    if (!writeFully(fd, block.data(), block.size(), err) ||
        ::fsync(fd) != 0) {
        ::close(fd);
        if (err && err->empty())
            *err = "log '" + _dir + "': cannot write " + path;
        return false;
    }
    if (!fsyncPath(_dir, err)) {
        ::close(fd);
        return false;
    }
    if (_fd >= 0)
        ::close(_fd);
    _fd = fd;
    _tailLsn += block.size();
    _durableLsn = _tailLsn;
    return true;
}

void
ResultLog::openBlockLocked(std::uint16_t flags)
{
    _open = PendingBlock{};
    _open.lsn = _tailLsn;
    _open.flags = flags;
    _open.segment = _segment;
    _openActive = true;
}

void
ResultLog::sealOpenBlockLocked()
{
    if (!_openActive)
        return;
    _tailLsn = _open.lsn + kBlockHeaderBytes + _open.payload.size();
    _pending.push_back(std::move(_open));
    _openActive = false;
    maybeRotateLocked();
}

void
ResultLog::maybeRotateLocked()
{
    if (_tailLsn - _segmentBase < _opts.segmentBytes)
        return;
    ++_segment;
    _segmentBase = _tailLsn;
    JsonValue meta = JsonValue::object();
    meta.set("format", JsonValue::str("edgesim-log"));
    meta.set("version", JsonValue::u64(1));
    meta.set("segment", JsonValue::u64(_segment));
    meta.set("build", JsonValue::str(_sessionBuild));
    PendingBlock b;
    b.lsn = _tailLsn;
    b.flags = kBlockMeta | kBlockSegmentStart;
    b.segment = _segment;
    b.startsSegment = true;
    b.payload = meta.dumpCompact();
    _tailLsn += kBlockHeaderBytes + b.payload.size();
    _pending.push_back(std::move(b));
}

std::uint64_t
ResultLog::pendingEndLsnLocked() const
{
    if (_openActive)
        return _open.lsn + kBlockHeaderBytes + _open.payload.size();
    return _tailLsn;
}

std::uint64_t
ResultLog::appendImpl(std::uint64_t cell, std::string payload,
                      std::uint16_t flags)
{
    std::unique_lock<std::mutex> lk(_mu);
    if (_failed || !_accepting)
        return 0;
    ++_appendedRecords;

    if (flags & kBlockMeta) {
        // Meta payloads get their own sealed block.
        sealOpenBlockLocked();
        PendingBlock b;
        b.lsn = _tailLsn;
        b.flags = flags;
        b.segment = _segment;
        b.payload = std::move(payload);
        _tailLsn += kBlockHeaderBytes + b.payload.size();
        std::uint64_t ack = _tailLsn;
        _pending.push_back(std::move(b));
        maybeRotateLocked();
        _cv.notify_all();
        return ack;
    }

    const std::size_t framed = kRecordFrameBytes + payload.size();
    if (framed > kMaxBlockPayload) {
        // Overflow chain: consecutive blocks in the same segment, the
        // frame (cell + total bytes) only in the first.
        sealOpenBlockLocked();
        std::string head;
        put64(head, cell);
        put32(head, static_cast<std::uint32_t>(payload.size()));
        std::size_t off = 0;
        bool first = true;
        std::uint64_t ack = 0;
        while (first || off < payload.size()) {
            PendingBlock b;
            b.lsn = _tailLsn;
            b.segment = _segment;
            std::size_t room = kMaxBlockPayload;
            if (first) {
                b.flags = kBlockChainFirst;
                b.nrecords = 1;
                b.payload = head;
                room -= head.size();
            } else {
                b.flags = kBlockChainCont;
            }
            std::size_t take = std::min(room, payload.size() - off);
            b.payload.append(payload, off, take);
            off += take;
            if (off >= payload.size())
                b.flags |= kBlockChainLast;
            first = false;
            _tailLsn += kBlockHeaderBytes + b.payload.size();
            ack = _tailLsn;
            _pending.push_back(std::move(b));
        }
        // Rotation waits for the chain end: chains never span
        // segments.
        maybeRotateLocked();
        _cv.notify_all();
        return ack;
    }

    if (_openActive &&
        (_open.payload.size() + framed > kMaxBlockPayload ||
         _open.nrecords >= kMaxBlockRecords))
        sealOpenBlockLocked();
    if (!_openActive)
        openBlockLocked(0);
    put64(_open.payload, cell);
    put32(_open.payload, static_cast<std::uint32_t>(payload.size()));
    _open.payload += payload;
    ++_open.nrecords;
    std::uint64_t ack =
        _open.lsn + kBlockHeaderBytes + _open.payload.size();
    _cv.notify_all();
    return ack;
}

std::uint64_t
ResultLog::append(std::uint64_t cell, std::string payload)
{
    return appendImpl(cell, std::move(payload), 0);
}

std::uint64_t
ResultLog::appendMeta(std::string payload)
{
    return appendImpl(0, std::move(payload), kBlockMeta);
}

std::uint64_t
ResultLog::durableLsn() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _durableLsn;
}

bool
ResultLog::waitDurable(std::uint64_t lsn)
{
    std::unique_lock<std::mutex> lk(_mu);
    if (lsn == 0)
        return false; // the append itself already failed
    while (_durableLsn < lsn && !_failed) {
        _flushRequested = true;
        _cv.notify_all();
        _ackCv.wait(lk);
    }
    return _durableLsn >= lsn;
}

bool
ResultLog::flush()
{
    std::uint64_t target;
    {
        std::lock_guard<std::mutex> lk(_mu);
        target = pendingEndLsnLocked();
    }
    return waitDurable(target);
}

bool
ResultLog::failed() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _failed;
}

std::string
ResultLog::error() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _error;
}

void
ResultLog::flusherMain()
{
    std::unique_lock<std::mutex> lk(_mu);
    for (;;) {
        _cv.wait(lk, [this] {
            return !_pending.empty() || _openActive || _closing ||
                   _flushRequested;
        });
        const bool closing = _closing;
        if (!closing && !_flushRequested && _opts.groupCommitMs > 0) {
            // The group-commit window: let more producers join the
            // batch before paying for the fsync.
            _cv.wait_for(lk,
                         std::chrono::milliseconds(_opts.groupCommitMs),
                         [this] { return _closing || _flushRequested; });
        }
        sealOpenBlockLocked();
        std::vector<PendingBlock> batch = std::move(_pending);
        _pending.clear();
        _flushRequested = false;
        if (batch.empty()) {
            _ackCv.notify_all();
            if (_closing)
                return;
            continue;
        }
        const std::uint64_t batchEnd =
            batch.back().lsn + kBlockHeaderBytes +
            batch.back().payload.size();
        if (_failed) {
            // Sticky failure: drop the batch, wake waiters so they
            // observe the error instead of blocking forever.
            _ackCv.notify_all();
            if (_closing)
                return;
            continue;
        }
        lk.unlock();
        std::string werr;
        const bool ok = writeBatch(batch, &werr);
        lk.lock();
        if (ok) {
            _durableLsn = std::max(_durableLsn, batchEnd);
        } else if (!_failed) {
            _failed = true;
            _error = werr;
        }
        _ackCv.notify_all();
        if (_closing && _pending.empty() && !_openActive)
            return;
    }
}

bool
ResultLog::writeBatch(std::vector<PendingBlock> &batch, std::string *err)
{
    bool wrote = false;
    for (PendingBlock &b : batch) {
        if (b.startsSegment) {
            // Rotation: finish the old segment durably before the
            // chain moves on, then start the new file.
            if (wrote) {
                _chaos.at(LogCrashPoint::BeforeFsync, _fsyncOps);
                if (_chaos.at(LogCrashPoint::FailFsync, _fsyncOps) ||
                    ::fsync(_fd) != 0) {
                    *err = "log '" + _dir + "': fsync failed";
                    return false;
                }
                _chaos.at(LogCrashPoint::AfterFsync, _fsyncOps);
                ++_fsyncOps;
                ++_fsyncCount;
                wrote = false;
            }
            _chaos.at(LogCrashPoint::BeforeRotate, b.segment);
            std::string path = _dir + "/" + segmentFileName(b.segment);
            int fd = ::open(path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (fd < 0) {
                *err = "log '" + _dir + "': cannot create " + path;
                return false;
            }
            if (!fsyncPath(_dir, err)) {
                ::close(fd);
                return false;
            }
            ::close(_fd);
            _fd = fd;
        }

        std::string buf = packBlock(b.flags, b.nrecords, b.lsn, b.payload);
        _chaos.at(LogCrashPoint::BeforeWrite, _writeOps);
        if (_chaos.point() == LogCrashPoint::MidWrite &&
            LogChaos::wouldFire(LogCrashPoint::MidWrite,
                                _opts.chaos.seed, _writeOps)) {
            // Tear the write at a hash-chosen byte, then die the way
            // a power cut would have left it.
            std::size_t n = _chaos.tearBytes(_writeOps, buf.size());
            writeFully(_fd, buf.data(), n, err);
            _chaos.at(LogCrashPoint::MidWrite, _writeOps); // never returns
        }
        if (!writeFully(_fd, buf.data(), buf.size(), err))
            return false;
        _chaos.at(LogCrashPoint::AfterWrite, _writeOps);
        ++_writeOps;
        ++_blockWrites;
        wrote = true;
    }

    _chaos.at(LogCrashPoint::BeforeFsync, _fsyncOps);
    if (_chaos.at(LogCrashPoint::FailFsync, _fsyncOps)) {
        *err = "log '" + _dir + "': fsync failed (injected fault)";
        return false;
    }
    if (::fsync(_fd) != 0) {
        *err = "log '" + _dir + "': fsync failed";
        return false;
    }
    _chaos.at(LogCrashPoint::AfterFsync, _fsyncOps);
    ++_fsyncOps;
    ++_fsyncCount;
    return true;
}

void
ResultLog::close()
{
    {
        std::unique_lock<std::mutex> lk(_mu);
        _accepting = false;
        if (!_flusher.joinable()) {
            if (_fd >= 0) {
                ::close(_fd);
                _fd = -1;
            }
            return;
        }
        _closing = true;
        _flushRequested = true;
        _cv.notify_all();
    }
    _flusher.join();
    std::lock_guard<std::mutex> lk(_mu);
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

} // namespace edge::log
