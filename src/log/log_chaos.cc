#include "log/log_chaos.hh"

#include <csignal>
#include <unistd.h>

#include "common/hash.hh"

namespace edge::log {

const char *
logCrashPointName(LogCrashPoint point)
{
    switch (point) {
      case LogCrashPoint::None: return "none";
      case LogCrashPoint::BeforeWrite: return "before-write";
      case LogCrashPoint::MidWrite: return "mid-write";
      case LogCrashPoint::AfterWrite: return "after-write";
      case LogCrashPoint::BeforeFsync: return "before-fsync";
      case LogCrashPoint::AfterFsync: return "after-fsync";
      case LogCrashPoint::BeforeRotate: return "before-rotate";
      case LogCrashPoint::FailFsync: return "fail-fsync";
    }
    return "?";
}

bool
logCrashPointByName(const std::string &name, LogCrashPoint *out)
{
    for (LogCrashPoint p :
         {LogCrashPoint::None, LogCrashPoint::BeforeWrite,
          LogCrashPoint::MidWrite, LogCrashPoint::AfterWrite,
          LogCrashPoint::BeforeFsync, LogCrashPoint::AfterFsync,
          LogCrashPoint::BeforeRotate, LogCrashPoint::FailFsync}) {
        if (name == logCrashPointName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

namespace {

// Same keyed-decision construction as FabricChaos::decision: FNV-1a
// over the inputs, then a finalizing scramble so low bits are usable
// as modular buckets.
std::uint64_t
decision(std::uint64_t seed, LogCrashPoint point, std::uint64_t ordinal,
         std::uint64_t salt)
{
    Fnv1a h;
    h.mix64(seed);
    h.mix64(static_cast<std::uint64_t>(point));
    h.mix64(ordinal);
    h.mix64(salt);
    std::uint64_t v = h.state;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return v;
}

} // namespace

bool
LogChaos::wouldFire(LogCrashPoint point, std::uint64_t seed,
                    std::uint64_t ordinal)
{
    return decision(seed, point, ordinal, 0x10c) % 4 == 0;
}

bool
LogChaos::at(LogCrashPoint point, std::uint64_t ordinal)
{
    if (_opts.point != point)
        return false;
    if (!wouldFire(point, _opts.seed, ordinal))
        return false;
    if (point == LogCrashPoint::FailFsync) {
        if (_fsyncFailed)
            return false;
        _fsyncFailed = true;
        return true;
    }
    // Lethal points die the way an external `kill -9` would: no
    // destructors, no flushing, no atexit — the exact failure the
    // recovery matrix exists to survive.
    ::kill(::getpid(), SIGKILL);
    ::_exit(137); // unreachable; belt and braces
}

std::size_t
LogChaos::tearBytes(std::uint64_t ordinal, std::size_t n) const
{
    if (n <= 1)
        return 0;
    return 1 + static_cast<std::size_t>(
                   decision(_opts.seed, LogCrashPoint::MidWrite, ordinal,
                            0x7ea4) %
                   (n - 1));
}

} // namespace edge::log
