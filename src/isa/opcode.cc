#include "isa/opcode.hh"

#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace edge::isa {

namespace {

constexpr OpInfo kOpTable[] = {
    // name    ops imm  fu               bytes load  store branch
    {"mov",    1, false, FuClass::IntAlu, 0, false, false, false},
    {"movi",   0, true,  FuClass::IntAlu, 0, false, false, false},

    {"add",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"sub",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"mul",    2, false, FuClass::IntMul, 0, false, false, false},
    {"divs",   2, false, FuClass::IntDiv, 0, false, false, false},
    {"divu",   2, false, FuClass::IntDiv, 0, false, false, false},
    {"remu",   2, false, FuClass::IntDiv, 0, false, false, false},
    {"and",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"or",     2, false, FuClass::IntAlu, 0, false, false, false},
    {"xor",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"shl",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"shr",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"sra",    2, false, FuClass::IntAlu, 0, false, false, false},

    {"addi",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"muli",   1, true,  FuClass::IntMul, 0, false, false, false},
    {"andi",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"ori",    1, true,  FuClass::IntAlu, 0, false, false, false},
    {"xori",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"shli",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"shri",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"srai",   1, true,  FuClass::IntAlu, 0, false, false, false},

    {"teq",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"tne",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"tlt",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"tle",    2, false, FuClass::IntAlu, 0, false, false, false},
    {"tltu",   2, false, FuClass::IntAlu, 0, false, false, false},
    {"tleu",   2, false, FuClass::IntAlu, 0, false, false, false},
    {"teqi",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"tnei",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"tlti",   1, true,  FuClass::IntAlu, 0, false, false, false},
    {"tltui",  1, true,  FuClass::IntAlu, 0, false, false, false},

    {"sel",    3, false, FuClass::IntAlu, 0, false, false, false},

    {"fadd",   2, false, FuClass::FpAlu,  0, false, false, false},
    {"fsub",   2, false, FuClass::FpAlu,  0, false, false, false},
    {"fmul",   2, false, FuClass::FpMul,  0, false, false, false},
    {"fdiv",   2, false, FuClass::FpDiv,  0, false, false, false},
    {"feq",    2, false, FuClass::FpAlu,  0, false, false, false},
    {"flt",    2, false, FuClass::FpAlu,  0, false, false, false},
    {"fle",    2, false, FuClass::FpAlu,  0, false, false, false},
    {"i2f",    1, false, FuClass::FpAlu,  0, false, false, false},
    {"f2i",    1, false, FuClass::FpAlu,  0, false, false, false},

    {"ldb",    1, true,  FuClass::Mem,    1, true,  false, false},
    {"ldh",    1, true,  FuClass::Mem,    2, true,  false, false},
    {"ldw",    1, true,  FuClass::Mem,    4, true,  false, false},
    {"ldd",    1, true,  FuClass::Mem,    8, true,  false, false},
    {"stb",    2, true,  FuClass::Mem,    1, false, true,  false},
    {"sth",    2, true,  FuClass::Mem,    2, false, true,  false},
    {"stw",    2, true,  FuClass::Mem,    4, false, true,  false},
    {"std",    2, true,  FuClass::Mem,    8, false, true,  false},

    {"br",     1, false, FuClass::Ctrl,   0, false, false, true},
    {"bro",    0, true,  FuClass::Ctrl,   0, false, false, true},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<std::size_t>(Opcode::NUM_OPCODES),
              "opcode table out of sync with Opcode enum");

/** Saturating signed division (never UB, even speculatively). */
SWord
safeDivS(SWord a, SWord b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<SWord>::min() && b == -1)
        return std::numeric_limits<SWord>::min();
    return a / b;
}

} // namespace

bool
opcodeByName(const char *name, Opcode *out)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NUM_OPCODES); ++i) {
        if (std::strcmp(kOpTable[i].name, name) == 0) {
            *out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    panic_if(idx >= static_cast<std::size_t>(Opcode::NUM_OPCODES),
             "bad opcode %zu", idx);
    return kOpTable[idx];
}

Word
evalOp(Opcode op, Word a, Word b, Word c, std::int64_t imm)
{
    auto sa = static_cast<SWord>(a);
    auto ib = static_cast<Word>(imm);
    switch (op) {
      case Opcode::MOV:  return a;
      case Opcode::MOVI: return ib;

      case Opcode::ADD:  return a + b;
      case Opcode::SUB:  return a - b;
      case Opcode::MUL:  return a * b;
      case Opcode::DIVS: return static_cast<Word>(
              safeDivS(sa, static_cast<SWord>(b)));
      case Opcode::DIVU: return b == 0 ? 0 : a / b;
      case Opcode::REMU: return b == 0 ? 0 : a % b;
      case Opcode::AND:  return a & b;
      case Opcode::OR:   return a | b;
      case Opcode::XOR:  return a ^ b;
      case Opcode::SHL:  return a << (b & 63);
      case Opcode::SHR:  return a >> (b & 63);
      case Opcode::SRA:  return static_cast<Word>(sa >> (b & 63));

      case Opcode::ADDI: return a + ib;
      case Opcode::MULI: return a * ib;
      case Opcode::ANDI: return a & ib;
      case Opcode::ORI:  return a | ib;
      case Opcode::XORI: return a ^ ib;
      case Opcode::SHLI: return a << (imm & 63);
      case Opcode::SHRI: return a >> (imm & 63);
      case Opcode::SRAI: return static_cast<Word>(sa >> (imm & 63));

      case Opcode::TEQ:  return a == b;
      case Opcode::TNE:  return a != b;
      case Opcode::TLT:  return sa < static_cast<SWord>(b);
      case Opcode::TLE:  return sa <= static_cast<SWord>(b);
      case Opcode::TLTU: return a < b;
      case Opcode::TLEU: return a <= b;
      case Opcode::TEQI: return a == ib;
      case Opcode::TNEI: return a != ib;
      case Opcode::TLTI: return sa < imm;
      case Opcode::TLTUI: return a < ib;

      case Opcode::SEL:  return a != 0 ? b : c;

      case Opcode::FADD:
        return doubleToWord(wordToDouble(a) + wordToDouble(b));
      case Opcode::FSUB:
        return doubleToWord(wordToDouble(a) - wordToDouble(b));
      case Opcode::FMUL:
        return doubleToWord(wordToDouble(a) * wordToDouble(b));
      case Opcode::FDIV:
        return doubleToWord(wordToDouble(a) / wordToDouble(b));
      case Opcode::FEQ:  return wordToDouble(a) == wordToDouble(b);
      case Opcode::FLT:  return wordToDouble(a) < wordToDouble(b);
      case Opcode::FLE:  return wordToDouble(a) <= wordToDouble(b);
      case Opcode::I2F:  return doubleToWord(static_cast<double>(sa));
      case Opcode::F2I: {
        double d = wordToDouble(a);
        // Clamp to the representable range so speculative garbage
        // never triggers UB in the host conversion.
        if (!(d >= -9.2233720368547758e18 && d <= 9.2233720368547758e18))
            return 0;
        return static_cast<Word>(static_cast<SWord>(d));
      }

      case Opcode::BR:   return a;
      case Opcode::BRO:  return ib;

      default:
        panic("evalOp called on memory opcode %s", opName(op));
    }
}

} // namespace edge::isa
