/**
 * @file
 * One EDGE instruction with direct target encoding: instead of
 * naming source registers, an instruction names the operand slots of
 * the (up to two) consumers of its result.
 */

#ifndef EDGE_ISA_INSTRUCTION_HH
#define EDGE_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace edge::isa {

/** Architectural limits, modelled on the TRIPS prototype ISA. */
inline constexpr unsigned kMaxBlockInsts = 128;
inline constexpr unsigned kMaxBlockMemOps = 32;
inline constexpr unsigned kMaxBlockReads = 32;
inline constexpr unsigned kMaxBlockWrites = 32;
inline constexpr unsigned kMaxBlockExits = 8;
inline constexpr unsigned kMaxTargets = 2;
inline constexpr unsigned kMaxOperands = 3;
inline constexpr unsigned kNumArchRegs = 64;

/** What a produced value is delivered to. */
enum class TargetKind : std::uint8_t
{
    None,     ///< unused target slot
    Operand,  ///< operand `operand` of instruction slot `index`
    RegWrite, ///< the block's register-write slot `index`
};

/** A single outgoing arc of an instruction (or register read). */
struct Target
{
    TargetKind kind = TargetKind::None;
    std::uint16_t index = 0;  ///< consumer slot or write index
    std::uint8_t operand = 0; ///< operand position (Operand kind only)

    static Target
    toOperand(std::uint16_t slot, std::uint8_t op)
    {
        return {TargetKind::Operand, slot, op};
    }

    static Target
    toWrite(std::uint16_t write_idx)
    {
        return {TargetKind::RegWrite, write_idx, 0};
    }

    bool valid() const { return kind != TargetKind::None; }

    bool
    operator==(const Target &o) const
    {
        return kind == o.kind && index == o.index && operand == o.operand;
    }
};

/** One static EDGE instruction. */
struct Instruction
{
    Opcode op = Opcode::MOVI;
    std::int64_t imm = 0;
    /** LSID for loads/stores: program order of memory ops in block. */
    Lsid lsid = 0;
    std::array<Target, kMaxTargets> targets{};

    unsigned numOperands() const { return opInfo(op).numOps; }

    unsigned
    numTargets() const
    {
        unsigned n = 0;
        for (const auto &t : targets)
            if (t.valid())
                ++n;
        return n;
    }
};

} // namespace edge::isa

#endif // EDGE_ISA_INSTRUCTION_HH
