#include "isa/program.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::isa {

BlockId
Program::addBlock(Block block)
{
    auto id = static_cast<BlockId>(_blocks.size());
    if (!block.name().empty()) {
        panic_if(_byName.count(block.name()),
                 "duplicate block name '%s'", block.name().c_str());
        _byName[block.name()] = id;
    }
    _blocks.push_back(std::move(block));
    return id;
}

Block &
Program::block(BlockId id)
{
    panic_if(id >= _blocks.size(), "block id %u out of range", id);
    return _blocks[id];
}

const Block &
Program::block(BlockId id) const
{
    panic_if(id >= _blocks.size(), "block id %u out of range", id);
    return _blocks[id];
}

BlockId
Program::blockByName(const std::string &name) const
{
    auto it = _byName.find(name);
    panic_if(it == _byName.end(), "no block named '%s'", name.c_str());
    return it->second;
}

std::vector<ValidationIssue>
Program::validateAll() const
{
    std::vector<ValidationIssue> issues;
    if (_blocks.empty()) {
        issues.push_back({"program", "has no blocks"});
        return issues;
    }
    if (_entry >= _blocks.size())
        issues.push_back({"program", "entry block out of range"});
    for (std::size_t i = 0; i < _blocks.size(); ++i) {
        std::string where = strfmt("block %zu (%s)", i,
                                   _blocks[i].name().c_str());
        _blocks[i].validateInto(issues, where);
        for (std::size_t e = 0; e < _blocks[i].exits().size(); ++e) {
            BlockId succ = _blocks[i].exits()[e];
            if (succ != kHaltBlock && succ >= _blocks.size())
                issues.push_back(
                    {where, strfmt("exit %zu to bad block %u", e, succ)});
        }
    }
    return issues;
}

bool
Program::validate(std::string *why) const
{
    std::vector<ValidationIssue> issues = validateAll();
    if (issues.empty())
        return true;
    if (why)
        *why = issues.front().str();
    return false;
}

std::size_t
Program::staticInsts() const
{
    std::size_t n = 0;
    for (const auto &b : _blocks)
        n += b.insts().size();
    return n;
}

std::string
Program::disassemble() const
{
    std::string out = strfmt("program %s (entry block %u):\n",
                             _name.c_str(), _entry);
    for (std::size_t i = 0; i < _blocks.size(); ++i) {
        out += strfmt("[%zu] ", i);
        out += _blocks[i].disassemble();
    }
    return out;
}

} // namespace edge::isa
