/**
 * @file
 * The EDGE instruction set: opcodes, their static properties, and
 * their functional semantics. The ISA follows the TRIPS prototype in
 * spirit: fixed-size blocks of dataflow instructions with direct
 * target encoding, explicit register read/write interface
 * instructions, LSID-ordered loads and stores, and one taken exit per
 * block.
 */

#ifndef EDGE_ISA_OPCODE_HH
#define EDGE_ISA_OPCODE_HH

#include <cstdint>

#include "common/types.hh"

namespace edge::isa {

/** Every EDGE opcode the simulator implements. */
enum class Opcode : std::uint8_t
{
    // Moves / immediates.
    MOV,    ///< op0 -> result
    MOVI,   ///< imm -> result (no operands)

    // Integer arithmetic and logic (two register operands).
    ADD, SUB, MUL, DIVS, DIVU, REMU,
    AND, OR, XOR, SHL, SHR, SRA,

    // Immediate forms (op0 OP imm).
    ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI, SRAI,

    // Integer comparisons, producing 0 or 1.
    TEQ, TNE, TLT, TLE, TLTU, TLEU,
    TEQI, TNEI, TLTI, TLTUI,

    // Select: op0 ? op1 : op2.
    SEL,

    // Floating point (operands are IEEE doubles in Word bits).
    FADD, FSUB, FMUL, FDIV,
    FEQ, FLT, FLE,
    I2F,    ///< signed int -> double
    F2I,    ///< double -> signed int (trunc)

    // Memory. Effective address = op0 + imm. Loads zero-extend.
    LDB, LDH, LDW, LDD,
    STB, STH, STW, STD, ///< op0 + imm = address, op1 = data

    // Control: choose the block's taken exit.
    BR,     ///< exit index = op0
    BRO,    ///< exit index = imm (no operands)

    NUM_OPCODES,
};

/** Functional-unit class used for execution latency and occupancy. */
enum class FuClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Mem,
    Ctrl,
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *name;       ///< mnemonic for the disassembler
    std::uint8_t numOps;    ///< dataflow operands consumed (0..3)
    bool hasImm;            ///< uses the immediate field
    FuClass fu;             ///< functional-unit class
    std::uint8_t accessBytes; ///< memory access size (0 if not mem)
    bool isLoad;
    bool isStore;
    bool isBranch;
};

/** Static properties lookup. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic shorthand. */
inline const char *opName(Opcode op) { return opInfo(op).name; }

/**
 * Reverse mnemonic lookup (for deserializing programs).
 * @param name the mnemonic, as produced by opName()
 * @param out receives the opcode on success
 * @return true iff @p name names an opcode
 */
bool opcodeByName(const char *name, Opcode *out);

inline bool isLoad(Opcode op) { return opInfo(op).isLoad; }
inline bool isStore(Opcode op) { return opInfo(op).isStore; }
inline bool isMem(Opcode op) { return isLoad(op) || isStore(op); }
inline bool isBranch(Opcode op) { return opInfo(op).isBranch; }

/**
 * Functional semantics of every non-memory, non-branch opcode.
 * Division by zero yields 0 and INT64_MIN / -1 yields INT64_MIN so
 * speculative execution with garbage operands is always defined.
 *
 * @param op the opcode (must not be a load or store)
 * @param a operand 0 (or unused)
 * @param b operand 1 (or unused)
 * @param c operand 2 (only SEL)
 * @param imm the instruction's immediate
 * @return the produced word (for BR, the chosen exit index)
 */
Word evalOp(Opcode op, Word a, Word b, Word c, std::int64_t imm);

/**
 * Effective address of a memory opcode: base + immediate offset.
 */
inline Addr
memEffAddr(Word base, std::int64_t imm)
{
    return base + static_cast<Addr>(imm);
}

} // namespace edge::isa

#endif // EDGE_ISA_OPCODE_HH
