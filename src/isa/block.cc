#include "isa/block.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::isa {

unsigned
Block::numMemOps() const
{
    unsigned n = 0;
    for (const auto &in : _insts)
        if (isMem(in.op))
            ++n;
    return n;
}

unsigned
Block::numStores() const
{
    unsigned n = 0;
    for (const auto &in : _insts)
        if (isStore(in.op))
            ++n;
    return n;
}

SlotId
Block::branchSlot() const
{
    for (std::size_t i = 0; i < _insts.size(); ++i)
        if (isBranch(_insts[i].op))
            return static_cast<SlotId>(i);
    panic("block %s has no branch instruction", _name.c_str());
}

std::size_t
Block::validateInto(std::vector<ValidationIssue> &out,
                    const std::string &where) const
{
    const std::size_t before = out.size();
    auto issue = [&](std::string at, std::string what) {
        std::string w = where;
        if (!at.empty())
            w += (w.empty() ? "" : " ") + std::move(at);
        out.push_back({std::move(w), std::move(what)});
    };

    if (_insts.empty())
        issue("", "block has no instructions");
    if (_insts.size() > kMaxBlockInsts)
        issue("", strfmt("block has %zu insts (max %u)",
                         _insts.size(), kMaxBlockInsts));
    if (_reads.size() > kMaxBlockReads)
        issue("", "too many register reads");
    if (_writes.size() > kMaxBlockWrites)
        issue("", "too many register writes");
    if (_exits.empty() || _exits.size() > kMaxBlockExits)
        issue("", strfmt("bad exit count (%zu, need 1..%u)",
                         _exits.size(), kMaxBlockExits));
    if (numMemOps() > kMaxBlockMemOps)
        issue("", "too many memory operations");

    // Count the producers of every operand and write slot.
    std::vector<std::array<unsigned, kMaxOperands>> op_producers(
        _insts.size(), {0, 0, 0});
    std::vector<unsigned> write_producers(_writes.size(), 0);

    auto check_target = [&](const Target &t) -> const char * {
        if (!t.valid())
            return nullptr;
        if (t.kind == TargetKind::Operand) {
            if (t.index >= _insts.size())
                return "target slot out of range";
            if (t.operand >= kMaxOperands)
                return "target operand out of range";
            if (t.operand >= _insts[t.index].numOperands())
                return "target operand not consumed by opcode";
            ++op_producers[t.index][t.operand];
        } else {
            if (t.index >= _writes.size())
                return "write target out of range";
            ++write_producers[t.index];
        }
        return nullptr;
    };

    for (std::size_t i = 0; i < _reads.size(); ++i) {
        if (_reads[i].reg >= kNumArchRegs)
            issue(strfmt("read %zu", i), "read of nonexistent register");
        bool any = false;
        for (const auto &t : _reads[i].targets) {
            if (const char *err = check_target(t))
                issue(strfmt("read %zu", i), err);
            any = any || t.valid();
        }
        if (!any)
            issue(strfmt("read %zu", i), "has no targets");
    }

    unsigned branches = 0;
    Lsid next_lsid = 0;
    for (std::size_t i = 0; i < _insts.size(); ++i) {
        const Instruction &in = _insts[i];
        if (isBranch(in.op)) {
            ++branches;
            // A BRO exit index is static: check it against the exit
            // table here rather than letting the executor trap it.
            if (opInfo(in.op).hasImm &&
                (in.imm < 0 ||
                 static_cast<std::uint64_t>(in.imm) >= _exits.size())) {
                issue(strfmt("slot %zu", i),
                      strfmt("branch exit index %lld out of range "
                             "(block has %zu exits)",
                             static_cast<long long>(in.imm),
                             _exits.size()));
            }
        }
        if (isMem(in.op)) {
            if (in.lsid != next_lsid)
                issue(strfmt("slot %zu", i),
                      strfmt("lsid %u, expected %u (LSIDs must be dense, "
                             "slot order)", in.lsid, next_lsid));
            ++next_lsid;
        }
        for (const auto &t : in.targets) {
            if (isStore(in.op) && t.valid())
                issue(strfmt("slot %zu", i), "store has targets");
            if (isBranch(in.op) && t.valid())
                issue(strfmt("slot %zu", i), "branch has targets");
            if (const char *err = check_target(t))
                issue(strfmt("slot %zu", i), err);
        }
    }
    if (branches != 1)
        issue("", strfmt("block has %u branches (need exactly 1, so "
                         "every path takes exactly one exit)", branches));

    for (std::size_t i = 0; i < _insts.size(); ++i) {
        unsigned n = _insts[i].numOperands();
        for (unsigned k = 0; k < n; ++k) {
            if (op_producers[i][k] != 1)
                issue(strfmt("slot %zu", i),
                      strfmt("operand %u has %u producers (need exactly 1)",
                             k, op_producers[i][k]));
        }
        for (unsigned k = n; k < kMaxOperands; ++k) {
            if (op_producers[i][k] != 0)
                issue(strfmt("slot %zu", i),
                      strfmt("operand %u is wired but not consumed", k));
        }
    }
    for (std::size_t w = 0; w < _writes.size(); ++w) {
        if (_writes[w].reg >= kNumArchRegs)
            issue(strfmt("write %zu", w), "write of nonexistent register");
        if (write_producers[w] != 1)
            issue(strfmt("write %zu", w),
                  strfmt("has %u producers", write_producers[w]));
    }
    // No two writes may name the same architectural register: a block
    // commits atomically, so the last write would be ambiguous.
    for (std::size_t a = 0; a < _writes.size(); ++a)
        for (std::size_t b = a + 1; b < _writes.size(); ++b)
            if (_writes[a].reg == _writes[b].reg)
                issue("", strfmt("register r%u written twice",
                                 _writes[a].reg));
    return out.size() - before;
}

bool
Block::validate(std::string *why) const
{
    std::vector<ValidationIssue> issues;
    if (validateInto(issues) == 0)
        return true;
    if (why) {
        const ValidationIssue &first = issues.front();
        *why = first.where.empty() ? first.what : first.str();
    }
    return false;
}

namespace {

std::string
targetStr(const Target &t)
{
    switch (t.kind) {
      case TargetKind::None:
        return "-";
      case TargetKind::Operand:
        return strfmt("i%u.%u", t.index, t.operand);
      case TargetKind::RegWrite:
        return strfmt("w%u", t.index);
    }
    return "?";
}

} // namespace

std::string
Block::disassemble() const
{
    std::string out = strfmt("block %s:\n", _name.c_str());
    for (std::size_t i = 0; i < _reads.size(); ++i) {
        out += strfmt("  read  r%-3u -> %s, %s\n", _reads[i].reg,
                      targetStr(_reads[i].targets[0]).c_str(),
                      targetStr(_reads[i].targets[1]).c_str());
    }
    for (std::size_t i = 0; i < _insts.size(); ++i) {
        const Instruction &in = _insts[i];
        out += strfmt("  i%-3zu  %-6s", i, opName(in.op));
        if (opInfo(in.op).hasImm)
            out += strfmt(" #%lld", static_cast<long long>(in.imm));
        if (isMem(in.op))
            out += strfmt(" [lsid %u]", in.lsid);
        out += strfmt(" -> %s, %s\n", targetStr(in.targets[0]).c_str(),
                      targetStr(in.targets[1]).c_str());
    }
    for (std::size_t w = 0; w < _writes.size(); ++w)
        out += strfmt("  write w%zu = r%u\n", w, _writes[w].reg);
    for (std::size_t e = 0; e < _exits.size(); ++e) {
        if (_exits[e] == kHaltBlock)
            out += strfmt("  exit %zu -> halt\n", e);
        else
            out += strfmt("  exit %zu -> block %u\n", e, _exits[e]);
    }
    return out;
}

} // namespace edge::isa
