/**
 * @file
 * An EDGE hyperblock: the unit of fetch, map, and (atomic) commit.
 * A block carries up to kMaxBlockInsts dataflow instructions, a
 * register-read interface that injects architectural register values
 * into the dataflow graph, a register-write interface that collects
 * block outputs, an exit table of successor blocks, and LSID-ordered
 * memory operations.
 */

#ifndef EDGE_ISA_BLOCK_HH
#define EDGE_ISA_BLOCK_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace edge::isa {

/** A register-read interface slot: inject arch reg into the graph. */
struct RegRead
{
    std::uint8_t reg = 0;
    std::array<Target, kMaxTargets> targets{};
};

/** A register-write interface slot: one block output. */
struct RegWrite
{
    std::uint8_t reg = 0;
};

/**
 * Special exit value: the program halts when a block branches to an
 * exit whose successor is kHaltBlock.
 */
inline constexpr BlockId kHaltBlock = kInvalidBlock;

/**
 * One structural validation failure. `where` locates the problem
 * ("slot 7", "read 2", "block 3 (body)"), `what` describes it.
 */
struct ValidationIssue
{
    std::string where;
    std::string what;

    std::string str() const { return where + ": " + what; }
};

/** One static hyperblock. */
class Block
{
  public:
    explicit Block(std::string name = "") : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    std::vector<Instruction> &insts() { return _insts; }
    const std::vector<Instruction> &insts() const { return _insts; }

    std::vector<RegRead> &reads() { return _reads; }
    const std::vector<RegRead> &reads() const { return _reads; }

    std::vector<RegWrite> &writes() { return _writes; }
    const std::vector<RegWrite> &writes() const { return _writes; }

    /** Successor block per exit index; kHaltBlock terminates. */
    std::vector<BlockId> &exits() { return _exits; }
    const std::vector<BlockId> &exits() const { return _exits; }

    /** Number of memory operations (== number of distinct LSIDs). */
    unsigned numMemOps() const;

    /** Number of store instructions. */
    unsigned numStores() const;

    /** Slot of the unique branch instruction (panics if unvalidated). */
    SlotId branchSlot() const;

    /**
     * Structural validation. Checks every ISA limit, that each
     * instruction operand is wired by exactly one producer, that
     * each write slot has exactly one producer, that LSIDs are dense
     * and in slot order, that exactly one branch exists (so every
     * dynamic path takes exactly one exit), and that a BRO immediate
     * names an exit that exists.
     *
     * Collects *every* issue rather than stopping at the first; each
     * issue's `where` is prefixed with @p where.
     *
     * @return the number of issues appended to @p out
     */
    std::size_t validateInto(std::vector<ValidationIssue> &out,
                             const std::string &where = "") const;

    /**
     * Convenience wrapper over validateInto().
     * @param why on failure, receives the first issue's description
     * @return true iff the block is well-formed
     */
    bool validate(std::string *why = nullptr) const;

    /** Multi-line disassembly for debugging. */
    std::string disassemble() const;

  private:
    std::string _name;
    std::vector<Instruction> _insts;
    std::vector<RegRead> _reads;
    std::vector<RegWrite> _writes;
    std::vector<BlockId> _exits;
};

} // namespace edge::isa

#endif // EDGE_ISA_BLOCK_HH
