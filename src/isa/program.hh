/**
 * @file
 * A Program is an ordered collection of hyperblocks plus an entry
 * block, the initial architectural register state, and an initial
 * memory image. It is the unit handed to both the functional
 * reference executor and the timing simulator.
 */

#ifndef EDGE_ISA_PROGRAM_HH
#define EDGE_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/block.hh"

namespace edge::isa {

/** A contiguous chunk of the initial memory image. */
struct MemInit
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

class Program
{
  public:
    explicit Program(std::string name = "prog") : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Append a block; returns its BlockId. */
    BlockId addBlock(Block block);

    Block &block(BlockId id);
    const Block &block(BlockId id) const;

    std::size_t numBlocks() const { return _blocks.size(); }

    BlockId entry() const { return _entry; }
    void setEntry(BlockId id) { _entry = id; }

    /** Look a block up by name (panics if absent). */
    BlockId blockByName(const std::string &name) const;

    /** Initial architectural register values (indexed by reg). */
    std::vector<Word> &initRegs() { return _initRegs; }
    const std::vector<Word> &initRegs() const { return _initRegs; }

    /** Initial memory image chunks. */
    std::vector<MemInit> &memImage() { return _memImage; }
    const std::vector<MemInit> &memImage() const { return _memImage; }

    /**
     * Validate every block and every exit edge, collecting every
     * issue found (block-structure problems, out-of-range exit
     * edges, bad entry). An empty result means the program is
     * well-formed.
     */
    std::vector<ValidationIssue> validateAll() const;

    /**
     * Convenience wrapper over validateAll().
     * @param why receives the first issue (block and reason) on failure
     */
    bool validate(std::string *why = nullptr) const;

    /** Total static instruction count across all blocks. */
    std::size_t staticInsts() const;

    /** Full program disassembly. */
    std::string disassemble() const;

  private:
    std::string _name;
    std::vector<Block> _blocks;
    std::map<std::string, BlockId> _byName;
    std::vector<Word> _initRegs = std::vector<Word>(kNumArchRegs, 0);
    std::vector<MemInit> _memImage;
    BlockId _entry = 0;
};

} // namespace edge::isa

#endif // EDGE_ISA_PROGRAM_HH
