/**
 * @file
 * Fixed-depth ring buffer of recent machine events. The processor
 * records one TraceEvent per interesting protocol action (operand
 * delivery, wave send, store resolve, commit, flush, injection); when
 * a run fails, the last N events ship with the SimError so a deadlock
 * or invariant violation is diagnosable without rerunning under a
 * debugger.
 */

#ifndef EDGE_CHAOS_TRACE_RING_HH
#define EDGE_CHAOS_TRACE_RING_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "common/types.hh"

namespace edge::chaos {

struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Deliver,      ///< operand/status message accepted at a consumer
        Send,         ///< node fired and sent a result wave
        Squash,       ///< identical re-fire squashed at a node
        LoadReply,    ///< LSQ replied to a load
        StoreResolve, ///< store address/data resolved at the LSQ
        Violation,    ///< memory-order violation detected
        Commit,       ///< block committed
        Flush,        ///< pipeline flush
        Inject,       ///< chaos injection applied
    };

    Cycle cycle = 0;
    Kind kind = Kind::Deliver;
    DynBlockSeq seq = 0;
    std::uint32_t node = 0; ///< grid node or LSID, site-dependent
    std::uint32_t wave = 0;
    std::uint64_t value = 0;
    bool final = false;
};

inline const char *
traceKindName(TraceEvent::Kind kind)
{
    switch (kind) {
      case TraceEvent::Kind::Deliver: return "deliver";
      case TraceEvent::Kind::Send: return "send";
      case TraceEvent::Kind::Squash: return "squash";
      case TraceEvent::Kind::LoadReply: return "load-reply";
      case TraceEvent::Kind::StoreResolve: return "store-resolve";
      case TraceEvent::Kind::Violation: return "violation";
      case TraceEvent::Kind::Commit: return "commit";
      case TraceEvent::Kind::Flush: return "flush";
      case TraceEvent::Kind::Inject: return "inject";
    }
    return "?";
}

class TraceRing
{
  public:
    explicit TraceRing(std::size_t depth) : _buf(depth) {}

    void
    push(const TraceEvent &ev)
    {
        if (_buf.empty())
            return;
        _buf[_next] = ev;
        _next = (_next + 1) % _buf.size();
        if (_count < _buf.size())
            ++_count;
    }

    std::size_t size() const { return _count; }

    /**
     * The retained events, oldest first, rendered one per line. Only
     * the populated prefix is dumped: with fewer than `depth` events
     * recorded this is exactly the events pushed so far, in insertion
     * order, never padded with empty slots (and a depth-0 ring must
     * not divide by its zero capacity).
     */
    std::vector<std::string>
    snapshot() const
    {
        std::vector<std::string> out;
        if (_buf.empty() || _count == 0)
            return out;
        out.reserve(_count);
        std::size_t start = (_next + _buf.size() - _count) % _buf.size();
        for (std::size_t i = 0; i < _count; ++i) {
            const TraceEvent &ev = _buf[(start + i) % _buf.size()];
            out.push_back(strfmt(
                "cycle %llu %-13s seq=%llu node=%u wave=%u value=%#llx%s",
                (unsigned long long)ev.cycle, traceKindName(ev.kind),
                (unsigned long long)ev.seq, ev.node, (unsigned)ev.wave,
                (unsigned long long)ev.value, ev.final ? " final" : ""));
        }
        return out;
    }

  private:
    std::vector<TraceEvent> _buf;
    std::size_t _next = 0;
    std::size_t _count = 0;
};

} // namespace edge::chaos

#endif // EDGE_CHAOS_TRACE_RING_HH
