#include "chaos/invariants.hh"

#include <utility>

#include "common/strutil.hh"

namespace edge::chaos {

namespace {

bool
rangesOverlap(Addr a, unsigned a_bytes, Addr b, unsigned b_bytes)
{
    return a < b + b_bytes && b < a + a_bytes;
}

const char *
siteName(InvariantChecker::Delivery::Site site)
{
    using Site = InvariantChecker::Delivery::Site;
    switch (site) {
      case Site::NodeOperand: return "operand";
      case Site::RegWrite: return "reg-write";
      case Site::LsqLoad: return "lsq-load";
      case Site::LsqStore: return "lsq-store";
      case Site::Exit: return "exit";
    }
    return "?";
}

} // namespace

InvariantChecker::InvariantChecker(bool expect_squash, bool spec,
                                   ReadMemFn read_mem)
    : _expectSquash(expect_squash), _spec(spec),
      _readMem(std::move(read_mem))
{
}

void
InvariantChecker::fail(const char *invariant, Cycle cycle,
                       DynBlockSeq seq, std::string msg) const
{
    throw InvariantFailure(invariant, std::move(msg), cycle, seq);
}

void
InvariantChecker::onDelivery(const Delivery &d)
{
    SiteKey key{d.seq, static_cast<std::uint8_t>(d.site), d.a, d.b};
    SiteState &s = _sites[key];

    Payload p;
    p.value = d.value;
    p.addr = d.addr;
    p.state = d.state;
    p.addrState = d.addrState;
    p.statusOnly = d.statusOnly;
    p.echo = d.echo;

    ++_checks;
    auto where = [&] {
        return strfmt("%s site seq=%llu a=%u b=%u wave=%u",
                      siteName(d.site),
                      static_cast<unsigned long long>(d.seq), d.a, d.b,
                      d.wave);
    };

    // wave-monotonicity: one wave number, one payload. A producer
    // reusing a wave for different data would make the consumers'
    // stale-drop rule unsound (it could silently discard real data).
    auto it = s.waves.find(d.wave);
    if (it != s.waves.end()) {
        if (!p.identicalTo(it->second)) {
            fail("wave-monotonicity", d.cycle, d.seq,
                 strfmt("%s reused with a different payload "
                        "(value %#llx vs %#llx)",
                        where().c_str(),
                        static_cast<unsigned long long>(d.value),
                        static_cast<unsigned long long>(
                            it->second.value)));
        }
        return; // faithful duplicate (chaos or network): consumers drop
    }

    // final-immutability: Final is sticky per link. Any wave younger
    // than one that carried Final must repeat its value, still Final.
    if (s.dataFinalSeen && d.wave > s.dataFinalWave) {
        if (d.state != ValState::Final || d.value != s.dataFinalValue) {
            fail("final-immutability", d.cycle, d.seq,
                 strfmt("%s after Final wave %u: value %#llx state %s "
                        "(Final value was %#llx)",
                        where().c_str(), s.dataFinalWave,
                        static_cast<unsigned long long>(d.value),
                        d.state == ValState::Final ? "Final" : "Spec",
                        static_cast<unsigned long long>(
                            s.dataFinalValue)));
        }
    }
    if (s.addrFinalSeen && d.wave > s.addrFinalWave) {
        if (d.addrState != ValState::Final ||
            d.addr != s.addrFinalValue) {
            fail("final-immutability", d.cycle, d.seq,
                 strfmt("%s after Final-address wave %u: addr %#llx "
                        "state %s (Final address was %#llx)",
                        where().c_str(), s.addrFinalWave,
                        static_cast<unsigned long long>(d.addr),
                        d.addrState == ValState::Final ? "Final"
                                                       : "Spec",
                        static_cast<unsigned long long>(
                            s.addrFinalValue)));
        }
    }

    // value-identity-squash: with squashing on, adjacent waves from
    // one producer never carry identical payloads — the producer
    // should have squashed the re-send. Checked against both wave
    // neighbours so network reordering cannot hide or fake it.
    if (_expectSquash) {
        auto check_adjacent = [&](const Payload &other,
                                  std::uint32_t other_wave) {
            if (p.echo || other.echo)
                return;
            if (p.identicalTo(other)) {
                fail("value-identity-squash", d.cycle, d.seq,
                     strfmt("%s identical to wave %u "
                            "(value %#llx, should have been squashed)",
                            where().c_str(), other_wave,
                            static_cast<unsigned long long>(d.value)));
            }
        };
        auto prev = s.waves.find(d.wave - 1);
        if (d.wave > 0 && prev != s.waves.end())
            check_adjacent(prev->second, d.wave - 1);
        auto next = s.waves.find(d.wave + 1);
        if (next != s.waves.end())
            check_adjacent(next->second, d.wave + 1);
    }

    if (d.state == ValState::Final &&
        (!s.dataFinalSeen || d.wave > s.dataFinalWave)) {
        s.dataFinalSeen = true;
        s.dataFinalWave = d.wave;
        s.dataFinalValue = d.value;
    }
    if (d.addrState == ValState::Final &&
        (!s.addrFinalSeen || d.wave > s.addrFinalWave)) {
        s.addrFinalSeen = true;
        s.addrFinalWave = d.wave;
        s.addrFinalValue = d.addr;
    }

    s.waves.emplace(d.wave, p);
    while (s.waves.size() > kMaxTrackedWaves)
        s.waves.erase(s.waves.begin());
}

void
InvariantChecker::onMemOpMapped(DynBlockSeq seq, Lsid lsid,
                                bool is_store, unsigned bytes)
{
    ShadowOp op;
    op.isStore = is_store;
    op.bytes = static_cast<std::uint8_t>(bytes);
    _ops[{seq, lsid}] = op;
}

void
InvariantChecker::onStoreState(DynBlockSeq seq, Lsid lsid, Addr addr,
                               Word data, ValState data_state,
                               ValState addr_state)
{
    auto it = _ops.find({seq, lsid});
    if (it == _ops.end())
        return;
    ShadowOp &op = it->second;
    op.resolved = true;
    op.addr = addr;
    op.data = data;
    op.dataState = data_state;
    op.addrState = addr_state;
}

void
InvariantChecker::onLoadAddr(DynBlockSeq seq, Lsid lsid, Addr addr,
                             ValState addr_state)
{
    auto it = _ops.find({seq, lsid});
    if (it == _ops.end())
        return;
    ShadowOp &op = it->second;
    op.addrKnown = true;
    op.ldAddr = addr;
    op.ldAddrState = addr_state;
}

Word
InvariantChecker::recomputeLoadValue(MemKey key,
                                     const ShadowOp &load) const
{
    // Independent recompute of age-ordered store-to-load forwarding:
    // committed memory below, resolved older in-flight stores overlaid
    // oldest-to-youngest so the youngest writer of each byte wins.
    Word value = _readMem(load.ldAddr, load.bytes);
    for (const auto &[op_key, st] : _ops) {
        if (!(op_key < key))
            break;
        if (!st.isStore || !st.resolved)
            continue;
        if (!rangesOverlap(st.addr, st.bytes, load.ldAddr, load.bytes))
            continue;
        for (unsigned i = 0; i < load.bytes; ++i) {
            Addr a = load.ldAddr + i;
            if (a < st.addr || a >= st.addr + st.bytes)
                continue;
            unsigned si = static_cast<unsigned>(a - st.addr);
            Word byte = (st.data >> (8 * si)) & 0xff;
            value &= ~(Word{0xff} << (8 * i));
            value |= byte << (8 * i);
        }
    }
    return value;
}

void
InvariantChecker::onLoadReply(Cycle now, DynBlockSeq seq, Lsid lsid,
                              Word value, ValState state, bool echo)
{
    MemKey key{seq, lsid};
    auto it = _ops.find(key);
    if (it == _ops.end() || !it->second.addrKnown)
        return;
    const ShadowOp &load = it->second;
    if (echo || state != ValState::Final)
        return; // speculative replies may legally disagree

    ++_checks;
    if (_spec) {
        // load-finality: the three-part commit-wave rule.
        if (load.ldAddrState != ValState::Final) {
            fail("load-finality", now, seq,
                 strfmt("Final reply for load lsid %u with a "
                        "speculative address %#llx",
                        lsid,
                        static_cast<unsigned long long>(load.ldAddr)));
        }
        for (const auto &[op_key, st] : _ops) {
            if (!(op_key < key))
                break;
            if (!st.isStore)
                continue;
            if (!st.resolved || st.addrState != ValState::Final) {
                fail("load-finality", now, seq,
                     strfmt("Final reply for load lsid %u while older "
                            "store (seq %llu lsid %u) is %s",
                            lsid,
                            static_cast<unsigned long long>(
                                op_key.first),
                            op_key.second,
                            st.resolved ? "address-speculative"
                                        : "unresolved"));
            }
            if (rangesOverlap(st.addr, st.bytes, load.ldAddr,
                              load.bytes) &&
                st.dataState != ValState::Final) {
                fail("load-finality", now, seq,
                     strfmt("Final reply for load lsid %u while "
                            "overlapping older store (seq %llu lsid "
                            "%u) has speculative data",
                            lsid,
                            static_cast<unsigned long long>(
                                op_key.first),
                            op_key.second));
            }
        }
    }

    // lsq-age-ordered-forwarding: the reply value must match the
    // independent youngest-writer-wins recompute.
    Word expect = recomputeLoadValue(key, load);
    if (value != expect) {
        fail("lsq-age-ordered-forwarding", now, seq,
             strfmt("load lsid %u addr %#llx replied %#llx but "
                    "age-ordered forwarding gives %#llx",
                    lsid,
                    static_cast<unsigned long long>(load.ldAddr),
                    static_cast<unsigned long long>(value),
                    static_cast<unsigned long long>(expect)));
    }
}

void
InvariantChecker::onBlockRetired(DynBlockSeq seq)
{
    _ops.erase(_ops.lower_bound({seq, 0}),
               _ops.lower_bound({seq + 1, 0}));
    _sites.erase(_sites.lower_bound(SiteKey{seq, 0, 0, 0}),
                 _sites.lower_bound(SiteKey{seq + 1, 0, 0, 0}));
}

void
InvariantChecker::onFlushFrom(DynBlockSeq from_seq)
{
    _ops.erase(_ops.lower_bound({from_seq, 0}), _ops.end());
    _sites.erase(_sites.lower_bound(SiteKey{from_seq, 0, 0, 0}),
                 _sites.end());
}

} // namespace edge::chaos
