/**
 * @file
 * Forward-progress hardening beyond the plain "no commit for N
 * cycles" watchdog. The LivelockDetector distinguishes a *livelock* —
 * the machine keeps exchanging waves whose per-interval activity
 * profile repeats exactly, yet no block ever commits — from a
 * *deadlock*, where activity has drained to nothing (that one stays
 * with the classic watchdog). The processor samples a digest of its
 * per-interval activity deltas (messages delivered, ALU issues,
 * resends, upgrades, in-flight network events); identical non-zero
 * digests for `repeats` consecutive commit-free intervals trip the
 * detector, which surfaces as SimError::Reason::Livelock well before
 * the watchdog budget would expire.
 */

#ifndef EDGE_CHAOS_PROGRESS_HH
#define EDGE_CHAOS_PROGRESS_HH

#include <cstdint>

#include "common/types.hh"

namespace edge::chaos {

/** Order-sensitive 64-bit mix for building activity digests. */
inline std::uint64_t
digestMix(std::uint64_t digest, std::uint64_t value)
{
    // SplitMix64 finalizer over (digest ^ value): cheap, and any
    // change in any delta flips the digest with high probability.
    std::uint64_t z = digest ^ (value + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

class LivelockDetector
{
  public:
    /**
     * @param interval cycles between samples (0 disables)
     * @param repeats identical commit-free samples before firing
     */
    LivelockDetector(Cycle interval, unsigned repeats)
        : _interval(interval), _repeats(repeats < 2 ? 2 : repeats)
    {
    }

    bool enabled() const { return _interval > 0; }
    Cycle interval() const { return _interval; }

    /** True on the cycles where the caller should sample(). */
    bool
    due(Cycle now) const
    {
        return enabled() && now > 0 && now % _interval == 0;
    }

    /**
     * Feed one sample.
     * @param committed total blocks committed so far
     * @param digest hash of this interval's activity deltas
     * @param active the interval saw any activity at all
     * @return true when the livelock condition is met: `repeats`
     *         consecutive commit-free intervals with identical
     *         non-zero activity
     */
    bool
    sample(std::uint64_t committed, std::uint64_t digest, bool active)
    {
        bool progressed = !_primed || committed != _lastCommitted;
        bool repeated = _primed && !progressed && active &&
                        digest == _lastDigest;
        _streak = repeated ? _streak + 1 : 0;
        _lastCommitted = committed;
        _lastDigest = digest;
        _primed = true;
        // _streak counts repeats of the first commit-free sample, so
        // `repeats` identical samples means a streak of repeats - 1.
        return _streak + 1 >= _repeats;
    }

    unsigned streak() const { return _streak; }

  private:
    Cycle _interval;
    unsigned _repeats;
    bool _primed = false;
    std::uint64_t _lastCommitted = 0;
    std::uint64_t _lastDigest = 0;
    unsigned _streak = 0;
};

} // namespace edge::chaos

#endif // EDGE_CHAOS_PROGRESS_HH
