/**
 * @file
 * Deterministic fault injection. The DSRE protocol's headline claim
 * is that speculative waves with value-identity squashing converge to
 * the committed (golden) architectural state under ANY legal timing
 * of operand and memory messages. A ChaosEngine turns that claim into
 * an executable property: it perturbs message timing — extra operand-
 * network hop delay, duplicate delivery of (idempotent) messages,
 * jittered cache-fill latency, delayed store resolution, spurious
 * corrective re-fire waves — from a single replayable seed, and every
 * perturbed schedule must still commit bit-identical state.
 *
 * All draws come from per-site SplitMix64 streams derived from one
 * run-level seed, so a failing schedule replays exactly from the seed
 * reported in sim::RunResult.
 */

#ifndef EDGE_CHAOS_CHAOS_HH
#define EDGE_CHAOS_CHAOS_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace edge::chaos {

/**
 * Compile-time-flagged protocol mutations (EDGE_MUTATIONS, on by
 * default) used by the mutation tests: each one breaks a protocol
 * rule the invariant checker must catch by name.
 */
enum class Mutation : std::uint8_t
{
    None,
    /** One node sends re-fires even when (value, state) is identical
     *  to its previous send — the value-identity squash is skipped.
     *  Caught by `value-identity-squash`. */
    SkipSquash,
    /** One node silently drops its commit-wave upgrades, so finality
     *  never reaches its consumers. Caught by `commit-progress` (the
     *  watchdog surfaces as that invariant). */
    DropUpgrade,
    /** The LSQ forwards each load byte from the OLDEST older covering
     *  store instead of the youngest. Caught by
     *  `lsq-age-ordered-forwarding`. */
    MisorderForward,
};

const char *mutationName(Mutation m);

/** Parse a mutation name (fatal on unknown name). */
Mutation mutationByName(const std::string &name);

/** Built-in fault-mix presets selectable with --chaos-profile. */
enum class Profile : std::uint8_t
{
    None,  ///< no injection (chaos off)
    Light, ///< all sites, low rates, small magnitudes
    Heavy, ///< all sites, high rates, larger magnitudes
    Net,   ///< operand-network delay + duplication only
    Mem,   ///< cache-fill / DRAM jitter only
    Lsq,   ///< store-resolve delay + spurious re-fire waves only
};

const char *profileName(Profile profile);

struct ChaosParams
{
    /** Run-level seed for every injection stream. */
    std::uint64_t seed = 0;
    Profile profile = Profile::None;

    // Per-site rates (per-mille probabilities) and magnitudes,
    // normally filled in from the profile by byProfile().
    unsigned hopDelayPermille = 0;   ///< extra hop delay probability
    unsigned hopDelayMax = 0;        ///< max extra cycles per message
    unsigned duplicatePermille = 0;  ///< duplicate-delivery probability
    unsigned duplicateSkewMax = 0;   ///< extra delay of the duplicate
    unsigned memJitterPermille = 0;  ///< fill-latency jitter probability
    unsigned memJitterMax = 0;       ///< max extra fill cycles
    unsigned storeDelayPermille = 0; ///< store-resolve delay probability
    unsigned storeDelayMax = 0;      ///< max store-resolve delay
    unsigned spuriousPermille = 0;   ///< spurious re-fire wave probability

    Mutation mutation = Mutation::None;
    unsigned mutationNode = 0; ///< grid node a node-scoped mutation hits

    /**
     * Schedule filtering (the triage minimizer's lever). When set,
     * the engine still makes every RNG draw exactly as the seed
     * dictates, but only injections whose ordinal — the position in
     * the run's would-inject sequence — appears in `allowedEvents`
     * take effect. The full schedule (filter off) and the identity
     * filter (every ordinal allowed) are bit-identical runs.
     */
    bool filterSchedule = false;
    /** Sorted injection ordinals that stay live under the filter. */
    std::vector<std::uint64_t> allowedEvents;

    bool enabled() const { return profile != Profile::None; }

    /** The canned parameter set for a profile, with the given seed. */
    static ChaosParams byProfile(Profile profile, std::uint64_t seed);

    /** Parse a --chaos-profile name (fatal on unknown name). */
    static Profile profileByName(const std::string &name);

    /** All profile names, presentation order. */
    static const std::vector<std::string> &profileNames();
};

/**
 * One concrete fault the seed decided to inject. Events are recorded
 * whether or not the schedule filter let them through, so a baseline
 * failing run yields the full candidate universe the triage minimizer
 * then delta-debugs down to a locally minimal subset.
 */
struct FaultEvent
{
    enum class Site : std::uint8_t
    {
        HopDelay,    ///< extra operand-network hop latency
        Duplicate,   ///< duplicate message delivery
        MemJitter,   ///< cache-fill / DRAM latency jitter
        StoreDelay,  ///< delayed store resolution at the LSQ
        Spurious,    ///< forced spurious corrective re-fire wave
    };

    std::uint64_t ordinal = 0;   ///< position in the would-inject sequence
    Site site = Site::HopDelay;
    std::uint64_t magnitude = 0; ///< extra cycles (0 for boolean faults)

    bool
    operator==(const FaultEvent &o) const
    {
        return ordinal == o.ordinal && site == o.site &&
               magnitude == o.magnitude;
    }
};

const char *faultSiteName(FaultEvent::Site site);

/** Parse a fault-site name (fatal on unknown name). */
FaultEvent::Site faultSiteByName(const std::string &name);

/** What the engine actually injected during one run (replay aid). */
struct InjectionCounts
{
    std::uint64_t hopDelays = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t memJitters = 0;
    std::uint64_t storeDelays = 0;
    std::uint64_t spuriousWaves = 0;

    std::uint64_t
    total() const
    {
        return hopDelays + duplicates + memJitters + storeDelays +
               spuriousWaves;
    }
};

class ChaosEngine
{
  public:
    explicit ChaosEngine(const ChaosParams &params);

    const ChaosParams &params() const { return _p; }
    const InjectionCounts &counts() const { return _counts; }

    /**
     * Every fault the seed decided to inject this run, in injection
     * order, including ones the schedule filter suppressed (capped at
     * kMaxRecordedEvents — see eventsTruncated()).
     */
    const std::vector<FaultEvent> &events() const { return _events; }

    /** True when the event log hit its cap and stopped recording. */
    bool eventsTruncated() const { return _eventsTruncated; }

    // --- operand / status network --------------------------------------
    /** Extra cycles to add to one message's arrival (usually 0). */
    Cycle hopJitter();
    /** Deliver a second copy of this message? (All consumers drop
     *  duplicates as stale waves — that idempotency is exactly what
     *  this injection exercises.) */
    bool duplicate();
    /** Extra delay of the duplicate copy relative to the original
     *  (valid after the duplicate() call that returned true). */
    Cycle duplicateSkew();

    // --- memory hierarchy ----------------------------------------------
    /** Extra cycles to add to one cache-fill / DRAM access. */
    Cycle memJitter();

    // --- LSQ -------------------------------------------------------------
    /** Cycles to delay one store's resolution at the LSQ. */
    Cycle storeResolveDelay();
    /** Force a spurious corrective resend of one speculative load? */
    bool spuriousViolation();
    /** Uniform pick in [0, n) from the LSQ stream (victim choice). */
    std::size_t pickIndex(std::size_t n);
    void countSpurious() { ++_counts.spuriousWaves; }

    // --- mutations -------------------------------------------------------
    Mutation mutation() const { return _p.mutation; }
    unsigned mutationNode() const { return _p.mutationNode; }

  private:
    static constexpr std::size_t kMaxRecordedEvents = 1u << 20;

    /**
     * Record the fault in the event log and decide whether the
     * schedule filter lets it take effect. Every would-inject fault
     * passes through here exactly once, so ordinals are stable for a
     * fixed (seed, program, config).
     */
    bool admit(FaultEvent::Site site, std::uint64_t magnitude);

    ChaosParams _p;
    // Independent streams so that, e.g., adding a memory access does
    // not reshuffle the network fault schedule.
    Rng _netRng;
    Rng _memRng;
    Rng _lsqRng;
    InjectionCounts _counts;
    std::vector<FaultEvent> _events;
    std::uint64_t _nextOrdinal = 0;
    bool _eventsTruncated = false;
    Cycle _pendingDuplicateSkew = 1;
};

} // namespace edge::chaos

#endif // EDGE_CHAOS_CHAOS_HH
