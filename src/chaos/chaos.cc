#include "chaos/chaos.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edge::chaos {

namespace {

/** Derive an independent per-site stream from the run-level seed. */
std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t site)
{
    // One SplitMix64 step keeps nearby run seeds from producing
    // correlated site streams.
    Rng r(seed ^ (site * 0xd1342543de82ef95ULL));
    return r.next();
}

} // namespace

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::None: return "none";
      case Mutation::SkipSquash: return "skip-squash";
      case Mutation::DropUpgrade: return "drop-upgrade";
      case Mutation::MisorderForward: return "misorder-forward";
    }
    return "?";
}

Mutation
mutationByName(const std::string &name)
{
    for (Mutation m : {Mutation::None, Mutation::SkipSquash,
                       Mutation::DropUpgrade, Mutation::MisorderForward}) {
        if (name == mutationName(m))
            return m;
    }
    fatal("unknown mutation '%s' (try: none skip-squash drop-upgrade "
          "misorder-forward)",
          name.c_str());
}

const char *
faultSiteName(FaultEvent::Site site)
{
    switch (site) {
      case FaultEvent::Site::HopDelay: return "hop-delay";
      case FaultEvent::Site::Duplicate: return "duplicate";
      case FaultEvent::Site::MemJitter: return "mem-jitter";
      case FaultEvent::Site::StoreDelay: return "store-delay";
      case FaultEvent::Site::Spurious: return "spurious";
    }
    return "?";
}

FaultEvent::Site
faultSiteByName(const std::string &name)
{
    for (FaultEvent::Site s :
         {FaultEvent::Site::HopDelay, FaultEvent::Site::Duplicate,
          FaultEvent::Site::MemJitter, FaultEvent::Site::StoreDelay,
          FaultEvent::Site::Spurious}) {
        if (name == faultSiteName(s))
            return s;
    }
    fatal("unknown fault site '%s'", name.c_str());
}

const char *
profileName(Profile profile)
{
    switch (profile) {
      case Profile::None: return "none";
      case Profile::Light: return "light";
      case Profile::Heavy: return "heavy";
      case Profile::Net: return "net";
      case Profile::Mem: return "mem";
      case Profile::Lsq: return "lsq";
    }
    return "?";
}

ChaosParams
ChaosParams::byProfile(Profile profile, std::uint64_t seed)
{
    ChaosParams p;
    p.seed = seed;
    p.profile = profile;
    switch (profile) {
      case Profile::None:
        break;
      case Profile::Light:
        p.hopDelayPermille = 20;
        p.hopDelayMax = 3;
        p.duplicatePermille = 10;
        p.duplicateSkewMax = 4;
        p.memJitterPermille = 50;
        p.memJitterMax = 8;
        p.storeDelayPermille = 20;
        p.storeDelayMax = 4;
        p.spuriousPermille = 5;
        break;
      case Profile::Heavy:
        p.hopDelayPermille = 100;
        p.hopDelayMax = 8;
        p.duplicatePermille = 60;
        p.duplicateSkewMax = 10;
        p.memJitterPermille = 200;
        p.memJitterMax = 24;
        p.storeDelayPermille = 80;
        p.storeDelayMax = 10;
        p.spuriousPermille = 20;
        break;
      case Profile::Net:
        p.hopDelayPermille = 150;
        p.hopDelayMax = 8;
        p.duplicatePermille = 100;
        p.duplicateSkewMax = 10;
        break;
      case Profile::Mem:
        p.memJitterPermille = 300;
        p.memJitterMax = 32;
        break;
      case Profile::Lsq:
        p.storeDelayPermille = 120;
        p.storeDelayMax = 12;
        p.spuriousPermille = 30;
        break;
    }
    return p;
}

Profile
ChaosParams::profileByName(const std::string &name)
{
    for (Profile p : {Profile::None, Profile::Light, Profile::Heavy,
                      Profile::Net, Profile::Mem, Profile::Lsq}) {
        if (name == profileName(p))
            return p;
    }
    fatal("unknown chaos profile '%s' (try: none light heavy net mem lsq)",
          name.c_str());
}

const std::vector<std::string> &
ChaosParams::profileNames()
{
    static const std::vector<std::string> names = {"none",  "light", "heavy",
                                                   "net",   "mem",   "lsq"};
    return names;
}

ChaosEngine::ChaosEngine(const ChaosParams &params)
    : _p(params),
      _netRng(deriveSeed(params.seed, 1)),
      _memRng(deriveSeed(params.seed, 2)),
      _lsqRng(deriveSeed(params.seed, 3))
{
}

bool
ChaosEngine::admit(FaultEvent::Site site, std::uint64_t magnitude)
{
    std::uint64_t ordinal = _nextOrdinal++;
    if (_events.size() < kMaxRecordedEvents)
        _events.push_back({ordinal, site, magnitude});
    else
        _eventsTruncated = true;
    if (!_p.filterSchedule)
        return true;
    return std::binary_search(_p.allowedEvents.begin(),
                              _p.allowedEvents.end(), ordinal);
}

Cycle
ChaosEngine::hopJitter()
{
    if (!_p.hopDelayPermille || !_netRng.chance(_p.hopDelayPermille, 1000))
        return 0;
    // The magnitude draw happens before the filter decision so a
    // masked event consumes exactly the draws the live event would.
    Cycle d = _netRng.range(1, _p.hopDelayMax);
    if (!admit(FaultEvent::Site::HopDelay, d))
        return 0;
    ++_counts.hopDelays;
    return d;
}

bool
ChaosEngine::duplicate()
{
    if (!_p.duplicatePermille || !_netRng.chance(_p.duplicatePermille, 1000))
        return false;
    _pendingDuplicateSkew =
        _p.duplicateSkewMax ? _netRng.range(1, _p.duplicateSkewMax) : 1;
    if (!admit(FaultEvent::Site::Duplicate, _pendingDuplicateSkew))
        return false;
    ++_counts.duplicates;
    return true;
}

Cycle
ChaosEngine::duplicateSkew()
{
    return _pendingDuplicateSkew;
}

Cycle
ChaosEngine::memJitter()
{
    if (!_p.memJitterPermille || !_memRng.chance(_p.memJitterPermille, 1000))
        return 0;
    Cycle d = _memRng.range(1, _p.memJitterMax);
    if (!admit(FaultEvent::Site::MemJitter, d))
        return 0;
    ++_counts.memJitters;
    return d;
}

Cycle
ChaosEngine::storeResolveDelay()
{
    if (!_p.storeDelayPermille || !_lsqRng.chance(_p.storeDelayPermille, 1000))
        return 0;
    Cycle d = _lsqRng.range(1, _p.storeDelayMax);
    if (!admit(FaultEvent::Site::StoreDelay, d))
        return 0;
    ++_counts.storeDelays;
    return d;
}

bool
ChaosEngine::spuriousViolation()
{
    if (!_p.spuriousPermille || !_lsqRng.chance(_p.spuriousPermille, 1000))
        return false;
    if (!admit(FaultEvent::Site::Spurious, 0)) {
        // Burn the victim-pick draw the live event would have made so
        // the LSQ stream stays aligned with the unfiltered schedule.
        _lsqRng.next();
        return false;
    }
    return true;
}

std::size_t
ChaosEngine::pickIndex(std::size_t n)
{
    return static_cast<std::size_t>(_lsqRng.below(n));
}

} // namespace edge::chaos
