#include "chaos/sim_error.hh"

#include "common/strutil.hh"

namespace edge::chaos {

const char *
reasonName(SimError::Reason reason)
{
    switch (reason) {
      case SimError::Reason::None: return "none";
      case SimError::Reason::Watchdog: return "watchdog";
      case SimError::Reason::InvariantViolation: return "invariant-violation";
      case SimError::Reason::ProtocolPanic: return "protocol-panic";
    }
    return "?";
}

std::string
SimError::format() const
{
    if (ok())
        return "ok";
    std::string out = strfmt("%s at cycle %llu", reasonName(reason),
                             (unsigned long long)cycle);
    if (!invariant.empty())
        out += strfmt(" [invariant: %s]", invariant.c_str());
    if (seq != 0 && seq != kInvalidSeq)
        out += strfmt(" block seq=%llu", (unsigned long long)seq);
    if (node != 0)
        out += strfmt(" node=%u", node);
    out += "\n  ";
    out += message;
    if (!trace.empty()) {
        out += strfmt("\n  last %zu events:", trace.size());
        for (const std::string &line : trace) {
            out += "\n    ";
            out += line;
        }
    }
    return out;
}

} // namespace edge::chaos
