#include "chaos/sim_error.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::chaos {

const char *
reasonName(SimError::Reason reason)
{
    switch (reason) {
      case SimError::Reason::None: return "none";
      case SimError::Reason::Watchdog: return "watchdog";
      case SimError::Reason::InvariantViolation: return "invariant-violation";
      case SimError::Reason::ProtocolPanic: return "protocol-panic";
      case SimError::Reason::Livelock: return "livelock";
      case SimError::Reason::HostDeadline: return "host-deadline";
      case SimError::Reason::WorkerCrash: return "worker-crash";
      case SimError::Reason::WorkerKilled: return "worker-killed";
      case SimError::Reason::WorkerTimeout: return "worker-timeout";
      case SimError::Reason::WorkerProtocol: return "worker-protocol";
      case SimError::Reason::AgentLost: return "agent-lost";
      case SimError::Reason::AgentCorrupt: return "agent-corrupt";
      case SimError::Reason::ProvenanceMismatch: return "provenance-mismatch";
      case SimError::Reason::FabricSimViolation: return "fabric-sim-violation";
    }
    return "?";
}

SimError::Reason
reasonByName(const std::string &name)
{
    for (SimError::Reason r :
         {SimError::Reason::None, SimError::Reason::Watchdog,
          SimError::Reason::InvariantViolation,
          SimError::Reason::ProtocolPanic, SimError::Reason::Livelock,
          SimError::Reason::HostDeadline, SimError::Reason::WorkerCrash,
          SimError::Reason::WorkerKilled,
          SimError::Reason::WorkerTimeout,
          SimError::Reason::WorkerProtocol,
          SimError::Reason::AgentLost,
          SimError::Reason::AgentCorrupt,
          SimError::Reason::ProvenanceMismatch,
          SimError::Reason::FabricSimViolation}) {
        if (name == reasonName(r))
            return r;
    }
    fatal("unknown SimError reason '%s'", name.c_str());
}

int
exitCodeFor(SimError::Reason reason)
{
    switch (reason) {
      case SimError::Reason::None: return 0;
      case SimError::Reason::Watchdog: return 10;
      case SimError::Reason::InvariantViolation: return 11;
      case SimError::Reason::ProtocolPanic: return 12;
      case SimError::Reason::Livelock: return 13;
      case SimError::Reason::HostDeadline: return 14;
      case SimError::Reason::WorkerCrash: return 15;
      case SimError::Reason::WorkerKilled: return 16;
      case SimError::Reason::WorkerTimeout: return 17;
      case SimError::Reason::WorkerProtocol: return 18;
      case SimError::Reason::AgentLost: return 19;
      case SimError::Reason::ProvenanceMismatch: return 20;
      case SimError::Reason::AgentCorrupt: return 21;
      case SimError::Reason::FabricSimViolation: return 22;
    }
    return 1;
}

bool
isTransient(SimError::Reason reason)
{
    return reason == SimError::Reason::HostDeadline ||
           reason == SimError::Reason::WorkerTimeout ||
           reason == SimError::Reason::AgentLost ||
           reason == SimError::Reason::AgentCorrupt;
}

bool
isWorkerFailure(SimError::Reason reason)
{
    switch (reason) {
      case SimError::Reason::WorkerCrash:
      case SimError::Reason::WorkerKilled:
      case SimError::Reason::WorkerTimeout:
      case SimError::Reason::WorkerProtocol:
      case SimError::Reason::AgentLost:
      case SimError::Reason::AgentCorrupt:
        return true;
      default:
        return false;
    }
}

std::string
SimError::format() const
{
    if (ok())
        return "ok";
    std::string out = strfmt("%s at cycle %llu", reasonName(reason),
                             (unsigned long long)cycle);
    if (!invariant.empty())
        out += strfmt(" [invariant: %s]", invariant.c_str());
    if (seq != 0 && seq != kInvalidSeq)
        out += strfmt(" block seq=%llu", (unsigned long long)seq);
    if (node != 0)
        out += strfmt(" node=%u", node);
    out += "\n  ";
    out += message;
    if (!trace.empty()) {
        out += strfmt("\n  last %zu events:", trace.size());
        for (const std::string &line : trace) {
            out += "\n    ";
            out += line;
        }
    }
    return out;
}

} // namespace edge::chaos
