/**
 * @file
 * Structured failure reporting for the simulator. A SimError is the
 * graceful-degradation counterpart of the old hard-abort paths: when
 * the deadlock watchdog fires, a protocol panic trips, or the runtime
 * invariant checker finds a violation, the run loop stops and the
 * report — reason, cycle, offending block, the last-N events from the
 * trace ring — surfaces in Processor::Result / sim::RunResult instead
 * of killing the process.
 */

#ifndef EDGE_CHAOS_SIM_ERROR_HH
#define EDGE_CHAOS_SIM_ERROR_HH

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace edge::chaos {

struct SimError
{
    enum class Reason : std::uint8_t
    {
        None,               ///< the run ended normally
        Watchdog,           ///< no commit for watchdogCycles
        InvariantViolation, ///< the runtime invariant checker fired
        ProtocolPanic,      ///< a panic() in the timing machinery
        Livelock,           ///< activity repeats with no commit
        HostDeadline,       ///< per-run wall-clock deadline exceeded

        // --- supervised-campaign (process isolation) kinds ---------
        // Produced by the campaign supervisor (src/super/) when an
        // isolated worker cell dies instead of returning a result.
        WorkerCrash,    ///< child died on SIGSEGV/SIGABRT/SIGBUS/...
        WorkerKilled,   ///< child SIGKILLed (OOM killer / external)
        WorkerTimeout,  ///< supervisor deadline or RLIMIT_CPU kill
        WorkerProtocol, ///< child exited without a valid result

        // --- campaign-fabric (multi-host) kind ---------------------
        // Produced by the serve coordinator (src/serve/) when every
        // lease on a cell was lost to dead/partitioned agents and the
        // reassignment budget ran out. Transient: a resumed or
        // re-run campaign re-executes the cell.
        AgentLost, ///< all leases lost (agent death / partition)
        // Produced by the coordinator's result-integrity audit when a
        // duplicate execution of a Done cell diverged and no majority
        // could be established (or the divergence itself must be
        // surfaced). The agent that produced the minority bytes is
        // quarantined. Transient: a re-run on honest executors
        // produces the correct result.
        AgentCorrupt, ///< audit divergence (bit-flipping executor)

        // --- durable-result-log kind -------------------------------
        // Produced on `--resume --strict-provenance` when the journal
        // was written by a different build (git revision, build type
        // or sanitizer mix) than the one resuming it.
        ProvenanceMismatch, ///< journal build line != running binary

        // --- fabric-simulation kind --------------------------------
        // Produced by the deterministic fabric-simulation explorer
        // (`edgesim serve --simulate`) when a simulated world tripped
        // a fabric invariant (cell lost, double completion, report
        // divergence, leaked lease, false quarantine, starvation).
        // The failing seed's `.fabsim.json` capture replays it.
        FabricSimViolation, ///< simulated fabric invariant tripped
    };

    Reason reason = Reason::None;
    /** Named invariant that fired (see docs/PROTOCOL.md), if any. */
    std::string invariant;
    std::string message;
    Cycle cycle = 0;
    DynBlockSeq seq = 0;      ///< offending dynamic block, if known
    std::uint32_t node = 0;   ///< offending grid node / LSID, if known
    /** Last-N machine events (newest last) from the trace ring. */
    std::vector<std::string> trace;

    bool ok() const { return reason == Reason::None; }

    std::string format() const;
};

const char *reasonName(SimError::Reason reason);

/** Parse a reason name (fatal on unknown name). */
SimError::Reason reasonByName(const std::string &name);

/**
 * The documented process exit status for each failure kind (see
 * docs/PROTOCOL.md, "Failure triage"): 0 for a clean run, then one
 * distinct code per SimError::Reason so scripts and CI can branch on
 * WHY a run failed without parsing stderr.
 */
int exitCodeFor(SimError::Reason reason);

/**
 * Host-level failures (wall-clock deadline, supervised-cell timeout)
 * are transient: the same cell may pass on a retry. Everything else —
 * watchdog, invariant violation, protocol panic, livelock, a worker
 * segfault — is a deterministic property of (program, config, seed)
 * and must never be retried in-session. (A SIGKILLed worker is not
 * retried either: the supervisor quarantines it with a repro and the
 * journal marks it re-runnable, so `--resume` re-executes it.)
 */
bool isTransient(SimError::Reason reason);

/**
 * Supervised-campaign failure kinds: the worker process died (or
 * broke protocol) instead of returning a structured result. These
 * are journal records marked non-final — `--resume` selectively
 * re-executes exactly these cells, the way DSRE re-executes only the
 * mis-speculated subgraph instead of flushing the world.
 */
bool isWorkerFailure(SimError::Reason reason);

/** An invariant-checker failure: carries the invariant's name. */
class InvariantFailure : public SimFailure
{
  public:
    InvariantFailure(std::string invariant, const std::string &msg,
                     Cycle cycle, DynBlockSeq seq)
        : SimFailure(msg, "invariant", 0),
          _invariant(std::move(invariant)),
          _cycle(cycle),
          _seq(seq)
    {
    }

    const std::string &invariant() const { return _invariant; }
    Cycle cycle() const { return _cycle; }
    DynBlockSeq seq() const { return _seq; }

  private:
    std::string _invariant;
    Cycle _cycle;
    DynBlockSeq _seq;
};

} // namespace edge::chaos

#endif // EDGE_CHAOS_SIM_ERROR_HH
