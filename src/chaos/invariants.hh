/**
 * @file
 * Runtime DSRE protocol-invariant checking. The checker maintains a
 * small shadow model of the protocol state — per-consumer-site wave
 * histories and a mirror of the LSQ's in-flight memory ops — fed by
 * hooks in the processor and the LSQ, and fail-fast throws an
 * InvariantFailure naming the violated rule. The named invariants
 * (see docs/PROTOCOL.md, "Checked invariants"):
 *
 *  - `wave-monotonicity`: a producer never reuses a wave number for
 *    a different payload on one link; two messages with the same
 *    (site, wave) must be bit-identical (that is what makes chaos
 *    duplicate-delivery safe).
 *  - `final-immutability`: once a wave carried Final, every younger
 *    wave on that link carries the same value, still Final — no
 *    FINAL -> SPEC downgrade, no value change under Final.
 *  - `value-identity-squash`: with squashing enabled, a producer
 *    never sends two consecutive waves with an identical
 *    (value, addr, state, addrState) payload (deliberate echoes —
 *    chaos echo waves, value-prediction confirmations — are marked
 *    and exempt).
 *  - `load-finality`: a Final load reply requires the three-part
 *    commit-wave rule: Final address, every older in-flight store
 *    resolved with a Final address, and Final data on every
 *    overlapping older store.
 *  - `lsq-age-ordered-forwarding`: the value of a Final load reply
 *    equals the independent byte-accurate recompute (youngest older
 *    writer of each byte wins, memory below).
 *  - `commit-progress`: some block commits within watchdogCycles;
 *    the deadlock watchdog reports under this name.
 */

#ifndef EDGE_CHAOS_INVARIANTS_HH
#define EDGE_CHAOS_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "chaos/sim_error.hh"
#include "common/types.hh"

namespace edge::chaos {

class InvariantChecker
{
  public:
    /** Reads `bytes` bytes of committed architectural memory. */
    using ReadMemFn = std::function<Word(Addr, unsigned)>;

    /**
     * @param expect_squash value-identity squashing is enabled, so
     *        consecutive identical sends are a protocol violation
     * @param spec DSRE mode: Spec/Final states are meaningful and
     *        the load-finality rule applies
     * @param read_mem committed-memory reader for the forwarding
     *        recompute
     */
    InvariantChecker(bool expect_squash, bool spec, ReadMemFn read_mem);

    /** One network delivery, observed before the consumer's own
     *  stale-wave filtering (the checker re-derives acceptance). */
    struct Delivery
    {
        enum class Site : std::uint8_t
        {
            NodeOperand, ///< a = slot, b = operand index
            RegWrite,    ///< a = write index
            LsqLoad,     ///< a = lsid
            LsqStore,    ///< a = lsid
            Exit,        ///< block exit (one per block)
        };

        Site site = Site::NodeOperand;
        DynBlockSeq seq = 0;
        std::uint32_t a = 0;
        std::uint32_t b = 0;
        Word value = 0;
        Addr addr = 0;
        ValState state = ValState::Spec;
        ValState addrState = ValState::Spec;
        std::uint32_t wave = 0;
        bool statusOnly = false;
        bool echo = false; ///< deliberate same-value resend, exempt
        Cycle cycle = 0;
    };

    void onDelivery(const Delivery &d);

    // --- LSQ shadow hooks (called by the LSQ as it updates state) -------
    void onMemOpMapped(DynBlockSeq seq, Lsid lsid, bool is_store,
                       unsigned bytes);
    void onStoreState(DynBlockSeq seq, Lsid lsid, Addr addr, Word data,
                      ValState data_state, ValState addr_state);
    void onLoadAddr(DynBlockSeq seq, Lsid lsid, Addr addr,
                    ValState addr_state);
    /** A load reply is leaving the LSQ (Final replies are verified). */
    void onLoadReply(Cycle now, DynBlockSeq seq, Lsid lsid, Word value,
                     ValState state, bool echo);

    /** The block committed or was flushed: drop its shadow state. */
    void onBlockRetired(DynBlockSeq seq);
    void onFlushFrom(DynBlockSeq from_seq);

    /** Total individual invariant checks evaluated. */
    std::uint64_t checksRun() const { return _checks; }

  private:
    struct Payload
    {
        Word value = 0;
        Addr addr = 0;
        ValState state = ValState::Spec;
        ValState addrState = ValState::Spec;
        bool statusOnly = false;
        bool echo = false;

        bool
        identicalTo(const Payload &o) const
        {
            return value == o.value && addr == o.addr &&
                   state == o.state && addrState == o.addrState;
        }
    };

    struct SiteState
    {
        /** Every wave observed on this link, by wave number, so the
         *  checks survive arbitrary network reordering. Pruned from
         *  the bottom past kMaxTrackedWaves. */
        std::map<std::uint32_t, Payload> waves;
        bool dataFinalSeen = false;
        std::uint32_t dataFinalWave = 0;
        Word dataFinalValue = 0;
        bool addrFinalSeen = false;
        std::uint32_t addrFinalWave = 0;
        Addr addrFinalValue = 0;
    };

    struct ShadowOp
    {
        bool isStore = false;
        std::uint8_t bytes = 0;
        // Store mirror.
        bool resolved = false;
        Addr addr = 0;
        Word data = 0;
        ValState dataState = ValState::Spec;
        ValState addrState = ValState::Spec;
        // Load mirror.
        bool addrKnown = false;
        Addr ldAddr = 0;
        ValState ldAddrState = ValState::Spec;
    };

    static constexpr std::size_t kMaxTrackedWaves = 64;

    using SiteKey =
        std::tuple<DynBlockSeq, std::uint8_t, std::uint32_t,
                   std::uint32_t>;
    using MemKey = std::pair<DynBlockSeq, Lsid>;

    [[noreturn]] void fail(const char *invariant, Cycle cycle,
                           DynBlockSeq seq, std::string msg) const;

    Word recomputeLoadValue(MemKey key, const ShadowOp &load) const;

    bool _expectSquash;
    bool _spec;
    ReadMemFn _readMem;
    std::map<SiteKey, SiteState> _sites;
    std::map<MemKey, ShadowOp> _ops;
    std::uint64_t _checks = 0;
};

} // namespace edge::chaos

#endif // EDGE_CHAOS_INVARIANTS_HH
