#include "lsq/lsq.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "predictor/oracle.hh" // rangesOverlap

namespace edge::lsq {

using pred::rangesOverlap;

const char *
recoveryName(Recovery recovery)
{
    switch (recovery) {
      case Recovery::Flush: return "flush";
      case Recovery::Dsre:  return "dsre";
    }
    return "?";
}

LoadStoreQueue::LoadStoreQueue(const LsqParams &params,
                               mem::Hierarchy *hierarchy,
                               mem::SparseMemory *memory,
                               pred::DependencePredictor *policy,
                               StatSet &stats, ReplyFn reply,
                               ViolationFn violation,
                               chaos::ChaosEngine *chaos,
                               chaos::InvariantChecker *check)
    : _p(params),
      _spec(params.recovery == Recovery::Dsre),
      _hier(hierarchy),
      _mem(memory),
      _policy(policy),
      _reply(std::move(reply)),
      _violation(std::move(violation)),
      _chaos(chaos),
      _check(check),
      _bankFree(hierarchy->params().numDBanks, 0),
      _loads(stats.counter("lsq.loads", "loads performed")),
      _stores(stats.counter("lsq.stores", "stores resolved")),
      _forwards(stats.counter("lsq.forwards",
                              "loads fully forwarded from stores")),
      _violations(stats.counter("lsq.violations",
                                "dependence violations detected")),
      _resends(stats.counter("lsq.resends",
                             "DSRE corrective load resends")),
      _upgrades(stats.counter("lsq.upgrades",
                              "commit-wave load state upgrades")),
      _policyHolds(stats.counter("lsq.policy_holds",
                                 "loads initially held by the policy")),
      _replayWaits(stats.counter(
          "lsq.replay_waits",
          "violating loads replayed conservatively after a flush")),
      _deferrals(stats.counter(
          "lsq.deferrals",
          "corrective resends deferred to the commit wave")),
      _vpPredictions(stats.counter(
          "lsq.vp_predictions",
          "miss value predictions issued (vp extension)")),
      _vpCorrect(stats.counter(
          "lsq.vp_correct",
          "miss value predictions that were right (vp extension)")),
      _violationDistance(stats.histogram(
          "lsq.violation_distance",
          "blocks between conflicting store and load"))
{
    fatal_if(_p.valuePredictMisses && !_spec,
             "miss value prediction needs DSRE recovery to correct "
             "wrong predictions");
    if (_p.valuePredictMisses)
        _vpTable.assign(_p.vpTableSize, VpEntry{});
}

LoadStoreQueue::MemEntry &
LoadStoreQueue::entry(MemKey key)
{
    auto it = _blocks.find(key.first);
    panic_if(it == _blocks.end(), "no LSQ block for seq %llu",
             static_cast<unsigned long long>(key.first));
    panic_if(key.second >= it->second.ops.size(),
             "LSID %u out of range", key.second);
    return it->second.ops[key.second];
}

const LoadStoreQueue::MemEntry *
LoadStoreQueue::find(MemKey key) const
{
    auto it = _blocks.find(key.first);
    if (it == _blocks.end() || key.second >= it->second.ops.size())
        return nullptr;
    return &it->second.ops[key.second];
}

BlockId
LoadStoreQueue::blockIdOf(DynBlockSeq seq) const
{
    auto it = _blocks.find(seq);
    return it == _blocks.end() ? kInvalidBlock : it->second.blockId;
}

Cycle
LoadStoreQueue::bankPort(Cycle now, Addr addr)
{
    unsigned bank = _hier->bankOf(addr);
    Cycle start = std::max(now, _bankFree[bank]);
    _bankFree[bank] = start + 1;
    return start;
}

void
LoadStoreQueue::mapBlock(DynBlockSeq seq, std::uint64_t arch_idx,
                         BlockId block_id, const isa::Block &block)
{
    panic_if(_blocks.count(seq), "block seq %llu mapped twice",
             static_cast<unsigned long long>(seq));
    BlockEntry be;
    be.archIdx = arch_idx;
    be.blockId = block_id;
    be.ops.resize(block.numMemOps());
    for (std::size_t s = 0; s < block.insts().size(); ++s) {
        const auto &in = block.insts()[s];
        if (!isa::isMem(in.op))
            continue;
        MemEntry &e = be.ops[in.lsid];
        e.isStore = isa::isStore(in.op);
        e.bytes = isa::opInfo(in.op).accessBytes;
        e.slot = static_cast<SlotId>(s);
        if (e.isStore) {
            if (_spec)
                _nonFinalStores.insert({seq, in.lsid});
            _policy->onStoreMapped(seq, block_id, in.lsid);
        } else {
            e.dep = _policy->onLoadMapped(seq, block_id, in.lsid);
        }
        if (_check)
            _check->onMemOpMapped(seq, in.lsid, e.isStore, e.bytes);
    }
    _blocks.emplace(seq, std::move(be));
}

const std::vector<pred::UnresolvedStore> &
LoadStoreQueue::olderUnresolved(MemKey key) const
{
    std::vector<pred::UnresolvedStore> &out = _olderScratch;
    out.clear();
    for (const auto &[seq, be] : _blocks) {
        if (seq > key.first)
            break;
        for (Lsid l = 0; l < be.ops.size(); ++l) {
            if (seq == key.first && l >= key.second)
                break;
            const MemEntry &e = be.ops[l];
            if (e.isStore && !e.resolved)
                out.push_back({seq, be.archIdx, be.blockId, l});
        }
    }
    return out;
}

Word
LoadStoreQueue::computeLoadValue(MemKey key, const MemEntry &e) const
{
    // Start from architectural memory, then overlay every resolved
    // older store in ascending (seq, lsid) order so the youngest
    // writer of each byte wins.
    Word value = _mem->read(e.addr, e.bytes);
#ifdef EDGE_MUTATIONS
    // Deliberate protocol mutation: forward each byte from the
    // OLDEST older covering store instead of the youngest. The
    // invariant checker catches it as `lsq-age-ordered-forwarding`.
    bool oldest_wins =
        _chaos &&
        _chaos->mutation() == chaos::Mutation::MisorderForward;
    std::array<bool, kWordBytes> written{};
#endif
    for (const auto &[seq, be] : _blocks) {
        if (seq > key.first)
            break;
        for (Lsid l = 0; l < be.ops.size(); ++l) {
            if (seq == key.first && l >= key.second)
                break;
            const MemEntry &st = be.ops[l];
            if (!st.isStore || !st.resolved)
                continue;
            if (!rangesOverlap(st.addr, st.bytes, e.addr, e.bytes))
                continue;
            for (unsigned i = 0; i < e.bytes; ++i) {
                Addr a = e.addr + i;
                if (a < st.addr || a >= st.addr + st.bytes)
                    continue;
#ifdef EDGE_MUTATIONS
                if (oldest_wins && written[i])
                    continue;
                written[i] = true;
#endif
                unsigned si = static_cast<unsigned>(a - st.addr);
                Word byte = (st.data >> (8 * si)) & 0xff;
                value &= ~(Word{0xff} << (8 * i));
                value |= byte << (8 * i);
            }
        }
    }
    return value;
}

bool
LoadStoreQueue::loadIsFinal(MemKey key, const MemEntry &e) const
{
    if (!_spec)
        return true;
    if (e.addrState != ValState::Final)
        return false;
    // A load is final when no older store can still change it:
    // every older store must be resolved with a Final address, and
    // the ones that actually overlap must have Final data too.
    for (auto it = _nonFinalStores.begin();
         it != _nonFinalStores.end() && *it < key; ++it) {
        const MemEntry *st = find(*it);
        panic_if(!st, "stale non-final store key");
        if (!st->resolved || st->addrSt != ValState::Final)
            return false;
        if (rangesOverlap(st->addr, st->bytes, e.addr, e.bytes) &&
            st->state != ValState::Final) {
            return false;
        }
    }
    return true;
}

void
LoadStoreQueue::loadRequest(
    Cycle now, DynBlockSeq seq, Lsid lsid, Addr addr,
    ValState addr_state, std::uint32_t wave, std::uint16_t depth,
    const std::array<isa::Target, isa::kMaxTargets> &targets,
    SlotId slot)
{
    auto bit = _blocks.find(seq);
    if (bit == _blocks.end())
        return; // flushed block: stale message, drop
    MemKey key{seq, lsid};
    MemEntry &e = entry(key);
    panic_if(e.isStore, "load request for a store LSID");

    if (e.addrKnown && wave <= e.inWave)
        return; // stale (reordered) request
    e.inWave = wave;

    bool addr_changed = e.addrKnown && e.addr != addr;
    e.addrKnown = true;
    e.addr = addr;
    // Monotonic: a Final address never goes back to Spec.
    if (addr_state == ValState::Final)
        e.addrState = ValState::Final;
    else if (!addr_changed && e.addrState == ValState::Final)
        addr_state = ValState::Final;
    else
        e.addrState = addr_state;
    e.targets = targets;
    e.slot = slot;
    e.depth = depth;

    if (_check)
        _check->onLoadAddr(seq, lsid, e.addr, e.addrState);

    if (!e.performed) {
        if (e.waiting && !addr_changed) {
            // Address state upgrade while held: nothing to do yet.
            return;
        }
        tryIssueLoad(now, key, e);
        return;
    }

    // Re-execution of the load's address (a DSRE wave upstream) or
    // an address state upgrade: recompute and resend as needed.
    Word v = computeLoadValue(key, e);
    bool final_now = loadIsFinal(key, e);
    if (v != e.lastValue) {
        if (final_now) {
            // A final correction is mandatory: this may be the last
            // event that can ever finalise this load, so it bypasses
            // the resend budget (it IS the commit wave).
            e.deferred = false;
            ++_resends;
            performLoad(now, key, e, true, depth);
            _specLoads.erase(key);
            return;
        }
        if (_p.maxResendsPerLoad != 0 &&
            e.resends >= _p.maxResendsPerLoad) {
            e.deferred = true;
            ++_deferrals;
            return;
        }
        ++e.resends;
        ++_resends;
        performLoad(now, key, e, true, depth);
    } else if (final_now && e.lastState != ValState::Final) {
        ++_upgrades;
        e.deferred = false;
        performLoad(now, key, e, true, depth);
        _specLoads.erase(key);
    }
}

void
LoadStoreQueue::tryIssueLoad(Cycle now, MemKey key, MemEntry &e)
{
    auto &be = _blocks.at(key.first);
    const std::vector<pred::UnresolvedStore> &older =
        olderUnresolved(key);
    pred::LoadQuery q;
    q.seq = key.first;
    q.archIdx = be.archIdx;
    q.block = be.blockId;
    q.lsid = key.second;
    q.addr = e.addr;
    q.bytes = e.bytes;
    q.olderUnresolved = &older;
    q.dep = e.dep;
    auto hold_key = std::make_pair(be.archIdx, key.second);
    if (_replayHolds.count(hold_key)) {
        if (!older.empty()) {
            if (!e.waiting) {
                e.waiting = true;
                ++_replayWaits;
                _waitingLoads.insert(key);
            }
            return;
        }
        _replayHolds.erase(hold_key);
    }
    if (_policy->loadMustWait(q)) {
        if (!e.waiting) {
            e.waiting = true;
            ++_policyHolds;
            _waitingLoads.insert(key);
        }
        return;
    }
    if (e.waiting) {
        e.waiting = false;
        _waitingLoads.erase(key);
    }
    performLoad(now, key, e, false, e.depth);
}

void
LoadStoreQueue::performLoad(Cycle now, MemKey key, MemEntry &e,
                            bool is_resend, std::uint16_t depth)
{
    Word value = computeLoadValue(key, e);
    bool final_now = loadIsFinal(key, e);
    // Commit-wave upgrades carry the same value: the LSQ re-sends it
    // without re-accessing the data cache.
    bool value_unchanged = e.performed && value == e.lastValue;

    // Does any byte come from memory (vs pure store forwarding)?
    bool any_from_mem = false;
    {
        std::array<bool, 8> covered{};
        for (const auto &[seq, be] : _blocks) {
            if (seq > key.first)
                break;
            for (Lsid l = 0; l < be.ops.size(); ++l) {
                if (seq == key.first && l >= key.second)
                    break;
                const MemEntry &st = be.ops[l];
                if (!st.isStore || !st.resolved)
                    continue;
                for (unsigned i = 0; i < e.bytes; ++i) {
                    Addr a = e.addr + i;
                    if (a >= st.addr && a < st.addr + st.bytes)
                        covered[i] = true;
                }
            }
        }
        for (unsigned i = 0; i < e.bytes; ++i)
            any_from_mem = any_from_mem || !covered[i];
    }

    Cycle done;
    bool predicted_early = false;
    if (value_unchanged && !_p.chargeUpgradePorts) {
        // Status-only commit-wave upgrade: rides the narrow status
        // path rather than a data port.
        done = now + 1;
    } else {
        Cycle start = bankPort(now, e.addr);
        Cycle fast = start + _p.lsqLatency;
        done = fast;
        if (any_from_mem && !value_unchanged)
            done = std::max(done, _hier->dataRead(start, e.addr));

        // Value-prediction extension: on a long miss, reply with the
        // last value seen at this address immediately; the real
        // value follows as a second wave of the same DSRE protocol.
        if (_p.valuePredictMisses && !is_resend && !e.performed &&
            done > fast + _p.vpLatencyThreshold) {
            VpEntry &ve =
                _vpTable[(e.addr >> 3) % _vpTable.size()];
            Word guess = ve.addr == e.addr ? ve.value : 0;
            ++_vpPredictions;
            if (guess == value)
                ++_vpCorrect;
            LoadReply pr;
            pr.when = std::max(fast, e.lastReplyWhen);
            pr.addr = e.addr;
            pr.seq = key.first;
            pr.slot = e.slot;
            pr.lsid = key.second;
            pr.value = guess;
            pr.state = ValState::Spec; // a guess is never final
            pr.wave = ++e.replyWave;
            pr.depth = depth;
            // A confirmation (guess == real value) deliberately
            // repeats the value on the next wave; exempt it from the
            // value-identity-squash invariant.
            pr.echo = true;
            pr.targets = e.targets;
            _reply(pr);
            e.lastReplyWhen = pr.when;
            predicted_early = true;
            // The real reply below corrects (or confirms) it; when
            // it merely confirms, it travels as a status upgrade.
            value_unchanged = false;
        }
    }
    // An upgrade or resend must not overtake the previous reply on
    // the same link: the commit wave trails the data it confirms.
    done = std::max(done, e.lastReplyWhen);
    e.lastReplyWhen = done;
    if (!any_from_mem && !e.performed && !predicted_early)
        ++_forwards;

    // Train the last-value table with the true value.
    if (_p.valuePredictMisses) {
        VpEntry &ve = _vpTable[(e.addr >> 3) % _vpTable.size()];
        ve.addr = e.addr;
        ve.value = value;
    }

    if (!e.performed)
        ++_loads;
    e.performed = true;
    e.lastValue = value;
    e.lastState = final_now ? ValState::Final : ValState::Spec;
    if (_spec) {
        if (final_now)
            _specLoads.erase(key);
        else
            _specLoads.insert(key);
    }

    LoadReply r;
    r.when = done;
    r.addr = e.addr;
    r.seq = key.first;
    r.slot = e.slot;
    r.lsid = key.second;
    r.value = value;
    r.state = e.lastState;
    r.wave = ++e.replyWave;
    r.depth = static_cast<std::uint16_t>(is_resend ? depth + 1 : depth);
    r.statusOnly = value_unchanged;
    r.targets = e.targets;
    if (_check)
        _check->onLoadReply(r.when, r.seq, r.lsid, r.value, r.state,
                            r.echo);
    _reply(r);
}

void
LoadStoreQueue::storeResolve(Cycle now, DynBlockSeq seq, Lsid lsid,
                             Addr addr, Word data, ValState addr_state,
                             ValState data_state, std::uint32_t wave,
                             std::uint16_t depth)
{
    // Chaos: hold the store's resolution at the bank entrance for a
    // few cycles, widening the speculation window of younger loads.
    if (_chaos)
        now += _chaos->storeResolveDelay();

    auto bit = _blocks.find(seq);
    if (bit == _blocks.end())
        return; // flushed block: stale message, drop
    MemKey key{seq, lsid};
    MemEntry &e = entry(key);
    panic_if(!e.isStore, "store resolve for a load LSID");

    if (e.resolved && wave <= e.inWave)
        return; // stale (reordered) resolve
    e.inWave = wave;
    if (!_spec) {
        addr_state = ValState::Final;
        data_state = ValState::Final;
    }

    bool had_old = e.resolved;
    Addr old_addr = e.addr;
    unsigned old_bytes = e.bytes;
    bool addr_changed = had_old && e.addr != addr;
    bool data_changed = had_old && e.data != data;
    bool changed = !had_old || addr_changed || data_changed;

    panic_if(had_old && e.addrSt == ValState::Final && addr_changed,
             "protocol violation: store with Final address moved "
             "(seq %llu lsid %u)",
             static_cast<unsigned long long>(seq), lsid);
    panic_if(had_old && e.state == ValState::Final && data_changed,
             "protocol violation: store with Final data changed "
             "(seq %llu lsid %u)",
             static_cast<unsigned long long>(seq), lsid);

    bool state_improved =
        (addr_state == ValState::Final &&
         e.addrSt != ValState::Final) ||
        (data_state == ValState::Final && e.state != ValState::Final);
    if (had_old && !changed && !state_improved)
        return; // pure duplicate

    if (!had_old)
        ++_stores;
    e.resolved = true;
    e.addr = addr;
    e.data = data;
    // States are sticky-monotonic.
    if (addr_state == ValState::Final)
        e.addrSt = ValState::Final;
    else if (addr_changed || !had_old)
        e.addrSt = addr_state;
    if (data_state == ValState::Final)
        e.state = ValState::Final;
    else if (data_changed || !had_old)
        e.state = data_state;

    if (_check)
        _check->onStoreState(seq, lsid, e.addr, e.data, e.state,
                             e.addrSt);

    _policy->onStoreResolved(seq, bit->second.blockId, lsid);

    if (_spec && e.state == ValState::Final &&
        e.addrSt == ValState::Final) {
        _nonFinalStores.erase(key);
    }

    if (changed)
        storeChanged(now, key, old_addr, old_bytes, had_old, depth);

    // Re-query loads held back by the policy: the store landscape
    // just changed. (Snapshot first: tryIssueLoad mutates the set.)
    _waitingScratch.assign(_waitingLoads.begin(), _waitingLoads.end());
    for (MemKey wk : _waitingScratch) {
        auto wit = _blocks.find(wk.first);
        if (wit == _blocks.end())
            continue; // flushed meanwhile
        tryIssueLoad(now, wk, wit->second.ops[wk.second]);
    }

    sweepFinality(now);

    if (_chaos && _spec)
        injectSpuriousWave(now);
}

void
LoadStoreQueue::storeChanged(Cycle now, MemKey store_key, Addr old_addr,
                             unsigned old_bytes, bool had_old,
                             std::uint16_t depth)
{
    const MemEntry &st = entry(store_key);
    std::vector<Hit> &hits = _hitsScratch;
    hits.clear();

    for (auto it = _blocks.lower_bound(store_key.first);
         it != _blocks.end(); ++it) {
        auto &[seq, be] = *it;
        for (Lsid l = 0; l < be.ops.size(); ++l) {
            MemKey key{seq, l};
            if (!(store_key < key))
                continue;
            MemEntry &ld = be.ops[l];
            if (ld.isStore || !ld.performed)
                continue;
            bool overlap_new =
                rangesOverlap(st.addr, st.bytes, ld.addr, ld.bytes);
            bool overlap_old =
                had_old &&
                rangesOverlap(old_addr, old_bytes, ld.addr, ld.bytes);
            if (!overlap_new && !overlap_old)
                continue;
            Word v = computeLoadValue(key, ld);
            bool value_changed = v != ld.lastValue;
            bool addr_hit = overlap_new && _p.addrBasedViolations &&
                            _p.recovery == Recovery::Flush;
            if (value_changed || addr_hit)
                hits.push_back({key, value_changed});
        }
    }

    for (const Hit &hit : hits) {
        auto bit = _blocks.find(hit.key.first);
        if (bit == _blocks.end())
            continue; // flushed by an earlier hit in this batch
        MemEntry &ld = bit->second.ops[hit.key.second];

        ++_violations;
        _violationDistance.sample(hit.key.first - store_key.first);
        _policy->onViolation(bit->second.blockId, hit.key.second,
                             blockIdOf(store_key.first),
                             store_key.second);

        if (_p.recovery == Recovery::Dsre) {
            if (hit.value_changed) {
                if (_p.maxResendsPerLoad != 0 &&
                    ld.resends >= _p.maxResendsPerLoad) {
                    // Storm throttle: batch further corrections into
                    // the commit wave (sweepFinality sends them).
                    ld.deferred = true;
                    ++_deferrals;
                } else {
                    ++ld.resends;
                    ++_resends;
                    performLoad(now, hit.key, ld, true,
                                static_cast<std::uint16_t>(depth));
                }
            }
        } else {
            // Forward-progress guarantee: replay this dynamic load
            // conservatively after the flush (see _replayHolds).
            _replayHolds.emplace(bit->second.archIdx, hit.key.second);
            Violation v;
            v.loadSeq = hit.key.first;
            v.loadBlock = bit->second.blockId;
            v.loadLsid = hit.key.second;
            v.storeSeq = store_key.first;
            v.storeBlock = blockIdOf(store_key.first);
            v.storeLsid = store_key.second;
            _violation(v);
            // The flush removed this load's block and everything
            // younger; the remaining hits that survived are handled
            // on the next iteration (find() guards stale keys).
        }
    }
}

void
LoadStoreQueue::sweepFinality(Cycle now)
{
    if (!_spec)
        return;
    // Snapshot: performLoad mutates _specLoads while we walk it.
    _sweepScratch.assign(_specLoads.begin(), _specLoads.end());
    for (MemKey key : _sweepScratch) {
        auto bit = _blocks.find(key.first);
        if (bit == _blocks.end()) {
            _specLoads.erase(key);
            continue;
        }
        MemEntry &e = bit->second.ops[key.second];
        if (!loadIsFinal(key, e))
            continue;
        Word v = computeLoadValue(key, e);
        panic_if(v != e.lastValue && !e.deferred,
                 "finality sweep found a changed value that no store "
                 "event reported (seq %llu lsid %u)",
                 static_cast<unsigned long long>(key.first), key.second);
        if (v != e.lastValue)
            ++_resends;
        else
            ++_upgrades;
        e.deferred = false;
        performLoad(now, key, e, true, e.depth);
        _specLoads.erase(key);
    }
}

void
LoadStoreQueue::injectSpuriousWave(Cycle now)
{
    if (_specLoads.empty() || !_chaos->spuriousViolation())
        return;
    auto it = _specLoads.begin();
    std::advance(it, _chaos->pickIndex(_specLoads.size()));
    MemKey key = *it;
    MemEntry &e = entry(key);
    _chaos->countSpurious();

    // A transient wrong value followed one cycle later by the true
    // value again — a forced spurious violation. The entry's own
    // record (lastValue/lastState) is untouched, so from the LSQ's
    // point of view nothing happened; the dataflow graph downstream
    // sees a genuine DSRE correction storm that must converge back
    // to the same architectural state. Both waves are echoes: they
    // deliberately repeat values, which the value-identity-squash
    // invariant must not flag.
    LoadReply glitch;
    glitch.when = std::max(now, e.lastReplyWhen);
    glitch.addr = e.addr;
    glitch.seq = key.first;
    glitch.slot = e.slot;
    glitch.lsid = key.second;
    glitch.value = e.lastValue ^ 1;
    glitch.state = ValState::Spec;
    glitch.wave = ++e.replyWave;
    glitch.depth = e.depth;
    glitch.echo = true;
    glitch.targets = e.targets;
    _reply(glitch);

    LoadReply fix = glitch;
    fix.when = glitch.when + 1;
    fix.value = e.lastValue;
    fix.wave = ++e.replyWave;
    _reply(fix);
    e.lastReplyWhen = fix.when;
}

bool
LoadStoreQueue::blockMemFinal(DynBlockSeq seq) const
{
    auto it = _blocks.find(seq);
    panic_if(it == _blocks.end(), "blockMemFinal on unknown seq");
    for (Lsid l = 0; l < it->second.ops.size(); ++l) {
        const MemEntry &e = it->second.ops[l];
        if (e.isStore) {
            if (!e.resolved)
                return false;
            if (_spec && (e.state != ValState::Final ||
                          e.addrSt != ValState::Final)) {
                return false;
            }
        } else {
            if (!e.performed || e.waiting)
                return false;
            if (_spec && e.lastState != ValState::Final)
                return false;
        }
    }
    return true;
}

void
LoadStoreQueue::commitBlock(Cycle now, DynBlockSeq seq)
{
    auto it = _blocks.find(seq);
    panic_if(it == _blocks.end(), "commit of unknown seq");
    panic_if(it != _blocks.begin(),
             "commit of seq %llu but older blocks are in flight",
             static_cast<unsigned long long>(seq));
    panic_if(!blockMemFinal(seq), "commit of non-final block");

    for (Lsid l = 0; l < it->second.ops.size(); ++l) {
        const MemEntry &e = it->second.ops[l];
        if (!e.isStore)
            continue;
        _mem->write(e.addr, e.bytes, e.data);
        (void)_hier->dataWrite(now, e.addr); // drain occupancy
        _nonFinalStores.erase({seq, l});
    }
    for (Lsid l = 0; l < it->second.ops.size(); ++l) {
        _specLoads.erase({seq, l});
        _waitingLoads.erase({seq, l});
    }
    _blocks.erase(it);
    if (_check)
        _check->onBlockRetired(seq);
}

std::string
LoadStoreQueue::debugState() const
{
    std::string out;
    for (const auto &[seq, be] : _blocks) {
        for (Lsid l = 0; l < be.ops.size(); ++l) {
            const MemEntry &e = be.ops[l];
            if (e.isStore) {
                if (e.resolved && e.addrSt == ValState::Final &&
                    e.state == ValState::Final)
                    continue;
                out += strfmt("  st seq=%llu lsid=%u resolved=%d "
                              "addrFinal=%d dataFinal=%d\n",
                              (unsigned long long)seq, l, e.resolved,
                              e.addrSt == ValState::Final,
                              e.state == ValState::Final);
            } else {
                if (e.performed && !e.waiting &&
                    e.lastState == ValState::Final)
                    continue;
                out += strfmt("  ld seq=%llu lsid=%u performed=%d "
                              "waiting=%d deferred=%d addrFinal=%d "
                              "final=%d\n",
                              (unsigned long long)seq, l, e.performed,
                              e.waiting, e.deferred,
                              e.addrState == ValState::Final,
                              e.lastState == ValState::Final);
            }
        }
    }
    return out;
}

void
LoadStoreQueue::flushFrom(DynBlockSeq from_seq)
{
    auto it = _blocks.lower_bound(from_seq);
    _blocks.erase(it, _blocks.end());

    auto prune = [&](std::set<MemKey> &set) {
        auto first = set.lower_bound({from_seq, 0});
        set.erase(first, set.end());
    };
    prune(_nonFinalStores);
    prune(_specLoads);
    prune(_waitingLoads);

    _policy->onFlush(from_seq);
    if (_check)
        _check->onFlushFrom(from_seq);
}

} // namespace edge::lsq
