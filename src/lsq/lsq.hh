/**
 * @file
 * The load/store queue: the component the DSRE protocol revolves
 * around. It tracks every in-flight memory operation in (dynamic
 * block, LSID) program order, performs byte-accurate store-to-load
 * forwarding, detects dependence violations when a store resolves
 * under an already-performed younger load, and drives both recovery
 * mechanisms:
 *
 *  - flush recovery: report the violation so the core can flush the
 *    offending load's block and everything younger;
 *  - DSRE recovery: simply re-send the load's corrected value as a
 *    new speculative wave, letting the dataflow graph selectively
 *    re-execute only the dependent instructions.
 *
 * It also originates the commit wave: a load's value becomes Final
 * exactly when its address is Final and no older in-flight store is
 * still unresolved or non-final; the LSQ sends state-upgrade replies
 * as that frontier advances.
 *
 * Physically the LSQ is banked (one bank per grid row, co-located
 * with the L1D banks); we model bank port contention and routing but
 * keep the search structure logically unified, a simplification
 * documented in DESIGN.md.
 */

#ifndef EDGE_LSQ_LSQ_HH
#define EDGE_LSQ_LSQ_HH

#include <array>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "chaos/chaos.hh"
#include "chaos/invariants.hh"
#include "common/stats.hh"
#include "isa/block.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"
#include "predictor/dependence.hh"

namespace edge::lsq {

/** How misspeculation is repaired. */
enum class Recovery
{
    Flush, ///< flush the load's block and younger, refetch
    Dsre,  ///< distributed selective re-execution (the paper)
};

const char *recoveryName(Recovery recovery);

struct LsqParams
{
    Recovery recovery = Recovery::Dsre;
    unsigned lsqLatency = 1; ///< bank search latency (cycles)
    /**
     * Under flush recovery, treat any store resolving under an
     * already-performed overlapping younger load as a violation
     * (address-based detection, like real flush machines). When
     * false, only value-changing conflicts count (idealised).
     */
    bool addrBasedViolations = true;
    /**
     * DSRE storm throttle: after this many corrective resends of one
     * load instance, further corrections are deferred until the
     * value is Final (it then rides the commit wave). Bounds the
     * wave amplification of deep same-address store chains; 0
     * disables the budget (ablation).
     */
    unsigned maxResendsPerLoad = 4;
    /**
     * Charge a full LSQ bank port for commit-wave (status-only)
     * upgrade replies. Off by default: upgrades carry no data, so
     * hardware can batch them on a narrow status path. Ablation
     * knob for the commit-wave cost experiment.
     */
    bool chargeUpgradePorts = false;

    /**
     * Second application of the DSRE protocol (the paper evaluates
     * dependence speculation as "one application"): value-predict
     * loads that miss far enough in the cache hierarchy. The LSQ
     * replies immediately with the last value seen at the address
     * (Spec), and the real value rides behind as a corrective wave
     * (or a cheap upgrade when the prediction was right). Requires
     * DSRE recovery.
     */
    bool valuePredictMisses = false;
    /** Only predict when the access takes longer than this. */
    unsigned vpLatencyThreshold = 8;
    /** Entries in the direct-mapped last-value table. */
    std::size_t vpTableSize = 1024;
};

/** A load reply / resend / upgrade the core must put on the network. */
struct LoadReply
{
    Cycle when = 0;            ///< earliest cycle the reply may leave
    Addr addr = 0;             ///< for bank routing
    DynBlockSeq seq = 0;
    SlotId slot = 0;           ///< the load instruction's slot
    Lsid lsid = 0;
    Word value = 0;
    ValState state = ValState::Spec;
    std::uint32_t wave = 0;
    std::uint16_t depth = 0;
    bool statusOnly = false; ///< commit-wave upgrade (same value)
    /**
     * Deliberate same-value resend — a chaos-injected echo wave or a
     * value-prediction confirmation. The value-identity-squash
     * invariant must not flag it.
     */
    bool echo = false;
    std::array<isa::Target, isa::kMaxTargets> targets{};
};

/** A detected dependence violation (flush recovery consumes this). */
struct Violation
{
    DynBlockSeq loadSeq = 0;
    BlockId loadBlock = 0;
    Lsid loadLsid = 0;
    DynBlockSeq storeSeq = 0;
    BlockId storeBlock = 0;
    Lsid storeLsid = 0;
};

class LoadStoreQueue
{
  public:
    using ReplyFn = std::function<void(const LoadReply &)>;
    using ViolationFn = std::function<void(const Violation &)>;

    /**
     * @param params configuration
     * @param hierarchy timing for D-cache accesses (not owned)
     * @param memory architectural memory contents (not owned)
     * @param policy active dependence policy (not owned)
     * @param stats counters
     * @param reply invoked for every load reply/resend/upgrade
     * @param violation invoked on every detected violation (flush
     *        recovery decides what to do with it; DSRE only counts)
     * @param chaos optional fault injector (not owned): delays store
     *        resolution and forces spurious corrective re-fire waves
     * @param check optional invariant checker (not owned), fed with
     *        the LSQ's shadow state and every outgoing reply
     */
    LoadStoreQueue(const LsqParams &params, mem::Hierarchy *hierarchy,
                   mem::SparseMemory *memory,
                   pred::DependencePredictor *policy, StatSet &stats,
                   ReplyFn reply, ViolationFn violation,
                   chaos::ChaosEngine *chaos = nullptr,
                   chaos::InvariantChecker *check = nullptr);

    /** A block entered the window: allocate its LSID entries. */
    void mapBlock(DynBlockSeq seq, std::uint64_t arch_idx,
                  BlockId block_id, const isa::Block &block);

    /**
     * A load's address arrived (first execution, an address-changing
     * re-execution, or a state upgrade of the address).
     */
    void loadRequest(Cycle now, DynBlockSeq seq, Lsid lsid, Addr addr,
                     ValState addr_state, std::uint32_t wave,
                     std::uint16_t depth,
                     const std::array<isa::Target, isa::kMaxTargets>
                         &targets, SlotId slot);

    /** A store's address and data arrived (or changed / upgraded). */
    void storeResolve(Cycle now, DynBlockSeq seq, Lsid lsid, Addr addr,
                      Word data, ValState addr_state,
                      ValState data_state, std::uint32_t wave,
                      std::uint16_t depth);

    /** All memory ops of the block performed / resolved and Final? */
    bool blockMemFinal(DynBlockSeq seq) const;

    /** Commit: drain stores to memory/D-cache and free the entries. */
    void commitBlock(Cycle now, DynBlockSeq seq);

    /** Squash every block with seq >= from_seq. */
    void flushFrom(DynBlockSeq from_seq);

    /** In-flight blocks currently tracked (for asserts/tests). */
    std::size_t numBlocks() const { return _blocks.size(); }

    /** Total violations detected so far. */
    std::uint64_t violations() const { return _violations.value(); }

    /** Human-readable dump of non-final entries (deadlock debug). */
    std::string debugState() const;

    /** Value predictions issued / proven correct (vp extension). */
    std::uint64_t vpPredictions() const { return _vpPredictions.value(); }
    std::uint64_t vpCorrect() const { return _vpCorrect.value(); }

  private:
    using MemKey = std::pair<DynBlockSeq, Lsid>;

    struct MemEntry
    {
        // Static properties, filled at map time.
        bool isStore = false;
        std::uint8_t bytes = 0;
        SlotId slot = 0;

        // Store state. Address and data finality travel separately:
        // a load can finalise once every older store has a Final
        // address, even while non-overlapping store *data* is still
        // speculative.
        bool resolved = false;
        Addr addr = 0;
        Word data = 0;
        ValState state = ValState::Spec;  ///< data state
        ValState addrSt = ValState::Spec; ///< address state

        /** Drop stale (cross-network reordered) incoming messages. */
        std::uint32_t inWave = 0;

        // Load state.
        bool addrKnown = false;    ///< a request has arrived
        bool performed = false;
        bool waiting = false;      ///< held back by the policy
        bool deferred = false;     ///< resend budget exhausted
        std::uint8_t resends = 0;  ///< corrective resends so far
        ValState addrState = ValState::Spec;
        Word lastValue = 0;
        ValState lastState = ValState::Spec;
        /** A later reply (e.g. a status upgrade) must never arrive
         *  before an earlier data reply on the same link. */
        Cycle lastReplyWhen = 0;
        std::uint32_t replyWave = 0;
        std::uint16_t depth = 0;
        std::array<isa::Target, isa::kMaxTargets> targets{};
        /** Store-set dependence captured when the block mapped. */
        pred::CapturedDep dep;
    };

    struct BlockEntry
    {
        std::uint64_t archIdx = 0;
        BlockId blockId = 0;
        std::vector<MemEntry> ops; ///< indexed by LSID
    };

    /** A performed load hit by a store change (see storeChanged). */
    struct Hit
    {
        MemKey key;
        bool value_changed;
    };

    MemEntry &entry(MemKey key);
    const MemEntry *find(MemKey key) const;
    BlockId blockIdOf(DynBlockSeq seq) const;

    /** Current forwarded/loaded value of a performed load. */
    Word computeLoadValue(MemKey key, const MemEntry &e) const;

    /** True when every byte can come only from final sources. */
    bool loadIsFinal(MemKey key, const MemEntry &e) const;

    /**
     * Older unresolved stores, oldest first (policy query input).
     * Returns a reference to _olderScratch, valid until the next
     * call — per-query heap churn was a measurable cost in the
     * re-fire path.
     */
    const std::vector<pred::UnresolvedStore> &
    olderUnresolved(MemKey key) const;

    /** Try to issue a load now (policy permitting); send the reply. */
    void tryIssueLoad(Cycle now, MemKey key, MemEntry &e);

    /** Actually perform the load and send (or re-send) its reply. */
    void performLoad(Cycle now, MemKey key, MemEntry &e,
                     bool is_resend, std::uint16_t depth);

    /**
     * A store changed: scan younger performed loads overlapping
     * either range for value changes (violations), and waiting loads
     * for issue opportunities.
     */
    void storeChanged(Cycle now, MemKey store_key, Addr old_addr,
                      unsigned old_bytes, bool had_old,
                      std::uint16_t depth);

    /** Advance the commit wave: upgrade now-final performed loads. */
    void sweepFinality(Cycle now);

    /**
     * Chaos: re-fire one speculative load as a transient wrong value
     * immediately corrected by a second wave — a forced spurious
     * violation exercising the selective re-execution machinery.
     */
    void injectSpuriousWave(Cycle now);

    /** Charge a bank port; returns the cycle processing may start. */
    Cycle bankPort(Cycle now, Addr addr);

    LsqParams _p;
    /** DSRE carries Spec/Final states; flush recovery does not. */
    bool _spec;
    mem::Hierarchy *_hier;
    mem::SparseMemory *_mem;
    pred::DependencePredictor *_policy;
    ReplyFn _reply;
    ViolationFn _violation;
    chaos::ChaosEngine *_chaos;
    chaos::InvariantChecker *_check;

    std::map<DynBlockSeq, BlockEntry> _blocks;
    std::set<MemKey> _nonFinalStores; ///< unresolved or Spec stores
    std::set<MemKey> _specLoads;      ///< performed, reply still Spec
    std::set<MemKey> _waitingLoads;   ///< held back by the policy

    // Scratch buffers reused across calls instead of per-call heap
    // allocations (re-fire wave bookkeeping is a hot path). None of
    // these functions re-enter themselves, so one buffer each is
    // safe; capacity persists for the queue's lifetime.
    mutable std::vector<pred::UnresolvedStore> _olderScratch;
    std::vector<MemKey> _waitingScratch;   ///< storeResolve re-query
    std::vector<Hit> _hitsScratch;         ///< storeChanged victims
    std::vector<MemKey> _sweepScratch;     ///< sweepFinality candidates
    std::vector<Cycle> _bankFree;     ///< per-bank port availability

    /** Last-value table for the miss value-prediction extension. */
    struct VpEntry
    {
        Addr addr = ~Addr{0};
        Word value = 0;
    };
    std::vector<VpEntry> _vpTable;

    /**
     * Forward-progress guarantee for flush recovery: a dynamic load
     * (architectural block index, LSID) that caused a violation is
     * replayed conservatively exactly once after the flush — the
     * moral equivalent of the Alpha 21264 store-wait bit. Without
     * it, a blindly speculating flush machine livelocks on
     * intra-block store-to-load aliases (the deterministic replay
     * violates identically forever).
     */
    std::set<std::pair<std::uint64_t, Lsid>> _replayHolds;

    Counter &_loads;
    Counter &_stores;
    Counter &_forwards;
    Counter &_violations;
    Counter &_resends;
    Counter &_upgrades;
    Counter &_policyHolds;
    Counter &_replayWaits;
    Counter &_deferrals;
    Counter &_vpPredictions;
    Counter &_vpCorrect;
    Histogram &_violationDistance;
};

} // namespace edge::lsq

#endif // EDGE_LSQ_LSQ_HH
