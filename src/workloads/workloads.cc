#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace edge::wl {

const std::vector<KernelInfo> &
kernels()
{
    static const std::vector<KernelInfo> list = {
        {"gzipish", "164.gzip",
         "LZ hash-table probe/update; data-dependent short-distance "
         "store-to-load aliases"},
        {"bzip2ish", "256.bzip2",
         "byte-frequency counting; read-modify-write chains through "
         "memory with skewed symbol reuse"},
        {"mcfish", "181.mcf",
         "pointer chasing over arcs; stores almost never alias the "
         "chase loads"},
        {"parserish", "197.parser",
         "expression-stack spill/fill with biased two-way control"},
        {"twolfish", "300.twolf",
         "random cell swaps; birthday-rare cross-block aliases"},
        {"vortexish", "255.vortex",
         "object record copies with occasional region overlap"},
        {"vprish", "175.vpr",
         "indirect net lookup with read-modify-write updates"},
        {"artish", "179.art",
         "streaming FP dot products; effectively alias-free"},
        {"equakeish", "183.equake",
         "sparse matrix-vector FP gather; indirection, few aliases"},
        {"ammpish", "188.ammp",
         "indexed FP position updates; data-dependent RMW aliases"},
        {"craftyish", "186.crafty",
         "bitboard hashing into a transposition-table probe/update "
         "with replace-if-better stores"},
        {"gapish", "254.gap",
         "wrapping bump allocator; fixed-distance arena aliases"},
        {"swimish", "171.swim",
         "in-place FP stencil; deterministic one-block-distance "
         "store-to-load dependence"},
        {"gccish", "176.gcc",
         "IR-node ring walk with classified rewrites; pointer "
         "chasing plus sparse conditional stores"},
    };
    return list;
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const KernelInfo &k : kernels())
        names.push_back(k.name);
    return names;
}

bool
exists(const std::string &name)
{
    for (const KernelInfo &k : kernels())
        if (k.name == name)
            return true;
    return false;
}

isa::Program
build(const std::string &name, const KernelParams &params)
{
    if (name == "gzipish")
        return buildGzipish(params);
    if (name == "bzip2ish")
        return buildBzip2ish(params);
    if (name == "mcfish")
        return buildMcfish(params);
    if (name == "parserish")
        return buildParserish(params);
    if (name == "twolfish")
        return buildTwolfish(params);
    if (name == "vortexish")
        return buildVortexish(params);
    if (name == "vprish")
        return buildVprish(params);
    if (name == "artish")
        return buildArtish(params);
    if (name == "equakeish")
        return buildEquakeish(params);
    if (name == "ammpish")
        return buildAmmpish(params);
    if (name == "craftyish")
        return buildCraftyish(params);
    if (name == "gapish")
        return buildGapish(params);
    if (name == "swimish")
        return buildSwimish(params);
    if (name == "gccish")
        return buildGccish(params);
    fatal("unknown kernel '%s'", name.c_str());
}

} // namespace edge::wl
