/**
 * @file
 * parserish — models 197.parser's recursive-descent evaluation:
 * an explicit expression stack is spilled and refilled through
 * memory, and a biased two-way token dispatch exercises the block
 * exit predictor. The pops load exactly what the pushes just stored
 * at stack-pointer-relative addresses, so store-to-load forwarding
 * distance is short and deterministic — a case where the store-set
 * predictor does well and DSRE must at least match it.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildParserish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kIn = 0x10000;
    constexpr Addr kStackTop = 0x60000; // grows down

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("parserish");
    {
        Rng rng(kp.seed * 0x27d4 + 17);
        std::vector<Word> in(n);
        for (auto &w : in)
            w = rng.chance(7, 10) ? 0 : 1; // 70/30 token bias
        pb.initDataWords(kIn, in);
    }
    pb.setInitReg(1, 0);          // i
    pb.setInitReg(2, n);
    pb.setInitReg(4, kStackTop);  // sp
    pb.setInitReg(5, 1);          // value accumulator

    // Dispatch block: fetch the token, pick the operator block.
    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val tok = loop.load(loop.addi(loop.shli(i, 3), kIn), 8);
        loop.branchCond(loop.teqi(tok, 0), "op_add", "op_mul");
    }

    // Both operator blocks push two operands, reload them (the
    // spill/fill), combine, and store the partial result back.
    auto emit_op = [&](const std::string &name, bool is_add) {
        auto &b = pb.newBlock(name);
        Val i = b.readReg(1);
        Val nn = b.readReg(2);
        Val acc = b.readReg(5);

        // The stack pointer walks a bounded region as evaluation
        // depth changes (stride coprime with the region so frames
        // at the same depth recur across the window, like real
        // nested-expression spills).
        Val depth = b.andi(b.muli(i, 48), 127);
        Val sp1 = b.sub(b.imm(kStackTop - 16), depth);

        // Spill two temporaries...
        Val t1 = b.addi(acc, is_add ? 3 : 5);
        Val t2 = b.xori(acc, 0x2b);
        b.store(sp1, t1, 8, 0); // LSID 1
        b.store(sp1, t2, 8, 8); // LSID 2
        // ...and refill them: the pops alias the pushes just above
        // (intra-block), and frames at recurring depths alias
        // across in-flight blocks.
        Val a = b.load(sp1, 8, 0); // LSID 3
        Val c = b.load(sp1, 8, 8); // LSID 4
        Val v = is_add ? b.add(a, c) : b.mul(b.ori(a, 1), c);
        b.writeReg(5, b.andi(v, 0xffffffff));

        Val i2 = b.addi(i, 1);
        b.writeReg(1, i2);
        b.branchCond(b.tlt(i2, nn), "loop", "done");
    };
    emit_op("op_add", true);
    emit_op("op_mul", false);

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
