/**
 * @file
 * swimish — models 171.swim's shallow-water stencil: an in-place
 * 3-point FP relaxation sweep. Each iteration loads a[i-1], a[i],
 * a[i+1] and stores a[i]; when the sweep position of in-flight
 * blocks overlaps, loads alias the stores of the immediately older
 * block at a *fixed, deterministic* distance — the friendliest case
 * for dependence prediction (one static pair, always true), so store
 * sets should close most of the flush machine's gap here.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildSwimish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kGrid = 0x100000;
    constexpr unsigned kMask = 1023; // 1024-point periodic grid

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("swimish");
    {
        Rng rng(kp.seed * 0x7a6e + 43);
        std::vector<Word> grid(kMask + 1);
        for (auto &g : grid)
            g = doubleToWord(rng.uniform() * 4.0 - 2.0);
        pb.initDataWords(kGrid, grid);
    }
    pb.setInitReg(1, 1); // i (skip the boundary point)
    pb.setInitReg(2, n);
    pb.setInitReg(5, doubleToWord(0.0)); // residual accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        Val idx = loop.andi(i, kMask);
        Val base = loop.addi(loop.shli(idx, 3), kGrid);
        // The west load reads the point the previous iteration just
        // stored: a guaranteed one-block-distance dependence.
        Val w = loop.load(base, 8, -8); // LSID 0: a[i-1]
        Val c = loop.load(base, 8, 0);  // LSID 1: a[i]
        Val e = loop.load(base, 8, 8);  // LSID 2: a[i+1]

        Val lap = loop.fsub(loop.fadd(w, e),
                            loop.fmul(c, loop.fimm(2.0)));
        Val next = loop.fadd(c, loop.fmul(lap, loop.fimm(0.25)));
        loop.store(base, next, 8); // LSID 3: in-place update

        loop.writeReg(5, loop.fadd(acc, lap));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
