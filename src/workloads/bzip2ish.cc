/**
 * @file
 * bzip2ish — models 256.bzip2's byte-frequency counting phase: a
 * histogram increment per input symbol. The load/increment/store is
 * a genuine read-modify-write dependence chain *through memory*;
 * with a skewed symbol distribution the same counter is touched by
 * several in-flight blocks at once, so blind speculation violates
 * constantly, flush recovery thrashes, and the store-set predictor
 * learns to serialise. DSRE instead re-executes just the short
 * increment slice, which is the behaviour the paper's headline
 * speedup comes from.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildBzip2ish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kIn = 0x10000;
    constexpr Addr kCount = 0x30000;
    constexpr unsigned kSyms = 64;

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("bzip2ish");
    {
        Rng rng(kp.seed * 0x85eb + 3);
        std::vector<Word> in(n);
        for (auto &w : in) {
            // AND of two uniforms skews toward small symbols, like
            // the byte histogram of compressible text.
            w = (rng.below(kSyms) & rng.below(kSyms));
        }
        pb.initDataWords(kIn, in);
        pb.initDataWords(kCount, std::vector<Word>(kSyms, 0));
    }
    pb.setInitReg(1, 0); // i
    pb.setInitReg(2, n);
    pb.setInitReg(5, 0); // checksum accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        Val sym = loop.load(loop.addi(loop.shli(i, 3), kIn), 8);
        Val caddr = loop.addi(loop.shli(sym, 3), kCount);
        Val c = loop.load(caddr, 8);     // LSID 1
        // The update is a weighted rescale (as in bzip2's frequency
        // normalisation), so the store's data chain is several
        // cycles deep and the RMW window is realistically wide.
        Val upd = loop.addi(loop.muli(c, 31), 7);
        loop.store(caddr, loop.andi(upd, 0xffffffff), 8); // LSID 2

        loop.writeReg(5, loop.add(acc, c));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        // Fold a few counters into the output so the histogram state
        // is architecturally observable.
        Val c0 = done.load(done.imm(kCount), 8);
        Val c1 = done.load(done.imm(kCount + 8), 8);
        Val c2 = done.load(done.imm(kCount + 16), 8);
        Val sum = done.add(done.add(c0, c1), c2);
        done.store(done.imm(kOut), done.add(sum, done.readReg(5)), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
