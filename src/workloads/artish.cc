/**
 * @file
 * artish — models 179.art's neural-network inner products: pure
 * streaming floating-point multiply-accumulate over weight and
 * input vectors, with one result store per block that nothing ever
 * reloads. Effectively alias-free: the interesting comparison is
 * how much the conservative policy loses by stalling streaming
 * loads behind the (irrelevant) result stores.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildArtish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kW = 0x100000;
    constexpr Addr kX = 0x200000;
    constexpr Addr kY = 0x300000;
    constexpr unsigned kUnroll = 4;
    constexpr unsigned kVecMask = 4095; // 4096-element vectors

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("artish");
    {
        Rng rng(kp.seed * 0x2545 + 13);
        std::vector<Word> w(kVecMask + 1), x(kVecMask + 1);
        for (std::size_t i = 0; i <= kVecMask; ++i) {
            w[i] = doubleToWord(rng.uniform() - 0.5);
            x[i] = doubleToWord(rng.uniform());
        }
        pb.initDataWords(kW, w);
        pb.initDataWords(kX, x);
    }
    pb.setInitReg(1, 0); // i
    pb.setInitReg(2, n);
    pb.setInitReg(5, doubleToWord(0.0)); // FP accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        // Four-way unrolled dot-product step.
        Val base = loop.andi(loop.muli(i, kUnroll), kVecMask);
        Val off = loop.shli(base, 3);
        Val sum = acc;
        for (unsigned u = 0; u < kUnroll; ++u) {
            Val wv = loop.load(loop.addi(off, kW), 8, u * 8);
            Val xv = loop.load(loop.addi(off, kX), 8, u * 8);
            sum = loop.fadd(sum, loop.fmul(wv, xv));
        }
        // Result store: streaming, never reloaded.
        loop.store(loop.addi(loop.shli(loop.andi(i, kVecMask), 3), kY),
                   sum, 8);

        loop.writeReg(5, sum);
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        // Store the bits of the accumulated dot product.
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
