/**
 * @file
 * vprish — models 175.vpr's placement cost updates: a precomputed
 * net array is walked linearly, each entry naming a node whose
 * timing slack is read, adjusted and written back. The indirection
 * makes the RMW addresses data-dependent, and net fan-in causes a
 * moderate rate of node reuse inside the window.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildVprish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kNet = 0x10000;
    constexpr Addr kNodes = 0x80000;
    constexpr unsigned kNumNodes = 96; // reuse is common

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("vprish");
    {
        Rng rng(kp.seed * 0x6c62 + 41);
        std::vector<Word> net(n);
        for (auto &w : net)
            w = rng.below(kNumNodes);
        pb.initDataWords(kNet, net);
        std::vector<Word> nodes(kNumNodes);
        for (auto &w : nodes)
            w = rng.below(10000);
        pb.initDataWords(kNodes, nodes);
    }
    pb.setInitReg(1, 0); // i
    pb.setInitReg(2, n);
    pb.setInitReg(5, 0); // cost accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        // Indirect node lookup, then the slack read-modify-write.
        Val idx = loop.load(loop.addi(loop.shli(i, 3), kNet), 8);
        Val naddr = loop.addi(loop.shli(idx, 3), kNodes);
        Val slack = loop.load(naddr, 8);             // LSID 1
        // Timing-cost recompute: the multiply deepens the RMW data
        // chain the way vpr's criticality update does.
        Val upd = loop.addi(loop.shri(loop.muli(slack, 13), 3), 7);
        loop.store(naddr, loop.andi(upd, 0xffff), 8); // LSID 2

        loop.writeReg(5, loop.add(acc, slack));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
