/**
 * @file
 * gccish — models 176.gcc's IR rewriting passes: walk a linked list
 * of instruction nodes, classify each (two-way data-dependent
 * control), and conditionally rewrite an operand field. Mixes
 * pointer chasing (serial loads), moderate exit misprediction, and
 * sparse conditional stores whose addresses alias later re-walks of
 * the same node ring.
 */

#include "workloads/workloads.hh"

#include <numeric>

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildGccish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kNodes = 0x30000; // 24-byte IR nodes
    constexpr unsigned kNumNodes = 96; // small ring: re-walked often
    constexpr unsigned kRec = 24;

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("gccish");
    {
        Rng rng(kp.seed * 0x9b97 + 47);
        // A shuffled ring of IR nodes: [next, opcode, operand].
        std::vector<unsigned> perm(kNumNodes);
        std::iota(perm.begin(), perm.end(), 0u);
        for (unsigned i = kNumNodes - 1; i > 0; --i) {
            unsigned j = static_cast<unsigned>(rng.below(i));
            std::swap(perm[i], perm[j]);
        }
        std::vector<Word> nodes(kNumNodes * 3);
        for (unsigned i = 0; i < kNumNodes; ++i) {
            nodes[i * 3 + 0] = kNodes + perm[i] * kRec;
            nodes[i * 3 + 1] = rng.chance(6, 10) ? 0 : 1; // class
            nodes[i * 3 + 2] = rng.below(4096);           // operand
        }
        pb.initDataWords(kNodes, nodes);
    }
    pb.setInitReg(1, kNodes); // current node
    pb.setInitReg(2, n);
    pb.setInitReg(3, 0); // i
    pb.setInitReg(5, 0); // rewrite count

    // Walk + classify: the exit depends on the node's class field.
    auto &walk = pb.newBlock("walk");
    {
        Val p = walk.readReg(1);
        Val cls = walk.load(p, 8, 8);
        walk.branchCond(walk.teqi(cls, 0), "simplify", "keep");
    }

    // Rewrite pass: fold the operand (load + store to the node the
    // next ring walk will reload).
    auto &simplify = pb.newBlock("simplify");
    {
        Val p = simplify.readReg(1);
        Val nn = simplify.readReg(2);
        Val i = simplify.readReg(3);
        Val cnt = simplify.readReg(5);
        Val next = simplify.load(p, 8, 0);   // LSID 0
        Val opnd = simplify.load(p, 8, 16);  // LSID 1
        Val folded = simplify.andi(
            simplify.addi(simplify.shri(opnd, 1), 17), 4095);
        simplify.store(p, folded, 8, 16);    // LSID 2: rewrite
        simplify.writeReg(5, simplify.addi(cnt, 1));
        simplify.writeReg(1, next);
        Val i2 = simplify.addi(i, 1);
        simplify.writeReg(3, i2);
        simplify.branchCond(simplify.tlt(i2, nn), "walk", "done");
    }

    // Keep pass: just advance.
    auto &keep = pb.newBlock("keep");
    {
        Val p = keep.readReg(1);
        Val nn = keep.readReg(2);
        Val i = keep.readReg(3);
        Val next = keep.load(p, 8, 0);
        keep.writeReg(1, next);
        Val i2 = keep.addi(i, 1);
        keep.writeReg(3, i2);
        keep.branchCond(keep.tlt(i2, nn), "walk", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("walk");
    return pb.build();
}

} // namespace edge::wl
