/**
 * @file
 * gapish — models 254.gap's workspace ("bag") allocator: objects are
 * bump-allocated into a small arena that wraps, and each new object
 * links to a recently created one. Wrapping means allocation stores
 * land on addresses that in-flight readers of older objects are
 * still loading — aliasing at a characteristic distance set by the
 * arena size, a pattern that trains dependence predictors well but
 * over-serialises them.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildGapish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kArena = 0x40000;
    constexpr unsigned kArenaMask = 255; // 256 cells, wraps quickly

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("gapish");
    {
        Rng rng(kp.seed * 0x4d2b + 37);
        std::vector<Word> arena(kArenaMask + 1);
        for (auto &w : arena)
            w = rng.below(1 << 16);
        pb.initDataWords(kArena, arena);
    }
    pb.setInitReg(1, 0); // i (also the bump pointer)
    pb.setInitReg(2, n);
    pb.setInitReg(5, 1); // running object "handle"

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val h = loop.readReg(5);

        // Read a "parent" object allocated a data-dependent number
        // of steps ago (wraps around the arena).
        Val back = loop.addi(loop.andi(h, 31), 1);
        Val pidx = loop.andi(loop.sub(i, back), kArenaMask);
        Val parent =
            loop.load(loop.addi(loop.shli(pidx, 3), kArena), 8);

        // Allocate: bump-store the new object, whose payload links
        // to the parent (store data depends on the load).
        Val idx = loop.andi(i, kArenaMask);
        Val obj = loop.addi(loop.add(parent, loop.shli(h, 1)), 3);
        loop.store(loop.addi(loop.shli(idx, 3), kArena),
                   loop.andi(obj, 0xffffff), 8);

        loop.writeReg(5, loop.ori(loop.andi(obj, 0xffff), 1));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
