/**
 * @file
 * ammpish — models 188.ammp's molecular-dynamics position updates:
 * an interaction list names atoms whose positions are read, nudged
 * by a floating-point force term, and written back. Data-dependent
 * FP read-modify-write with realistic atom reuse: the dependent
 * slice behind each load is a multi-cycle FP chain, making flush
 * recovery especially expensive relative to selective re-execution.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildAmmpish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kList = 0x10000;
    constexpr Addr kPos = 0x80000;
    constexpr unsigned kNumAtoms = 96;

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("ammpish");
    {
        Rng rng(kp.seed * 0xb492 + 23);
        std::vector<Word> list(n);
        for (auto &w : list)
            w = rng.below(kNumAtoms);
        pb.initDataWords(kList, list);
        std::vector<Word> pos(kNumAtoms);
        for (auto &p : pos)
            p = doubleToWord(rng.uniform() * 10.0);
        pb.initDataWords(kPos, pos);
    }
    pb.setInitReg(1, 0); // i
    pb.setInitReg(2, n);
    pb.setInitReg(5, doubleToWord(0.0)); // energy accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        Val atom = loop.load(loop.addi(loop.shli(i, 3), kList), 8);
        Val paddr = loop.addi(loop.shli(atom, 3), kPos);
        Val p = loop.load(paddr, 8); // LSID 1
        // A few FP ops emulate the force evaluation: the dependent
        // slice behind the load is long.
        Val f = loop.fmul(p, loop.fimm(0.999755859375));
        Val g = loop.fadd(f, loop.fimm(0.001953125));
        loop.store(paddr, g, 8); // LSID 2: the RMW write-back

        loop.writeReg(5, loop.fadd(acc, g));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
