/**
 * @file
 * mcfish — models 181.mcf's arc-list pointer chasing. Each
 * iteration dereferences the current node for its successor and its
 * cost, updates a bookkeeping field, and follows the chain. The
 * node list is a random permutation cycle, so stores essentially
 * never alias the chase loads inside the window: blind speculation
 * is always right, and any policy that delays loads for the
 * bookkeeping stores (conservative, mistrained predictors) pays the
 * full serialisation cost of the chain.
 */

#include "workloads/workloads.hh"

#include <numeric>

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildMcfish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kNodes = 0x20000; // 24-byte records
    constexpr unsigned kNumNodes = 1024;
    constexpr unsigned kRec = 24;

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("mcfish");
    {
        // A single random cycle over all nodes (Sattolo's algorithm)
        // so the chase never short-circuits.
        Rng rng(kp.seed * 0xc2b2 + 11);
        std::vector<unsigned> perm(kNumNodes);
        std::iota(perm.begin(), perm.end(), 0u);
        for (unsigned i = kNumNodes - 1; i > 0; --i) {
            unsigned j = static_cast<unsigned>(rng.below(i));
            std::swap(perm[i], perm[j]);
        }
        std::vector<Word> nodes(kNumNodes * 3, 0);
        for (unsigned i = 0; i < kNumNodes; ++i) {
            nodes[i * 3 + 0] = kNodes + perm[i] * kRec; // next ptr
            nodes[i * 3 + 1] = rng.below(1000);         // cost
            nodes[i * 3 + 2] = 0;                       // potential
        }
        pb.initDataWords(kNodes, nodes);
    }
    pb.setInitReg(1, kNodes); // current node pointer
    pb.setInitReg(2, n);
    pb.setInitReg(3, 0); // i
    pb.setInitReg(5, 0); // cost accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val p = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val i = loop.readReg(3);
        Val acc = loop.readReg(5);

        Val next = loop.load(p, 8, 0);  // LSID 0: the chase load
        Val cost = loop.load(p, 8, 8);  // LSID 1
        // Bookkeeping write to the *potential* field: ambiguous to
        // a predictor, architecturally never read by the chase.
        loop.store(p, loop.add(cost, i), 8, 16); // LSID 2

        loop.writeReg(5, loop.add(acc, cost));
        loop.writeReg(1, next);
        Val i2 = loop.addi(i, 1);
        loop.writeReg(3, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
