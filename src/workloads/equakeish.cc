/**
 * @file
 * equakeish — models 183.equake's sparse matrix-vector product:
 * each row gathers three (value, column) pairs, multiplies against
 * the gathered x entries, and stores the row result. Heavy
 * indirection and FP latency with essentially no store-to-load
 * aliasing; the y-store stream is disjoint from every gather.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildEquakeish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kCol = 0x100000;
    constexpr Addr kVal = 0x200000;
    constexpr Addr kX = 0x300000;
    constexpr Addr kY = 0x400000;
    constexpr unsigned kNnzPerRow = 3;
    constexpr unsigned kXMask = 2047;
    constexpr unsigned kRowMask = 8191;

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("equakeish");
    {
        Rng rng(kp.seed * 0x7f4a + 19);
        std::size_t nnz = (static_cast<std::size_t>(
                               std::min<std::uint64_t>(n, kRowMask + 1)) +
                           1) * kNnzPerRow;
        std::vector<Word> col(nnz), val(nnz), x(kXMask + 1);
        for (auto &c : col)
            c = rng.below(kXMask + 1);
        for (auto &v : val)
            v = doubleToWord(rng.uniform() * 2.0 - 1.0);
        for (auto &xi : x)
            xi = doubleToWord(rng.uniform());
        pb.initDataWords(kCol, col);
        pb.initDataWords(kVal, val);
        pb.initDataWords(kX, x);
    }
    pb.setInitReg(1, 0); // row
    pb.setInitReg(2, n);
    pb.setInitReg(5, doubleToWord(0.0));

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        Val row = loop.andi(i, kRowMask);
        Val base = loop.shli(loop.muli(row, kNnzPerRow), 3);
        Val sum = loop.fimm(0.0);
        for (unsigned k = 0; k < kNnzPerRow; ++k) {
            Val c = loop.load(loop.addi(base, kCol), 8, k * 8);
            Val a = loop.load(loop.addi(base, kVal), 8, k * 8);
            Val xv = loop.load(loop.addi(loop.shli(c, 3), kX), 8);
            sum = loop.fadd(sum, loop.fmul(a, xv));
        }
        loop.store(loop.addi(loop.shli(row, 3), kY), sum, 8);

        loop.writeReg(5, loop.fadd(acc, sum));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
