/**
 * @file
 * twolfish — models 300.twolf's cell-swap perturbation: each step
 * picks two pseudo-random cells and exchanges them (two loads, two
 * stores at data-dependent addresses). Aliases across in-flight
 * blocks follow birthday statistics over the cell array, so
 * violations are real but rare: blind speculation plus cheap (DSRE)
 * recovery is close to oracle, while flush recovery pays a full
 * window refill for every rare collision.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildTwolfish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kCells = 0x20000;
    constexpr Addr kPairs = 0x60000;
    constexpr unsigned kMask = 127; // 128 cells: collisions matter

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("twolfish");
    {
        Rng rng(kp.seed * 0x51ed + 5);
        std::vector<Word> cells(kMask + 1);
        for (auto &c : cells)
            c = rng.below(1 << 20);
        pb.initDataWords(kCells, cells);
        // The swap worklist: both cell indices packed in one word,
        // like twolf's precomputed perturbation schedule.
        std::vector<Word> pairs(n);
        for (auto &p : pairs)
            p = rng.below(kMask + 1) | (rng.below(kMask + 1) << 32);
        pb.initDataWords(kPairs, pairs);
    }
    pb.setInitReg(1, 0);             // i
    pb.setInitReg(2, n);
    pb.setInitReg(5, 0);             // accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        // The two cell indices come from the precomputed worklist,
        // so swap loads issue early while the older swaps' stores
        // (whose data are the loaded cell values) resolve late:
        // the realistic race dependence prediction must cover.
        Val pair = loop.load(loop.addi(loop.shli(i, 3), kPairs), 8);
        Val a = loop.andi(pair, kMask);
        Val b = loop.andi(loop.shri(pair, 32), kMask);
        Val aa = loop.addi(loop.shli(a, 3), kCells);
        Val ba = loop.addi(loop.shli(b, 3), kCells);

        Val xa = loop.load(aa, 8); // LSID 1
        Val xb = loop.load(ba, 8); // LSID 2
        loop.store(aa, xb, 8);     // LSID 3
        loop.store(ba, xa, 8);     // LSID 4

        loop.writeReg(5, loop.add(acc, xa));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
