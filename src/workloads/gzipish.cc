/**
 * @file
 * gzipish — models 164.gzip's deflate inner loop. An LZ77-style
 * hash table maps a hash of the current input word to the most
 * recent position that hashed the same way. Every iteration probes
 * the table (load) and then installs its own position (store to the
 * *same* slot), so whenever the input repeats within the window the
 * next probe aliases an in-flight store at a data-dependent address
 * — the canonical hard case for dependence prediction.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildGzipish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kIn = 0x10000;
    constexpr Addr kHash = 0x40000;
    constexpr unsigned kHashBits = 6; // 64 entries: aliases common

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("gzipish");

    // Input: small alphabet so hash slots are revisited quickly,
    // like the repetitive byte runs deflate feeds on.
    {
        Rng rng(kp.seed * 0x9e37 + 7);
        std::vector<Word> in(n + 1);
        for (auto &w : in)
            w = rng.below(48);
        pb.initDataWords(kIn, in);
        pb.initDataWords(kHash,
                         std::vector<Word>(std::size_t{1} << kHashBits,
                                           0));
    }
    pb.setInitReg(1, 0); // i
    pb.setInitReg(2, n); // trip count
    pb.setInitReg(5, 0); // match accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        // Current input word and its hash slot.
        Val w = loop.load(loop.addi(loop.shli(i, 3), kIn), 8);
        Val h = loop.andi(loop.shri(loop.muli(w, 2654435761), 4),
                          (1u << kHashBits) - 1);
        Val haddr = loop.addi(loop.shli(h, 3), kHash);

        // Probe the chain head, then install the new head. As in
        // deflate's hash chains the stored record folds in the old
        // head (prev-pointer), so the store's *data* resolves only
        // after the probe load returns — younger blocks re-probing
        // the same slot race it, which is exactly the window
        // dependence prediction struggles with.
        Val cand_rec = loop.load(haddr, 8);
        Val cand = loop.andi(cand_rec, 0xffffffff);
        Val rec = loop.bor(loop.shli(loop.andi(cand, 0xffff), 32), i);
        loop.store(haddr, rec, 8);

        // Compare the candidate position's word with ours (the
        // "match" test); candidate indices are prior i values or 0.
        Val cw = loop.load(loop.addi(loop.shli(cand, 3), kIn), 8);
        Val hit = loop.teq(cw, w);
        loop.writeReg(5, loop.add(acc, hit));

        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
