/**
 * @file
 * craftyish — models 186.crafty's search loop: dense 64-bit bitboard
 * manipulation feeding a transposition-table probe and update. The
 * table store's data folds in the probed entry (replace-if-deeper
 * policy), so like the hash chains of gzip the store resolves late
 * while the next probe to the same bucket issues early — the
 * data-dependent alias pattern with a deep integer slice behind it.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildCraftyish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kMoves = 0x10000; // precomputed "move" words
    constexpr Addr kTt = 0x50000;    // transposition table
    constexpr unsigned kTtMask = 63; // 64 buckets: reuse is frequent

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("craftyish");
    {
        Rng rng(kp.seed * 0x1f3a + 31);
        std::vector<Word> moves(n);
        for (auto &m : moves)
            m = rng.next();
        pb.initDataWords(kMoves, moves);
        pb.initDataWords(kTt, std::vector<Word>(kTtMask + 1, 0));
    }
    pb.setInitReg(1, 0);                  // i
    pb.setInitReg(2, n);
    pb.setInitReg(3, 0x0123456789abcdefull); // board hash
    pb.setInitReg(5, 0);                  // score accumulator

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val hash = loop.readReg(3);
        Val acc = loop.readReg(5);

        // Bitboard update: a dense chain of logic ops on the move.
        Val mv = loop.load(loop.addi(loop.shli(i, 3), kMoves), 8);
        Val h1 = loop.bxor(hash, mv);
        Val h2 = loop.bxor(h1, loop.shri(h1, 29));
        Val h3 = loop.muli(h2, -7046029254386353131LL); // mix64
        Val h4 = loop.bxor(h3, loop.shri(h3, 32));

        // Transposition-table probe and replace-if-better update:
        // the store data depends on the probe load.
        Val slot = loop.addi(
            loop.shli(loop.andi(h4, kTtMask), 3), kTt);
        Val entry = loop.load(slot, 8);            // LSID 1
        Val better = loop.tltu(entry, h4);
        Val newent = loop.sel(better, h4, entry);
        loop.store(slot, newent, 8);               // LSID 2

        loop.writeReg(3, h4);
        loop.writeReg(5, loop.add(acc, loop.andi(entry, 0xffff)));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
