/**
 * @file
 * The workload suite: ten synthetic kernels, each modelled on the
 * memory behaviour of a SPEC CPU2000 program evaluated by the TRIPS
 * papers (the real benchmarks and their Alpha toolchain are not
 * redistributable — see DESIGN.md for the substitution argument).
 * The kernels deliberately span the load/store aliasing axes that
 * determine DSRE's benefit:
 *
 *  - how often loads alias older in-flight stores,
 *  - at what block distance the conflicting store sits,
 *  - how large the dependent slice behind a misspeculated load is,
 *  - how predictable the aliasing is (static vs data-dependent).
 */

#ifndef EDGE_WORKLOADS_WORKLOADS_HH
#define EDGE_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace edge::wl {

struct KernelParams
{
    /** Main loop trip count (dynamic blocks scale with this). */
    std::uint64_t iterations = 2000;
    /** Seed for the deterministic input generators. */
    std::uint64_t seed = 1;
};

struct KernelInfo
{
    std::string name;
    std::string specAnalog;   ///< the SPEC CPU2000 program modelled
    std::string description;  ///< memory behaviour in one line
};

/** All kernels, in presentation order. */
const std::vector<KernelInfo> &kernels();

/** Names only, presentation order. */
std::vector<std::string> kernelNames();

/** Is `name` a kernel build() accepts? */
bool exists(const std::string &name);

/** Build the named kernel (fatal on unknown name). */
isa::Program build(const std::string &name,
                   const KernelParams &params = {});

// Individual builders (one translation unit each).
isa::Program buildGzipish(const KernelParams &params);
isa::Program buildBzip2ish(const KernelParams &params);
isa::Program buildMcfish(const KernelParams &params);
isa::Program buildParserish(const KernelParams &params);
isa::Program buildTwolfish(const KernelParams &params);
isa::Program buildVortexish(const KernelParams &params);
isa::Program buildVprish(const KernelParams &params);
isa::Program buildArtish(const KernelParams &params);
isa::Program buildEquakeish(const KernelParams &params);
isa::Program buildAmmpish(const KernelParams &params);
isa::Program buildCraftyish(const KernelParams &params);
isa::Program buildGapish(const KernelParams &params);
isa::Program buildSwimish(const KernelParams &params);
isa::Program buildGccish(const KernelParams &params);

} // namespace edge::wl

#endif // EDGE_WORKLOADS_WORKLOADS_HH
