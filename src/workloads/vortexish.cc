/**
 * @file
 * vortexish — models 255.vortex's object-store record traffic:
 * four-word records are copied between pseudo-randomly chosen heap
 * slots. Most copies are disjoint, but occasionally source and
 * destination windows overlap across in-flight blocks, producing
 * bursty multi-byte aliases that stress byte-accurate forwarding.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "compiler/builder.hh"

namespace edge::wl {

isa::Program
buildVortexish(const KernelParams &kp)
{
    using compiler::ProgramBuilder;
    using compiler::Val;

    constexpr Addr kOut = 0x1000;
    constexpr Addr kHeap = 0x20000;
    constexpr Addr kSched = 0x60000;
    constexpr unsigned kRecMask = 63; // 64 records of 32 bytes

    const std::uint64_t n = std::max<std::uint64_t>(kp.iterations, 1);

    ProgramBuilder pb("vortexish");
    {
        Rng rng(kp.seed * 0x94d0 + 29);
        std::vector<Word> heap((kRecMask + 1) * 4);
        for (auto &w : heap)
            w = rng.next() & 0xffffffff;
        pb.initDataWords(kHeap, heap);
        // Copy schedule: (src, dst) record ids per iteration.
        std::vector<Word> sched(n);
        for (auto &s : sched)
            s = rng.below(kRecMask + 1) |
                (rng.below(kRecMask + 1) << 32);
        pb.initDataWords(kSched, sched);
    }
    pb.setInitReg(1, 0);           // i
    pb.setInitReg(2, n);
    pb.setInitReg(5, 0);           // checksum

    auto &loop = pb.newBlock("loop");
    {
        Val i = loop.readReg(1);
        Val nn = loop.readReg(2);
        Val acc = loop.readReg(5);

        Val s1 = loop.load(loop.addi(loop.shli(i, 3), kSched), 8);
        Val src_i = loop.andi(s1, kRecMask);
        Val dst_i = loop.andi(loop.shri(s1, 32), kRecMask);
        Val src = loop.addi(loop.shli(src_i, 5), kHeap);
        Val dst = loop.addi(loop.shli(dst_i, 5), kHeap);

        // Copy the whole record: loads first (sequential semantics
        // of memcpy with potential overlap favours reading all
        // fields before writing).
        Val w0 = loop.load(src, 8, 0);
        Val w1 = loop.load(src, 8, 8);
        Val w2 = loop.load(src, 8, 16);
        Val w3 = loop.load(src, 8, 24);
        loop.store(dst, w0, 8, 0);
        loop.store(dst, w1, 8, 8);
        loop.store(dst, w2, 8, 16);
        loop.store(dst, w3, 8, 24);

        loop.writeReg(5, loop.add(acc, loop.bxor(w0, w3)));
        Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }

    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kOut), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    return pb.build();
}

} // namespace edge::wl
