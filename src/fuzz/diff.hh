/**
 * @file
 * The differential fuzzing driver. Every generated program is run
 * through the four recovery mechanisms of the paper's evaluation
 * (conservative, blind+flush, store-sets+flush, DSRE) on a
 * sim::RunPool, and each run's final architectural state — registers,
 * memory image, and the committed block/exit sequence — is cross-
 * checked against the RefExecutor golden model (RunResult::archMatch
 * plus the committed-path check). Outcomes are classified as pass /
 * divergence / crash / hang; failures are captured as `.repro.json`
 * files with the program embedded (replayable via `edgesim --replay`,
 * minimizable via triage::minimizeProgram) and deduplicated by
 * failure signature. The campaign is a pure function of
 * (seed, count, options): results are bit-identical at any thread
 * count, because RunPool returns results in submission order.
 */

#ifndef EDGE_FUZZ_DIFF_HH
#define EDGE_FUZZ_DIFF_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/generator.hh"
#include "sim/run_pool.hh"

namespace edge::fuzz {

/** What one (program, mechanism) run did. */
enum class Outcome : std::uint8_t
{
    Pass,       ///< halted, architectural state matches the reference
    Divergence, ///< clean run, but final state differs from the oracle
    Crash,      ///< SimError: invariant violation / protocol panic /
                ///  host deadline (after retries)
    Hang,       ///< watchdog, livelock, or the cycle budget expired
    RefHang,    ///< the *reference* did not halt (a generator bug)
};

const char *outcomeName(Outcome outcome);

/** One failing (program, mechanism) cell of a campaign. */
struct FuzzFailure
{
    std::uint64_t seed = 0;   ///< generator seed of the program
    std::string config;       ///< mechanism name
    Outcome outcome = Outcome::Pass;
    sim::RunResult result;
    /** Dedup key: config + error kind + invariant + verdict. */
    std::string signature;
    /** True for the first occurrence of this signature. */
    bool unique = false;
    /** Corpus file, when a corpus directory captured this failure. */
    std::string reproPath;
};

struct FuzzOptions
{
    /** Programs to generate. Program i uses generator seed
     *  `seed + i`, so any case is reproducible standalone. */
    std::uint64_t count = 100;
    std::uint64_t seed = 1;
    GenOptions gen;

    /** Mechanisms to cross-check; empty selects the paper's four. */
    std::vector<std::string> configs;

    /** Optional chaos profile layered onto every run (the chaos seed
     *  derives from the per-case rngSeed, so it stays deterministic). */
    chaos::Profile chaosProfile = chaos::Profile::None;
    /** Optional planted protocol mutation (EDGE_MUTATIONS builds). */
    chaos::Mutation mutation = chaos::Mutation::None;
    unsigned mutationNode = 0;
    /** Run the protocol invariant checker on every run. */
    bool checkInvariants = false;

    /** Cycle budget per run; exceeding it classifies as Hang. */
    Cycle maxCycles = 2'000'000;
    /** Worker threads (0 = all hardware). */
    unsigned threads = 0;
    /** Programs per RunPool batch. */
    std::uint64_t batch = 64;

    /** When nonempty, capture one repro per unique failure signature
     *  (program embedded) into this directory. */
    std::string corpusDir;

    /**
     * Pluggable batch executor. Null (the default) runs every batch
     * on the in-process RunPool; the campaign supervisor injects its
     * process-isolated runner here, so supervised and in-process
     * campaigns share ALL of the driver — generation, grid order,
     * classification, dedup, corpus capture — and produce identical
     * reports. One entry per job; nullopt marks a cell the runner
     * did not execute because the campaign was interrupted.
     */
    std::function<std::vector<std::optional<sim::RunResult>>(
        const std::vector<sim::RunJob> &)>
        batchRunner;
};

/** The paper's four mechanisms, the default cross-check set. */
const std::vector<std::string> &defaultConfigs();

struct FuzzReport
{
    std::uint64_t programs = 0; ///< programs generated and run
    std::uint64_t runs = 0;     ///< (program, mechanism) cells
    std::uint64_t passes = 0;
    std::uint64_t refHangs = 0; ///< programs skipped: reference hung
    /** Every failing cell, in deterministic (seed, config) order. */
    std::vector<FuzzFailure> failures;
    /** Failures carrying an already-seen signature. */
    std::uint64_t duplicates = 0;
    /** True when the campaign stopped early (supervised runs only):
     *  the report covers the cells that completed, and the campaign
     *  journal carries what is needed to `--resume`. */
    bool interrupted = false;

    bool clean() const { return failures.empty() && refHangs == 0; }
};

/**
 * Run a differential campaign. Deterministic: the report (and any
 * corpus files) depend only on `opts`, never on thread count.
 */
FuzzReport runCampaign(const FuzzOptions &opts);

/** Classify one run result (clean pass included). */
Outcome classify(const sim::RunResult &result);

} // namespace edge::fuzz

#endif // EDGE_FUZZ_DIFF_HH
