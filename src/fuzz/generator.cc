#include "fuzz/generator.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strutil.hh"
#include "compiler/builder.hh"

namespace edge::fuzz {

namespace {

using compiler::BlockBuilder;
using compiler::ProgramBuilder;
using compiler::Val;
using isa::Opcode;

/**
 * How one block computes its load/store addresses — the axis that
 * spans EXPERIMENTS.md Table 2's aliasing spectrum, from swimish-like
 * deterministic aliasing to mcfish/artish-like none.
 */
enum class AliasMode : std::uint8_t
{
    Hot,      ///< every op hits one word: dense same/cross-block aliasing
    Strided,  ///< static stride walk: deterministic, predictable aliasing
    Birthday, ///< data-dependent index into 8 words: frequent collisions
    Pointer,  ///< address loaded from memory: data-dependent chasing
    Disjoint, ///< per-block private region: alias-free
    NumModes,
};

/**
 * The dataflow value pool of one block under construction. Limits
 * every value to four consumers so the builder's fanout trees stay
 * small, and tracks an upper estimate of the post-fanout instruction
 * count so a generated block provably fits kMaxBlockInsts.
 */
class Pool
{
  public:
    Pool(BlockBuilder &b, Rng &rng) : _b(b), _rng(rng) {}

    void
    put(Val v)
    {
        _vals.push_back(v);
        _uses.push_back(0);
    }

    /** A random pool value, charged as one consumer use. */
    Val
    pick()
    {
        // Always succeeds: values saturate at 4 uses, but the pool
        // only ever grows and fresh imm() values are use-free.
        for (unsigned tries = 0; tries < 16; ++tries) {
            std::size_t i = _rng.below(_vals.size());
            if (_uses[i] < 4)
                return use(i);
        }
        Val v = _b.imm(static_cast<std::int64_t>(_rng.next() & 0xffff));
        put(v);
        return use(_vals.size() - 1);
    }

    /** Extra post-fanout MOV instructions the uses so far imply. */
    unsigned fanoutExtra() const { return _extra; }

  private:
    Val
    use(std::size_t i)
    {
        if (++_uses[i] > 2)
            ++_extra; // each consumer beyond two costs one MOV
        return _vals[i];
    }

    BlockBuilder &_b;
    Rng &_rng;
    std::vector<Val> _vals;
    std::vector<unsigned> _uses;
    unsigned _extra = 0;
};

/** Safe (evalOp-total) two-operand integer/FP opcodes. */
constexpr Opcode kBinOps[] = {
    Opcode::ADD,  Opcode::SUB,  Opcode::MUL,  Opcode::DIVS,
    Opcode::DIVU, Opcode::REMU, Opcode::AND,  Opcode::OR,
    Opcode::XOR,  Opcode::SHL,  Opcode::SHR,  Opcode::SRA,
    Opcode::TEQ,  Opcode::TNE,  Opcode::TLT,  Opcode::TLE,
    Opcode::TLTU, Opcode::TLEU, Opcode::FADD, Opcode::FSUB,
    Opcode::FMUL, Opcode::FDIV, Opcode::FEQ,  Opcode::FLT,
};

constexpr Opcode kImmOps[] = {
    Opcode::ADDI, Opcode::MULI, Opcode::ANDI, Opcode::ORI,
    Opcode::XORI, Opcode::SHLI, Opcode::SHRI, Opcode::SRAI,
    Opcode::TEQI, Opcode::TLTI, Opcode::TLTUI,
};

/** Largest power of two <= n (n >= 1). */
unsigned
floorPow2(unsigned n)
{
    unsigned p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

struct BlockPlan
{
    std::string name;
    AliasMode alias = AliasMode::Hot;
    unsigned ops = 0;
    unsigned memOps = 0;
    unsigned fuelDec = 1;
    std::vector<unsigned> succs; ///< body successors (exit 1..k)
};

class Generator
{
  public:
    Generator(std::uint64_t seed, const GenOptions &opts)
        : _rng(seed ^ 0x9e3779b97f4a7c15ULL), _opts(opts),
          _arenaMask(floorPow2(opts.arenaWords) - 1)
    {
        _pb = std::make_unique<ProgramBuilder>(
            strfmt("fuzz-%llu", static_cast<unsigned long long>(seed)));
    }

    isa::Program
    run()
    {
        const unsigned nblocks = static_cast<unsigned>(
            _rng.range(_opts.minBlocks, _opts.maxBlocks));

        std::vector<BlockPlan> plans(nblocks);
        for (unsigned i = 0; i < nblocks; ++i) {
            BlockPlan &p = plans[i];
            p.name = strfmt("b%u", i);
            p.alias = static_cast<AliasMode>(
                _rng.below(static_cast<unsigned>(AliasMode::NumModes)));
            p.ops = static_cast<unsigned>(
                _rng.range(_opts.minOps, _opts.maxOps));
            p.memOps = static_cast<unsigned>(
                _rng.range(1, _opts.maxMemOps));
            p.fuelDec = static_cast<unsigned>(_rng.range(1, 2));
            unsigned nsucc = static_cast<unsigned>(_rng.range(1, 3));
            for (unsigned s = 0; s < nsucc; ++s)
                p.succs.push_back(
                    static_cast<unsigned>(_rng.below(nblocks)));
        }
        // Make every block reachable-ish: successor s of block i
        // defaults above to anything, but wire i -> i+1 somewhere so
        // chains beyond the entry actually run.
        for (unsigned i = 0; i + 1 < nblocks; ++i)
            plans[i].succs[0] = i + 1;
        // The builder dedups exits by successor name, so a repeated
        // successor would shrink the exit table below the branch's
        // computed range [1, k] — keep only first occurrences.
        for (BlockPlan &p : plans) {
            std::vector<unsigned> uniq;
            for (unsigned s : p.succs)
                if (std::find(uniq.begin(), uniq.end(), s) ==
                    uniq.end())
                    uniq.push_back(s);
            p.succs = std::move(uniq);
        }

        for (const BlockPlan &p : plans)
            emitBlock(p);

        _pb->setEntry("b0");
        _pb->setInitReg(kFuelReg, _opts.fuel);
        for (unsigned r = 0; r < kNumValueRegs; ++r)
            _pb->setInitReg(kFirstValueReg + r, _rng.next());
        for (unsigned r = 0; r < kNumStateRegs; ++r)
            _pb->setInitReg(kFirstStateReg + r, _rng.below(1024));

        std::vector<Word> arena(_opts.arenaWords);
        for (Word &w : arena)
            w = _rng.next();
        _pb->initDataWords(_opts.arenaBase, arena);

        return _pb->build();
    }

  private:
    /** A word-aligned static arena address with room for `off`+8. */
    Addr
    arenaWordAddr(unsigned word) const
    {
        unsigned clamped = word % (_opts.arenaWords - 1);
        return _opts.arenaBase + static_cast<Addr>(clamped) * 8;
    }

    /** Dynamic address: arenaBase + (v & mask) * 8, mask a pow2-1. */
    Val
    dynAddr(BlockBuilder &b, Val v, unsigned mask)
    {
        Val idx = b.andi(v, mask);
        return b.opImm(Opcode::ADDI, b.shli(idx, 3),
                       static_cast<std::int64_t>(_opts.arenaBase));
    }

    void
    emitBlock(const BlockPlan &plan)
    {
        BlockBuilder &b = _pb->newBlock(plan.name);
        Pool pool(b, _rng);

        // Fuel bookkeeping: every block pays fuel, and exit 0 (halt)
        // is taken as soon as it runs out — the termination proof.
        Val fuel = b.readReg(kFuelReg);
        Val new_fuel = b.addi(
            fuel, -static_cast<std::int64_t>(plan.fuelDec));
        b.writeReg(kFuelReg, new_fuel);
        Val done = b.tlti(new_fuel, 1);

        // Seed the pool: a few input registers and constants.
        unsigned nreads = static_cast<unsigned>(_rng.range(2, 4));
        for (unsigned i = 0; i < nreads; ++i)
            pool.put(b.readReg(kFirstValueReg +
                               static_cast<unsigned>(
                                   _rng.below(kNumValueRegs))));
        pool.put(b.readReg(kFirstStateReg +
                           static_cast<unsigned>(
                               _rng.below(kNumStateRegs))));
        pool.put(b.imm(static_cast<std::int64_t>(_rng.next())));
        pool.put(b.imm(static_cast<std::int64_t>(_rng.below(256))));

        // For Pointer mode, chase an index loaded from the arena.
        unsigned mem_left = plan.memOps;
        if (plan.alias == AliasMode::Pointer && mem_left > 1) {
            Val p = b.load(
                b.imm(static_cast<std::int64_t>(arenaWordAddr(
                    static_cast<unsigned>(_rng.below(64))))),
                8);
            pool.put(p);
            --mem_left;
        }

        // Disjoint mode confines this block to a private region.
        unsigned region = 0;
        if (plan.alias == AliasMode::Disjoint)
            region = static_cast<unsigned>(_rng.below(256)) * 8;
        unsigned hot_word = static_cast<unsigned>(_rng.below(64));
        unsigned stride = static_cast<unsigned>(_rng.range(1, 7));
        unsigned stride_pos = static_cast<unsigned>(_rng.below(64));

        // Interleave ALU ops and memory ops; stop early if the
        // post-fanout size estimate approaches the ISA limit.
        unsigned ops_left = plan.ops;
        unsigned mem_idx = 0;
        while (ops_left > 0 || mem_left > 0) {
            if (b.numNodes() + pool.fanoutExtra() > 96)
                break;
            bool do_mem =
                mem_left > 0 &&
                (ops_left == 0 || _rng.chance(mem_left, mem_left + ops_left));
            if (do_mem) {
                emitMemOp(b, pool, plan, mem_idx++, hot_word, stride,
                          stride_pos, region);
                --mem_left;
            } else {
                emitAluOp(b, pool);
                --ops_left;
            }
        }

        // Block outputs: a few state registers (predication included
        // via SEL values already in the pool).
        unsigned nwrites = static_cast<unsigned>(_rng.range(1, 4));
        for (unsigned i = 0; i < nwrites; ++i)
            b.writeReg(kFirstStateReg +
                           static_cast<unsigned>(_rng.below(kNumStateRegs)),
                       pool.pick());
        // Occasionally evolve an input register too.
        if (_rng.chance(1, 3))
            b.writeReg(kFirstValueReg +
                           static_cast<unsigned>(_rng.below(kNumValueRegs)),
                       pool.pick());

        // Exit structure: exit 0 halts (fuel exhausted); exits 1..k
        // are the planned successors, chosen data-dependently.
        b.addExitHalt();
        for (unsigned succ : plan.succs)
            b.addExit(strfmt("b%u", succ));
        const auto k = static_cast<std::uint64_t>(plan.succs.size());
        Val choice;
        if (k == 1) {
            choice = b.imm(1);
        } else {
            Val r = b.op2(Opcode::REMU, pool.pick(),
                          b.imm(static_cast<std::int64_t>(k)));
            choice = b.addi(r, 1); // [1, k]: past the halt exit
        }
        b.branch(b.sel(done, b.imm(0), choice));
    }

    void
    emitAluOp(BlockBuilder &b, Pool &pool)
    {
        unsigned pickKind = static_cast<unsigned>(_rng.below(10));
        if (pickKind < 5) {
            Opcode op = kBinOps[_rng.below(std::size(kBinOps))];
            pool.put(b.op2(op, pool.pick(), pool.pick()));
        } else if (pickKind < 8) {
            Opcode op = kImmOps[_rng.below(std::size(kImmOps))];
            pool.put(b.opImm(op, pool.pick(),
                             static_cast<std::int64_t>(_rng.next() & 0xff)));
        } else if (pickKind < 9) {
            // Predicated arm: if-converted value selection.
            pool.put(b.sel(pool.pick(), pool.pick(), pool.pick()));
        } else {
            pool.put(_rng.chance(1, 2) ? b.i2f(pool.pick())
                                       : b.f2i(pool.pick()));
        }
    }

    void
    emitMemOp(BlockBuilder &b, Pool &pool, const BlockPlan &plan,
              unsigned mem_idx, unsigned hot_word, unsigned stride,
              unsigned stride_pos, unsigned region)
    {
        // Mixed access widths with sub-word misalignment: a word-
        // aligned base plus an offset of up to 7 bytes, so 2/4/8-byte
        // accesses regularly straddle word boundaries.
        unsigned bytes = 1u << _rng.below(4);
        auto off = static_cast<std::int64_t>(_rng.below(8));

        Val addr;
        switch (plan.alias) {
          case AliasMode::Hot:
            addr = b.imm(static_cast<std::int64_t>(arenaWordAddr(hot_word)));
            break;
          case AliasMode::Strided:
            addr = b.imm(static_cast<std::int64_t>(
                arenaWordAddr(stride_pos + mem_idx * stride)));
            break;
          case AliasMode::Birthday:
            addr = dynAddr(b, pool.pick(), 7);
            break;
          case AliasMode::Pointer:
            addr = dynAddr(b, pool.pick(),
                           _arenaMask >= 2 ? _arenaMask / 2 : 1);
            break;
          case AliasMode::Disjoint:
          default:
            addr = b.imm(static_cast<std::int64_t>(
                _opts.arenaBase + 0x10000 + region +
                (mem_idx % 4) * 8));
            break;
        }

        // Predicated store address: one arm aliases, the other does
        // not — the hardest case for dependence prediction.
        if (_rng.chance(1, 5)) {
            Val alt = b.imm(static_cast<std::int64_t>(
                arenaWordAddr(static_cast<unsigned>(_rng.below(64)))));
            addr = b.sel(pool.pick(), addr, alt);
        }

        if (_rng.chance(1, 2)) {
            pool.put(b.load(addr, bytes, off));
        } else {
            b.store(addr, pool.pick(), bytes, off);
        }
    }

    Rng _rng;
    GenOptions _opts;
    unsigned _arenaMask;
    std::unique_ptr<ProgramBuilder> _pb;
};

} // namespace

isa::Program
generate(std::uint64_t seed, const GenOptions &opts)
{
    fatal_if(opts.minBlocks < 1 || opts.maxBlocks < opts.minBlocks,
             "fuzz: bad block-count range");
    fatal_if(opts.arenaWords < 8, "fuzz: arena too small");
    fatal_if(opts.fuel < 1, "fuzz: fuel must be positive");
    return Generator(seed, opts).run();
}

} // namespace edge::fuzz
