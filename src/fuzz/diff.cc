#include "fuzz/diff.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "compiler/ref_executor.hh"
#include "triage/repro.hh"

namespace edge::fuzz {

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Pass:
        return "pass";
      case Outcome::Divergence:
        return "divergence";
      case Outcome::Crash:
        return "crash";
      case Outcome::Hang:
        return "hang";
      case Outcome::RefHang:
        return "ref-hang";
    }
    return "?";
}

const std::vector<std::string> &
defaultConfigs()
{
    static const std::vector<std::string> kFour = {
        "conservative", "blind-flush", "storesets-flush", "dsre"};
    return kFour;
}

Outcome
classify(const sim::RunResult &result)
{
    using Reason = chaos::SimError::Reason;
    switch (result.error.reason) {
      case Reason::Watchdog:
      case Reason::Livelock:
        return Outcome::Hang;
      case Reason::InvariantViolation:
      case Reason::ProtocolPanic:
      case Reason::HostDeadline:
        return Outcome::Crash;
      case Reason::WorkerCrash:
      case Reason::WorkerKilled:
      case Reason::WorkerTimeout:
      case Reason::WorkerProtocol:
        // Supervised-campaign cells whose worker process died: the
        // crash bucket, with the Worker* reason carrying the detail.
        return Outcome::Crash;
      case Reason::None:
        break;
    }
    if (!result.halted)
        return Outcome::Hang; // cycle budget expired
    return result.archMatch ? Outcome::Pass : Outcome::Divergence;
}

namespace {

/** The dedup key of a failure: mechanism + kind + verdict. */
std::string
signatureOf(const std::string &config, const sim::RunResult &r)
{
    return strfmt("%s|%s|%s|h%d|a%d", config.c_str(),
                  chaos::reasonName(r.error.reason),
                  r.error.invariant.c_str(), r.halted, r.archMatch);
}

core::MachineConfig
configFor(const std::string &name, std::uint64_t case_seed,
          const FuzzOptions &opts)
{
    core::MachineConfig cfg = sim::Configs::byName(name);
    cfg.rngSeed = case_seed;
    // The committed-path cross-check is the "committed block/exit
    // sequence" leg of the differential oracle; archMatch covers
    // registers and the memory image.
    cfg.checkCommittedPath = true;
    cfg.checkInvariants = opts.checkInvariants;
    if (opts.chaosProfile != chaos::Profile::None)
        cfg.chaos = chaos::ChaosParams::byProfile(opts.chaosProfile, 0);
    cfg.chaos.mutation = opts.mutation;
    cfg.chaos.mutationNode = opts.mutationNode;
    return cfg;
}

} // namespace

FuzzReport
runCampaign(const FuzzOptions &opts)
{
    fatal_if(opts.batch < 1, "fuzz: batch must be positive");
    const std::vector<std::string> &configs =
        opts.configs.empty() ? defaultConfigs() : opts.configs;

    FuzzReport report;
    sim::RunPool pool(opts.threads);
    std::set<std::string> seen;

    const std::uint64_t ref_budget = dynBlockBound(opts.gen);

    for (std::uint64_t base = 0; base < opts.count;
         base += opts.batch) {
        const std::uint64_t n =
            std::min<std::uint64_t>(opts.batch, opts.count - base);

        // Generate the batch and pre-check termination on the golden
        // model: the Simulator treats a non-halting reference as a
        // fatal configuration error, so a fuel-accounting bug in the
        // generator must be caught here and reported, not crash the
        // campaign.
        std::vector<isa::Program> programs;
        std::vector<std::uint64_t> seeds;
        programs.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t case_seed = opts.seed + base + i;
            isa::Program prog = generate(case_seed, opts.gen);
            compiler::RefExecutor ref(prog);
            if (!ref.run(ref_budget).halted) {
                ++report.refHangs;
                FuzzFailure f;
                f.seed = case_seed;
                f.config = "ref";
                f.outcome = Outcome::RefHang;
                f.signature = "ref|hang";
                f.unique = seen.insert(f.signature).second;
                report.failures.push_back(std::move(f));
                continue;
            }
            programs.push_back(std::move(prog));
            seeds.push_back(case_seed);
        }
        report.programs += programs.size();

        // One RunPool grid: |programs| x |configs| cells. Results
        // come back in submission order, so everything downstream
        // (classification, dedup, corpus capture) is deterministic
        // at any -j.
        std::vector<sim::RunJob> jobs;
        jobs.reserve(programs.size() * configs.size());
        for (std::size_t p = 0; p < programs.size(); ++p) {
            for (const std::string &cname : configs) {
                sim::RunJob job;
                job.program = &programs[p];
                job.config = configFor(cname, seeds[p], opts);
                job.maxCycles = opts.maxCycles;
                jobs.push_back(std::move(job));
            }
        }
        std::vector<std::optional<sim::RunResult>> results;
        if (opts.batchRunner) {
            results = opts.batchRunner(jobs);
            fatal_if(results.size() != jobs.size(),
                     "fuzz: batch runner returned %zu results for "
                     "%zu jobs",
                     results.size(), jobs.size());
        } else {
            results.reserve(jobs.size());
            for (sim::RunResult &r : pool.runAll(jobs))
                results.emplace_back(std::move(r));
        }

        for (std::size_t j = 0; j < results.size(); ++j) {
            if (!results[j]) {
                report.interrupted = true;
                continue;
            }
            ++report.runs;
            const std::size_t p = j / configs.size();
            const std::string &cname = configs[j % configs.size()];
            Outcome outcome = classify(*results[j]);
            if (outcome == Outcome::Pass) {
                ++report.passes;
                continue;
            }
            FuzzFailure f;
            f.seed = seeds[p];
            f.config = cname;
            f.outcome = outcome;
            f.result = *results[j];
            f.signature = signatureOf(cname, *results[j]);
            f.unique = seen.insert(f.signature).second;
            if (!f.unique)
                ++report.duplicates;
            if (f.unique && !opts.corpusDir.empty()) {
                triage::ReproSpec spec = triage::captureFromResult(
                    triage::embeddedRef("fuzz", programs[p], f.seed),
                    jobs[j].config, opts.maxCycles, *results[j]);
                f.reproPath =
                    triage::captureToFile(spec, opts.corpusDir);
            }
            report.failures.push_back(std::move(f));
        }
        if (report.interrupted)
            break;
    }
    return report;
}

} // namespace edge::fuzz
