/**
 * @file
 * Seeded, deterministic generation of well-formed random hyperblock
 * programs. Each program is a random CFG of hyperblocks built through
 * compiler::ProgramBuilder — so direct-target encoding, fanout trees,
 * dense LSIDs and the register interfaces are correct by construction
 * — and every block decrements a fuel register and halts when it runs
 * out, so termination is guaranteed with a static dynamic-block bound
 * (dynBlockBound). The blocks span the aliasing spectrum of
 * EXPERIMENTS.md Table 2: same-address hot stores, strided walks,
 * birthday collisions in a small arena, data-dependent pointer
 * chasing, and disjoint (alias-free) regions — with mixed access
 * sizes, misaligned sub-word accesses, predicated store addresses and
 * values, and multi-way loop/exit structures.
 */

#ifndef EDGE_FUZZ_GENERATOR_HH
#define EDGE_FUZZ_GENERATOR_HH

#include <cstdint>

#include "isa/program.hh"

namespace edge::fuzz {

/** Shape parameters of one generated program. */
struct GenOptions
{
    /** Number of hyperblocks, drawn uniformly from [min, max]. */
    unsigned minBlocks = 2;
    unsigned maxBlocks = 8;
    /** Dataflow ops per block, drawn uniformly from [min, max]
     *  (pre-fanout DSL nodes; the real block is somewhat larger). */
    unsigned minOps = 6;
    unsigned maxOps = 28;
    /** Memory operations per block, drawn from [1, maxMemOps]. */
    unsigned maxMemOps = 10;
    /**
     * Initial value of the fuel register. Every block decrements it
     * by 1 or 2 (fixed per block at generation time) and takes its
     * halt exit when it reaches zero, so any generated program
     * terminates within dynBlockBound() dynamic blocks.
     */
    std::uint64_t fuel = 64;
    /** Base address of the shared load/store arena. */
    Addr arenaBase = 0x8000;
    /** Arena size in 8-byte words. */
    unsigned arenaWords = 64;
};

/** Registers the generator gives meaning to. */
inline constexpr unsigned kFuelReg = 1;       ///< loop fuel counter
inline constexpr unsigned kFirstValueReg = 2; ///< r2..r7: inputs
inline constexpr unsigned kNumValueRegs = 6;
inline constexpr unsigned kFirstStateReg = 8; ///< r8..r15: outputs
inline constexpr unsigned kNumStateRegs = 8;

/**
 * Static bound on the dynamic blocks any program generated with
 * these options can commit (the fuel plus the final block).
 */
inline std::uint64_t
dynBlockBound(const GenOptions &opts)
{
    return opts.fuel + 2;
}

/**
 * Generate one well-formed program. Pure function of (seed, opts):
 * the same inputs produce the same program bit for bit. The result
 * always passes isa::Program::validateAll() (the builder panics
 * otherwise) and always halts within dynBlockBound(opts) blocks.
 */
isa::Program generate(std::uint64_t seed, const GenOptions &opts = {});

} // namespace edge::fuzz

#endif // EDGE_FUZZ_GENERATOR_HH
