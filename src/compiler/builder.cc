#include "compiler/builder.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"

namespace edge::compiler {

using isa::Opcode;
using isa::Target;

Val
BlockBuilder::addNode(Node n)
{
    int id = static_cast<int>(_nodes.size());
    _nodes.push_back(n);
    return Val(id, this);
}

void
BlockBuilder::checkVal(Val v) const
{
    panic_if(!v.valid(), "block %s: use of an invalid (default) Val",
             _name.c_str());
    panic_if(v._owner != this,
             "block %s: Val belongs to a different BlockBuilder",
             _name.c_str());
    panic_if(v._id >= static_cast<int>(_nodes.size()),
             "block %s: Val id out of range", _name.c_str());
}

Val
BlockBuilder::imm(std::int64_t v)
{
    Node n;
    n.op = Opcode::MOVI;
    n.imm = v;
    return addNode(n);
}

Val
BlockBuilder::fimm(double v)
{
    return imm(static_cast<std::int64_t>(doubleToWord(v)));
}

Val
BlockBuilder::readReg(unsigned reg)
{
    panic_if(reg >= isa::kNumArchRegs, "block %s: read of r%u",
             _name.c_str(), reg);
    auto it = _readOf.find(reg);
    if (it != _readOf.end())
        return Val(it->second, this);
    Node n;
    n.kind = Kind::Read;
    n.reg = static_cast<std::uint8_t>(reg);
    Val v = addNode(n);
    _readOf[reg] = v._id;
    return v;
}

Val
BlockBuilder::op2(Opcode op, Val a, Val b)
{
    checkVal(a);
    checkVal(b);
    panic_if(isa::opInfo(op).numOps != 2 || isa::isMem(op),
             "op2 with unsuitable opcode %s", isa::opName(op));
    Node n;
    n.op = op;
    n.operand[0] = a._id;
    n.operand[1] = b._id;
    return addNode(n);
}

Val
BlockBuilder::op1(Opcode op, Val a)
{
    checkVal(a);
    panic_if(isa::opInfo(op).numOps != 1 || isa::opInfo(op).hasImm ||
                 isa::isMem(op),
             "op1 with unsuitable opcode %s", isa::opName(op));
    Node n;
    n.op = op;
    n.operand[0] = a._id;
    return addNode(n);
}

Val
BlockBuilder::opImm(Opcode op, Val a, std::int64_t immediate)
{
    checkVal(a);
    panic_if(isa::opInfo(op).numOps != 1 || !isa::opInfo(op).hasImm ||
                 isa::isMem(op),
             "opImm with unsuitable opcode %s", isa::opName(op));
    Node n;
    n.op = op;
    n.imm = immediate;
    n.operand[0] = a._id;
    return addNode(n);
}

Val
BlockBuilder::sel(Val cond, Val a, Val b)
{
    checkVal(cond);
    checkVal(a);
    checkVal(b);
    Node n;
    n.op = Opcode::SEL;
    n.operand[0] = cond._id;
    n.operand[1] = a._id;
    n.operand[2] = b._id;
    return addNode(n);
}

namespace {

Opcode
loadOpcode(unsigned bytes)
{
    switch (bytes) {
      case 1: return Opcode::LDB;
      case 2: return Opcode::LDH;
      case 4: return Opcode::LDW;
      case 8: return Opcode::LDD;
    }
    panic("bad load size %u", bytes);
}

Opcode
storeOpcode(unsigned bytes)
{
    switch (bytes) {
      case 1: return Opcode::STB;
      case 2: return Opcode::STH;
      case 4: return Opcode::STW;
      case 8: return Opcode::STD;
    }
    panic("bad store size %u", bytes);
}

} // namespace

Val
BlockBuilder::load(Val addr, unsigned bytes, std::int64_t off)
{
    checkVal(addr);
    Node n;
    n.op = loadOpcode(bytes);
    n.imm = off;
    n.operand[0] = addr._id;
    return addNode(n);
}

void
BlockBuilder::store(Val addr, Val data, unsigned bytes, std::int64_t off)
{
    checkVal(addr);
    checkVal(data);
    Node n;
    n.op = storeOpcode(bytes);
    n.imm = off;
    n.operand[0] = addr._id;
    n.operand[1] = data._id;
    addNode(n);
}

void
BlockBuilder::writeReg(unsigned reg, Val v)
{
    checkVal(v);
    panic_if(reg >= isa::kNumArchRegs, "block %s: write of r%u",
             _name.c_str(), reg);
    if (!_writeOf.count(reg))
        _writeOrder.push_back(reg);
    _writeOf[reg] = v._id;
}

unsigned
BlockBuilder::addExit(const std::string &successor)
{
    for (std::size_t i = 0; i < _exitNames.size(); ++i)
        if (_exitNames[i] == successor)
            return static_cast<unsigned>(i);
    _exitNames.push_back(successor);
    return static_cast<unsigned>(_exitNames.size() - 1);
}

unsigned
BlockBuilder::addExitHalt()
{
    return addExit("");
}

void
BlockBuilder::branch(Val exit_index)
{
    checkVal(exit_index);
    panic_if(_branchNode >= 0, "block %s: second branch", _name.c_str());
    Node n;
    n.op = Opcode::BR;
    n.operand[0] = exit_index._id;
    _branchNode = addNode(n)._id;
}

void
BlockBuilder::branchTo(const std::string &successor)
{
    panic_if(_branchNode >= 0, "block %s: second branch", _name.c_str());
    Node n;
    n.op = Opcode::BRO;
    n.imm = addExit(successor);
    _branchNode = addNode(n)._id;
}

void
BlockBuilder::branchHalt()
{
    panic_if(_branchNode >= 0, "block %s: second branch", _name.c_str());
    Node n;
    n.op = Opcode::BRO;
    n.imm = addExitHalt();
    _branchNode = addNode(n)._id;
}

void
BlockBuilder::branchCond(Val cond, const std::string &if_true,
                         const std::string &if_false)
{
    unsigned idx_false = addExit(if_false);
    unsigned idx_true = addExit(if_true);
    if (idx_false == 0 && idx_true == 1) {
        branch(cond); // 0/1 comparison output selects the exit directly
    } else {
        branch(sel(cond, imm(idx_true), imm(idx_false)));
    }
}

isa::Block
BlockBuilder::finalize(const std::map<std::string, BlockId> &resolve) const
{
    panic_if(_branchNode < 0, "block %s: no branch emitted",
             _name.c_str());
    panic_if(_exitNames.empty(), "block %s: no exits", _name.c_str());

    const std::size_t n = _nodes.size();

    // Liveness: roots are stores, the branch, and write producers.
    std::vector<bool> live(n, false);
    std::vector<int> work;
    auto mark = [&](int id) {
        if (id >= 0 && !live[id]) {
            live[id] = true;
            work.push_back(id);
        }
    };
    for (std::size_t i = 0; i < n; ++i)
        if (_nodes[i].kind == Kind::Inst && isa::isStore(_nodes[i].op))
            mark(static_cast<int>(i));
    mark(_branchNode);
    for (const auto &kv : _writeOf)
        mark(kv.second);
    while (!work.empty()) {
        int id = work.back();
        work.pop_back();
        for (int opnd : _nodes[id].operand)
            mark(opnd);
    }

    // Slot assignment for live instruction nodes, in emission order
    // (this preserves load/store order, so LSIDs come out dense).
    isa::Block block(_name);
    auto &insts = block.insts();
    std::vector<int> slot_of(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        if (!live[i] || _nodes[i].kind != Kind::Inst)
            continue;
        slot_of[i] = static_cast<int>(insts.size());
        isa::Instruction in;
        in.op = _nodes[i].op;
        in.imm = _nodes[i].imm;
        insts.push_back(in);
    }

    // Collect consumers of every live node.
    std::vector<std::vector<Target>> consumers(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!live[i] || _nodes[i].kind != Kind::Inst)
            continue;
        for (unsigned k = 0; k < isa::opInfo(_nodes[i].op).numOps; ++k) {
            int p = _nodes[i].operand[k];
            panic_if(p < 0, "block %s: %s slot missing operand %u",
                     _name.c_str(), isa::opName(_nodes[i].op), k);
            consumers[p].push_back(Target::toOperand(
                static_cast<std::uint16_t>(slot_of[i]),
                static_cast<std::uint8_t>(k)));
        }
    }
    for (std::size_t w = 0; w < _writeOrder.size(); ++w) {
        int p = _writeOf.at(_writeOrder[w]);
        consumers[p].push_back(
            Target::toWrite(static_cast<std::uint16_t>(w)));
    }

    // Fanout-tree insertion: return at most two targets covering the
    // given consumer list, appending MOV slots as needed.
    std::function<std::array<Target, 2>(const std::vector<Target> &)>
        fanout = [&](const std::vector<Target> &list)
        -> std::array<Target, 2> {
        std::array<Target, 2> out{};
        if (list.size() <= 2) {
            for (std::size_t i = 0; i < list.size(); ++i)
                out[i] = list[i];
            return out;
        }
        auto subtree = [&](std::vector<Target> half) -> Target {
            if (half.size() == 1)
                return half[0];
            auto mov_slot = static_cast<std::uint16_t>(insts.size());
            isa::Instruction mv;
            mv.op = Opcode::MOV;
            insts.push_back(mv);
            // The recursive call may reallocate `insts`; index after.
            auto tgts = fanout(half);
            insts[mov_slot].targets = tgts;
            return Target::toOperand(mov_slot, 0);
        };
        std::size_t mid = (list.size() + 1) / 2;
        out[0] = subtree({list.begin(), list.begin() + mid});
        out[1] = subtree({list.begin() + mid, list.end()});
        return out;
    };

    // Wire instruction targets. Iterating by node id; MOV slots
    // appended by fanout() already carry their targets.
    for (std::size_t i = 0; i < n; ++i) {
        if (!live[i] || _nodes[i].kind != Kind::Inst || slot_of[i] < 0)
            continue;
        auto tgts = fanout(consumers[i]); // may grow `insts`
        insts[slot_of[i]].targets = tgts;
    }

    // Register-read interface (ordered by register for determinism).
    for (const auto &kv : _readOf) {
        int node = kv.second;
        if (!live[node])
            continue;
        isa::RegRead rd;
        rd.reg = static_cast<std::uint8_t>(kv.first);
        rd.targets = fanout(consumers[node]);
        block.reads().push_back(rd);
    }

    // Register-write interface.
    for (unsigned reg : _writeOrder) {
        isa::RegWrite wr;
        wr.reg = static_cast<std::uint8_t>(reg);
        block.writes().push_back(wr);
    }

    // Dense LSID assignment in slot order (== emission order).
    Lsid next_lsid = 0;
    for (auto &in : insts)
        if (isa::isMem(in.op))
            in.lsid = next_lsid++;

    // Exits.
    for (const std::string &succ : _exitNames) {
        if (succ.empty()) {
            block.exits().push_back(isa::kHaltBlock);
        } else {
            auto it = resolve.find(succ);
            panic_if(it == resolve.end(),
                     "block %s: exit to unknown block '%s'",
                     _name.c_str(), succ.c_str());
            block.exits().push_back(it->second);
        }
    }

    // The structured validator covers every ISA limit, including the
    // post-fanout instruction count.
    std::vector<isa::ValidationIssue> issues;
    if (block.validateInto(issues) != 0) {
        std::string msg;
        for (const auto &is : issues)
            msg += "  " + is.str() + "\n";
        const char *hint = insts.size() > isa::kMaxBlockInsts
                               ? " — split the block\n" : "";
        panic("block %s failed validation:\n%s%s%s", _name.c_str(),
              msg.c_str(), hint, block.disassemble().c_str());
    }
    return block;
}

BlockBuilder &
ProgramBuilder::newBlock(const std::string &name)
{
    fatal_if(name.empty(), "block name must be nonempty");
    auto it = _blockIdx.find(name);
    if (it != _blockIdx.end())
        return *_blocks[it->second];
    _blockIdx[name] = _blocks.size();
    _blocks.emplace_back(new BlockBuilder(name));
    return *_blocks.back();
}

void
ProgramBuilder::setInitReg(unsigned reg, Word value)
{
    fatal_if(reg >= isa::kNumArchRegs, "init of nonexistent register r%u",
             reg);
    _initRegs.emplace_back(reg, value);
}

void
ProgramBuilder::initDataWords(Addr base, const std::vector<Word> &words)
{
    isa::MemInit init;
    init.base = base;
    init.bytes.resize(words.size() * kWordBytes);
    for (std::size_t i = 0; i < words.size(); ++i)
        for (unsigned b = 0; b < kWordBytes; ++b)
            init.bytes[i * kWordBytes + b] =
                static_cast<std::uint8_t>(words[i] >> (8 * b));
    _memInits.push_back(std::move(init));
}

void
ProgramBuilder::initDataBytes(Addr base,
                              const std::vector<std::uint8_t> &bytes)
{
    _memInits.push_back(isa::MemInit{base, bytes});
}

isa::Program
ProgramBuilder::build() const
{
    fatal_if(_blocks.empty(), "program %s has no blocks", _name.c_str());

    std::map<std::string, BlockId> resolve;
    for (const auto &kv : _blockIdx)
        resolve[kv.first] = static_cast<BlockId>(kv.second);

    isa::Program prog(_name);
    for (const auto &bb : _blocks)
        prog.addBlock(bb->finalize(resolve));

    if (!_entry.empty())
        prog.setEntry(prog.blockByName(_entry));

    for (const auto &[reg, value] : _initRegs)
        prog.initRegs()[reg] = value;
    for (const auto &init : _memInits)
        prog.memImage().push_back(init);

    std::vector<isa::ValidationIssue> issues = prog.validateAll();
    if (!issues.empty()) {
        std::string msg;
        for (const auto &is : issues)
            msg += "  " + is.str() + "\n";
        panic("program %s invalid:\n%s", _name.c_str(), msg.c_str());
    }
    return prog;
}

} // namespace edge::compiler
