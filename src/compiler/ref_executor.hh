/**
 * @file
 * Functional (untimed) execution of an EDGE program with sequential
 * memory semantics. Serves three roles: the golden model every
 * timing configuration must match architecturally, the source of
 * the per-dynamic-block memory trace that feeds the perfect
 * dependence oracle, and the workload characterisation pass.
 */

#ifndef EDGE_COMPILER_REF_EXECUTOR_HH
#define EDGE_COMPILER_REF_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "mem/sparse_memory.hh"

namespace edge::compiler {

/** One executed memory operation, in LSID order within its block. */
struct MemOpTrace
{
    bool isStore = false;
    Addr addr = 0;
    std::uint8_t bytes = 0;
    Word value = 0; ///< loaded or stored value
};

/** The trace of one committed dynamic block. */
struct BlockTrace
{
    BlockId block = 0;
    Word exitIndex = 0;
    std::vector<MemOpTrace> memOps; ///< indexed by LSID
};

class RefExecutor
{
  public:
    /** The program is copied so temporaries are safe to pass. */
    explicit RefExecutor(isa::Program program);

    struct Result
    {
        std::uint64_t dynBlocks = 0;
        std::uint64_t dynInsts = 0;
        bool halted = false; ///< false => hit the block limit
    };

    /**
     * Execute from the entry block.
     * @param max_blocks dynamic block budget (guards against
     *        non-terminating programs)
     * @param trace if non-null, receives one BlockTrace per block
     * @return dynamic counts and whether the program halted
     */
    Result run(std::uint64_t max_blocks,
               std::vector<BlockTrace> *trace = nullptr);

    const std::vector<Word> &regs() const { return _regs; }
    mem::SparseMemory &memory() { return _mem; }
    const mem::SparseMemory &memory() const { return _mem; }

  private:
    /** Execute one block; returns the taken exit index. */
    Word executeBlock(const isa::Block &block, BlockTrace *bt);

    isa::Program _prog;
    std::vector<Word> _regs;
    mem::SparseMemory _mem;
};

} // namespace edge::compiler

#endif // EDGE_COMPILER_REF_EXECUTOR_HH
