#include "compiler/placement.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hh"

namespace edge::compiler {

unsigned
gridDistance(const GridGeom &geom, unsigned a, unsigned b)
{
    unsigned ra = geom.rowOf(a), ca = geom.colOf(a);
    unsigned rb = geom.rowOf(b), cb = geom.colOf(b);
    return (ra > rb ? ra - rb : rb - ra) + (ca > cb ? ca - cb : cb - ca);
}

Placement
placeBlock(const isa::Block &block, const GridGeom &geom)
{
    const auto &insts = block.insts();
    const std::size_t n = insts.size();
    const unsigned nodes = geom.numNodes();
    panic_if(static_cast<std::size_t>(nodes) * geom.slotsPerNode < n,
             "grid too small: %zu insts, %u capacity", n,
             nodes * geom.slotsPerNode);

    // Build the intra-block producer lists and a topological order.
    std::vector<std::vector<SlotId>> producers(n);
    std::vector<unsigned> indeg(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (const auto &t : insts[i].targets) {
            if (t.kind == isa::TargetKind::Operand) {
                producers[t.index].push_back(static_cast<SlotId>(i));
                ++indeg[t.index];
            }
        }
    }
    // Slots fed by register reads are marked so they prefer the top
    // row (operands arrive from the register file above row 0).
    std::vector<bool> read_fed(n, false);
    for (const auto &rd : block.reads())
        for (const auto &t : rd.targets)
            if (t.kind == isa::TargetKind::Operand)
                read_fed[t.index] = true;

    std::vector<SlotId> topo;
    topo.reserve(n);
    std::priority_queue<SlotId, std::vector<SlotId>,
                        std::greater<SlotId>> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (indeg[i] == 0)
            ready.push(static_cast<SlotId>(i));
    {
        // Kahn's algorithm; deterministic via the min-heap.
        std::vector<unsigned> deg = indeg;
        while (!ready.empty()) {
            SlotId s = ready.top();
            ready.pop();
            topo.push_back(s);
            for (const auto &t : insts[s].targets) {
                if (t.kind == isa::TargetKind::Operand &&
                    --deg[t.index] == 0) {
                    ready.push(t.index);
                }
            }
        }
    }
    panic_if(topo.size() != n,
             "block %s: dataflow graph has a cycle (placement)",
             block.name().c_str());

    constexpr double kWProducer = 1.0;  ///< hops from each producer
    constexpr double kWMem = 0.8;       ///< pull memory ops left
    constexpr double kWRead = 0.6;      ///< pull read-fed insts up
    constexpr double kWBalance = 0.7;   ///< spread issue pressure

    Placement out;
    out.nodeOf.assign(n, 0);
    out.perNodeCount.assign(nodes, 0);

    for (SlotId s : topo) {
        double best_cost = 0;
        int best_node = -1;
        for (unsigned cand = 0; cand < nodes; ++cand) {
            if (out.perNodeCount[cand] >= geom.slotsPerNode)
                continue;
            unsigned r = geom.rowOf(cand), c = geom.colOf(cand);
            double cost = kWBalance * out.perNodeCount[cand];
            for (SlotId p : producers[s])
                cost += kWProducer * gridDistance(geom, out.nodeOf[p],
                                                  cand);
            if (isa::isMem(insts[s].op))
                cost += kWMem * (c + 1); // LSQ sits left of column 0
            if (read_fed[s])
                cost += kWRead * (r + 1); // RF sits above row 0
            if (best_node < 0 || cost < best_cost) {
                best_cost = cost;
                best_node = static_cast<int>(cand);
            }
        }
        panic_if(best_node < 0, "no free node (capacity bug)");
        out.nodeOf[s] = static_cast<std::uint16_t>(best_node);
        ++out.perNodeCount[best_node];
    }
    return out;
}

} // namespace edge::compiler
