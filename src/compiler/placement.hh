/**
 * @file
 * Static instruction placement (the EDGE "scheduler"): maps each of
 * a block's instruction slots onto a node of the execution grid,
 * subject to per-node capacity, minimising expected operand-network
 * hops. Placement quality directly affects simulated performance, so
 * the placer mirrors the greedy list scheduler used by the TRIPS
 * toolchain: topological order, pick the cheapest node with free
 * capacity, cost = distance to producers + distance to the register
 * file row for reads + distance to the LSQ column for memory ops +
 * a load-balance term.
 */

#ifndef EDGE_COMPILER_PLACEMENT_HH
#define EDGE_COMPILER_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "isa/block.hh"

namespace edge::compiler {

/** Geometry of the execution substrate the placer targets. */
struct GridGeom
{
    unsigned rows = 4;
    unsigned cols = 4;
    unsigned slotsPerNode = 8; ///< per frame; rows*cols*slots >= 128

    unsigned numNodes() const { return rows * cols; }
    unsigned nodeId(unsigned r, unsigned c) const { return r * cols + c; }
    unsigned rowOf(unsigned node) const { return node / cols; }
    unsigned colOf(unsigned node) const { return node % cols; }
};

/** Result: execution-grid node of every instruction slot. */
struct Placement
{
    std::vector<std::uint16_t> nodeOf; ///< indexed by SlotId

    /** Instructions mapped to each node (for capacity checks). */
    std::vector<unsigned> perNodeCount;
};

/**
 * Place one block onto the grid.
 *
 * The register file occupies a virtual row above row 0 (reads enter
 * at the top); the LSQ / D-cache banks occupy a virtual column left
 * of column 0 (memory requests exit to the left, replies return from
 * the left). Deterministic: equal-cost candidates break ties toward
 * the lowest node id.
 */
Placement placeBlock(const isa::Block &block, const GridGeom &geom);

/** Manhattan distance between two grid nodes. */
unsigned gridDistance(const GridGeom &geom, unsigned a, unsigned b);

} // namespace edge::compiler

#endif // EDGE_COMPILER_PLACEMENT_HH
