/**
 * @file
 * The hyperblock construction front end. A kernel author builds
 * blocks against a small dataflow DSL (BlockBuilder); the builder
 * performs dead-code elimination, register read/write interface
 * synthesis, fanout-tree insertion (an EDGE instruction can name at
 * most two consumers), and dense LSID assignment, then lowers to a
 * validated isa::Block. ProgramBuilder assembles blocks into a
 * Program, resolving successor names to BlockIds.
 *
 * This plays the role of the TRIPS hyperblock compiler back end; the
 * front end (C parsing, if-conversion) is replaced by hand-written
 * kernels that express control decisions with SEL and block exits,
 * as documented in DESIGN.md.
 */

#ifndef EDGE_COMPILER_BUILDER_HH
#define EDGE_COMPILER_BUILDER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace edge::compiler {

class BlockBuilder;

/** Opaque handle to a dataflow value inside one BlockBuilder. */
class Val
{
  public:
    Val() = default;
    bool valid() const { return _id >= 0; }

  private:
    friend class BlockBuilder;
    Val(int id, const void *owner) : _id(id), _owner(owner) {}
    int _id = -1;
    const void *_owner = nullptr; ///< builder the value belongs to
};

class BlockBuilder
{
  public:
    using Opcode = isa::Opcode;

    /** @name Value producers */
    /// @{
    /** Integer constant (MOVI). */
    Val imm(std::int64_t v);
    /** Floating-point constant (MOVI of the double's bits). */
    Val fimm(double v);
    /** Read an architectural register (merged per register). */
    Val readReg(unsigned reg);

    /** Generic two-operand instruction. */
    Val op2(Opcode op, Val a, Val b);
    /** Generic one-operand instruction. */
    Val op1(Opcode op, Val a);
    /** Generic reg-immediate instruction. */
    Val opImm(Opcode op, Val a, std::int64_t immediate);

    Val add(Val a, Val b) { return op2(Opcode::ADD, a, b); }
    Val sub(Val a, Val b) { return op2(Opcode::SUB, a, b); }
    Val mul(Val a, Val b) { return op2(Opcode::MUL, a, b); }
    Val divs(Val a, Val b) { return op2(Opcode::DIVS, a, b); }
    Val divu(Val a, Val b) { return op2(Opcode::DIVU, a, b); }
    Val remu(Val a, Val b) { return op2(Opcode::REMU, a, b); }
    Val band(Val a, Val b) { return op2(Opcode::AND, a, b); }
    Val bor(Val a, Val b) { return op2(Opcode::OR, a, b); }
    Val bxor(Val a, Val b) { return op2(Opcode::XOR, a, b); }
    Val shl(Val a, Val b) { return op2(Opcode::SHL, a, b); }
    Val shr(Val a, Val b) { return op2(Opcode::SHR, a, b); }

    Val addi(Val a, std::int64_t k) { return opImm(Opcode::ADDI, a, k); }
    Val muli(Val a, std::int64_t k) { return opImm(Opcode::MULI, a, k); }
    Val andi(Val a, std::int64_t k) { return opImm(Opcode::ANDI, a, k); }
    Val ori(Val a, std::int64_t k) { return opImm(Opcode::ORI, a, k); }
    Val xori(Val a, std::int64_t k) { return opImm(Opcode::XORI, a, k); }
    Val shli(Val a, std::int64_t k) { return opImm(Opcode::SHLI, a, k); }
    Val shri(Val a, std::int64_t k) { return opImm(Opcode::SHRI, a, k); }

    Val teq(Val a, Val b) { return op2(Opcode::TEQ, a, b); }
    Val tne(Val a, Val b) { return op2(Opcode::TNE, a, b); }
    Val tlt(Val a, Val b) { return op2(Opcode::TLT, a, b); }
    Val tle(Val a, Val b) { return op2(Opcode::TLE, a, b); }
    Val tltu(Val a, Val b) { return op2(Opcode::TLTU, a, b); }
    Val teqi(Val a, std::int64_t k) { return opImm(Opcode::TEQI, a, k); }
    Val tnei(Val a, std::int64_t k) { return opImm(Opcode::TNEI, a, k); }
    Val tlti(Val a, std::int64_t k) { return opImm(Opcode::TLTI, a, k); }
    Val tltui(Val a, std::int64_t k) { return opImm(Opcode::TLTUI, a, k); }

    /** cond != 0 ? a : b — the if-conversion primitive. */
    Val sel(Val cond, Val a, Val b);

    Val fadd(Val a, Val b) { return op2(Opcode::FADD, a, b); }
    Val fsub(Val a, Val b) { return op2(Opcode::FSUB, a, b); }
    Val fmul(Val a, Val b) { return op2(Opcode::FMUL, a, b); }
    Val fdiv(Val a, Val b) { return op2(Opcode::FDIV, a, b); }
    Val flt(Val a, Val b) { return op2(Opcode::FLT, a, b); }
    Val i2f(Val a) { return op1(Opcode::I2F, a); }
    Val f2i(Val a) { return op1(Opcode::F2I, a); }

    /**
     * Load `bytes` (1, 2, 4 or 8) from address `addr + off`. LSIDs
     * are assigned from the order of load/store calls: that order
     * *is* the sequential memory semantics of the block.
     */
    Val load(Val addr, unsigned bytes = 8, std::int64_t off = 0);

    /** Store the low `bytes` of data to `addr + off`. */
    void store(Val addr, Val data, unsigned bytes = 8,
               std::int64_t off = 0);
    /// @}

    /** @name Block interface */
    /// @{
    /** Write an architectural register at block commit (last wins). */
    void writeReg(unsigned reg, Val v);

    /** Add an exit edge to the named successor; returns its index. */
    unsigned addExit(const std::string &successor);

    /** Add a halting exit; returns its index. */
    unsigned addExitHalt();

    /** Branch to the exit selected by the value (dynamic). */
    void branch(Val exit_index);

    /** Unconditionally branch to the named successor. */
    void branchTo(const std::string &successor);

    /** Halt the program from this block. */
    void branchHalt();

    /**
     * Two-way conditional: exit to `if_true` when cond != 0, else to
     * `if_false`. Lowered to a BR consuming a 0/1 value directly.
     */
    void branchCond(Val cond, const std::string &if_true,
                    const std::string &if_false);
    /// @}

    const std::string &name() const { return _name; }

    /** Number of DSL nodes so far (pre-fanout size estimate). */
    std::size_t numNodes() const { return _nodes.size(); }

    /**
     * Lower to a validated isa::Block.
     * @param resolve maps successor names to BlockIds
     */
    isa::Block finalize(
        const std::map<std::string, BlockId> &resolve) const;

  private:
    friend class ProgramBuilder;
    explicit BlockBuilder(std::string name) : _name(std::move(name)) {}

    enum class Kind : std::uint8_t { Inst, Read };

    struct Node
    {
        Kind kind = Kind::Inst;
        Opcode op = Opcode::MOVI;
        std::int64_t imm = 0;
        int operand[3] = {-1, -1, -1};
        std::uint8_t reg = 0; ///< Read kind only
    };

    Val addNode(Node n);
    void checkVal(Val v) const;

    std::string _name;
    std::vector<Node> _nodes;
    std::map<unsigned, int> _readOf;      ///< arch reg -> Read node
    std::map<unsigned, int> _writeOf;     ///< arch reg -> producing node
    std::vector<unsigned> _writeOrder;    ///< write regs, first-write order
    std::vector<std::string> _exitNames;  ///< "" means halt
    int _branchNode = -1;
};

class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "prog")
        : _name(std::move(name))
    {
    }

    /** Create (or retrieve) the block with the given unique name. */
    BlockBuilder &newBlock(const std::string &name);

    void setEntry(const std::string &name) { _entry = name; }

    /** Initial architectural register value. */
    void setInitReg(unsigned reg, Word value);

    /** Initial memory image, 64-bit words. */
    void initDataWords(Addr base, const std::vector<Word> &words);

    /** Initial memory image, raw bytes. */
    void initDataBytes(Addr base, const std::vector<std::uint8_t> &bytes);

    /**
     * Finalize every block and produce a validated Program.
     * panics (simulator-author bug) if any block fails validation.
     */
    isa::Program build() const;

  private:
    std::string _name;
    std::string _entry;
    std::vector<std::unique_ptr<BlockBuilder>> _blocks;
    std::map<std::string, std::size_t> _blockIdx;
    std::vector<std::pair<unsigned, Word>> _initRegs;
    std::vector<isa::MemInit> _memInits;
};

} // namespace edge::compiler

#endif // EDGE_COMPILER_BUILDER_HH
