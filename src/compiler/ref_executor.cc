#include "compiler/ref_executor.hh"

#include <deque>

#include "common/logging.hh"

namespace edge::compiler {

using isa::Opcode;
using isa::TargetKind;

RefExecutor::RefExecutor(isa::Program program)
    : _prog(std::move(program)), _regs(isa::kNumArchRegs, 0)
{
    std::string why;
    panic_if(!_prog.validate(&why), "RefExecutor: invalid program: %s",
             why.c_str());
    for (unsigned r = 0; r < isa::kNumArchRegs; ++r)
        _regs[r] = _prog.initRegs()[r];
    for (const auto &init : _prog.memImage())
        _mem.writeBytes(init.base, init.bytes.data(),
                        init.bytes.size());
}

Word
RefExecutor::executeBlock(const isa::Block &block, BlockTrace *bt)
{
    const auto &insts = block.insts();
    const std::size_t n = insts.size();

    std::vector<Word> operand(n * isa::kMaxOperands, 0);
    std::vector<std::uint8_t> have(n, 0);
    std::vector<bool> done(n, false);
    std::vector<Word> write_vals(block.writes().size(), 0);
    bool have_exit = false;
    Word exit_index = 0;

    std::deque<SlotId> ready;
    // Memory operations blocked on LSID order, indexed by LSID.
    std::vector<SlotId> parked(block.numMemOps(), kInvalidSlot);
    Lsid mem_next = 0;

    auto arm = [&](SlotId s) {
        const auto &in = insts[s];
        if (have[s] != in.numOperands() || done[s])
            return;
        if (isa::isMem(in.op) && in.lsid != mem_next) {
            parked[in.lsid] = s;
        } else {
            ready.push_back(s);
        }
    };

    auto deliver = [&](const isa::Target &t, Word v) {
        if (t.kind == TargetKind::Operand) {
            operand[t.index * isa::kMaxOperands + t.operand] = v;
            ++have[t.index];
            arm(t.index);
        } else if (t.kind == TargetKind::RegWrite) {
            write_vals[t.index] = v;
        }
    };

    // Inject register reads and zero-operand instructions.
    for (const auto &rd : block.reads())
        for (const auto &t : rd.targets)
            if (t.valid())
                deliver(t, _regs[rd.reg]);
    for (std::size_t s = 0; s < n; ++s)
        if (insts[s].numOperands() == 0)
            ready.push_back(static_cast<SlotId>(s));

    std::size_t executed = 0;
    while (!ready.empty()) {
        SlotId s = ready.front();
        ready.pop_front();
        if (done[s])
            continue;
        const auto &in = insts[s];
        done[s] = true;
        ++executed;

        Word a = operand[s * isa::kMaxOperands + 0];
        Word b = operand[s * isa::kMaxOperands + 1];
        Word c = operand[s * isa::kMaxOperands + 2];
        Word result = 0;

        if (isa::isMem(in.op)) {
            panic_if(in.lsid != mem_next, "memory ordering bug");
            unsigned bytes = isa::opInfo(in.op).accessBytes;
            Addr addr = isa::memEffAddr(a, in.imm);
            if (isa::isStore(in.op)) {
                _mem.write(addr, bytes, b);
                if (bt)
                    bt->memOps.push_back({true, addr,
                                          static_cast<std::uint8_t>(bytes),
                                          b});
            } else {
                result = _mem.read(addr, bytes);
                if (bt)
                    bt->memOps.push_back({false, addr,
                                          static_cast<std::uint8_t>(bytes),
                                          result});
            }
            ++mem_next;
            // A memory op that was waiting on LSID order may now go.
            if (mem_next < parked.size() &&
                parked[mem_next] != kInvalidSlot) {
                ready.push_back(parked[mem_next]);
            }
        } else if (isa::isBranch(in.op)) {
            exit_index = isa::evalOp(in.op, a, b, c, in.imm);
            have_exit = true;
        } else {
            result = isa::evalOp(in.op, a, b, c, in.imm);
        }

        if (!isa::isStore(in.op) && !isa::isBranch(in.op))
            for (const auto &t : in.targets)
                if (t.valid())
                    deliver(t, result);
    }

    panic_if(executed != n,
             "block %s: only %zu of %zu instructions executed — the "
             "dataflow/LSID graph deadlocks",
             block.name().c_str(), executed, n);
    panic_if(!have_exit, "block %s produced no exit",
             block.name().c_str());

    // Block-atomic register commit.
    for (std::size_t w = 0; w < block.writes().size(); ++w)
        _regs[block.writes()[w].reg] = write_vals[w];

    return exit_index;
}

RefExecutor::Result
RefExecutor::run(std::uint64_t max_blocks, std::vector<BlockTrace> *trace)
{
    Result res;
    BlockId cur = _prog.entry();
    while (res.dynBlocks < max_blocks) {
        const isa::Block &block = _prog.block(cur);
        BlockTrace bt;
        bt.block = cur;
        Word exit_index =
            executeBlock(block, trace ? &bt : nullptr);
        panic_if(exit_index >= block.exits().size(),
                 "block %s: exit index %llu out of range",
                 block.name().c_str(),
                 static_cast<unsigned long long>(exit_index));
        bt.exitIndex = exit_index;
        if (trace)
            trace->push_back(std::move(bt));
        ++res.dynBlocks;
        res.dynInsts += block.insts().size();
        BlockId next = block.exits()[exit_index];
        if (next == isa::kHaltBlock) {
            res.halted = true;
            return res;
        }
        cur = next;
    }
    return res;
}

} // namespace edge::compiler
