/**
 * @file
 * Coordinates and deterministic X-Y routing for the operand
 * micronetwork. Split from the Mesh template so routing is testable
 * on its own and shared by any payload instantiation.
 */

#ifndef EDGE_NET_ROUTE_HH
#define EDGE_NET_ROUTE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace edge::net {

/** A position in the micronetwork (row 0 / col 0 are edge tiles). */
struct Coord
{
    std::uint16_t row = 0;
    std::uint16_t col = 0;

    bool operator==(const Coord &o) const
    {
        return row == o.row && col == o.col;
    }
};

/** Identifies one unidirectional link between adjacent routers. */
using LinkId = std::uint32_t;

/** Geometry of the mesh (routers, not execution nodes). */
struct MeshGeom
{
    unsigned rows = 5; ///< grid rows + 1 edge row (register file)
    unsigned cols = 5; ///< grid cols + 1 edge column (LSQ / D-cache)
};

/**
 * The sequence of links a packet traverses from src to dst under
 * X-then-Y dimension-order routing. Empty when src == dst.
 */
std::vector<LinkId> routeXY(const MeshGeom &geom, Coord src, Coord dst);

/**
 * Allocation-free variant: fills `path` (cleared first) instead of
 * returning a fresh vector. The mesh calls this once per message
 * with a reused scratch vector, so routing stops allocating on the
 * simulator's hottest path.
 */
void routeXY(const MeshGeom &geom, Coord src, Coord dst,
             std::vector<LinkId> &path);

/** Number of hops between two coordinates (Manhattan distance). */
unsigned hopCount(Coord src, Coord dst);

/** Total number of distinct links in the mesh (for table sizing). */
std::size_t numLinks(const MeshGeom &geom);

} // namespace edge::net

#endif // EDGE_NET_ROUTE_HH
