/**
 * @file
 * The operand micronetwork: a 2-D mesh carrying single-flit operand
 * messages between execution nodes, the register-file row and the
 * LSQ/D-cache column. Timing model: X-Y routing, one message per
 * link per cycle (greedy reservation in send order, which is
 * deterministic because the core ticks components in a fixed order),
 * `hopLatency` cycles per traversed link, zero-cost local bypass
 * when source == destination.
 *
 * Mesh is a class template over the payload so the network layer
 * stays independent of core message formats.
 */

#ifndef EDGE_NET_MESH_HH
#define EDGE_NET_MESH_HH

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/chaos.hh"
#include "common/stats.hh"
#include "net/route.hh"

namespace edge::net {

struct MeshParams
{
    MeshGeom geom;
    unsigned hopLatency = 1; ///< cycles per link traversal
    std::string statPrefix = "net"; ///< counter namespace
    /**
     * Optional fault injector (not owned): adds extra hop delay to
     * some messages and delivers duplicates of others. Safe for any
     * payload whose consumers drop stale waves — which is exactly
     * the protocol property the chaos harness exercises.
     */
    chaos::ChaosEngine *chaos = nullptr;
};

template <typename Payload>
class Mesh
{
  public:
    Mesh(const MeshParams &params, StatSet &stats)
        : _p(params),
          _linkFree(numLinks(_p.geom), 0),
          _sent(stats.counter(_p.statPrefix + ".messages",
                              "messages sent")),
          _delivered(stats.counter(_p.statPrefix + ".delivered",
                                   "messages delivered")),
          _hops(stats.counter(_p.statPrefix + ".hops",
                              "total link traversals")),
          _queued(stats.counter(_p.statPrefix + ".queue_cycles",
                                "cycles spent waiting for links"))
    {
        // Longest X-Y route in the mesh; sized once so per-message
        // routing never allocates.
        _route.reserve(_p.geom.rows + _p.geom.cols);
    }

    /**
     * Inject a message at cycle `now`; it becomes visible to the
     * destination's deliver phase at the returned cycle.
     */
    Cycle
    send(Cycle now, Coord src, Coord dst, Payload payload)
    {
        ++_sent;
        Cycle t = now;
        if (!(src == dst)) {
            routeXY(_p.geom, src, dst, _route);
            for (LinkId link : _route) {
                Cycle start = std::max(t, _linkFree[link]);
                _queued += start - t;
                _linkFree[link] = start + 1;
                t = start + _p.hopLatency;
                ++_hops;
            }
        }
        if (_p.chaos) {
            // Chaos: hold this message on a congested virtual channel
            // for a few extra cycles, and sometimes deliver a second,
            // bit-identical copy later. Consumers drop the copy as a
            // stale wave — duplicate delivery is idempotent.
            t += _p.chaos->hopJitter();
            if (_p.chaos->duplicate()) {
                pushEvent(Event{t + _p.chaos->duplicateSkew(),
                                _nextSeq++, dst, payload});
            }
        }
        pushEvent(Event{t, _nextSeq++, dst, std::move(payload)});
        return t;
    }

    /**
     * Deliver every message that has arrived by cycle `now`.
     * @param fn invoked as fn(Coord dst, Payload &&msg) in a
     *        deterministic (arrival time, send order) order
     */
    template <typename Fn>
    void
    deliver(Cycle now, Fn &&fn)
    {
        // _inFlight is an explicit min-heap (not a priority_queue)
        // so the due event can be MOVED out: pop_heap shifts it to
        // the back, where it is ours to take — the payload is never
        // copied on delivery.
        while (!_inFlight.empty() && _inFlight.front().arrival <= now) {
            std::pop_heap(_inFlight.begin(), _inFlight.end(),
                          laterThan);
            Event ev = std::move(_inFlight.back());
            _inFlight.pop_back();
            ++_delivered;
            fn(ev.dst, std::move(ev.payload));
        }
    }

    bool empty() const { return _inFlight.empty(); }
    std::size_t inFlight() const { return _inFlight.size(); }

    /**
     * Arrival cycle of the earliest in-flight message, or ~Cycle{0}
     * when the network is empty. The event-driven run loop uses this
     * to jump straight to the next delivery instead of polling.
     */
    Cycle
    nextArrival() const
    {
        return _inFlight.empty() ? ~Cycle{0} : _inFlight.front().arrival;
    }

    /** Drop all in-flight traffic and link state (machine reset). */
    void
    reset()
    {
        _inFlight.clear();
        std::fill(_linkFree.begin(), _linkFree.end(), 0);
    }

    const MeshParams &params() const { return _p; }

  private:
    struct Event
    {
        Cycle arrival;
        std::uint64_t seq; ///< tie-break for deterministic delivery
        Coord dst;
        Payload payload;
    };

    /** Heap predicate: a sorts after b (min-heap on arrival, seq). */
    static bool
    laterThan(const Event &a, const Event &b)
    {
        return a.arrival != b.arrival ? a.arrival > b.arrival
                                      : a.seq > b.seq;
    }

    void
    pushEvent(Event &&ev)
    {
        _inFlight.push_back(std::move(ev));
        std::push_heap(_inFlight.begin(), _inFlight.end(), laterThan);
    }

    MeshParams _p;
    std::vector<Cycle> _linkFree;
    std::vector<Event> _inFlight; ///< min-heap, see deliver()
    std::vector<LinkId> _route;   ///< scratch reused by every send
    std::uint64_t _nextSeq = 0;

    Counter &_sent;
    Counter &_delivered;
    Counter &_hops;
    Counter &_queued;
};

} // namespace edge::net

#endif // EDGE_NET_MESH_HH
