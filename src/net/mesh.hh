/**
 * @file
 * The operand micronetwork: a 2-D mesh carrying single-flit operand
 * messages between execution nodes, the register-file row and the
 * LSQ/D-cache column. Timing model: X-Y routing, one message per
 * link per cycle (greedy reservation in send order, which is
 * deterministic because the core ticks components in a fixed order),
 * `hopLatency` cycles per traversed link, zero-cost local bypass
 * when source == destination.
 *
 * Mesh is a class template over the payload so the network layer
 * stays independent of core message formats.
 */

#ifndef EDGE_NET_MESH_HH
#define EDGE_NET_MESH_HH

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "chaos/chaos.hh"
#include "common/stats.hh"
#include "net/route.hh"

namespace edge::net {

struct MeshParams
{
    MeshGeom geom;
    unsigned hopLatency = 1; ///< cycles per link traversal
    std::string statPrefix = "net"; ///< counter namespace
    /**
     * Optional fault injector (not owned): adds extra hop delay to
     * some messages and delivers duplicates of others. Safe for any
     * payload whose consumers drop stale waves — which is exactly
     * the protocol property the chaos harness exercises.
     */
    chaos::ChaosEngine *chaos = nullptr;
};

template <typename Payload>
class Mesh
{
  public:
    Mesh(const MeshParams &params, StatSet &stats)
        : _p(params),
          _linkFree(numLinks(_p.geom), 0),
          _sent(stats.counter(_p.statPrefix + ".messages",
                              "messages sent")),
          _hops(stats.counter(_p.statPrefix + ".hops",
                              "total link traversals")),
          _queued(stats.counter(_p.statPrefix + ".queue_cycles",
                                "cycles spent waiting for links"))
    {
    }

    /**
     * Inject a message at cycle `now`; it becomes visible to the
     * destination's deliver phase at the returned cycle.
     */
    Cycle
    send(Cycle now, Coord src, Coord dst, Payload payload)
    {
        ++_sent;
        Cycle t = now;
        if (!(src == dst)) {
            for (LinkId link : routeXY(_p.geom, src, dst)) {
                Cycle start = std::max(t, _linkFree[link]);
                _queued += start - t;
                _linkFree[link] = start + 1;
                t = start + _p.hopLatency;
                ++_hops;
            }
        }
        if (_p.chaos) {
            // Chaos: hold this message on a congested virtual channel
            // for a few extra cycles, and sometimes deliver a second,
            // bit-identical copy later. Consumers drop the copy as a
            // stale wave — duplicate delivery is idempotent.
            t += _p.chaos->hopJitter();
            if (_p.chaos->duplicate()) {
                _inFlight.push(Event{t + _p.chaos->duplicateSkew(),
                                     _nextSeq++, dst, payload});
            }
        }
        _inFlight.push(Event{t, _nextSeq++, dst, std::move(payload)});
        return t;
    }

    /**
     * Deliver every message that has arrived by cycle `now`.
     * @param fn invoked as fn(Coord dst, Payload &&msg) in a
     *        deterministic (arrival time, send order) order
     */
    template <typename Fn>
    void
    deliver(Cycle now, Fn &&fn)
    {
        while (!_inFlight.empty() && _inFlight.top().arrival <= now) {
            Event ev = _inFlight.top();
            _inFlight.pop();
            fn(ev.dst, std::move(ev.payload));
        }
    }

    bool empty() const { return _inFlight.empty(); }
    std::size_t inFlight() const { return _inFlight.size(); }

    /** Drop all in-flight traffic and link state (machine reset). */
    void
    reset()
    {
        _inFlight = {};
        std::fill(_linkFree.begin(), _linkFree.end(), 0);
    }

    const MeshParams &params() const { return _p; }

  private:
    struct Event
    {
        Cycle arrival;
        std::uint64_t seq; ///< tie-break for deterministic delivery
        Coord dst;
        Payload payload;

        bool
        operator>(const Event &o) const
        {
            return arrival != o.arrival ? arrival > o.arrival
                                        : seq > o.seq;
        }
    };

    MeshParams _p;
    std::vector<Cycle> _linkFree;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        _inFlight;
    std::uint64_t _nextSeq = 0;

    Counter &_sent;
    Counter &_hops;
    Counter &_queued;
};

} // namespace edge::net

#endif // EDGE_NET_MESH_HH
