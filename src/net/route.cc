#include "net/route.hh"

#include "common/logging.hh"

namespace edge::net {

namespace {

// Four outgoing directions per router; link id = router * 4 + dir.
enum Dir : unsigned { East = 0, West = 1, South = 2, North = 3 };

LinkId
linkFrom(const MeshGeom &geom, Coord at, Dir dir)
{
    return (static_cast<LinkId>(at.row) * geom.cols + at.col) * 4 + dir;
}

} // namespace

std::size_t
numLinks(const MeshGeom &geom)
{
    return static_cast<std::size_t>(geom.rows) * geom.cols * 4;
}

unsigned
hopCount(Coord src, Coord dst)
{
    unsigned dr = src.row > dst.row ? src.row - dst.row : dst.row - src.row;
    unsigned dc = src.col > dst.col ? src.col - dst.col : dst.col - src.col;
    return dr + dc;
}

std::vector<LinkId>
routeXY(const MeshGeom &geom, Coord src, Coord dst)
{
    std::vector<LinkId> path;
    path.reserve(hopCount(src, dst));
    routeXY(geom, src, dst, path);
    return path;
}

void
routeXY(const MeshGeom &geom, Coord src, Coord dst,
        std::vector<LinkId> &path)
{
    panic_if(src.row >= geom.rows || src.col >= geom.cols ||
                 dst.row >= geom.rows || dst.col >= geom.cols,
             "coordinate outside the %ux%u mesh", geom.rows, geom.cols);
    path.clear();
    Coord at = src;
    while (at.col != dst.col) {
        Dir d = at.col < dst.col ? East : West;
        path.push_back(linkFrom(geom, at, d));
        at.col = d == East ? at.col + 1 : at.col - 1;
    }
    while (at.row != dst.row) {
        Dir d = at.row < dst.row ? South : North;
        path.push_back(linkFrom(geom, at, d));
        at.row = d == South ? at.row + 1 : at.row - 1;
    }
}

} // namespace edge::net
