# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_smoke "/root/repo/build/tests/test_smoke")
set_tests_properties(test_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_compiler "/root/repo/build/tests/test_compiler")
set_tests_properties(test_compiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_predictor "/root/repo/build/tests/test_predictor")
set_tests_properties(test_predictor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lsq "/root/repo/build/tests/test_lsq")
set_tests_properties(test_lsq PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_regressions "/root/repo/build/tests/test_regressions")
set_tests_properties(test_regressions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;22;edge_add_test;/root/repo/tests/CMakeLists.txt;0;")
