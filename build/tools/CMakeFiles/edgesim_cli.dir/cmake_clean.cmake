file(REMOVE_RECURSE
  "CMakeFiles/edgesim_cli.dir/edgesim_cli.cc.o"
  "CMakeFiles/edgesim_cli.dir/edgesim_cli.cc.o.d"
  "edgesim"
  "edgesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
