# Empty dependencies file for edgesim_cli.
# This may be replaced when dependencies are built.
