
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/edgesim_cli.cc" "tools/CMakeFiles/edgesim_cli.dir/edgesim_cli.cc.o" "gcc" "tools/CMakeFiles/edgesim_cli.dir/edgesim_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/edge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/edge_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/edge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edge_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lsq/CMakeFiles/edge_lsq.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/edge_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/edge_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/edge_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/edge_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
