# Empty compiler generated dependencies file for protocol_tour.
# This may be replaced when dependencies are built.
