file(REMOVE_RECURSE
  "CMakeFiles/protocol_tour.dir/protocol_tour.cpp.o"
  "CMakeFiles/protocol_tour.dir/protocol_tour.cpp.o.d"
  "protocol_tour"
  "protocol_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
