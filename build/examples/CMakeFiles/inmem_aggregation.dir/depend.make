# Empty dependencies file for inmem_aggregation.
# This may be replaced when dependencies are built.
