file(REMOVE_RECURSE
  "CMakeFiles/inmem_aggregation.dir/inmem_aggregation.cpp.o"
  "CMakeFiles/inmem_aggregation.dir/inmem_aggregation.cpp.o.d"
  "inmem_aggregation"
  "inmem_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inmem_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
