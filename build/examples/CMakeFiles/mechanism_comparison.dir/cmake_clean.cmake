file(REMOVE_RECURSE
  "CMakeFiles/mechanism_comparison.dir/mechanism_comparison.cpp.o"
  "CMakeFiles/mechanism_comparison.dir/mechanism_comparison.cpp.o.d"
  "mechanism_comparison"
  "mechanism_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanism_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
