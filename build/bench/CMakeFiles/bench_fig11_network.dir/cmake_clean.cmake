file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_network.dir/bench_fig11_network.cc.o"
  "CMakeFiles/bench_fig11_network.dir/bench_fig11_network.cc.o.d"
  "bench_fig11_network"
  "bench_fig11_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
