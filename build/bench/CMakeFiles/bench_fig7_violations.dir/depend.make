# Empty dependencies file for bench_fig7_violations.
# This may be replaced when dependencies are built.
