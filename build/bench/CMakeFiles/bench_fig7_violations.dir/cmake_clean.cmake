file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_violations.dir/bench_fig7_violations.cc.o"
  "CMakeFiles/bench_fig7_violations.dir/bench_fig7_violations.cc.o.d"
  "bench_fig7_violations"
  "bench_fig7_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
