
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_value_pred.cc" "bench/CMakeFiles/bench_ext_value_pred.dir/bench_ext_value_pred.cc.o" "gcc" "bench/CMakeFiles/bench_ext_value_pred.dir/bench_ext_value_pred.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/edge_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/edge_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/edge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edge_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lsq/CMakeFiles/edge_lsq.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/edge_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/edge_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/edge_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/edge_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/edge_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
