# Empty dependencies file for bench_ext_value_pred.
# This may be replaced when dependencies are built.
