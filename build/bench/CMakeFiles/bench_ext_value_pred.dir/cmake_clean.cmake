file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_value_pred.dir/bench_ext_value_pred.cc.o"
  "CMakeFiles/bench_ext_value_pred.dir/bench_ext_value_pred.cc.o.d"
  "bench_ext_value_pred"
  "bench_ext_value_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_value_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
