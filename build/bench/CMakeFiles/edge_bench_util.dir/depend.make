# Empty dependencies file for edge_bench_util.
# This may be replaced when dependencies are built.
