file(REMOVE_RECURSE
  "libedge_bench_util.a"
)
