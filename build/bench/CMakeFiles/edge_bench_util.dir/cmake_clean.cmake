file(REMOVE_RECURSE
  "CMakeFiles/edge_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/edge_bench_util.dir/bench_util.cc.o.d"
  "libedge_bench_util.a"
  "libedge_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
