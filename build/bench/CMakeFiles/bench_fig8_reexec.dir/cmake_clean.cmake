file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_reexec.dir/bench_fig8_reexec.cc.o"
  "CMakeFiles/bench_fig8_reexec.dir/bench_fig8_reexec.cc.o.d"
  "bench_fig8_reexec"
  "bench_fig8_reexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_reexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
