# Empty dependencies file for bench_fig8_reexec.
# This may be replaced when dependencies are built.
