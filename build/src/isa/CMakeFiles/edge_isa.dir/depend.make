# Empty dependencies file for edge_isa.
# This may be replaced when dependencies are built.
