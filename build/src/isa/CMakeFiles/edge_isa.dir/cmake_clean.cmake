file(REMOVE_RECURSE
  "CMakeFiles/edge_isa.dir/block.cc.o"
  "CMakeFiles/edge_isa.dir/block.cc.o.d"
  "CMakeFiles/edge_isa.dir/opcode.cc.o"
  "CMakeFiles/edge_isa.dir/opcode.cc.o.d"
  "CMakeFiles/edge_isa.dir/program.cc.o"
  "CMakeFiles/edge_isa.dir/program.cc.o.d"
  "libedge_isa.a"
  "libedge_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
