file(REMOVE_RECURSE
  "libedge_isa.a"
)
