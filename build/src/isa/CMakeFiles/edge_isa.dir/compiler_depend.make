# Empty compiler generated dependencies file for edge_isa.
# This may be replaced when dependencies are built.
