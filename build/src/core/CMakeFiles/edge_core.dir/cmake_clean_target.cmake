file(REMOVE_RECURSE
  "libedge_core.a"
)
