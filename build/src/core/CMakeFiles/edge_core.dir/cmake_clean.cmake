file(REMOVE_RECURSE
  "CMakeFiles/edge_core.dir/exec_node.cc.o"
  "CMakeFiles/edge_core.dir/exec_node.cc.o.d"
  "CMakeFiles/edge_core.dir/processor.cc.o"
  "CMakeFiles/edge_core.dir/processor.cc.o.d"
  "CMakeFiles/edge_core.dir/reg_unit.cc.o"
  "CMakeFiles/edge_core.dir/reg_unit.cc.o.d"
  "libedge_core.a"
  "libedge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
