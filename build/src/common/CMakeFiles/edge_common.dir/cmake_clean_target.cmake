file(REMOVE_RECURSE
  "libedge_common.a"
)
