file(REMOVE_RECURSE
  "CMakeFiles/edge_common.dir/logging.cc.o"
  "CMakeFiles/edge_common.dir/logging.cc.o.d"
  "CMakeFiles/edge_common.dir/stats.cc.o"
  "CMakeFiles/edge_common.dir/stats.cc.o.d"
  "CMakeFiles/edge_common.dir/strutil.cc.o"
  "CMakeFiles/edge_common.dir/strutil.cc.o.d"
  "libedge_common.a"
  "libedge_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
