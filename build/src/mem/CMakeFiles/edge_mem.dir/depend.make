# Empty dependencies file for edge_mem.
# This may be replaced when dependencies are built.
