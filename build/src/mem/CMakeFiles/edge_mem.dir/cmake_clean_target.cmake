file(REMOVE_RECURSE
  "libedge_mem.a"
)
