file(REMOVE_RECURSE
  "CMakeFiles/edge_mem.dir/cache.cc.o"
  "CMakeFiles/edge_mem.dir/cache.cc.o.d"
  "CMakeFiles/edge_mem.dir/dram.cc.o"
  "CMakeFiles/edge_mem.dir/dram.cc.o.d"
  "CMakeFiles/edge_mem.dir/hierarchy.cc.o"
  "CMakeFiles/edge_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/edge_mem.dir/sparse_memory.cc.o"
  "CMakeFiles/edge_mem.dir/sparse_memory.cc.o.d"
  "libedge_mem.a"
  "libedge_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
