file(REMOVE_RECURSE
  "libedge_net.a"
)
