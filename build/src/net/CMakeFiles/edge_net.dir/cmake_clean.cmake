file(REMOVE_RECURSE
  "CMakeFiles/edge_net.dir/route.cc.o"
  "CMakeFiles/edge_net.dir/route.cc.o.d"
  "libedge_net.a"
  "libedge_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
