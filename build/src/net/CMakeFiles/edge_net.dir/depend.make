# Empty dependencies file for edge_net.
# This may be replaced when dependencies are built.
