file(REMOVE_RECURSE
  "libedge_compiler.a"
)
