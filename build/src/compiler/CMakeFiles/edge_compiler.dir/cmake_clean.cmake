file(REMOVE_RECURSE
  "CMakeFiles/edge_compiler.dir/builder.cc.o"
  "CMakeFiles/edge_compiler.dir/builder.cc.o.d"
  "CMakeFiles/edge_compiler.dir/placement.cc.o"
  "CMakeFiles/edge_compiler.dir/placement.cc.o.d"
  "CMakeFiles/edge_compiler.dir/ref_executor.cc.o"
  "CMakeFiles/edge_compiler.dir/ref_executor.cc.o.d"
  "libedge_compiler.a"
  "libedge_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
