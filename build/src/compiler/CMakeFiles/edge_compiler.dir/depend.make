# Empty dependencies file for edge_compiler.
# This may be replaced when dependencies are built.
