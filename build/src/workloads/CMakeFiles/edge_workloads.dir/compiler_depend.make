# Empty compiler generated dependencies file for edge_workloads.
# This may be replaced when dependencies are built.
