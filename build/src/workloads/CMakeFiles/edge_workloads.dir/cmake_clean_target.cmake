file(REMOVE_RECURSE
  "libedge_workloads.a"
)
