file(REMOVE_RECURSE
  "CMakeFiles/edge_workloads.dir/ammpish.cc.o"
  "CMakeFiles/edge_workloads.dir/ammpish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/artish.cc.o"
  "CMakeFiles/edge_workloads.dir/artish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/bzip2ish.cc.o"
  "CMakeFiles/edge_workloads.dir/bzip2ish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/craftyish.cc.o"
  "CMakeFiles/edge_workloads.dir/craftyish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/equakeish.cc.o"
  "CMakeFiles/edge_workloads.dir/equakeish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/gapish.cc.o"
  "CMakeFiles/edge_workloads.dir/gapish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/gccish.cc.o"
  "CMakeFiles/edge_workloads.dir/gccish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/gzipish.cc.o"
  "CMakeFiles/edge_workloads.dir/gzipish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/mcfish.cc.o"
  "CMakeFiles/edge_workloads.dir/mcfish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/parserish.cc.o"
  "CMakeFiles/edge_workloads.dir/parserish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/swimish.cc.o"
  "CMakeFiles/edge_workloads.dir/swimish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/twolfish.cc.o"
  "CMakeFiles/edge_workloads.dir/twolfish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/vortexish.cc.o"
  "CMakeFiles/edge_workloads.dir/vortexish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/vprish.cc.o"
  "CMakeFiles/edge_workloads.dir/vprish.cc.o.d"
  "CMakeFiles/edge_workloads.dir/workloads.cc.o"
  "CMakeFiles/edge_workloads.dir/workloads.cc.o.d"
  "libedge_workloads.a"
  "libedge_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
