
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ammpish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/ammpish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/ammpish.cc.o.d"
  "/root/repo/src/workloads/artish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/artish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/artish.cc.o.d"
  "/root/repo/src/workloads/bzip2ish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/bzip2ish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/bzip2ish.cc.o.d"
  "/root/repo/src/workloads/craftyish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/craftyish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/craftyish.cc.o.d"
  "/root/repo/src/workloads/equakeish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/equakeish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/equakeish.cc.o.d"
  "/root/repo/src/workloads/gapish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/gapish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/gapish.cc.o.d"
  "/root/repo/src/workloads/gccish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/gccish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/gccish.cc.o.d"
  "/root/repo/src/workloads/gzipish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/gzipish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/gzipish.cc.o.d"
  "/root/repo/src/workloads/mcfish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/mcfish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/mcfish.cc.o.d"
  "/root/repo/src/workloads/parserish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/parserish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/parserish.cc.o.d"
  "/root/repo/src/workloads/swimish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/swimish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/swimish.cc.o.d"
  "/root/repo/src/workloads/twolfish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/twolfish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/twolfish.cc.o.d"
  "/root/repo/src/workloads/vortexish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/vortexish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/vortexish.cc.o.d"
  "/root/repo/src/workloads/vprish.cc" "src/workloads/CMakeFiles/edge_workloads.dir/vprish.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/vprish.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/edge_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/edge_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/edge_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/edge_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/edge_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
