# Empty dependencies file for edge_lsq.
# This may be replaced when dependencies are built.
