# Empty compiler generated dependencies file for edge_lsq.
# This may be replaced when dependencies are built.
