file(REMOVE_RECURSE
  "libedge_lsq.a"
)
