
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsq/lsq.cc" "src/lsq/CMakeFiles/edge_lsq.dir/lsq.cc.o" "gcc" "src/lsq/CMakeFiles/edge_lsq.dir/lsq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/edge_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/edge_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/predictor/CMakeFiles/edge_predictor.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/edge_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
