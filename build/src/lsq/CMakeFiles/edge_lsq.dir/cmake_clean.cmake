file(REMOVE_RECURSE
  "CMakeFiles/edge_lsq.dir/lsq.cc.o"
  "CMakeFiles/edge_lsq.dir/lsq.cc.o.d"
  "libedge_lsq.a"
  "libedge_lsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_lsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
